// Ablations for the reasoning-engine design choices called out in
// DESIGN.md:
//   1. semi-naive vs naive forward evaluation,
//   2. single-join rule compilation (§II) vs running the generic pD* rules,
//   3. per-query vs shared tabling in the query-driven materializer.

#include "bench_common.hpp"
#include "parowl/util/timer.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Ablation: reasoning engine design choices (LUBM)");

  util::Table table({"configuration", "dataset", "reason(s)", "inferred",
                     "iterations"});

  for (const unsigned n : {4u, 8u}) {
    // 1. Semi-naive vs naive.
    for (const bool semi : {true, false}) {
      Universe u;
      make_lubm(u, n * s);
      reason::MaterializeOptions opts;
      opts.semi_naive = semi;
      const auto r = reason::materialize(u.store, u.dict, *u.vocab, opts);
      table.add_row({semi ? "forward semi-naive" : "forward naive", u.name,
                     util::fmt_double(r.reason_seconds, 3),
                     std::to_string(r.inferred),
                     std::to_string(r.iterations)});
    }

    // 2. Compiled single-join rules vs generic pD*.
    for (const bool compile : {true, false}) {
      Universe u;
      make_lubm(u, n * s);
      reason::MaterializeOptions opts;
      opts.compile = compile;
      const auto r = reason::materialize(u.store, u.dict, *u.vocab, opts);
      table.add_row({compile ? "compiled (single-join)" : "generic pD*",
                     u.name, util::fmt_double(r.reason_seconds, 3),
                     std::to_string(r.inferred),
                     std::to_string(r.iterations)});
    }
  }

  // 3. Query-driven tabling scope (smaller scale: it is the slow engine).
  for (const bool share : {false, true}) {
    Universe u;
    make_lubm(u, 2 * s);
    reason::MaterializeOptions opts;
    opts.strategy = reason::Strategy::kQueryDriven;
    opts.share_tables = share;
    const auto r = reason::materialize(u.store, u.dict, *u.vocab, opts);
    table.add_row({share ? "query-driven, shared tables"
                         : "query-driven, per-query tables (Jena-like)",
                   u.name, util::fmt_double(r.reason_seconds, 3),
                   std::to_string(r.inferred), std::to_string(r.iterations)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: semi-naive and compilation each speed the "
               "forward engine; per-query\ntables are the expensive Jena "
               "behaviour the paper's super-linear model rests on.\n";
  return 0;
}
