// Micro-benchmarks guarding the RDF substrate's performance: dictionary
// interning, store insertion, and indexed pattern matching.

#include <benchmark/benchmark.h>

#include <sstream>

#include "parowl/gen/lubm.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/util/rng.hpp"

namespace {

using namespace parowl;

void BM_DictionaryIntern(benchmark::State& state) {
  std::vector<std::string> names;
  for (int i = 0; i < 10000; ++i) {
    names.push_back("http://example.org/entity/" + std::to_string(i));
  }
  for (auto _ : state) {
    rdf::Dictionary dict;
    for (const auto& name : names) {
      benchmark::DoNotOptimize(dict.intern_iri(name));
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_DictionaryLookup(benchmark::State& state) {
  rdf::Dictionary dict;
  std::vector<std::string> names;
  for (int i = 0; i < 10000; ++i) {
    names.push_back("http://example.org/entity/" + std::to_string(i));
    dict.intern_iri(names.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.find_iri(names[i++ % names.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryLookup);

void BM_StoreInsert(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 50000; ++i) {
    triples.push_back({static_cast<rdf::TermId>(1 + rng.below(5000)),
                       static_cast<rdf::TermId>(1 + rng.below(20)),
                       static_cast<rdf::TermId>(1 + rng.below(5000))});
  }
  for (auto _ : state) {
    rdf::TripleStore store;
    for (const rdf::Triple& t : triples) {
      benchmark::DoNotOptimize(store.insert(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * triples.size());
}
BENCHMARK(BM_StoreInsert);

void BM_StoreMatchByPredicate(benchmark::State& state) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 2;
  gen::generate_lubm(opts, dict, store);
  const auto type = dict.find_iri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  for (auto _ : state) {
    std::size_t n = 0;
    store.match({rdf::kAnyTerm, type, rdf::kAnyTerm},
                [&n](const rdf::Triple&) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_StoreMatchByPredicate);

void BM_StoreProbeObjects(benchmark::State& state) {
  util::Rng rng(2);
  rdf::TripleStore store;
  for (int i = 0; i < 100000; ++i) {
    store.insert({static_cast<rdf::TermId>(1 + rng.below(10000)), 7,
                  static_cast<rdf::TermId>(1 + rng.below(10000))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.objects(7, static_cast<rdf::TermId>(1 + rng.below(10000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreProbeObjects);

void BM_NtriplesParse(benchmark::State& state) {
  rdf::Dictionary gen_dict;
  rdf::TripleStore gen_store;
  gen::LubmOptions opts;
  opts.universities = 1;
  gen::generate_lubm(opts, gen_dict, gen_store);
  std::ostringstream out;
  rdf::write_ntriples(out, gen_store, gen_dict);
  const std::string text = out.str();

  for (auto _ : state) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::istringstream in(text);
    benchmark::DoNotOptimize(rdf::parse_ntriples(in, dict, store));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_NtriplesParse);

}  // namespace
