// Fig. 1 — "Speedup for the LUBM-10, UOBM benchmarks on different number of
// processors" (data partitioning, graph policy).
//
// Reproduces the figure's three series: LUBM and MDC show super-linear
// speedups (the partitioning shrinks the query-driven reasoner's
// super-linear per-partition cost); UOBM shows sub-linear speedups (its
// dense cross-university links defeat locality, so replication and
// communication grow).  Local reasoning strategy follows the paper's
// observation (§VI-A): LUBM/MDC exhibit worst-case (super-linear) reasoner
// behaviour — modeled by the query-driven Jena-like materializer — while
// UOBM "does not exhibit worst-case complexity and scales linearly", so its
// workers run the (linear) forward engine.

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

void series(const Universe& u, reason::Strategy strategy,
            util::Table& table) {
  const partition::GraphOwnerPolicy policy;
  double serial = 0.0;  // defined by the k=1 run below
  for (const unsigned k : {1u, 2u, 4u, 8u, 16u}) {
    const SpeedupPoint p = run_data_point(u, policy, k, strategy, serial);
    if (k == 1) {
      serial = p.simulated_seconds;
    }
    table.add_row({u.name, std::to_string(k), util::fmt_double(serial, 3),
                   util::fmt_double(p.simulated_seconds, 3),
                   util::fmt_double(p.speedup, 2),
                   std::to_string(p.rounds),
                   util::fmt_double(p.input_replication, 3)});
  }
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header(
      "Fig. 1: data-partitioning speedup (graph policy) on LUBM/UOBM/MDC");

  util::Table table({"dataset", "procs", "serial(s)", "parallel(s)",
                     "speedup", "rounds", "IR"});

  {
    Universe u;
    make_lubm(u, 10 * s);
    series(u, reason::Strategy::kQueryDriven, table);
  }
  {
    Universe u;
    make_uobm(u, 4 * s);
    series(u, reason::Strategy::kForward, table);
  }
  {
    Universe u;
    make_mdc(u, 6 * s);
    series(u, reason::Strategy::kQueryDriven, table);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape (paper): super-linear speedup for LUBM and "
               "MDC,\nsub-linear for UOBM; ~18x at 16 processors for the "
               "best case.\n";
  return 0;
}
