// Fig. 4 — "Regressing a performance model from observed reasoning times
// for LUBM data-sets": run the serial (query-driven, Jena-like) reasoner on
// LUBM-1, LUBM-2, ... and fit a cubic execution-time model by least
// squares, as the paper does ("Since the worst case of the reasoning for
// the rule set is cubic, fitting a cubic model is reasonable").
//
// Prints the sampled (size, time) points, the fitted cubic, and R².

#include "parowl/perfmodel/polyfit.hpp"

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Fig. 4: cubic performance model regression (LUBM serial)");

  util::Table table({"dataset", "nodes", "base triples", "reason(s)"});
  std::vector<double> sizes, times;

  for (const unsigned n : {1u, 2u, 3u, 4u, 6u, 8u, 10u}) {
    Universe u;
    make_lubm(u, n * s);
    const double t = serial_seconds(u, reason::Strategy::kQueryDriven);
    // Model domain: number of resource nodes, the paper's "n" (reasoning
    // cost is polynomial in the resources of the KB).
    const rdf::GraphStats gs = rdf::compute_graph_stats(u.store, u.dict);
    sizes.push_back(static_cast<double>(gs.nodes));
    times.push_back(t);
    table.add_row({u.name, std::to_string(gs.nodes),
                   std::to_string(u.store.size()), util::fmt_double(t, 3)});
  }
  table.print(std::cout);

  const perfmodel::PolyFit cubic = perfmodel::fit_polynomial(sizes, times, 3);
  std::cout << "\ncubic model: T(n) = " << cubic.to_string() << "\n";
  std::cout << "R^2 = " << util::fmt_double(cubic.r_squared, 5) << "\n";

  const perfmodel::PolyFit anchored =
      perfmodel::fit_polynomial_through_origin(sizes, times, 3);
  std::cout << "through-origin cubic (used for Fig. 3's theoretical max): "
            << anchored.to_string()
            << "  R^2 = " << util::fmt_double(anchored.r_squared, 5) << "\n";

  // Sanity check of the model's predictive shape: doubling the size must
  // more than double the predicted time (super-linear cost).
  const double t1 = cubic.eval(sizes.back());
  const double t2 = cubic.eval(2.0 * sizes.back());
  std::cout << "model growth check: T(2n)/T(n) = "
            << util::fmt_double(t2 / t1, 2) << " (superlinear if > 2)\n";
  std::cout << "\nExpected shape (paper): a cubic fits the observed serial "
               "times with high R^2.\n";
  return 0;
}
