// Motivation bench (paper §I): materialized knowledge bases "trade-off
// space and increased loading time for shorter query times", which is why
// the paper parallelizes the materialization step at all.
//
// This harness quantifies that trade-off on the LUBM query mix:
//   (a) materialize once, answer every query with plain BGP matching;
//   (b) no materialization — answer each query by backward chaining at
//       query time (tabled SLD per triple pattern).
// Reported: one-time load/reasoning cost, per-mode total query latency,
// and the answer counts (identical by construction).

#include "parowl/gen/lubm_queries.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/backward.hpp"

#include "parowl/util/timer.hpp"

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

/// Answer a BGP query by backward chaining: each triple pattern is solved
/// with the tabled SLD engine against the *base* store + compiled rules,
/// joining bindings pattern by pattern (most-bound-first).
std::size_t answer_on_demand(const rdf::TripleStore& base,
                             const rdf::Dictionary& dict,
                             const rules::RuleSet& rules,
                             const query::SelectQuery& q) {
  reason::BackwardEngine engine(base, rules,
                                reason::BackwardOptions{.dict = &dict});
  std::size_t solutions = 0;
  // Recursive join over patterns, each answered by the backward engine.
  const std::function<void(std::size_t, rules::Binding&)> solve =
      [&](std::size_t depth, rules::Binding& binding) {
        if (depth == q.where.size()) {
          ++solutions;
          return;
        }
        // Pick the most-bound remaining pattern (they are few; linear scan
        // over the suffix is fine because patterns are reordered greedily
        // only by position here).
        const auto pattern = rules::to_pattern(q.where[depth], binding);
        std::vector<rdf::Triple> answers;
        engine.query(pattern, answers);
        for (const rdf::Triple& t : answers) {
          rules::Binding saved = binding;
          if (rules::bind_atom(q.where[depth], t, binding)) {
            solve(depth + 1, binding);
          }
          binding = saved;
        }
      };
  rules::Binding binding{};
  solve(0, binding);
  return solutions;
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header("Motivation: materialized vs on-demand query answering");

  Universe u;
  make_lubm(u, 4 * s);
  const auto compiled = reason::compile_ontology(u.store, *u.vocab);

  // (a) Materialize once.
  rdf::TripleStore materialized;
  materialized.insert_all(u.store.triples());
  util::Stopwatch load_watch;
  const auto mresult = reason::materialize(materialized, u.dict, *u.vocab, {});
  const double load_seconds = load_watch.elapsed_seconds();

  query::SparqlParser parser(u.dict);
  util::Table table({"query", "answers", "materialized(ms)",
                     "on-demand(ms)", "on-demand/materialized"});
  double total_mat = 0.0, total_dem = 0.0;

  for (const gen::LubmQuery& lq : gen::lubm_queries()) {
    std::string error;
    const auto q = parser.parse(lq.sparql, &error);
    if (!q) {
      std::cerr << lq.name << " parse error: " << error << "\n";
      return 1;
    }

    util::Stopwatch mat_watch;
    const auto results = query::evaluate(materialized, *q);
    const double mat_ms = mat_watch.elapsed_seconds() * 1e3;

    util::Stopwatch dem_watch;
    const std::size_t dem_count =
        answer_on_demand(u.store, u.dict, compiled.rules, *q);
    const double dem_ms = dem_watch.elapsed_seconds() * 1e3;

    total_mat += mat_ms;
    total_dem += dem_ms;
    (void)dem_count;  // counts solutions pre-projection; not comparable

    table.add_row({lq.name, std::to_string(results.size()),
                   util::fmt_double(mat_ms, 2), util::fmt_double(dem_ms, 2),
                   util::fmt_double(mat_ms > 0 ? dem_ms / mat_ms : 0, 1)});
  }
  table.print(std::cout);
  std::cout << "\none-time materialization: "
            << util::fmt_double(load_seconds * 1e3, 1) << " ms ("
            << mresult.inferred << " inferred triples)\n"
            << "total query time, materialized: "
            << util::fmt_double(total_mat, 1) << " ms; on demand: "
            << util::fmt_double(total_dem, 1) << " ms\n"
            << "\nThe paper's premise: for query-heavy workloads the "
               "one-time materialization\ncost amortizes quickly — "
               "precisely the cost its parallelization attacks.\n";
  return 0;
}
