// Fig. 5 — "Comparison of performance of the two data-partitioning
// algorithms for LUBM-10", extended to the full partitioner suite: the
// multilevel graph policy, the domain-specific and hash owner functions,
// and the streaming partitioners (HDRF / Fennel / NE / HDRF+split-merge),
// all scored on the same counters (speedup, IR, OR, RF, plan edge cut,
// partitioning time) at 2/4/8/16 partitions.
//
// The paper could not complete hash runs at 8 and 16 nodes ("experiments
// did not complete due to memory size limitations") because hash
// partitioning replicates so heavily; this harness runs them anyway and
// reports the replication blow-up alongside the (poor) speedup.
//
// Built as a google-benchmark binary so tools/record_bench.sh can record
// the counters into bench/BENCH_partition.json.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace parowl;
using namespace parowl::bench;

Universe& universe() {
  static Universe* u = [] {
    auto* v = new Universe();
    make_lubm(*v, 10 * scale_factor());
    return v;
  }();
  return *u;
}

double serial_baseline() {
  static const double s =
      serial_seconds(universe(), reason::Strategy::kQueryDriven);
  return s;
}

std::unique_ptr<partition::OwnerPolicy> policy_for(int which) {
  partition::PartitionerOptions popts;
  switch (which) {
    case 0:
      return std::make_unique<partition::GraphOwnerPolicy>();
    case 1:
      return std::make_unique<partition::DomainOwnerPolicy>(
          &partition::lubm_university_key);
    case 2:
      return std::make_unique<partition::HashOwnerPolicy>();
    case 3:
      popts.kind = partition::PartitionerKind::kHdrf;
      return std::make_unique<partition::StreamingOwnerPolicy>(popts);
    case 4:
      popts.kind = partition::PartitionerKind::kFennel;
      return std::make_unique<partition::StreamingOwnerPolicy>(popts);
    case 5:
      popts.kind = partition::PartitionerKind::kNe;
      return std::make_unique<partition::StreamingOwnerPolicy>(popts);
    default:
      popts.kind = partition::PartitionerKind::kHdrf;
      popts.split_merge_factor = 4;
      return std::make_unique<partition::StreamingOwnerPolicy>(popts);
  }
}

void BM_Fig5PartitionerComparison(benchmark::State& state) {
  Universe& u = universe();
  const auto k = static_cast<unsigned>(state.range(1));
  const auto policy = policy_for(static_cast<int>(state.range(0)));
  const double serial = serial_baseline();

  partition::DataPartitioning dp;
  for (auto _ : state) {
    dp = partition::partition_data(u.store, u.dict, *u.vocab, *policy, k);
    benchmark::DoNotOptimize(dp);
  }
  const partition::PartitionMetrics m =
      partition::compute_partition_metrics(dp, u.dict);
  const SpeedupPoint p = run_data_point(
      u, *policy, k, reason::Strategy::kQueryDriven, serial);

  state.SetLabel(policy->name() + " [" + dp.algorithm + "]");
  state.counters["speedup"] = p.speedup;
  state.counters["IR"] = m.input_replication;
  state.counters["OR"] = p.output_replication;
  state.counters["RF"] = m.replication_factor;
  state.counters["bal"] = m.bal;
  state.counters["plan_cut"] =
      static_cast<double>(dp.plan_metrics.edge_cut);
  state.counters["part_seconds"] = dp.partition_seconds;
}
BENCHMARK(BM_Fig5PartitionerComparison)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {2, 4, 8, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
