// Fig. 5 — "Comparison of performance of the two data-partitioning
// algorithms for LUBM-10": speedups obtained from the three owner policies
// (graph, domain-specific, hash) at 2/4/8/16 partitions.
//
// The paper could not complete hash runs at 8 and 16 nodes ("experiments
// did not complete due to memory size limitations") because hash
// partitioning replicates so heavily; this harness runs them anyway and
// reports the replication blow-up alongside the (poor) speedup.

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Fig. 5: data-partitioning policy comparison (LUBM)");

  Universe u;
  make_lubm(u, 10 * s);
  const double serial = serial_seconds(u, reason::Strategy::kQueryDriven);

  const partition::GraphOwnerPolicy graph_policy;
  const partition::DomainOwnerPolicy domain_policy(
      &partition::lubm_university_key);
  const partition::HashOwnerPolicy hash_policy;
  const partition::OwnerPolicy* policies[] = {&graph_policy, &domain_policy,
                                              &hash_policy};

  util::Table table(
      {"policy", "procs", "speedup", "IR", "OR", "rounds"});
  for (const partition::OwnerPolicy* policy : policies) {
    for (const unsigned k : {2u, 4u, 8u, 16u}) {
      const SpeedupPoint p = run_data_point(
          u, *policy, k, reason::Strategy::kQueryDriven, serial);
      table.add_row({policy->name(), std::to_string(k),
                     util::fmt_double(p.speedup, 2),
                     util::fmt_double(p.input_replication, 2),
                     util::fmt_double(p.output_replication, 2),
                     std::to_string(p.rounds)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): domain-specific performs nearly "
               "as well as graph\npartitioning; hash performs much worse "
               "because it does not minimize\nedge-cut (IR ~10x higher), "
               "and in the paper it exhausted memory at 8/16 nodes.\n";
  return 0;
}
