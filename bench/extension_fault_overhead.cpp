// Fault-tolerance overhead bench: what do the ack/retry protocol, round-
// granular checkpointing, and an injected fault schedule cost on top of a
// plain LUBM materialization?  Every configuration below provably reaches
// the same closure (the fault_injection_test sweep byte-checks that); this
// harness prices the machinery:
//   (a) baseline        — ack/retry protocol, no faults, no checkpoints;
//   (b) checkpointed    — plus a checkpoint of every worker every round;
//   (c) faulty          — plus a drop/dup/corrupt/reorder schedule;
//   (d) faulty + ckpt   — both, i.e. the full fault-tolerant deployment.

#include <filesystem>

#include "bench_common.hpp"
#include "parowl/util/timer.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

struct RunRow {
  double wall_ms = 0.0;
  double sim_ms = 0.0;
  parallel::ClusterResult cluster;
};

RunRow run_config(const Universe& u, const partition::OwnerPolicy& policy,
                  const parallel::FaultSpec* faults,
                  const std::string& ckpt_dir, int reps = 3) {
  RunRow best;
  for (int rep = 0; rep < reps; ++rep) {
    if (!ckpt_dir.empty()) {
      std::filesystem::remove_all(ckpt_dir);
    }
    parallel::ParallelOptions opts;
    opts.partitions = 4;
    opts.policy = &policy;
    opts.build_merged = false;
    opts.faults = faults;
    opts.checkpoint.dir = ckpt_dir;

    util::Stopwatch watch;
    const parallel::ParallelResult r =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);
    const double wall_ms = watch.elapsed_seconds() * 1e3;
    if (rep == 0 || wall_ms < best.wall_ms) {
      best.wall_ms = wall_ms;
      best.sim_ms = r.cluster.simulated_seconds * 1e3;
      best.cluster = r.cluster;
    }
  }
  if (!ckpt_dir.empty()) {
    std::filesystem::remove_all(ckpt_dir);
  }
  return best;
}

std::string pct_over(double value, double baseline) {
  if (baseline <= 0.0) {
    return "-";
  }
  return util::fmt_double((value / baseline - 1.0) * 100.0, 1) + "%";
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header("Extension: fault-tolerance overhead (ack/retry + checkpoints)");

  Universe u;
  make_lubm(u, 1 * s);
  std::cout << u.name << ": " << u.store.size() << " triples, 4 partitions, "
            << "hash policy\n";

  const partition::HashOwnerPolicy policy;
  const auto ckpt_dir = std::filesystem::temp_directory_path() /
                        "parowl_bench_fault_ckpt";

  parallel::FaultSpec spec;
  spec.seed = 42;
  spec.drop = 0.15;
  spec.duplicate = 0.10;
  spec.corrupt = 0.10;
  spec.reorder = 0.25;

  const RunRow base = run_config(u, policy, nullptr, "");
  const RunRow ckpt = run_config(u, policy, nullptr, ckpt_dir.string());
  const RunRow faulty = run_config(u, policy, &spec, "");
  const RunRow both = run_config(u, policy, &spec, ckpt_dir.string());

  util::Table table({"config", "wall(ms)", "sim(ms)", "rounds", "retrans",
                     "redeliv", "ckpts", "wall overhead"});
  const auto add = [&](const char* name, const RunRow& row) {
    const parallel::RunReport& rep = row.cluster.report;
    table.add_row({name, util::fmt_double(row.wall_ms, 2),
                   util::fmt_double(row.sim_ms, 2),
                   std::to_string(row.cluster.rounds),
                   std::to_string(rep.retransmissions),
                   std::to_string(rep.redeliveries),
                   std::to_string(rep.checkpoints_written),
                   pct_over(row.wall_ms, base.wall_ms)});
  };
  add("baseline", base);
  add("checkpointed", ckpt);
  add("faulty", faulty);
  add("faulty+ckpt", both);
  table.print(std::cout);

  std::cout << "\ninjected under 'faulty': " << faulty.cluster.report.injected.drops
            << " drops, " << faulty.cluster.report.injected.duplicates
            << " dups, " << faulty.cluster.report.injected.corruptions
            << " corruptions, " << faulty.cluster.report.injected.reorders
            << " reorders; backoff charged "
            << util::fmt_double(
                   faulty.cluster.report.backoff_seconds * 1e3, 3)
            << " ms\n";
  return 0;
}
