// Fig. 3 — "Speedup for the LUBM-10 benchmark" compared against the
// theoretical maximum speedup derived from the empirical cubic model of
// Fig. 4.  The theoretical maximum assumes perfectly balanced partitions
// with no replication (partition size = n/k) and no communication:
// T_model(n) / T_model(n/k).  The measured series reports both the
// slowest-partition reasoning speedup and the overall (incl. comm/sync)
// speedup, as the paper's figure does.

#include "parowl/perfmodel/polyfit.hpp"

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Fig. 3: measured vs theoretical-maximum speedup (LUBM)");

  // Step 1: regress the cubic model from serial runs at several scales.
  std::vector<double> sizes, times;
  for (const unsigned n : {1u, 2u, 3u, 4u, 6u, 8u, 10u}) {
    Universe u;
    make_lubm(u, n * s);
    const double t = serial_seconds(u, reason::Strategy::kQueryDriven);
    sizes.push_back(
        static_cast<double>(rdf::compute_graph_stats(u.store, u.dict).nodes));
    times.push_back(t);
  }
  // Through-origin fit: an execution-time model must satisfy T(0) = 0, and
  // the unconstrained intercept would dominate T(n/k) at large k.
  const perfmodel::PolyFit cubic =
      perfmodel::fit_polynomial_through_origin(sizes, times, 3);
  std::cout << "cubic model: T(n) = " << cubic.to_string()
            << "   (R^2 = " << util::fmt_double(cubic.r_squared, 4) << ")\n";

  // Step 2: measured speedups on LUBM-10 with the graph policy.
  Universe u;
  make_lubm(u, 10 * s);
  const double total_nodes =
      static_cast<double>(rdf::compute_graph_stats(u.store, u.dict).nodes);
  const partition::GraphOwnerPolicy policy;
  const double serial =
      serial_seconds(u, reason::Strategy::kQueryDriven);

  util::Table table({"procs", "theoretical max", "measured (slowest part.)",
                     "measured (overall)"});
  table.add_row({"1", "1.00", "1.00", "1.00"});
  for (const unsigned k : {2u, 4u, 8u, 16u}) {
    const SpeedupPoint p = run_data_point(
        u, policy, k, reason::Strategy::kQueryDriven, serial);
    const double theory =
        perfmodel::model_speedup(cubic, total_nodes, total_nodes / k);
    const double slowest =
        p.slowest_partition_reason > 0
            ? serial / p.slowest_partition_reason
            : 0.0;
    table.add_row({std::to_string(k), util::fmt_double(theory, 2),
                   util::fmt_double(slowest, 2),
                   util::fmt_double(p.speedup, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): measured speedups track the "
               "model-predicted\nmaximum, with the gap widening as "
               "processors (and comm/sync overhead) grow.\n";
  return 0;
}
