// Incremental-maintenance bench: the paper's setting is a materialized KB
// where "the frequency of data being added is much smaller than that of
// queries".  Between full materializations, updates should be absorbed
// incrementally.  Arms, swept over batch size (number of affected
// students; adds are 3 triples each):
//   BM_MaintainMixed/dred|fbf — mixed add+delete batches through
//     reason::Maintainer (overdelete + rederive);
//   BM_IncrementalAdditions — additions-only semi-naive closure
//     (materialize_incremental), the pre-deletion fast path;
//   BM_FullRematerialize — from-scratch closure of the equivalent final
//     base, the cost incremental maintenance avoids.
// Counters report the overdeletion cone (overdeleted/rederived/removed) so
// the DRed-vs-FBF trade-off is visible, not just total time.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parowl/rdf/flat_index.hpp"
#include "parowl/reason/maintain.hpp"

namespace {

using namespace parowl;
using namespace parowl::bench;

/// Materialized LUBM universe + deterministic update batches, built once.
struct IncUniverse {
  Universe u;
  rdf::TripleStore closure;        // materialized
  std::vector<rdf::Triple> base;   // asserted triples
  std::vector<rdf::Triple> deletable;  // instance triples, every 3rd

  rdf::TermId type, grad, member_of, takes, dept, course;

  IncUniverse() {
    make_lubm(u, 4 * scale_factor());
    base = u.store.triples();
    closure.insert_all(base);
    reason::materialize(closure, u.dict, *u.vocab, {});

    std::size_t i = 0;
    for (const rdf::Triple& t : base) {
      if (!u.vocab->is_schema_triple(t) && i++ % 3 == 0) {
        deletable.push_back(t);
      }
    }

    type = u.dict.find_iri(
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    grad = u.dict.find_iri(std::string(gen::kUnivBenchNs) +
                           "GraduateStudent");
    member_of =
        u.dict.find_iri(std::string(gen::kUnivBenchNs) + "memberOf");
    takes = u.dict.find_iri(std::string(gen::kUnivBenchNs) + "takesCourse");
    dept = u.dict.find_iri("http://www.Univ0.edu/Department0");
    course = u.dict.find_iri("http://www.Department0.Univ0.edu/Course0_0");
  }

  /// `n` new graduate students joining Department0 (3 triples each).
  std::vector<rdf::Triple> additions(std::size_t n) {
    std::vector<rdf::Triple> adds;
    for (std::size_t i = 0; i < n; ++i) {
      const auto stu = u.dict.intern_iri(
          "http://www.Department0.Univ0.edu/NewStudent" + std::to_string(i));
      adds.push_back({stu, type, grad});
      adds.push_back({stu, member_of, dept});
      adds.push_back({stu, takes, course});
    }
    return adds;
  }

  std::vector<rdf::Triple> deletions(std::size_t n) {
    const std::size_t take = std::min(n, deletable.size());
    return {deletable.begin(),
            deletable.begin() + static_cast<std::ptrdiff_t>(take)};
  }
};

IncUniverse& universe() {
  static IncUniverse u;
  return u;
}

void run_maintain(benchmark::State& state, reason::MaintainStrategy strategy) {
  IncUniverse& fx = universe();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<rdf::Triple> adds = fx.additions(n);
  const std::vector<rdf::Triple> dels = fx.deletions(n);

  reason::MaintainOptions opts;
  opts.strategy = strategy;
  const reason::Maintainer maintainer(fx.u.dict, *fx.u.vocab, opts);

  reason::MaintainResult last;
  for (auto _ : state) {
    state.PauseTiming();
    rdf::TripleStore store = fx.closure;  // maintain mutates: fresh copy
    std::vector<rdf::Triple> base = fx.base;
    state.ResumeTiming();
    last = maintainer.apply(store, base, adds, dels);
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["overdeleted"] = static_cast<double>(last.overdeleted);
  state.counters["kept_alive"] = static_cast<double>(last.kept_alive);
  state.counters["rederived"] = static_cast<double>(last.rederived);
  state.counters["removed"] = static_cast<double>(last.removed);
}

void BM_MaintainMixed_dred(benchmark::State& state) {
  run_maintain(state, reason::MaintainStrategy::kDRed);
}
BENCHMARK(BM_MaintainMixed_dred)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_MaintainMixed_fbf(benchmark::State& state) {
  run_maintain(state, reason::MaintainStrategy::kFbf);
}
BENCHMARK(BM_MaintainMixed_fbf)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalAdditions(benchmark::State& state) {
  IncUniverse& fx = universe();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<rdf::Triple> adds = fx.additions(n);

  std::size_t inferred = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rdf::TripleStore store = fx.closure;
    state.ResumeTiming();
    const auto r =
        reason::materialize_incremental(store, fx.u.dict, *fx.u.vocab, adds);
    inferred = r.inferred;
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["inferred"] = static_cast<double>(inferred);
}
BENCHMARK(BM_IncrementalAdditions)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_FullRematerialize(benchmark::State& state) {
  IncUniverse& fx = universe();
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<rdf::Triple> adds = fx.additions(n);
  const std::vector<rdf::Triple> dels = fx.deletions(n);
  rdf::TripleSet del_set;
  for (const rdf::Triple& t : dels) {
    del_set.insert(t);
  }

  for (auto _ : state) {
    state.PauseTiming();
    rdf::TripleStore scratch;
    for (const rdf::Triple& t : fx.base) {
      if (!del_set.contains(t)) {
        scratch.insert(t);
      }
    }
    scratch.insert_all(adds);
    state.ResumeTiming();
    reason::materialize(scratch, fx.u.dict, *fx.u.vocab, {});
    benchmark::DoNotOptimize(scratch.size());
  }
}
BENCHMARK(BM_FullRematerialize)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
