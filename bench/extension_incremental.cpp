// Incremental-maintenance bench: the paper's setting is a materialized KB
// where "the frequency of data being added is much smaller than that of
// queries".  Between full materializations, additions should be absorbed
// incrementally.  This harness compares, for batches of new facts arriving
// at an already-materialized LUBM store:
//   (a) materialize_incremental — semi-naive closure from the delta only;
//   (b) full re-materialization from scratch.

#include "parowl/util/timer.hpp"
#include "bench_common.hpp"
#include "parowl/util/rng.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Extension: incremental maintenance vs re-materialization");

  Universe u;
  make_lubm(u, 8 * s);
  const std::vector<rdf::Triple> base_triples = u.store.triples();

  // Materialize once.
  rdf::TripleStore live;
  live.insert_all(base_triples);
  reason::materialize(live, u.dict, *u.vocab, {});

  // Synthesize update batches: new graduate students joining existing
  // departments with advisors and courses (pure instance data).
  const auto type = u.dict.find_iri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  const auto grad = u.dict.find_iri(std::string(gen::kUnivBenchNs) +
                                    "GraduateStudent");
  const auto member_of =
      u.dict.find_iri(std::string(gen::kUnivBenchNs) + "memberOf");
  const auto takes =
      u.dict.find_iri(std::string(gen::kUnivBenchNs) + "takesCourse");
  const auto dept = u.dict.find_iri("http://www.Univ0.edu/Department0");
  const auto course =
      u.dict.find_iri("http://www.Department0.Univ0.edu/Course0_0");

  util::Table table({"batch size", "incremental(ms)", "full rerun(ms)",
                     "speedup", "inferred (incremental)"});
  util::Rng rng(11);
  std::size_t next_id = 0;

  for (const std::size_t batch : {1u, 10u, 100u, 1000u}) {
    std::vector<rdf::Triple> additions;
    for (std::size_t i = 0; i < batch; ++i) {
      const auto stu = u.dict.intern_iri(
          "http://www.Department0.Univ0.edu/NewStudent" +
          std::to_string(next_id++));
      additions.push_back({stu, type, grad});
      additions.push_back({stu, member_of, dept});
      additions.push_back({stu, takes, course});
    }

    util::Stopwatch inc_watch;
    const auto inc = reason::materialize_incremental(
        live, u.dict, *u.vocab, additions);
    const double inc_ms = inc_watch.elapsed_seconds() * 1e3;

    // Full re-run over the equivalent final base.
    rdf::TripleStore scratch;
    scratch.insert_all(base_triples);
    // Include every addition applied so far (live's base grew batch by
    // batch) by replaying live's asserted instance triples: simplest is to
    // re-insert additions from all batches — tracked via the live store's
    // size bookkeeping is complex, so re-materialize base + this batch's
    // additions only; the comparison stays apples-to-apples because the
    // full rerun must at minimum redo the whole base closure.
    scratch.insert_all(additions);
    util::Stopwatch full_watch;
    reason::materialize(scratch, u.dict, *u.vocab, {});
    const double full_ms = full_watch.elapsed_seconds() * 1e3;

    table.add_row({std::to_string(batch * 3), util::fmt_double(inc_ms, 2),
                   util::fmt_double(full_ms, 2),
                   util::fmt_double(inc_ms > 0 ? full_ms / inc_ms : 0, 1),
                   std::to_string(inc.inferred)});
  }
  table.print(std::cout);
  std::cout << "\nIncremental closure touches only the delta's consequences; "
               "full reruns pay\nthe whole-KB cost again regardless of batch "
               "size.\n";
  return 0;
}
