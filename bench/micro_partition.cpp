// Micro-benchmarks for the graph partitioners (multilevel + streaming) and
// the owner policies.

#include <benchmark/benchmark.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/partition/streaming.hpp"
#include "parowl/util/rng.hpp"

namespace {

using namespace parowl;

partition::Graph random_graph(std::uint32_t n, int degree,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<partition::WeightedEdge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int d = 0; d < degree; ++d) {
      edges.push_back({i, static_cast<std::uint32_t>(rng.below(n)), 1});
    }
  }
  return partition::build_graph(n, edges);
}

void BM_MultilevelPartition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const partition::Graph g = random_graph(n, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition_csr_graph(g, 8));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MultilevelPartition)->Arg(10000)->Arg(50000);

void BM_StreamingPartition(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto kind = static_cast<partition::PartitionerKind>(state.range(1));
  const partition::Graph g = random_graph(n, 3, 7);
  partition::PartitionerOptions opts;
  opts.kind = kind;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::partition_csr_graph(g, 8, opts));
  }
  state.SetLabel(std::string(partition::to_string(kind)));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamingPartition)
    ->Args({50000, static_cast<int>(partition::PartitionerKind::kHdrf)})
    ->Args({50000, static_cast<int>(partition::PartitionerKind::kFennel)})
    ->Args({50000, static_cast<int>(partition::PartitionerKind::kNe)});

void BM_DataPartitionPolicies(benchmark::State& state) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 4;
  gen::generate_lubm(opts, dict, store);

  partition::PartitionerOptions hdrf_opts;
  hdrf_opts.kind = partition::PartitionerKind::kHdrf;
  const int which = static_cast<int>(state.range(0));
  const partition::GraphOwnerPolicy graph_policy;
  const partition::HashOwnerPolicy hash_policy;
  const partition::DomainOwnerPolicy domain_policy(
      &partition::lubm_university_key);
  const partition::StreamingOwnerPolicy hdrf_policy(hdrf_opts);
  const partition::OwnerPolicy* policy =
      which == 0 ? static_cast<const partition::OwnerPolicy*>(&graph_policy)
      : which == 1
          ? static_cast<const partition::OwnerPolicy*>(&hash_policy)
      : which == 2
          ? static_cast<const partition::OwnerPolicy*>(&domain_policy)
          : static_cast<const partition::OwnerPolicy*>(&hdrf_policy);

  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::partition_data(store, dict, vocab, *policy, 8));
  }
  state.SetLabel(policy->name());
}
BENCHMARK(BM_DataPartitionPolicies)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
