// Ablations for the partitioning design choices called out in DESIGN.md:
//   1. FM boundary refinement on/off in the multilevel graph partitioner
//      (edge-cut, IR, and resulting speedup),
//   2. predicate-statistics edge weighting of the rule-dependency graph
//      (§III-B) vs unweighted.

#include "parowl/rules/dependency_graph.hpp"

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Ablation: partitioning design choices");

  // 1. FM refinement.
  {
    Universe u;
    make_lubm(u, 10 * s);
    const double serial = serial_seconds(u, reason::Strategy::kQueryDriven);
    util::Table table({"refinement", "procs", "IR", "bal", "speedup"});
    for (const bool refine : {true, false}) {
      partition::PartitionerOptions popts;
      popts.refine = refine;
      const partition::GraphOwnerPolicy policy(popts);
      for (const unsigned k : {4u, 8u}) {
        const partition::DataPartitioning dp = partition::partition_data(
            u.store, u.dict, *u.vocab, policy, k);
        const partition::PartitionMetrics m =
            partition::compute_partition_metrics(dp, u.dict);
        const SpeedupPoint p = run_data_point(
            u, policy, k, reason::Strategy::kQueryDriven, serial);
        table.add_row({refine ? "FM on" : "FM off", std::to_string(k),
                       util::fmt_double(m.input_replication, 3),
                       util::fmt_double(m.bal, 0),
                       util::fmt_double(p.speedup, 2)});
      }
    }
    table.print(std::cout);
  }

  // 2. Rule-dependency edge weighting (§III-B).  Both assignments are
  //    scored under the *weighted* graph — the expected tuple traffic — so
  //    the numbers are comparable; UOBM is used because its closure-heavy
  //    predicates make the weights strongly non-uniform.
  {
    Universe u;
    make_uobm(u, 4 * s);
    const auto compiled = reason::compile_ontology(u.store, *u.vocab);
    const auto weighted_dep =
        rules::build_dependency_graph(compiled.rules, &u.store);
    const auto unweighted_dep =
        rules::build_dependency_graph(compiled.rules, nullptr);

    // CSR of the weighted graph, used to score both assignments.
    const auto weighted_adj = weighted_dep.undirected_adjacency();
    auto weighted_cut = [&](const std::vector<std::uint32_t>& assignment) {
      std::uint64_t cut = 0;
      for (std::size_t v = 0; v < weighted_adj.size(); ++v) {
        for (const auto& [n, w] : weighted_adj[v]) {
          if (n > v && assignment[n] != assignment[v]) {
            cut += w;
          }
        }
      }
      return cut;
    };

    // Third configuration: weights from the *materialized* KB — the
    // "statistics from a previous run on a stationary data-set" policy the
    // paper's related work ([16]) describes.  Base-data statistics can
    // mispredict post-closure traffic badly (closure-heavy predicates are
    // rare in the base data); materialized statistics fix that.
    rdf::TripleStore closed;
    closed.insert_all(u.store.triples());
    reason::materialize(closed, u.dict, *u.vocab, {});
    const auto closed_dep =
        rules::build_dependency_graph(compiled.rules, &closed);

    struct Config {
      const char* label;
      const rules::DependencyGraph* dep;
      const rdf::TripleStore* stats;
      bool weighted;
    };
    const Config configs[] = {
        {"unweighted", &unweighted_dep, nullptr, false},
        {"base stats", &weighted_dep, nullptr, true},
        {"materialized stats", &closed_dep, &closed, true},
    };

    util::Table table({"rule graph", "procs", "expected traffic (cut)",
                       "tuples exchanged", "parallel(s)"});
    for (const Config& c : configs) {
      for (const unsigned k : {2u, 4u}) {
        const auto rp = partition::partition_rules(compiled.rules, *c.dep, k);

        parallel::ParallelOptions opts;
        opts.approach = parallel::Approach::kRulePartition;
        opts.partitions = k;
        opts.weighted_rule_graph = c.weighted;
        opts.rule_statistics = c.stats;
        opts.build_merged = false;
        const auto r =
            parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);
        std::size_t exchanged = 0;
        for (const auto& rb : r.cluster.breakdown) {
          exchanged += rb.tuples_exchanged;
        }
        table.add_row({c.label, std::to_string(k),
                       std::to_string(weighted_cut(rp.assignment)),
                       std::to_string(exchanged),
                       util::fmt_double(r.cluster.simulated_seconds, 3)});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected: refinement lowers IR and lifts speedup.  For "
               "the rule graph,\nbase-data statistics can *mispredict* "
               "post-closure traffic (closure-heavy\npredicates are rare "
               "in the base data); statistics from a materialized run\n"
               "(the stationary-data-set policy of the paper's [16]) "
               "co-locate the heavy\nproducer-consumer pairs and cut "
               "actual tuple traffic.\n";
  return 0;
}
