// Ablation / paper-extension bench: synchronous rounds vs the asynchronous
// execution the paper proposes in §VI-B ("by making a partition not wait
// till all other partitions finish, but rather start immediately using all
// the currently received tuples will reduce the synchronization time").
//
// BM_ClusterExec/mode/k materializes the LUBM closure under one executor
// and partition count; every iteration is a full run, and the counters
// report the measured wall-clock p50/p99 across iterations plus the
// executor's own accounting (modeled makespan, barrier-wait or idle time,
// steals).  tools/record_bench.sh captures the sweep as
// bench/BENCH_async.json.
//
// Single-core caveat: all workers share one core here, so wall-clock rows
// compare *executor overhead* (barrier bookkeeping vs token ring + steal
// machinery), while the modeled makespan/idle columns carry the parallel
// story — async removes barrier waits, most visibly where partitions are
// imbalanced.  See EXPERIMENTS.md "Asynchronous execution".

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.hpp"
#include "parowl/util/timer.hpp"

namespace {

using namespace parowl;
using namespace parowl::bench;

enum Mode : std::int64_t {
  kSync = 0,
  kAsync = 1,
  kAsyncNoSteal = 2,
  kAsyncThreaded = 3,
};

Universe& lubm_universe() {
  static Universe* u = [] {
    auto* fresh = new Universe();
    make_lubm(*fresh, 10 * scale_factor());
    return fresh;
  }();
  return *u;
}

// Dense cross-university links: many rounds, imbalanced exchanges — the
// workload where §VI-B predicts the barrier hurts most.
Universe& uobm_universe() {
  static Universe* u = [] {
    auto* fresh = new Universe();
    make_uobm(*fresh, 4 * scale_factor());
    return fresh;
  }();
  return *u;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

void run_cluster_exec(benchmark::State& state, Universe& u) {
  const auto mode = static_cast<Mode>(state.range(0));
  const auto k = static_cast<std::uint32_t>(state.range(1));
  const partition::GraphOwnerPolicy policy;

  parallel::ParallelOptions opts;
  opts.partitions = k;
  opts.policy = &policy;
  opts.build_merged = false;
  switch (mode) {
    case kSync:
      opts.mode = parallel::ExecutionMode::kSequentialSimulated;
      break;
    case kAsync:
      opts.mode = parallel::ExecutionMode::kAsync;
      break;
    case kAsyncNoSteal:
      opts.mode = parallel::ExecutionMode::kAsync;
      opts.async_exec.steal = false;
      break;
    case kAsyncThreaded:
      opts.mode = parallel::ExecutionMode::kAsyncThreaded;
      break;
  }

  std::vector<double> wall;
  parallel::ParallelResult last;
  for (auto _ : state) {
    util::Stopwatch watch;
    last = parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);
    wall.push_back(watch.elapsed_seconds());
    benchmark::DoNotOptimize(last.inferred);
  }

  state.counters["wall_p50_ms"] = percentile(wall, 0.50) * 1e3;
  state.counters["wall_p99_ms"] = percentile(wall, 0.99) * 1e3;
  state.counters["model_s"] = last.cluster.simulated_seconds;
  // Worst-case worker wait: barrier-gap envelope (sync) / the most idle
  // worker's total (async) — the §VI-B quantity in both modes.
  state.counters["wait_s"] = last.cluster.sync_seconds;
  state.counters["idle_total_s"] = last.cluster.async_stats.idle_seconds;
  state.counters["steals"] =
      static_cast<double>(last.cluster.async_stats.steals);
  state.counters["inferred"] = static_cast<double>(last.inferred);
}

void BM_ClusterExec(benchmark::State& state) {
  run_cluster_exec(state, lubm_universe());
}

void BM_ClusterExecUobm(benchmark::State& state) {
  run_cluster_exec(state, uobm_universe());
}

}  // namespace

BENCHMARK(BM_ClusterExec)
    ->ArgsProduct({{kSync, kAsync, kAsyncNoSteal, kAsyncThreaded}, {2, 4, 8}})
    ->Iterations(7)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ClusterExecUobm)
    ->ArgsProduct({{kSync, kAsync}, {4, 8}})
    ->Iterations(7)
    ->Unit(benchmark::kMillisecond);
