// Ablation / paper-extension bench: synchronous rounds vs the asynchronous
// execution the paper proposes in §VI-B ("by making a partition not wait
// till all other partitions finish, but rather start immediately using all
// the currently received tuples will reduce the synchronization time").
//
// Both executors run the same partitioning; the table compares the modeled
// parallel time and the wait/synchronization component.  Expected shape:
// async never waits at a barrier, so its wait time and makespan drop —
// most visibly where partitions are imbalanced or rounds are many (UOBM).

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

void series(const Universe& u, reason::Strategy strategy,
            util::Table& table) {
  const partition::GraphOwnerPolicy policy;
  for (const unsigned k : {4u, 8u, 16u}) {
    parallel::ParallelOptions sync_opts;
    sync_opts.partitions = k;
    sync_opts.policy = &policy;
    sync_opts.local_strategy = strategy;
    sync_opts.build_merged = false;
    const auto sync_r =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, sync_opts);

    parallel::ParallelOptions async_opts = sync_opts;
    async_opts.mode = parallel::ExecutionMode::kAsyncSimulated;
    const auto async_r = parallel::parallel_materialize(u.store, u.dict,
                                                        *u.vocab, async_opts);

    table.add_row(
        {u.name, std::to_string(k),
         util::fmt_double(sync_r.cluster.simulated_seconds, 3),
         util::fmt_double(sync_r.cluster.sync_seconds, 3),
         util::fmt_double(async_r.cluster.simulated_seconds, 3),
         util::fmt_double(async_r.async->wait_seconds, 3),
         util::fmt_double(
             async_r.cluster.simulated_seconds > 0
                 ? sync_r.cluster.simulated_seconds /
                       async_r.cluster.simulated_seconds
                 : 1.0,
             2)});
  }
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header("Ablation: synchronous rounds vs asynchronous execution");

  util::Table table({"dataset", "procs", "sync time(s)", "sync wait(s)",
                     "async time(s)", "async wait(s)", "async gain"});
  {
    Universe u;
    make_lubm(u, 10 * s);
    series(u, reason::Strategy::kQueryDriven, table);
  }
  {
    Universe u;
    make_uobm(u, 4 * s);
    series(u, reason::Strategy::kForward, table);
  }
  table.print(std::cout);
  std::cout << "\nExpected: asynchronous execution removes barrier waits "
               "(the paper's SecVI-B\nsuggestion).  The gain is largest "
               "where synchronization dominates (UOBM's\nimbalanced, "
               "many-round exchanges); on LUBM's fast balanced rounds, "
               "batching at\nthe barrier can narrowly beat fragmented "
               "async activations.\n";
  return 0;
}
