// Micro-benchmarks for the reasoning engines: forward closure throughput,
// the dispatch-index / devirtualization / thread-count ablation sweep,
// rule compilation cost, and backward query latency.
//
// `tools/record_bench.sh` regenerates bench/BENCH_reason.json (the checked-
// in google-benchmark baseline) from the BM_Closure* sweep.

#include <benchmark/benchmark.h>

#include <chrono>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/reason/backward.hpp"
#include "parowl/reason/materialize.hpp"

namespace {

using namespace parowl;

/// One pre-compiled closure workload: base triples + ground facts + the
/// compiled instance rules, ready for a bare ForwardEngine run.
struct ClosureFixture {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore base;
  rules::RuleSet rules;

  ClosureFixture(const ClosureFixture&) = delete;

  explicit ClosureFixture(bool lubm) {
    if (lubm) {
      gen::LubmOptions o;
      o.universities = 1;
      gen::generate_lubm(o, dict, base);
    } else {
      gen::MdcOptions o;
      o.fields = 2;
      gen::generate_mdc(o, dict, base);
    }
    rules::CompiledRules compiled = reason::compile_ontology(base, vocab);
    base.insert_all(compiled.ground_facts);
    rules = std::move(compiled.rules);
  }
};

/// The tentpole ablation: forward closure with the dispatch index and
/// devirtualized joins toggled independently, and the matching pass
/// sharded over 1/2/4/8 threads.  The closure is bit-identical across the
/// whole grid (tests/engine_equivalence_test.cpp); only time may differ.
void closure_sweep(benchmark::State& state, const ClosureFixture& f) {
  reason::ForwardOptions fopts;
  fopts.dict = &f.dict;
  fopts.dispatch_index = state.range(0) != 0;
  fopts.devirtualize = state.range(1) != 0;
  fopts.threads = static_cast<unsigned>(state.range(2));

  std::size_t derived = 0;
  for (auto _ : state) {
    rdf::TripleStore store;
    store.insert_all(f.base.triples());
    // Manual timing (UseManualTime) excludes the store rebuild without the
    // ~0.2 ms/iteration PauseTiming/ResumeTiming overhead that would
    // otherwise swamp the sweep ratios.  Engine construction is timed: the
    // dispatch index is part of the optimized path's cost.
    const auto t0 = std::chrono::steady_clock::now();
    const auto stats = reason::ForwardEngine(store, f.rules, fopts).run(0);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count());
    derived = stats.derived;
  }
  state.counters["derived"] = static_cast<double>(derived);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.base.size() + derived));
}

void BM_ClosureLubm(benchmark::State& state) {
  static const ClosureFixture f(true);
  closure_sweep(state, f);
}

void BM_ClosureMdc(benchmark::State& state) {
  static const ClosureFixture f(false);
  closure_sweep(state, f);
}

void closure_sweep_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"dispatch", "devirt", "threads"});
  b->Args({0, 0, 1});  // the pre-optimization engine
  b->Args({1, 0, 1});  // dispatch index only
  b->Args({0, 1, 1});  // devirtualized joins only
  for (const long threads : {1, 2, 4, 8}) {
    b->Args({1, 1, threads});  // optimized single-thread, then the scaling
  }
}

BENCHMARK(BM_ClosureLubm)->Apply(closure_sweep_args)->UseManualTime();
BENCHMARK(BM_ClosureMdc)->Apply(closure_sweep_args)->UseManualTime();

void BM_CompileOntology(benchmark::State& state) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::generate_lubm_ontology(dict, store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reason::compile_ontology(store, vocab));
  }
}
BENCHMARK(BM_CompileOntology);

void BM_ForwardClosureLubm(benchmark::State& state) {
  const auto universities = static_cast<unsigned>(state.range(0));
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore base;
  gen::LubmOptions opts;
  opts.universities = universities;
  gen::generate_lubm(opts, dict, base);

  std::size_t inferred = 0;
  for (auto _ : state) {
    rdf::TripleStore store;
    store.insert_all(base.triples());
    const auto r = reason::materialize(store, dict, vocab, {});
    inferred = r.inferred;
  }
  state.counters["inferred"] = static_cast<double>(inferred);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_ForwardClosureLubm)->Arg(1)->Arg(2)->Arg(4);

void BM_BackwardQueryPerResource(benchmark::State& state) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 1;
  gen::generate_lubm(opts, dict, store);
  const auto compiled = reason::compile_ontology(store, vocab);

  // Query a professor (deep proof space: types, inverses, subproperties).
  const auto prof = dict.find_iri(
      "http://www.Department0.Univ0.edu/FullProfessor0");
  for (auto _ : state) {
    reason::BackwardEngine engine(store, compiled.rules,
                                  reason::BackwardOptions{.dict = &dict});
    std::vector<rdf::Triple> out;
    engine.query({prof, rdf::kAnyTerm, rdf::kAnyTerm}, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BackwardQueryPerResource);

}  // namespace
