// Micro-benchmarks for the reasoning engines: forward closure throughput,
// rule compilation cost, and backward query latency.

#include <benchmark/benchmark.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/reason/backward.hpp"
#include "parowl/reason/materialize.hpp"

namespace {

using namespace parowl;

void BM_CompileOntology(benchmark::State& state) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::generate_lubm_ontology(dict, store);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reason::compile_ontology(store, vocab));
  }
}
BENCHMARK(BM_CompileOntology);

void BM_ForwardClosureLubm(benchmark::State& state) {
  const auto universities = static_cast<unsigned>(state.range(0));
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore base;
  gen::LubmOptions opts;
  opts.universities = universities;
  gen::generate_lubm(opts, dict, base);

  std::size_t inferred = 0;
  for (auto _ : state) {
    rdf::TripleStore store;
    store.insert_all(base.triples());
    const auto r = reason::materialize(store, dict, vocab, {});
    inferred = r.inferred;
  }
  state.counters["inferred"] = static_cast<double>(inferred);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_ForwardClosureLubm)->Arg(1)->Arg(2)->Arg(4);

void BM_BackwardQueryPerResource(benchmark::State& state) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 1;
  gen::generate_lubm(opts, dict, store);
  const auto compiled = reason::compile_ontology(store, vocab);

  // Query a professor (deep proof space: types, inverses, subproperties).
  const auto prof = dict.find_iri(
      "http://www.Department0.Univ0.edu/FullProfessor0");
  for (auto _ : state) {
    reason::BackwardEngine engine(store, compiled.rules,
                                  reason::BackwardOptions{.dict = &dict});
    std::vector<rdf::Triple> out;
    engine.query({prof, rdf::kAnyTerm, rdf::kAnyTerm}, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BackwardQueryPerResource);

}  // namespace
