#pragma once

// Shared infrastructure for the paper-reproduction benchmark harnesses.
//
// Canonical workload scales: the paper's LUBM-10 is ~1M triples on a
// 16-node Opteron cluster; this repo's simulator runs everything on one
// machine, so the canonical scales below are chosen to keep each harness in
// the seconds-to-a-minute range while preserving the properties that drive
// each figure's *shape* (locality, density, super-linear reasoner cost).
// Scale multipliers: set PAROWL_BENCH_SCALE=N (default 1) to grow inputs.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/gen/uobm.hpp"
#include "parowl/rdf/graph_stats.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/partition/owner_policy.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/util/table.hpp"

namespace parowl::bench {

inline unsigned scale_factor() {
  if (const char* env = std::getenv("PAROWL_BENCH_SCALE")) {
    const int v = std::atoi(env);
    if (v >= 1) {
      return static_cast<unsigned>(v);
    }
  }
  return 1;
}

/// One benchmark universe: dictionary + vocabulary + base store.
struct Universe {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore store;
  std::string name;

  Universe() : vocab(std::make_unique<ontology::Vocabulary>(dict)) {}
  Universe(const Universe&) = delete;
};

/// "LUBM-N": N universities of the mini profile (~2.3k triples each).
inline void make_lubm(Universe& u, unsigned universities) {
  gen::LubmOptions o;
  o.universities = universities;
  gen::generate_lubm(o, u.dict, u.store);
  u.name = "LUBM-" + std::to_string(universities);
}

/// "UOBM-N": the LUBM base plus dense cross-university links.
inline void make_uobm(Universe& u, unsigned universities) {
  gen::UobmOptions o;
  o.base.universities = universities;
  o.hometowns = 10 * universities;  // bounded but non-trivial components
  gen::generate_uobm(o, u.dict, u.store);
  u.name = "UOBM-" + std::to_string(universities);
}

/// "MDC-N": N oil fields with deep transitive partOf chains.
inline void make_mdc(Universe& u, unsigned fields) {
  gen::MdcOptions o;
  o.fields = fields;
  gen::generate_mdc(o, u.dict, u.store);
  u.name = "MDC-" + std::to_string(fields);
}

/// Result of one parallel run plus its serial baseline context.
struct SpeedupPoint {
  unsigned k = 1;
  double simulated_seconds = 0.0;
  double speedup = 1.0;
  std::size_t rounds = 0;
  double output_replication = 0.0;
  double input_replication = 0.0;
  double slowest_partition_reason = 0.0;  // Σ_r reason_max
};

/// Run the data-partitioning pipeline at partition count `k` and derive the
/// speedup against `serial_seconds` (the k=1 simulated time).  `reps` runs
/// the configuration several times and keeps the fastest (wall-clock noise
/// on a shared single-core host occasionally inflates one run severely).
inline SpeedupPoint run_data_point(const Universe& u,
                                   const partition::OwnerPolicy& policy,
                                   unsigned k, reason::Strategy strategy,
                                   double serial_seconds,
                                   parallel::Transport* transport = nullptr,
                                   int reps = 2) {
  SpeedupPoint best;
  for (int rep = 0; rep < reps; ++rep) {
    parallel::ParallelOptions opts;
    opts.partitions = k;
    opts.policy = &policy;
    opts.local_strategy = strategy;
    opts.build_merged = false;
    opts.transport = transport;
    const parallel::ParallelResult r =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);

    SpeedupPoint p;
    p.k = k;
    p.simulated_seconds = r.cluster.simulated_seconds;
    p.speedup = serial_seconds > 0 && p.simulated_seconds > 0
                    ? serial_seconds / p.simulated_seconds
                    : 1.0;
    p.rounds = r.cluster.rounds;
    p.output_replication = r.output_replication;
    p.input_replication = r.metrics ? r.metrics->input_replication : 0.0;
    p.slowest_partition_reason = r.cluster.reason_seconds;
    if (rep == 0 || p.simulated_seconds < best.simulated_seconds) {
      best = p;
    }
  }
  return best;
}

/// Serial baseline = the same pipeline with one partition (no comm).
inline double serial_seconds(const Universe& u, reason::Strategy strategy,
                             int reps = 2) {
  const partition::GraphOwnerPolicy trivial;
  const SpeedupPoint p =
      run_data_point(u, trivial, 1, strategy, 0.0, nullptr, reps);
  return p.simulated_seconds;
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

}  // namespace parowl::bench
