// Weak-scaling analysis (not in the paper, standard for parallel systems):
// grow the data WITH the processor count — LUBM-k on k workers, one
// university per worker under the domain policy.  Ideal weak scaling keeps
// the parallel time flat; the query-driven reasoner's super-linear serial
// cost means the *serial* time explodes while the parallel time should
// stay near T(LUBM-1).
//
// Deviations from flat expose the overheads that grow with the machine:
// replication (cross-university edges), communication, and rounds.

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Extension: weak scaling (LUBM-k on k workers)");

  // Baseline: one university on one worker.
  double base_time = 0.0;

  util::Table table({"universities=workers", "serial(s)", "parallel(s)",
                     "efficiency", "rounds", "IR"});
  for (const unsigned k : {1u, 2u, 4u, 8u, 16u}) {
    Universe u;
    make_lubm(u, k * s);
    const partition::DomainOwnerPolicy policy(
        &partition::lubm_university_key);
    const double serial = serial_seconds(u, reason::Strategy::kQueryDriven);
    const SpeedupPoint p = run_data_point(
        u, policy, k, reason::Strategy::kQueryDriven, serial);
    if (k == 1) {
      base_time = p.simulated_seconds;
    }
    // Weak-scaling efficiency: T(1 worker, 1 unit) / T(k workers, k units).
    const double efficiency =
        p.simulated_seconds > 0 ? base_time / p.simulated_seconds : 0.0;
    table.add_row({std::to_string(k), util::fmt_double(serial, 3),
                   util::fmt_double(p.simulated_seconds, 3),
                   util::fmt_double(efficiency, 2), std::to_string(p.rounds),
                   util::fmt_double(p.input_replication, 3)});
  }
  table.print(std::cout);
  std::cout << "\nIdeal weak scaling holds the parallel time at the k=1 "
               "level (efficiency 1.0)\nwhile the serial time grows "
               "super-linearly; efficiency decay tracks the growth\nof "
               "replication and per-round communication.\n";
  return 0;
}
