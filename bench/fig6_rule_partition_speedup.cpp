// Fig. 6 — "Speedup for the different benchmarks for rule-base
// partitioning": the rule-dependency graph is partitioned (Algorithm 2) and
// each worker applies its rule subset to the complete data-set.
//
// The paper had to switch this experiment to shared-memory IPC "because the
// volumes of data being communicated across processors was much higher" —
// so this harness uses the MemoryTransport, and, like the paper, only runs
// small processor counts ("since all of these rule-sets are fairly small").
// Expected shape: sub-linear but monotonic speedups.

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

void series(const Universe& u, reason::Strategy strategy,
            util::Table& table) {
  // Serial baseline: the whole rule-base on one node.
  parallel::ParallelOptions base;
  base.approach = parallel::Approach::kRulePartition;
  base.partitions = 1;
  base.build_merged = false;
  base.local_strategy = strategy;
  // Shared-memory IPC (the paper switched this experiment off the shared
  // filesystem): near-zero latency, memory-bus bandwidth.
  base.network.latency_seconds = 1e-6;
  base.network.bandwidth_bytes_per_sec = 8e9;
  const auto serial_run =
      parallel::parallel_materialize(u.store, u.dict, *u.vocab, base);
  const double serial = serial_run.cluster.simulated_seconds;

  for (const unsigned k : {2u, 4u, 8u}) {
    parallel::ParallelOptions opts = base;
    opts.partitions = k;
    const auto r =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);
    const double speedup = r.cluster.simulated_seconds > 0
                               ? serial / r.cluster.simulated_seconds
                               : 1.0;
    std::size_t exchanged = 0;
    for (const auto& rb : r.cluster.breakdown) {
      exchanged += rb.tuples_exchanged;
    }
    table.add_row({u.name, std::to_string(k),
                   util::fmt_double(serial, 3),
                   util::fmt_double(r.cluster.simulated_seconds, 3),
                   util::fmt_double(speedup, 2), std::to_string(r.cluster.rounds),
                   std::to_string(exchanged)});
  }
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header("Fig. 6: rule-base partitioning speedup (shared memory IPC)");

  util::Table table({"dataset", "procs", "serial(s)", "parallel(s)",
                     "speedup", "rounds", "tuples exchanged"});
  // LUBM and MDC exhibit the worst-case (Jena-like query-driven) reasoner
  // behaviour, as in Fig. 1; UOBM's reasoning is linear, so its workers run
  // the forward engine (§VI-A).
  {
    Universe u;
    make_lubm(u, 10 * s);
    series(u, reason::Strategy::kQueryDriven, table);
  }
  {
    Universe u;
    make_uobm(u, 4 * s);
    series(u, reason::Strategy::kForward, table);
  }
  {
    Universe u;
    make_mdc(u, 6 * s);
    series(u, reason::Strategy::kQueryDriven, table);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): sub-linear but monotonic speedups "
               "on all three\nbenchmarks; communication volume is much "
               "higher than under data partitioning.\n";
  return 0;
}
