// Equality-rewriting bench: naive sameAs materialization (rdfp6/7/11a/11b
// expand every clique quadratically and duplicate payload member-by-member)
// vs representative rewriting (the EqualityManager intercepts sameAs and
// keeps the closure in representative space), swept over clique density and
// matching threads on the clique-heavy hard-mode generator.
//
//   BM_CloseNaive/cliq:C/threads:T    — full naive closure
//   BM_CloseRewrite/cliq:C/threads:T  — rewrite closure (same entailments,
//     expanded on demand); counters report merges and the stored-triple
//     ratio vs naive, which is where the speedup comes from
//   BM_QueryNaive|BM_QueryRewrite/cliq:C — BGP evaluation of a fixed probe
//     mix; the rewrite arm pays class-map expansion per answer row, the
//     price of the smaller store
//
// tools/record_bench.sh regenerates bench/BENCH_sameas.json from this.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parowl/gen/sameas.hpp"
#include "parowl/query/equality_expand.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/equality.hpp"

namespace {

using namespace parowl;
using namespace parowl::bench;

/// One clique-density point, built once: the base store plus prebuilt naive
/// and rewrite closures for the query arms and the size-ratio counters.
struct EqUniverse {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore base;
  rdf::TripleStore naive_closure;
  rdf::TripleStore rewrite_closure;
  reason::EqualityManager eq;
  std::size_t merges = 0;
  std::vector<query::SelectQuery> probes;

  explicit EqUniverse(unsigned max_clique)
      : vocab(std::make_unique<ontology::Vocabulary>(dict)) {
    gen::SameAsOptions o;
    o.individuals = 250 * scale_factor();
    o.max_clique_size = max_clique;
    gen::generate_sameas(o, dict, base);

    naive_closure = base;
    reason::materialize(naive_closure, dict, *vocab, {});

    rewrite_closure = base;
    reason::MaterializeOptions ropts;
    ropts.equality_mode = reason::EqualityMode::kRewrite;
    ropts.equality = &eq;
    merges = reason::materialize(rewrite_closure, dict, *vocab, ropts)
                 .eq_merges;

    query::SparqlParser parser(dict);
    parser.add_prefix("id", gen::kSameAsNs);
    for (const char* text :
         {"SELECT ?x ?y WHERE { ?x id:relatesTo0 ?y }",
          "SELECT DISTINCT ?x WHERE { ?x id:relatesTo1 ?y }",
          "SELECT ?y WHERE { id:Entity0_alias1 id:relatesTo0 ?y }",
          "SELECT ?x ?z WHERE { ?x id:relatesTo0 ?y . "
          "?y id:relatesTo1 ?z }"}) {
      const auto q = parser.parse(text);
      if (q) {
        probes.push_back(*q);
      }
    }
  }
};

EqUniverse& universe(unsigned max_clique) {
  static std::map<unsigned, std::unique_ptr<EqUniverse>> cache;
  auto& slot = cache[max_clique];
  if (!slot) {
    slot = std::make_unique<EqUniverse>(max_clique);
  }
  return *slot;
}

void BM_CloseNaive(benchmark::State& state) {
  EqUniverse& fx = universe(static_cast<unsigned>(state.range(0)));
  const auto threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    rdf::TripleStore store = fx.base;
    state.ResumeTiming();
    reason::MaterializeOptions opts;
    opts.threads = threads;
    reason::materialize(store, fx.dict, *fx.vocab, opts);
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["closure"] = static_cast<double>(fx.naive_closure.size());
}

void BM_CloseRewrite(benchmark::State& state) {
  EqUniverse& fx = universe(static_cast<unsigned>(state.range(0)));
  const auto threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    rdf::TripleStore store = fx.base;
    reason::EqualityManager eq;
    state.ResumeTiming();
    reason::MaterializeOptions opts;
    opts.threads = threads;
    opts.equality_mode = reason::EqualityMode::kRewrite;
    opts.equality = &eq;
    reason::materialize(store, fx.dict, *fx.vocab, opts);
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["closure"] = static_cast<double>(fx.rewrite_closure.size());
  state.counters["merges"] = static_cast<double>(fx.merges);
  state.counters["naive_ratio"] =
      static_cast<double>(fx.naive_closure.size()) /
      static_cast<double>(fx.rewrite_closure.size());
}

void BM_QueryNaive(benchmark::State& state) {
  EqUniverse& fx = universe(static_cast<unsigned>(state.range(0)));
  std::size_t rows = 0;
  for (auto _ : state) {
    rows = 0;
    for (const query::SelectQuery& q : fx.probes) {
      rows += query::evaluate(fx.naive_closure, q).size();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_QueryRewrite(benchmark::State& state) {
  EqUniverse& fx = universe(static_cast<unsigned>(state.range(0)));
  const rdf::TermId same_as = fx.vocab->owl_same_as;
  std::size_t rows = 0;
  for (auto _ : state) {
    rows = 0;
    for (const query::SelectQuery& q : fx.probes) {
      rows += query::evaluate_with_equality(fx.rewrite_closure, q, fx.eq,
                                            same_as)
                  .results.size();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void close_args(benchmark::internal::Benchmark* b) {
  b->ArgNames({"cliq", "threads"});
  for (const long cliq : {3L, 6L, 10L}) {
    for (const long threads : {1L, 4L}) {
      b->Args({cliq, threads});
    }
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_CloseNaive)->Apply(close_args);
BENCHMARK(BM_CloseRewrite)->Apply(close_args);
BENCHMARK(BM_QueryNaive)->ArgName("cliq")->Arg(3)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryRewrite)->ArgName("cliq")->Arg(3)->Arg(6)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
