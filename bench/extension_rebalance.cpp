// Paper-extension bench: predictive load re-balancing.  The paper's
// conclusions sketch "dynamic load balancing situations, where the data-set
// is initially partitioned and during later rounds ... partitioned for load
// balancing"; its related work ([20]) is predictive dynamic balancing.
//
// Setup: a *skewed* LUBM (the last university 4x the first), where the
// domain policy's round-robin key assignment is badly imbalanced.  After a
// first run, each partition's measured reasoning cost feeds
// rebalance_data_partition, which re-weights nodes by observed
// cost-per-node and re-partitions.  The second run's bottleneck partition —
// and hence the speedup — improves.

#include "parowl/partition/rebalance.hpp"

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Extension: predictive load rebalancing on skewed LUBM");

  Universe u;
  {
    gen::LubmOptions opts;
    opts.universities = 8 * s;
    opts.size_skew = 3.0;
    gen::generate_lubm(opts, u.dict, u.store);
    u.name = "LUBM-skewed-" + std::to_string(8 * s);
  }
  const double serial = serial_seconds(u, reason::Strategy::kQueryDriven);

  util::Table table({"configuration", "procs", "slowest worker(s)",
                     "parallel(s)", "speedup", "bal"});

  for (const unsigned k : {4u, 8u}) {
    // Round 1: static domain partitioning.
    const partition::DomainOwnerPolicy domain(&partition::lubm_university_key);
    parallel::ParallelOptions opts;
    opts.partitions = k;
    opts.policy = &domain;
    opts.local_strategy = reason::Strategy::kQueryDriven;
    opts.build_merged = false;
    const auto first =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);
    const double first_slowest = *std::max_element(
        first.cluster.reason_seconds_per_worker.begin(),
        first.cluster.reason_seconds_per_worker.end());
    table.add_row(
        {"static domain", std::to_string(k),
         util::fmt_double(first_slowest, 3),
         util::fmt_double(first.cluster.simulated_seconds, 3),
         util::fmt_double(serial / first.cluster.simulated_seconds, 2),
         util::fmt_double(first.metrics ? first.metrics->bal : 0, 0)});

    // Round 2: rebalanced with the measured costs.
    const partition::DataPartitioning dp = partition::partition_data(
        u.store, u.dict, *u.vocab, domain, k);
    const partition::OwnerTable rebalanced =
        partition::rebalance_data_partition(
            u.store, u.dict, *u.vocab, dp.owners,
            first.cluster.reason_seconds_per_worker, k);
    const partition::FixedOwnerPolicy fixed(rebalanced, "Rebalanced");
    parallel::ParallelOptions opts2 = opts;
    opts2.policy = &fixed;
    const auto second =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts2);
    const double second_slowest = *std::max_element(
        second.cluster.reason_seconds_per_worker.begin(),
        second.cluster.reason_seconds_per_worker.end());
    table.add_row(
        {"rebalanced", std::to_string(k),
         util::fmt_double(second_slowest, 3),
         util::fmt_double(second.cluster.simulated_seconds, 3),
         util::fmt_double(serial / second.cluster.simulated_seconds, 2),
         util::fmt_double(second.metrics ? second.metrics->bal : 0, 0)});
  }

  table.print(std::cout);
  std::cout << "\nExpected: measured-cost rebalancing shrinks the slowest "
               "worker's reasoning\ntime on skewed data, lifting the "
               "speedup toward the balanced case.\n";
  return 0;
}
