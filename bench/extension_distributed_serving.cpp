// Distributed serving tail-latency sweep: p50/p99 vs partition count and
// replica count under the open-loop workload driver.
//
// BM_DistServe/k/R builds a DistService over the materialized LUBM-1
// closure (hash owner policy, MemoryTransport, result cache off so every
// request exercises the scatter/gather path) and offers a fixed-rate open
// loop of the 14-query LUBM mix.  BM_SingleStoreServe is the serve-layer
// baseline under the identical workload.  Counters report the
// client-observed p50/p99 in microseconds plus per-run routing totals.
//
// Single-core caveat (as for the ingest sweep): router, replicas, and the
// executor all share one core here, so added partitions/replicas cost
// fan-out work without buying parallel scan time; compare rows for the
// *shape* (tail vs fan-out width, failover overhead), not absolute
// speedups.  See EXPERIMENTS.md "Distributed serving".

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "parowl/dist/service.hpp"
#include "parowl/gen/lubm.hpp"
#include "parowl/ontology/vocabulary.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/service.hpp"
#include "parowl/serve/workload.hpp"

namespace {

using namespace parowl;

/// Materialized LUBM-1 closure, built once per process.
struct Universe {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore store;
  std::vector<std::string> queries;

  Universe() : vocab(std::make_unique<ontology::Vocabulary>(dict)) {
    gen::LubmOptions o;
    o.universities = 1;
    gen::generate_lubm(o, dict, store);
    reason::materialize(store, dict, *vocab, {});
    for (const gen::LubmQuery& q : gen::lubm_queries()) {
      queries.push_back(q.sparql);
    }
  }
};

Universe& universe() {
  static Universe u;
  return u;
}

serve::WorkloadOptions open_loop(std::size_t requests) {
  serve::WorkloadOptions wo;
  wo.mode = serve::WorkloadMode::kOpenLoop;
  wo.total_requests = requests;
  wo.arrival_rate_qps = 2000.0;
  wo.seed = 42;
  return wo;
}

void report(benchmark::State& state, const serve::WorkloadReport& r) {
  state.counters["p50_us"] = r.latency.percentile_seconds(0.50) * 1e6;
  state.counters["p99_us"] = r.latency.percentile_seconds(0.99) * 1e6;
  state.counters["qps"] = r.throughput_qps();
  state.counters["completed"] = static_cast<double>(r.completed);
  state.counters["shed"] = static_cast<double>(r.shed);
}

void BM_DistServe(benchmark::State& state) {
  Universe& u = universe();
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto replicas = static_cast<std::uint32_t>(state.range(1));

  const partition::HashOwnerPolicy policy;
  partition::OwnerTable owners =
      partition::partition_data(u.store, u.dict, *u.vocab, policy, k).owners;

  parallel::MemoryTransport transport(
      dist::NodeLayout{k, replicas}.num_nodes());
  dist::DistOptions options;
  options.threads = 2;
  options.queue_capacity = 512;
  options.cache_enabled = false;  // measure the scatter/gather path
  options.replicas = replicas;
  dist::DistService service(u.dict, u.store, std::move(owners), k,
                            transport, options);

  serve::WorkloadReport r;
  for (auto _ : state) {
    r = dist::run_workload(service, u.queries, open_loop(200));
  }
  report(state, r);
  const dist::DistStats stats = service.stats();
  state.counters["scans_per_req"] =
      stats.completed > 0 ? static_cast<double>(stats.scans_sent) /
                                static_cast<double>(stats.completed)
                          : 0.0;
  state.counters["shard_bytes"] =
      static_cast<double>(stats.shard_bytes_shipped);
}

void BM_SingleStoreServe(benchmark::State& state) {
  Universe& u = universe();
  rdf::TripleStore copy = u.store;
  serve::ServiceOptions options;
  options.threads = 2;
  options.queue_capacity = 512;
  options.cache_enabled = false;
  serve::QueryService service(u.dict, *u.vocab, std::move(copy), options);

  serve::WorkloadReport r;
  for (auto _ : state) {
    r = serve::run_workload(service, u.queries, open_loop(200));
  }
  report(state, r);
}

}  // namespace

BENCHMARK(BM_SingleStoreServe)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistServe)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 2}})
    ->Unit(benchmark::kMillisecond);
