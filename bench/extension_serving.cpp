// Serving-layer bench: the paper materializes the closure ahead of time
// precisely so that queries become cheap lookups; this harness measures the
// layer that actually answers them.  A materialized LUBM store is wrapped in
// serve::QueryService and driven with the 14-query LUBM mix:
//
//   (1) closed-loop throughput/latency sweep over cache {on, off} x
//       executor threads {1, 2, 4} — the cache's value and the thread
//       scaling of lock-free snapshot reads;
//   (2) an open-loop overload point far beyond capacity — admission
//       control sheds instead of queueing unboundedly, keeping the served
//       requests' tail latency flat;
//   (3) the same closed-loop mix with a concurrent updater applying
//       incremental batches — serving stays live across RCU snapshot
//       swaps and footprint invalidations.

#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/serve/service.hpp"
#include "parowl/serve/workload.hpp"
#include "parowl/util/timer.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

std::vector<std::string> query_mix() {
  std::vector<std::string> queries;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    queries.push_back(q.sparql);
  }
  return queries;
}

std::string pct(double x) { return util::fmt_double(100.0 * x, 1) + "%"; }

struct RunResult {
  serve::WorkloadReport report;
  serve::ServiceStats stats;
};

RunResult run_once(Universe& u, const rdf::TripleStore& materialized,
                   bool cache_on, std::size_t threads,
                   const serve::WorkloadOptions& wopts,
                   std::size_t update_batches = 0) {
  serve::ServiceOptions opts;
  opts.threads = threads;
  opts.queue_capacity = 128;
  opts.cache_enabled = cache_on;
  opts.prefixes = {{"ub", gen::kUnivBenchNs}};
  // The bench universe's dictionary is shared across runs; QueryService
  // guards it internally, and each run gets its own copy of the store.
  serve::QueryService service(u.dict, *u.vocab, materialized, opts);

  std::thread updater;
  if (update_batches > 0) {
    updater = std::thread([&] {
      static std::size_t next_id = 0;
      for (std::size_t b = 0; b < update_batches; ++b) {
        std::vector<rdf::Triple> batch;
        service.with_dict_exclusive([&](rdf::Dictionary& d) {
          const auto type = d.intern_iri(
              "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
          const auto grad = d.intern_iri(std::string(gen::kUnivBenchNs) +
                                         "GraduateStudent");
          for (int i = 0; i < 8; ++i) {
            const auto stu = d.intern_iri(
                "http://www.Department0.Univ0.edu/ServeBenchStudent" +
                std::to_string(next_id++));
            batch.push_back({stu, type, grad});
          }
          return 0;
        });
        service.apply_update(batch);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  RunResult r;
  r.report = serve::run_workload(service, query_mix(), wopts);
  if (updater.joinable()) {
    updater.join();
  }
  r.stats = service.stats();
  return r;
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header("Extension: concurrent query serving (snapshots + cache)");

  Universe u;
  make_lubm(u, 2 * s);
  rdf::TripleStore materialized = u.store;
  util::Stopwatch mat_watch;
  const auto mat = reason::materialize(materialized, u.dict, *u.vocab, {});
  std::cout << u.name << ": " << u.store.size() << " base + " << mat.inferred
            << " inferred triples, materialized in "
            << util::format_seconds(mat_watch.elapsed_seconds()) << "\n\n";

  // (1) Closed-loop sweep: cache x threads.
  serve::WorkloadOptions closed;
  closed.mode = serve::WorkloadMode::kClosedLoop;
  closed.total_requests = 2000 * s;
  closed.clients = 8;
  closed.seed = 42;

  util::Table sweep({"cache", "threads", "throughput(q/s)", "p50", "p95",
                     "p99", "hit rate", "shed rate"});
  for (const bool cache_on : {false, true}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const RunResult r = run_once(u, materialized, cache_on, threads, closed);
      const auto& lat = r.report.latency;
      const double shed_rate =
          r.report.submitted > 0
              ? static_cast<double>(r.report.shed) / r.report.submitted
              : 0.0;
      sweep.add_row(
          {cache_on ? "on" : "off", std::to_string(threads),
           util::fmt_double(r.report.throughput_qps(), 0),
           util::format_seconds(lat.percentile_seconds(0.50)),
           util::format_seconds(lat.percentile_seconds(0.95)),
           util::format_seconds(lat.percentile_seconds(0.99)),
           pct(r.stats.cache.hit_rate()), pct(shed_rate)});
    }
  }
  sweep.print(std::cout);

  // (2) Open-loop overload: offered load far beyond capacity.
  std::cout << "\nOpen loop at saturating arrival rate (1 thread, queue 128, "
               "cache off):\n";
  serve::WorkloadOptions open;
  open.mode = serve::WorkloadMode::kOpenLoop;
  open.total_requests = 3000 * s;
  open.arrival_rate_qps = 1e6;  // effectively back-to-back admission
  open.seed = 7;
  const RunResult overload = run_once(u, materialized, false, 1, open);
  util::Table shed_table({"submitted", "completed", "shed", "shed rate",
                          "served p50", "served p99"});
  shed_table.add_row(
      {std::to_string(overload.report.submitted),
       std::to_string(overload.report.completed),
       std::to_string(overload.report.shed),
       pct(static_cast<double>(overload.report.shed) /
           static_cast<double>(overload.report.submitted)),
       util::format_seconds(overload.report.latency.percentile_seconds(0.5)),
       util::format_seconds(
           overload.report.latency.percentile_seconds(0.99))});
  shed_table.print(std::cout);

  // (3) Serving across concurrent incremental updates.
  std::cout << "\nClosed loop with a concurrent updater (2 threads, cache "
               "on, 10 update batches):\n";
  const RunResult live = run_once(u, materialized, true, 2, closed,
                                  /*update_batches=*/10);
  util::Table live_table({"throughput(q/s)", "p99", "hit rate",
                          "invalidations", "updates", "final version"});
  live_table.add_row(
      {util::fmt_double(live.report.throughput_qps(), 0),
       util::format_seconds(live.report.latency.percentile_seconds(0.99)),
       pct(live.stats.cache.hit_rate()),
       std::to_string(live.stats.cache.invalidations),
       std::to_string(live.stats.updates_applied),
       std::to_string(live.stats.snapshot_version)});
  live_table.print(std::cout);

  std::cout << "\nReads run lock-free against immutable snapshots, so added "
               "executor threads\nscale the miss path; the cache turns the "
               "repetitive LUBM mix into O(1)\nlookups, and overload sheds "
               "at admission instead of growing the queue.\n";
  return 0;
}
