// Ingest + codec micro-benchmarks: the data-plane fast path.
//
// BM_IngestNtriples/T and BM_IngestTurtle/T sweep the parallel ingest
// pipeline's thread count over a LUBM-derived document (bit-identical
// output at every T — ingest_equivalence_test proves it; this measures
// it).  BM_CodecEncode/Decode measure raw triple-block throughput, and
// the bytes_per_triple counter tracks the wire-format footprint that the
// snapshot / file-transport / checkpoint byte counts inherit.
//
// Note: on a single-core host the thread sweep cannot show a speedup —
// the parse stage serializes — so compare T>1 rows against T=1 only on
// multi-core machines (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <sstream>

#include "parowl/gen/lubm.hpp"
#include "parowl/rdf/chunked_reader.hpp"
#include "parowl/rdf/codec.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/snapshot.hpp"

namespace {

using namespace parowl;

const std::string& lubm_text() {
  static const std::string text = [] {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    gen::LubmOptions opts;
    opts.universities = 2;
    gen::generate_lubm(opts, dict, store);
    std::ostringstream out;
    rdf::write_ntriples(out, store, dict);
    return out.str();
  }();
  return text;
}

/// The same KB as Turtle-shaped input: prefixed names + directives, so the
/// Turtle scanner/env machinery is actually exercised.
const std::string& turtle_text() {
  static const std::string text = [] {
    std::string out = "@prefix ub: <http://swat.cse.lehigh.edu/onto/"
                      "univ-bench.owl#> .\n";
    rdf::Dictionary dict;
    rdf::TripleStore store;
    gen::LubmOptions opts;
    opts.universities = 1;
    gen::generate_lubm(opts, dict, store);
    std::ostringstream nt;
    rdf::write_ntriples(nt, store, dict);
    out += nt.str();  // N-Triples is a Turtle subset
    return out;
  }();
  return text;
}

void BM_IngestNtriples(benchmark::State& state) {
  const std::string& text = lubm_text();
  rdf::IngestOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    benchmark::DoNotOptimize(rdf::ingest_ntriples(text, dict, store, opts));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestNtriples)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_IngestTurtle(benchmark::State& state) {
  const std::string& text = turtle_text();
  rdf::IngestOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    benchmark::DoNotOptimize(rdf::ingest_turtle(text, dict, store, opts));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_IngestTurtle)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Serial-parser baseline the ingest rows compare against.
void BM_SerialParseNtriples(benchmark::State& state) {
  const std::string& text = lubm_text();
  for (auto _ : state) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::istringstream in(text);
    benchmark::DoNotOptimize(rdf::parse_ntriples(in, dict, store));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SerialParseNtriples);

const std::vector<rdf::Triple>& lubm_triples() {
  static const std::vector<rdf::Triple> triples = [] {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    gen::LubmOptions opts;
    opts.universities = 2;
    gen::generate_lubm(opts, dict, store);
    return store.triples();
  }();
  return triples;
}

void BM_CodecEncode(benchmark::State& state) {
  const std::vector<rdf::Triple>& ts = lubm_triples();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    bytes = rdf::codec::write_blocks(out, ts);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ts.size()));
  state.counters["bytes_per_triple"] =
      static_cast<double>(bytes) / static_cast<double>(ts.size());
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const std::vector<rdf::Triple>& ts = lubm_triples();
  std::ostringstream encoded;
  rdf::codec::write_blocks(encoded, ts);
  const std::string bytes = encoded.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    std::size_t n = 0;
    const bool ok = rdf::codec::read_blocks(
        in, ts.size(), [&n](const rdf::Triple&) { ++n; });
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ts.size()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CodecDecode);

void BM_SnapshotSave(benchmark::State& state) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 1;
  gen::generate_lubm(opts, dict, store);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    bytes = rdf::save_snapshot(out, dict, store).bytes;
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SnapshotSave);

void BM_SnapshotLoad(benchmark::State& state) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 1;
  gen::generate_lubm(opts, dict, store);
  std::ostringstream out;
  rdf::save_snapshot(out, dict, store);
  const std::string bytes = out.str();
  for (auto _ : state) {
    std::istringstream in(bytes);
    rdf::Dictionary d2;
    rdf::TripleStore s2;
    benchmark::DoNotOptimize(rdf::load_snapshot(in, d2, s2));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_SnapshotLoad);

}  // namespace
