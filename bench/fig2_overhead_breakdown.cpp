// Fig. 2 — "Overhead of various sub-tasks of parallel processing for
// LUBM-10": per-round maxima of reasoning, IO, synchronization, and
// aggregation time, under the paper's shared-filesystem IPC.
//
// The reproduction runs the data-partitioning pipeline over a real
// FileTransport (codec-encoded spool files on disk, as in §V) and reports the
// same four components summed over rounds.  Expected shape: reasoning time
// falls as partitions grow while the IO + synchronization share rises —
// the scaling concern §VI-B discusses.

#include <filesystem>

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Fig. 2: overhead breakdown for LUBM under file IPC");

  Universe u;
  make_lubm(u, 10 * s);
  const partition::GraphOwnerPolicy policy;

  util::Table table({"partitions", "reason(s)", "io(s)", "sync(s)",
                     "aggregate(s)", "master merge(s)", "io+sync share",
                     "rounds", "tuples exchanged"});

  for (const unsigned k : {2u, 4u, 8u, 16u}) {
    const auto spool = std::filesystem::temp_directory_path() /
                       ("parowl_fig2_spool_k" + std::to_string(k));
    parallel::FileTransport transport(spool, k);

    parallel::ParallelOptions opts;
    opts.partitions = k;
    opts.policy = &policy;
    opts.local_strategy = reason::Strategy::kQueryDriven;
    opts.transport = &transport;
    opts.build_merged = false;
    const parallel::ParallelResult r =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);

    std::size_t exchanged = 0;
    for (const auto& rb : r.cluster.breakdown) {
      exchanged += rb.tuples_exchanged;
    }
    const double total = r.cluster.reason_seconds + r.cluster.io_seconds +
                         r.cluster.sync_seconds +
                         r.cluster.aggregate_seconds;
    const double share =
        total > 0
            ? (r.cluster.io_seconds + r.cluster.sync_seconds) / total
            : 0.0;
    table.add_row({std::to_string(k),
                   util::fmt_double(r.cluster.reason_seconds, 3),
                   util::fmt_double(r.cluster.io_seconds, 3),
                   util::fmt_double(r.cluster.sync_seconds, 3),
                   util::fmt_double(r.cluster.aggregate_seconds, 4),
                   util::fmt_double(r.merge_seconds, 4),
                   util::fmt_double(share, 3),
                   std::to_string(r.cluster.rounds),
                   std::to_string(exchanged)});
  }

  table.print(std::cout);
  std::cout << "\nExpected shape (paper): reasoning dominates at low "
               "partition counts;\nthe IO+synchronization share grows with "
               "the number of partitions.\n";
  return 0;
}
