// Table I — "Partitioning metrics for the LUBM data-set": bal (std-dev of
// nodes per partition), OR (output replication), IR (input replication),
// and partitioning time, for each policy at 2/4/8/16 partitions.
//
// bal and IR come straight from the partitioning; OR requires a reasoning
// run (it counts duplicated *derivations*), so each row runs the parallel
// pipeline once with the forward engine to collect it.

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

int main() {
  const unsigned s = scale_factor();
  print_header("Table I: partitioning metrics for LUBM");

  Universe u;
  make_lubm(u, 10 * s);
  const rdf::GraphStats gs = rdf::compute_graph_stats(u.store, u.dict);
  std::cout << "input graph: " << gs.nodes << " nodes, " << u.store.size()
            << " triples\n";

  const partition::GraphOwnerPolicy graph_policy;
  const partition::DomainOwnerPolicy domain_policy(
      &partition::lubm_university_key);
  const partition::HashOwnerPolicy hash_policy;
  partition::PartitionerOptions hdrf_opts, fennel_opts, ne_opts, sm_opts;
  hdrf_opts.kind = partition::PartitionerKind::kHdrf;
  fennel_opts.kind = partition::PartitionerKind::kFennel;
  ne_opts.kind = partition::PartitionerKind::kNe;
  sm_opts.kind = partition::PartitionerKind::kHdrf;
  sm_opts.split_merge_factor = 4;
  const partition::StreamingOwnerPolicy hdrf_policy(hdrf_opts);
  const partition::StreamingOwnerPolicy fennel_policy(fennel_opts);
  const partition::StreamingOwnerPolicy ne_policy(ne_opts);
  const partition::StreamingOwnerPolicy sm_policy(sm_opts);
  const partition::OwnerPolicy* policies[] = {
      &graph_policy, &domain_policy, &hash_policy,
      &hdrf_policy,  &fennel_policy, &ne_policy,   &sm_policy};

  util::Table table({"partitions", "policy", "algorithm", "bal", "OR", "IR",
                     "RF", "part. time(s)"});
  for (const unsigned k : {2u, 4u, 8u, 16u}) {
    for (const partition::OwnerPolicy* policy : policies) {
      const partition::DataPartitioning dp = partition::partition_data(
          u.store, u.dict, *u.vocab, *policy, k);
      const partition::PartitionMetrics m =
          partition::compute_partition_metrics(dp, u.dict);

      // OR needs a reasoning run over the partitioning.
      parallel::ParallelOptions opts;
      opts.partitions = k;
      opts.policy = policy;
      opts.local_strategy = reason::Strategy::kForward;
      opts.build_merged = false;
      const parallel::ParallelResult r =
          parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);

      table.add_row({std::to_string(k), policy->name(), dp.algorithm,
                     util::fmt_double(m.bal, 0),
                     util::fmt_double(r.output_replication, 2),
                     util::fmt_double(m.input_replication, 2),
                     util::fmt_double(m.replication_factor, 2),
                     util::fmt_double(dp.partition_seconds, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper's Table I): graph and domain have "
               "low IR (~0.07-0.19)\nand low OR; hash IR is an order of "
               "magnitude higher (0.7-2.1).  bal is small\nrelative to the "
               "node count; partitioning time is negligible next to "
               "reasoning.\n";
  return 0;
}
