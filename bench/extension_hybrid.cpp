// Paper-extension bench: hybrid partitioning (§VII cites it as future work,
// after [18]) against the two pure approaches at equal total worker counts.
//
// Hybrid splits both the data (d parts) and the rule-base (j parts) into a
// d x j worker grid.  On locality-friendly data it should land between pure
// data partitioning (whose per-partition super-linear reasoning shrinks
// fastest) and pure rule partitioning; its value is the extra axis when one
// axis saturates — e.g. rule partitioning stops helping once a single heavy
// rule dominates a partition.

#include "bench_common.hpp"

using namespace parowl;
using namespace parowl::bench;

namespace {

struct Config {
  const char* label;
  parallel::Approach approach;
  unsigned data_parts;
  unsigned rule_parts;
};

void series(const Universe& u, reason::Strategy strategy,
            util::Table& table) {
  const partition::GraphOwnerPolicy policy;

  // Serial baseline.
  parallel::ParallelOptions base;
  base.partitions = 1;
  base.policy = &policy;
  base.local_strategy = strategy;
  base.build_merged = false;
  const auto serial =
      parallel::parallel_materialize(u.store, u.dict, *u.vocab, base);
  const double serial_s = serial.cluster.simulated_seconds;

  const Config configs[] = {
      {"data x8", parallel::Approach::kDataPartition, 8, 1},
      {"rule x8", parallel::Approach::kRulePartition, 8, 1},
      {"hybrid 4x2", parallel::Approach::kHybrid, 4, 2},
      {"hybrid 2x4", parallel::Approach::kHybrid, 2, 4},
      {"data x16", parallel::Approach::kDataPartition, 16, 1},
      {"rule x16", parallel::Approach::kRulePartition, 16, 1},
      {"hybrid 4x4", parallel::Approach::kHybrid, 4, 4},
      {"hybrid 8x2", parallel::Approach::kHybrid, 8, 2},
  };
  for (const Config& c : configs) {
    parallel::ParallelOptions opts = base;
    opts.approach = c.approach;
    opts.partitions = c.data_parts;
    opts.rule_partitions = c.rule_parts;
    const auto r =
        parallel::parallel_materialize(u.store, u.dict, *u.vocab, opts);
    table.add_row({u.name, c.label,
                   std::to_string(c.data_parts * c.rule_parts),
                   util::fmt_double(r.cluster.simulated_seconds, 3),
                   util::fmt_double(r.cluster.simulated_seconds > 0
                                        ? serial_s /
                                              r.cluster.simulated_seconds
                                        : 1.0,
                                    2),
                   std::to_string(r.cluster.rounds)});
  }
}

}  // namespace

int main() {
  const unsigned s = scale_factor();
  print_header("Extension: hybrid partitioning vs pure approaches");

  util::Table table({"dataset", "configuration", "workers", "parallel(s)",
                     "speedup", "rounds"});
  {
    Universe u;
    make_lubm(u, 10 * s);
    series(u, reason::Strategy::kQueryDriven, table);
  }
  table.print(std::cout);
  std::cout << "\nHybrid trades some of data partitioning's super-linear "
               "work reduction for the\nrule axis; the paper (SecVII) "
               "anticipates it as the load-balancing combination.\n";
  return 0;
}
