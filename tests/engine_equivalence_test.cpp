// Equivalence of every forward-engine mode: naive vs semi-naive, dispatch
// index on/off, devirtualized joins on/off, and 1/2/4/8 matching threads
// must all compute the same closure — and everything except the naive
// ablation must be *bit-identical*: same insertion-log order and the same
// ForwardStats, which is what lets parowl::parallel workers and the
// serving-layer updater switch thread counts without changing any result.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string_view>
#include <tuple>
#include <utility>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/gen/sameas.hpp"
#include "parowl/reason/equality.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::reason {
namespace {

// The vocabulary interns into (and references) the fixture's dictionary,
// so the fixture is built in place and never copied or moved.
struct Fixture {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore base;  // generated triples + compiled ground facts
  rules::RuleSet rules;

  Fixture(const Fixture&) = delete;

  explicit Fixture(const char* dataset) {
    if (std::string_view(dataset) == "lubm") {
      gen::LubmOptions o;
      o.universities = 1;
      gen::generate_lubm(o, dict, base);
    } else {
      gen::MdcOptions o;
      o.fields = 2;
      gen::generate_mdc(o, dict, base);
    }
    rules::CompiledRules compiled = compile_ontology(base, vocab);
    base.insert_all(compiled.ground_facts);
    rules = std::move(compiled.rules);
  }
};

struct RunResult {
  std::vector<rdf::Triple> log;  // full insertion log after closure
  ForwardStats stats;
};

RunResult run_engine(const Fixture& f, ForwardOptions opts) {
  RunResult r;
  rdf::TripleStore store;
  store.insert_all(f.base.triples());
  r.stats = ForwardEngine(store, f.rules, opts).run(0);
  r.log = store.triples();
  return r;
}

std::vector<rdf::Triple> sorted(std::vector<rdf::Triple> log) {
  std::sort(log.begin(), log.end());
  return log;
}

void expect_same_closure(const RunResult& a, const RunResult& b,
                         const char* label) {
  EXPECT_EQ(a.log.size(), b.log.size()) << label;
  EXPECT_EQ(sorted(a.log), sorted(b.log)) << label;
  EXPECT_EQ(a.stats.derived, b.stats.derived) << label;
}

void expect_bit_identical(const RunResult& a, const RunResult& b,
                          const char* label) {
  EXPECT_EQ(a.log, b.log) << label << " (insertion-log order)";
  EXPECT_EQ(a.stats.iterations, b.stats.iterations) << label;
  EXPECT_EQ(a.stats.derived, b.stats.derived) << label;
  EXPECT_EQ(a.stats.attempts, b.stats.attempts) << label;
  EXPECT_EQ(a.stats.firings_per_rule, b.stats.firings_per_rule) << label;
}

void expect_firings_sum_to_derived(const RunResult& r, const char* label) {
  std::size_t sum = 0;
  for (const std::size_t n : r.stats.firings_per_rule) {
    sum += n;
  }
  EXPECT_EQ(sum, r.stats.derived) << label;
}

ForwardOptions with(bool dispatch, bool devirt, unsigned threads,
                    const rdf::Dictionary* dict = nullptr) {
  ForwardOptions o;
  o.dispatch_index = dispatch;
  o.devirtualize = devirt;
  o.threads = threads;
  o.dict = dict;
  return o;
}

void check_all_modes(const Fixture& f, const rdf::Dictionary* dict) {
  // Reference: the fully optimized single-threaded engine.
  const RunResult ref = run_engine(f, with(true, true, 1, dict));
  ASSERT_GT(ref.stats.derived, 0u);
  expect_firings_sum_to_derived(ref, "reference");

  // Ablation toggles must be bit-identical, not just set-equal: the
  // dispatch index only skips pivots that could never bind, and
  // devirtualization only changes how the match callback is invoked.
  for (const auto& [dispatch, devirt, label] :
       {std::tuple{false, false, "dispatch off, devirt off"},
        std::tuple{true, false, "devirt off"},
        std::tuple{false, true, "dispatch off"}}) {
    const RunResult r = run_engine(f, with(dispatch, devirt, 1, dict));
    expect_bit_identical(ref, r, label);
  }

  // Thread counts: contiguous frontier shards merged at the round barrier
  // in shard order replay the single-threaded emission sequence exactly.
  for (const unsigned threads : {2u, 4u, 8u}) {
    const RunResult r = run_engine(f, with(true, true, threads, dict));
    expect_bit_identical(ref, r, "threaded");
    expect_firings_sum_to_derived(r, "threaded");
  }

  // Naive evaluation visits derivations in a different order, so only the
  // closure (set and count) is comparable.
  ForwardOptions naive = with(true, true, 1, dict);
  naive.semi_naive = false;
  expect_same_closure(ref, run_engine(f, naive), "naive");
  ForwardOptions naive_threaded = with(true, true, 4, dict);
  naive_threaded.semi_naive = false;
  expect_same_closure(ref, run_engine(f, naive_threaded), "naive threaded");
}

TEST(EngineEquivalenceTest, LubmClosureIdenticalAcrossAllModes) {
  const Fixture f("lubm");
  check_all_modes(f, nullptr);
}

TEST(EngineEquivalenceTest, LubmClosureIdenticalWithLiteralGuard) {
  // The ForwardOptions::dict literal-guard path must dedup and merge the
  // same way: guarded heads still count as attempts in every mode.
  const Fixture f("lubm");
  check_all_modes(f, &f.dict);
}

TEST(EngineEquivalenceTest, MdcClosureIdenticalAcrossAllModes) {
  const Fixture f("mdc");
  check_all_modes(f, nullptr);
}

TEST(EngineEquivalenceTest, MdcClosureIdenticalWithLiteralGuard) {
  const Fixture f("mdc");
  check_all_modes(f, &f.dict);
}

TEST(EngineEquivalenceTest, DeltaRunsAgreeAcrossThreadCounts) {
  // The incremental entry point (run(delta_begin)) used by the parallel
  // workers and serve::Updater must also be thread-count invariant.
  const Fixture f("lubm");

  auto run_delta = [&](unsigned threads) {
    rdf::TripleStore store;
    // Split the base: load and close half, then absorb the rest as a delta.
    const auto& all = f.base.triples();
    const std::size_t half = all.size() / 2;
    store.insert_all(std::span(all.data(), half));
    ForwardEngine engine(store, f.rules, with(true, true, threads, &f.dict));
    engine.run(0);
    const std::size_t mark = store.size();
    store.insert_all(std::span(all.data() + half, all.size() - half));
    const ForwardStats stats = engine.run(mark);
    return std::pair(store.triples(), stats);
  };

  const auto [ref_log, ref_stats] = run_delta(1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    const auto [log, stats] = run_delta(threads);
    EXPECT_EQ(ref_log, log) << threads << " threads";
    EXPECT_EQ(ref_stats.derived, stats.derived) << threads << " threads";
    EXPECT_EQ(ref_stats.attempts, stats.attempts) << threads << " threads";
    EXPECT_EQ(ref_stats.firings_per_rule, stats.firings_per_rule)
        << threads << " threads";
  }
}

TEST(EngineEquivalenceTest, EqualityRewriteIdenticalAcrossModesAndThreads) {
  // The equality-mode axis of the sweep: under sameAs rewriting the engine
  // ablations (dispatch index, devirtualized joins, thread count) must stay
  // bit-identical — same rewritten insertion log AND the same class map —
  // and the naive-evaluation ablation must still expand to the same set.
  rdf::Dictionary dict;
  const ontology::Vocabulary vocab(dict);
  rdf::TripleStore base;
  gen::SameAsOptions gopts;
  gopts.individuals = 50;
  gen::generate_sameas(gopts, dict, base);

  struct RewriteRun {
    std::vector<rdf::Triple> log;
    rdf::EqualityClassMap map;
    std::size_t merges = 0;
  };
  auto run = [&](bool dispatch, bool devirt, unsigned threads,
                 bool semi_naive) {
    rdf::TripleStore store;
    store.insert_all(base.triples());
    EqualityManager eq;
    MaterializeOptions opts;
    opts.dispatch_index = dispatch;
    opts.devirtualize = devirt;
    opts.threads = threads;
    opts.semi_naive = semi_naive;
    opts.equality_mode = EqualityMode::kRewrite;
    opts.equality = &eq;
    const MaterializeResult r = materialize(store, dict, vocab, opts);
    return RewriteRun{store.triples(), eq.export_map(), r.eq_merges};
  };

  const RewriteRun ref = run(true, true, 1, true);
  ASSERT_GT(ref.merges, 0u);
  for (const auto& [dispatch, devirt, threads] :
       {std::tuple{false, false, 1u}, std::tuple{true, false, 1u},
        std::tuple{false, true, 1u}, std::tuple{true, true, 2u},
        std::tuple{true, true, 4u}, std::tuple{true, true, 8u}}) {
    const RewriteRun r = run(dispatch, devirt, threads, true);
    EXPECT_EQ(ref.log, r.log)
        << "dispatch=" << dispatch << " devirt=" << devirt
        << " threads=" << threads << " (insertion-log order)";
    EXPECT_EQ(ref.map.members, r.map.members);
    EXPECT_EQ(ref.map.literals, r.map.literals);
    EXPECT_EQ(ref.map.self_terms, r.map.self_terms);
    EXPECT_EQ(ref.map.raw_edges, r.map.raw_edges);
    EXPECT_EQ(ref.merges, r.merges);
  }

  // Naive evaluation reorders derivations, so compare the expanded sets.
  const RewriteRun naive = run(true, true, 1, false);
  rdf::TripleStore ref_store;
  ref_store.insert_all(ref.log);
  rdf::TripleStore naive_store;
  naive_store.insert_all(naive.log);
  EXPECT_EQ(expand_closure(ref_store, EqualityManager::import_map(ref.map),
                           vocab.owl_same_as),
            expand_closure(naive_store,
                           EqualityManager::import_map(naive.map),
                           vocab.owl_same_as));
}

TEST(EngineEquivalenceTest, MaterializeThreadsOptionIsTransparent) {
  const Fixture f("lubm");

  auto materialize_with = [&](unsigned threads) {
    rdf::TripleStore store;
    store.insert_all(f.base.triples());
    MaterializeOptions opts;
    opts.threads = threads;
    const MaterializeResult r = materialize(store, f.dict, f.vocab, opts);
    return std::pair(store.triples(), r.inferred);
  };

  const auto [ref_log, ref_inferred] = materialize_with(1);
  EXPECT_GT(ref_inferred, 0u);
  for (const unsigned threads : {2u, 4u}) {
    const auto [log, inferred] = materialize_with(threads);
    EXPECT_EQ(ref_log, log);
    EXPECT_EQ(ref_inferred, inferred);
  }
}

}  // namespace
}  // namespace parowl::reason
