#include <gtest/gtest.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::gen {
namespace {

class LubmQueriesTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore base;
  rdf::TripleStore materialized;

  void SetUp() override {
    LubmOptions opts;
    opts.universities = 2;
    generate_lubm(opts, dict, base);
    materialized.insert_all(base.triples());
    reason::materialize(materialized, dict, vocab, {});
  }

  query::ResultSet run(const std::string& text, const rdf::TripleStore& kb) {
    query::SparqlParser parser(dict);
    std::string error;
    const auto q = parser.parse(text, &error);
    EXPECT_TRUE(q.has_value()) << error;
    return q ? query::evaluate(kb, *q) : query::ResultSet{};
  }
};

TEST_F(LubmQueriesTest, AllFourteenQueriesParse) {
  const auto queries = lubm_queries();
  ASSERT_EQ(queries.size(), 14u);
  query::SparqlParser parser(dict);
  for (const LubmQuery& lq : queries) {
    std::string error;
    EXPECT_TRUE(parser.parse(lq.sparql, &error).has_value())
        << lq.name << ": " << error;
  }
}

TEST_F(LubmQueriesTest, AllQueriesHaveAnswersOnMaterializedStore) {
  for (const LubmQuery& lq : lubm_queries()) {
    const auto results = run(lq.sparql, materialized);
    EXPECT_GT(results.size(), 0u) << lq.name << " returned nothing";
  }
}

TEST_F(LubmQueriesTest, InferenceQueriesNeedMaterialization) {
  // Every query marked needs_inference must gain answers from the closure;
  // the others must answer identically on the raw store.
  for (const LubmQuery& lq : lubm_queries()) {
    const auto on_base = run(lq.sparql, base);
    const auto on_closed = run(lq.sparql, materialized);
    if (lq.needs_inference) {
      EXPECT_GT(on_closed.size(), on_base.size())
          << lq.name << " should require inference";
    } else {
      EXPECT_EQ(on_closed.size(), on_base.size())
          << lq.name << " should be inference-free";
    }
  }
}

TEST_F(LubmQueriesTest, SubclassClosureCountsAreConsistent) {
  // Q6 (all students) equals Q14 (undergrads) plus the graduate students.
  const auto q6 = run(lubm_queries()[5].sparql, materialized);
  const auto q14 = run(lubm_queries()[13].sparql, materialized);
  query::SparqlParser parser(dict);
  parser.add_prefix("ub", kUnivBenchNs);
  const auto grads = run(
      std::string("PREFIX ub: <") + kUnivBenchNs +
          ">\nSELECT ?x WHERE { ?x a ub:GraduateStudent }",
      materialized);
  EXPECT_EQ(q6.size(), q14.size() + grads.size());
}

TEST_F(LubmQueriesTest, AlumniMatchDegreeHolders) {
  // Q13 (hasAlumnus, inverse-derived) must equal the degreeFrom fan-in.
  const auto q13 = run(lubm_queries()[12].sparql, materialized);
  const auto direct = run(
      std::string("PREFIX ub: <") + kUnivBenchNs +
          ">\nSELECT ?x WHERE { ?x ub:degreeFrom <http://www.Univ0.edu> }",
      materialized);
  EXPECT_EQ(q13.size(), direct.size());
  EXPECT_GT(q13.size(), 0u);
}

}  // namespace
}  // namespace parowl::gen
