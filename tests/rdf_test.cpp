#include <gtest/gtest.h>

#include <sstream>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/flat_index.hpp"
#include "parowl/rdf/graph_stats.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {
namespace {

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  const TermId a = d.intern_iri("http://ex/a");
  const TermId b = d.intern_iri("http://ex/a");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
}

TEST(Dictionary, IdsStartAtOne) {
  Dictionary d;
  EXPECT_EQ(d.intern_iri("x"), 1u);
  EXPECT_EQ(d.intern_iri("y"), 2u);
}

TEST(Dictionary, KindDistinguishesSameLexical) {
  Dictionary d;
  const TermId iri = d.intern_iri("x");
  const TermId blank = d.intern_blank("x");
  const TermId lit = d.intern_literal("x");
  EXPECT_NE(iri, blank);
  EXPECT_NE(iri, lit);
  EXPECT_NE(blank, lit);
  EXPECT_EQ(d.kind(iri), TermKind::kIri);
  EXPECT_EQ(d.kind(blank), TermKind::kBlank);
  EXPECT_EQ(d.kind(lit), TermKind::kLiteral);
}

TEST(Dictionary, FindReturnsZeroForAbsent) {
  Dictionary d;
  EXPECT_EQ(d.find_iri("nope"), kAnyTerm);
  d.intern_iri("yes");
  EXPECT_NE(d.find_iri("yes"), kAnyTerm);
}

TEST(Dictionary, LexicalRoundTrips) {
  Dictionary d;
  const TermId a = d.intern_iri("http://ex/thing");
  EXPECT_EQ(d.lexical(a), "http://ex/thing");
}

TEST(Dictionary, IsResource) {
  Dictionary d;
  EXPECT_TRUE(d.is_resource(d.intern_iri("i")));
  EXPECT_TRUE(d.is_resource(d.intern_blank("b")));
  EXPECT_FALSE(d.is_resource(d.intern_literal("\"l\"")));
}

TEST(Dictionary, SurvivesManyInserts) {
  // deque storage must keep string_views stable across growth.
  Dictionary d;
  std::vector<TermId> ids;
  for (int i = 0; i < 10000; ++i) {
    ids.push_back(d.intern_iri("http://ex/n" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(d.find_iri("http://ex/n" + std::to_string(i)), ids[i]);
  }
}

TEST(TripleStore, InsertDeduplicates) {
  TripleStore s;
  EXPECT_TRUE(s.insert({1, 2, 3}));
  EXPECT_FALSE(s.insert({1, 2, 3}));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains({1, 2, 3}));
  EXPECT_FALSE(s.contains({3, 2, 1}));
}

TEST(TripleStore, InsertAllCountsNew) {
  TripleStore s;
  const std::vector<Triple> ts{{1, 2, 3}, {1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(s.insert_all(ts), 2u);
}

TEST(TripleStore, LogPreservesInsertionOrder) {
  TripleStore s;
  s.insert({1, 2, 3});
  s.insert({4, 5, 6});
  s.insert({7, 8, 9});
  ASSERT_EQ(s.triples().size(), 3u);
  EXPECT_EQ(s.triples()[0], (Triple{1, 2, 3}));
  EXPECT_EQ(s.triples()[2], (Triple{7, 8, 9}));
}

TEST(TripleStore, PredicateIndex) {
  TripleStore s;
  s.insert({1, 10, 2});
  s.insert({3, 10, 4});
  s.insert({1, 11, 2});
  EXPECT_EQ(s.with_predicate(10).size(), 2u);
  EXPECT_EQ(s.with_predicate(11).size(), 1u);
  EXPECT_EQ(s.with_predicate(12).size(), 0u);
  ASSERT_EQ(s.predicates().size(), 2u);
}

TEST(TripleStore, ObjectsAndSubjectsProbes) {
  TripleStore s;
  s.insert({1, 10, 2});
  s.insert({1, 10, 3});
  s.insert({4, 10, 2});
  const auto objs = s.objects(10, 1);
  EXPECT_EQ(objs.size(), 2u);
  const auto subs = s.subjects(10, 2);
  EXPECT_EQ(subs.size(), 2u);
  EXPECT_TRUE(s.objects(10, 99).empty());
  EXPECT_TRUE(s.subjects(99, 2).empty());
}

TEST(TripleStore, MatchAllBoundCombinations) {
  TripleStore s;
  s.insert({1, 10, 2});
  s.insert({1, 11, 3});
  s.insert({4, 10, 2});

  EXPECT_EQ(s.count({1, 10, 2}), 1u);
  EXPECT_EQ(s.count({1, kAnyTerm, kAnyTerm}), 2u);   // subject index
  EXPECT_EQ(s.count({kAnyTerm, 10, kAnyTerm}), 2u);  // predicate index
  EXPECT_EQ(s.count({kAnyTerm, kAnyTerm, 2}), 2u);   // object index
  EXPECT_EQ(s.count({1, 10, kAnyTerm}), 1u);
  EXPECT_EQ(s.count({kAnyTerm, 10, 2}), 2u);
  EXPECT_EQ(s.count({1, kAnyTerm, 2}), 1u);
  EXPECT_EQ(s.count({kAnyTerm, kAnyTerm, kAnyTerm}), 3u);
}

TEST(TripleStore, ForSubjectAndObject) {
  TripleStore s;
  s.insert({1, 10, 2});
  s.insert({1, 11, 3});
  std::size_t n = 0;
  s.for_subject(1, [&n](const Triple&) { ++n; });
  EXPECT_EQ(n, 2u);
  n = 0;
  s.for_object(3, [&n](const Triple&) { ++n; });
  EXPECT_EQ(n, 1u);
}

TEST(TripleStore, ClearEmptiesEverything) {
  TripleStore s;
  s.insert({1, 10, 2});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains({1, 10, 2}));
  EXPECT_TRUE(s.with_predicate(10).empty());
  EXPECT_EQ(s.count({1, kAnyTerm, kAnyTerm}), 0u);
  // Reusable after clear.
  EXPECT_TRUE(s.insert({1, 10, 2}));
}

TEST(TriplePattern, WildcardsMatch) {
  const TriplePattern p{kAnyTerm, 10, kAnyTerm};
  EXPECT_TRUE(p.matches({1, 10, 2}));
  EXPECT_FALSE(p.matches({1, 11, 2}));
}

TEST(NTriples, ParsesIriTriple) {
  Dictionary d;
  const auto t = parse_ntriples_line(
      "<http://ex/s> <http://ex/p> <http://ex/o> .", d);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(d.lexical(t->s), "http://ex/s");
  EXPECT_EQ(d.kind(t->o), TermKind::kIri);
}

TEST(NTriples, ParsesLiteralAndBlank) {
  Dictionary d;
  const auto t1 = parse_ntriples_line(
      "_:b1 <http://ex/p> \"hello world\" .", d);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(d.kind(t1->s), TermKind::kBlank);
  EXPECT_EQ(d.kind(t1->o), TermKind::kLiteral);

  const auto t2 = parse_ntriples_line(
      "<http://ex/s> <http://ex/p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> .",
      d);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(d.lexical(t2->o),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#int>");
}

TEST(NTriples, SkipsCommentsAndBlank) {
  Dictionary d;
  EXPECT_FALSE(parse_ntriples_line("# comment", d).has_value());
  EXPECT_FALSE(parse_ntriples_line("   ", d).has_value());
}

TEST(NTriples, RejectsMalformed) {
  Dictionary d;
  std::string err;
  EXPECT_FALSE(parse_ntriples_line("<a <b> <c> .", d, &err).has_value());
  EXPECT_FALSE(parse_ntriples_line("<a> <b> <c>", d, &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(
      parse_ntriples_line("\"lit\" <b> <c> .", d, &err).has_value());
}

TEST(NTriples, StreamParseCountsStats) {
  Dictionary d;
  TripleStore s;
  std::istringstream in(
      "<http://ex/a> <http://ex/p> <http://ex/b> .\n"
      "# comment\n"
      "<http://ex/a> <http://ex/p> <http://ex/b> .\n"
      "bad line\n"
      "<http://ex/b> <http://ex/p> \"x\" .\n");
  const ParseStats stats = parse_ntriples(in, d, s);
  EXPECT_EQ(stats.triples, 3u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.bad_lines, 1u);
  EXPECT_NE(stats.first_error.find("line 4"), std::string::npos);
  EXPECT_EQ(s.size(), 2u);
}

TEST(NTriples, SerializationRoundTrips) {
  Dictionary d;
  TripleStore s;
  std::istringstream in(
      "<http://ex/a> <http://ex/p> <http://ex/b> .\n"
      "_:node1 <http://ex/p> \"v\"@en .\n");
  parse_ntriples(in, d, s);

  std::ostringstream out;
  write_ntriples(out, s, d);

  Dictionary d2;
  TripleStore s2;
  std::istringstream back(out.str());
  const ParseStats stats = parse_ntriples(back, d2, s2);
  EXPECT_EQ(stats.bad_lines, 0u);
  EXPECT_EQ(s2.size(), s.size());
}

TEST(GraphStats, CountsNodesAndDegrees) {
  Dictionary d;
  TripleStore s;
  const TermId a = d.intern_iri("a"), b = d.intern_iri("b"),
               c = d.intern_iri("c"), p = d.intern_iri("p");
  const TermId lit = d.intern_literal("\"x\"");
  s.insert({a, p, b});
  s.insert({b, p, c});
  s.insert({a, p, lit});

  const GraphStats gs = compute_graph_stats(s, d);
  EXPECT_EQ(gs.triples, 3u);
  EXPECT_EQ(gs.nodes, 3u);  // a, b, c — literal is not a node
  EXPECT_EQ(gs.literal_objects, 1u);
  EXPECT_EQ(gs.max_degree, 2u);  // b: one in, one out
  EXPECT_EQ(gs.predicates, 1u);

  const auto nodes = resource_nodes(s, d);
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_TRUE(nodes.contains(a));
  EXPECT_FALSE(nodes.contains(lit));
}

TEST(IdMap, FindAndInsertAcrossGrowth) {
  IdMap<std::uint32_t> m;
  EXPECT_EQ(m.find(1), nullptr);
  // Enough keys to force several rehashes past the initial 16 slots.
  for (TermId k = 1; k <= 1000; ++k) {
    m[k] = k * 7;
  }
  EXPECT_EQ(m.size(), 1000u);
  for (TermId k = 1; k <= 1000; ++k) {
    const std::uint32_t* v = m.find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 7);
  }
  EXPECT_EQ(m.find(1001), nullptr);
  m[5] = 99;  // overwrite does not grow
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_EQ(*m.find(5), 99u);
}

TEST(TripleSet, InsertContainsReset) {
  TripleSet set;
  EXPECT_FALSE(set.contains({1, 2, 3}));
  EXPECT_TRUE(set.insert({1, 2, 3}));
  EXPECT_FALSE(set.insert({1, 2, 3}));  // duplicate
  for (TermId i = 1; i <= 500; ++i) {
    set.insert({i, i + 1, i + 2});
  }
  EXPECT_EQ(set.size(), 500u);  // {1,2,3} was part of the loop's range
  for (TermId i = 1; i <= 500; ++i) {
    EXPECT_TRUE(set.contains({i, i + 1, i + 2}));
  }
  EXPECT_FALSE(set.contains({500, 500, 500}));
  set.reset();  // keeps capacity, drops content
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.contains({1, 2, 3}));
  EXPECT_TRUE(set.insert({1, 2, 3}));
}

TEST(SmallIdList, SpillsPastInlineCapacity) {
  SmallIdList list;
  EXPECT_TRUE(list.view().empty());
  for (std::uint32_t i = 0; i < 10; ++i) {
    list.push_back(i * 3);
    // The view stays contiguous and in insertion order through the
    // inline-to-spill migration at kInline entries.
    const auto v = list.view();
    ASSERT_EQ(v.size(), i + 1);
    for (std::uint32_t j = 0; j <= i; ++j) {
      EXPECT_EQ(v[j], j * 3);
    }
  }
  EXPECT_EQ(list.size(), 10u);
}

TEST(TripleStore, EndpointIndexIsLazyButCoherent) {
  // for_subject / for_object are served by a lazily built index; probing,
  // inserting more, and probing again must reflect every insert.
  TripleStore s;
  s.insert({1, 2, 3});
  s.insert({1, 4, 5});
  std::size_t n = 0;
  s.for_subject(1, [&n](const Triple&) { ++n; });
  EXPECT_EQ(n, 2u);

  s.insert({1, 6, 7});
  s.insert({8, 9, 1});
  n = 0;
  s.for_subject(1, [&n](const Triple&) { ++n; });
  EXPECT_EQ(n, 3u);
  n = 0;
  s.for_object(1, [&n](const Triple&) { ++n; });
  EXPECT_EQ(n, 1u);

  // Unbound-predicate patterns route through the same lazy index.
  EXPECT_EQ(s.count({1, kAnyTerm, kAnyTerm}), 3u);
  EXPECT_EQ(s.count({kAnyTerm, kAnyTerm, 1}), 1u);
}

TEST(TripleStore, CopyPreservesIndexesIndependently) {
  TripleStore a;
  a.insert({1, 2, 3});
  a.insert({4, 2, 3});
  TripleStore b = a;
  b.insert({5, 2, 3});
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.subjects(2, 3).size(), 2u);
  EXPECT_EQ(b.subjects(2, 3).size(), 3u);
  EXPECT_FALSE(a.contains({5, 2, 3}));
  EXPECT_TRUE(b.contains({5, 2, 3}));
}

}  // namespace
}  // namespace parowl::rdf
