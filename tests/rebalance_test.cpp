#include <gtest/gtest.h>

#include <algorithm>

#include "parowl/gen/lubm.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/partition/metrics.hpp"
#include "parowl/partition/rebalance.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::partition {
namespace {

class RebalanceTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;

  /// Skewed LUBM: the last university is 4x the first, so the domain
  /// policy's round-robin assignment is badly imbalanced.
  void skewed_lubm(std::uint32_t universities) {
    gen::LubmOptions opts;
    opts.universities = universities;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 4;
    opts.students_per_faculty = 3;
    opts.size_skew = 3.0;
    gen::generate_lubm(opts, dict, store);
  }

  /// Predicted per-partition cost under an owner table with cost-per-node
  /// taken from the previous run (the quantity rebalancing equalizes).
  static std::vector<double> predicted_costs(
      const OwnerTable& owners, const std::vector<double>& per_node_cost,
      const OwnerTable& previous, std::uint32_t k, double mean) {
    std::vector<double> cost(k, 0.0);
    for (const auto& [term, part] : owners) {
      double c = mean;
      if (const auto it = previous.find(term); it != previous.end() &&
                                               it->second <
                                                   per_node_cost.size()) {
        c = per_node_cost[it->second];
      }
      cost[part] += c;
    }
    return cost;
  }
};

TEST_F(RebalanceTest, FixedPolicyReplaysTable) {
  skewed_lubm(2);
  const DomainOwnerPolicy domain(&lubm_university_key);
  const DataPartitioning dp = partition_data(store, dict, vocab, domain, 2);

  const FixedOwnerPolicy fixed(dp.owners);
  const DataPartitioning replay =
      partition_data(store, dict, vocab, fixed, 2);
  // Identical assignment -> identical parts.
  ASSERT_EQ(replay.parts.size(), dp.parts.size());
  for (std::size_t p = 0; p < dp.parts.size(); ++p) {
    EXPECT_EQ(replay.parts[p].size(), dp.parts[p].size());
  }
  EXPECT_EQ(fixed.name(), "Fixed");
}

TEST_F(RebalanceTest, FixedPolicyClampsAndFallsBack) {
  skewed_lubm(1);
  OwnerTable sparse;  // empty: everything falls back to the hash
  const FixedOwnerPolicy fixed(sparse);
  const DataPartitioning dp = partition_data(store, dict, vocab, fixed, 3);
  const auto split = ontology::split_schema(store, vocab);
  std::size_t covered = 0;
  for (const auto& part : dp.parts) {
    covered += part.size();
  }
  EXPECT_GE(covered, split.instance.size());
}

TEST_F(RebalanceTest, RebalancingEqualizesPredictedCost) {
  skewed_lubm(4);
  const DomainOwnerPolicy domain(&lubm_university_key);
  const DataPartitioning dp = partition_data(store, dict, vocab, domain, 4);

  // Deterministic super-linear cost proxy: cost_p = (nodes_p)^2.
  const PartitionMetrics m = compute_partition_metrics(dp, dict);
  std::vector<double> measured(4);
  std::vector<double> per_node(4);
  for (std::size_t p = 0; p < 4; ++p) {
    const auto n = static_cast<double>(m.nodes_per_partition[p]);
    measured[p] = n * n;
    per_node[p] = n;  // cost/node
  }
  double mean = 0.0;
  for (const double c : per_node) {
    mean += c;
  }
  mean /= 4.0;

  const OwnerTable rebalanced = rebalance_data_partition(
      store, dict, vocab, dp.owners, measured, 4);

  const auto before = predicted_costs(dp.owners, per_node, dp.owners, 4, mean);
  const auto after =
      predicted_costs(rebalanced, per_node, dp.owners, 4, mean);
  const double before_max = *std::ranges::max_element(before);
  const double after_max = *std::ranges::max_element(after);
  EXPECT_LT(after_max, before_max * 0.95)
      << "rebalancing must cut the predicted bottleneck cost";
}

TEST_F(RebalanceTest, RebalancedRunStillMatchesSerial) {
  skewed_lubm(3);
  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::materialize(serial, dict, vocab, {});

  const DomainOwnerPolicy domain(&lubm_university_key);
  parallel::ParallelOptions opts;
  opts.partitions = 3;
  opts.policy = &domain;
  opts.build_merged = false;
  const auto first = parallel::parallel_materialize(store, dict, vocab, opts);
  ASSERT_EQ(first.cluster.reason_seconds_per_worker.size(), 3u);

  const DataPartitioning dp = partition_data(store, dict, vocab, domain, 3);
  const OwnerTable rebalanced = rebalance_data_partition(
      store, dict, vocab, dp.owners,
      first.cluster.reason_seconds_per_worker, 3);

  const FixedOwnerPolicy fixed(rebalanced, "Rebalanced");
  parallel::ParallelOptions opts2 = opts;
  opts2.policy = &fixed;
  opts2.build_merged = true;
  const auto second =
      parallel::parallel_materialize(store, dict, vocab, opts2);
  ASSERT_TRUE(second.merged.has_value());
  EXPECT_EQ(second.merged->size(), serial.size());
  for (const rdf::Triple& t : serial.triples()) {
    ASSERT_TRUE(second.merged->contains(t));
  }
}

}  // namespace
}  // namespace parowl::partition
