#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>

#include "parowl/util/rng.hpp"
#include "parowl/util/strings.hpp"
#include "parowl/util/table.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::util {
namespace {

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
  EXPECT_GE(sw.elapsed_micros(), 0);
}

TEST(Stopwatch, RestartResetsOrigin) {
  Stopwatch sw;
  volatile std::int64_t sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + i;
  }
  const double before = sw.elapsed_seconds();
  sw.restart();
  EXPECT_LE(sw.elapsed_seconds(), before + 1.0);
}

TEST(TimeAccumulator, SumsIntervals) {
  TimeAccumulator acc;
  acc.add(0.5);
  acc.add(0.25);
  EXPECT_DOUBLE_EQ(acc.seconds(), 0.75);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.seconds(), 0.0);
}

TEST(TimeAccumulator, TimesCallableAndReturnsResult) {
  TimeAccumulator acc;
  const int result = acc.time([] { return 42; });
  EXPECT_EQ(result, 42);
  EXPECT_GE(acc.seconds(), 0.0);
}

TEST(TimeAccumulator, AccumulatesWhenCallableThrows) {
  TimeAccumulator acc;
  acc.add(0.125);  // distinguishable prior total
  EXPECT_THROW(acc.time([]() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The elapsed time of the failed call is still accounted for: the total
  // can only have grown.
  EXPECT_GE(acc.seconds(), 0.125);
  // And the accumulator stays usable.
  acc.time([] {});
  EXPECT_GE(acc.seconds(), 0.125);
}

TEST(FormatSeconds, PicksUnits) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.5 us");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) {
    differ += a.next() != b.next();
  }
  EXPECT_GT(differ, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi\t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(Strings, Fnv1aIsStable) {
  // Known FNV-1a 64 value for "abc".
  EXPECT_EQ(fnv1a64("abc"), 0xe71fa2190541574bULL);
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
}

TEST(Strings, Mix64Scrambles) {
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_EQ(mix64(42), mix64(42));
}

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(Format, Helpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(-42), "-42");
}

}  // namespace
}  // namespace parowl::util
