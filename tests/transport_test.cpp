#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <unordered_set>

#include "parowl/parallel/router.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::parallel {
namespace {

TEST(MemoryTransport, DeliversBatchesByRoundAndDestination) {
  MemoryTransport t(3);
  const std::vector<rdf::Triple> batch1{{1, 2, 3}};
  const std::vector<rdf::Triple> batch2{{4, 5, 6}, {7, 8, 9}};
  t.send(0, 1, 0, batch1);
  t.send(2, 1, 0, batch2);
  t.send(0, 1, 1, batch1);  // later round: separate box

  const auto round0 = t.receive(1, 0);
  EXPECT_EQ(round0.size(), 3u);
  const auto round1 = t.receive(1, 1);
  EXPECT_EQ(round1.size(), 1u);
  // Inbox drained.
  EXPECT_TRUE(t.receive(1, 0).empty());
  EXPECT_TRUE(t.receive(0, 0).empty());
}

TEST(MemoryTransport, StatsTrackTraffic) {
  MemoryTransport t(2);
  const std::vector<rdf::Triple> batch{{1, 2, 3}, {4, 5, 6}};
  t.send(0, 1, 0, batch);
  t.receive(1, 0);
  const CommStats s0 = t.stats(0);
  const CommStats s1 = t.stats(1);
  EXPECT_EQ(s0.messages_sent, 1u);
  EXPECT_EQ(s0.bytes_sent, 2 * sizeof(rdf::Triple));
  EXPECT_EQ(s1.bytes_received, 2 * sizeof(rdf::Triple));
}

TEST(MemoryTransport, ConcurrentSendsAreSafe) {
  MemoryTransport t(4);
  std::vector<std::jthread> threads;
  for (std::uint32_t w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      for (std::uint32_t i = 0; i < 500; ++i) {
        const std::vector<rdf::Triple> batch{{w + 1, i + 1, 1}};
        t.send(w, (w + 1) % 4, 0, batch);
      }
    });
  }
  threads.clear();  // join
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    total += t.receive(p, 0).size();
  }
  EXPECT_EQ(total, 2000u);
}

class FileTransportTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("parowl_ft_" + std::to_string(::getpid()));

  rdf::Triple triple(const std::string& s, const std::string& p,
                     const std::string& o) {
    return {dict.intern_iri(s), dict.intern_iri(p), dict.intern_iri(o)};
  }
};

TEST_F(FileTransportTest, RoundTripsTriples) {
  const auto t1 = triple("http://ex/a", "http://ex/p", "http://ex/b");
  const rdf::Triple t2{dict.intern_iri("http://ex/a"),
                       dict.intern_iri("http://ex/p"),
                       dict.intern_literal("\"lit value\"")};
  {
    FileTransport ft(dir, 2);
    ft.send(0, 1, 0, std::vector<rdf::Triple>{t1, t2});
    const auto got = ft.receive(1, 0);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], t1);
    EXPECT_EQ(got[1], t2);
    // Batch file consumed after receive.
    EXPECT_TRUE(ft.receive(1, 0).empty());
  }
  // Spool directory removed on destruction.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST_F(FileTransportTest, BlankNodesRoundTrip) {
  FileTransport ft(dir, 2);
  const rdf::Triple t{dict.intern_blank("b0"), dict.intern_iri("http://p"),
                      dict.intern_blank("b1")};
  ft.send(1, 0, 3, std::vector<rdf::Triple>{t});
  const auto got = ft.receive(0, 3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], t);
}

TEST_F(FileTransportTest, MultipleSendersAccumulate) {
  FileTransport ft(dir, 3);
  ft.send(0, 2, 0, std::vector<rdf::Triple>{triple("a", "p", "b")});
  ft.send(1, 2, 0, std::vector<rdf::Triple>{triple("c", "p", "d")});
  EXPECT_EQ(ft.receive(2, 0).size(), 2u);
}

TEST_F(FileTransportTest, StatsMeasureBytes) {
  FileTransport ft(dir, 2);
  ft.send(0, 1, 0, std::vector<rdf::Triple>{triple("http://ex/aaa",
                                                   "http://ex/ppp",
                                                   "http://ex/ooo")});
  ft.receive(1, 0);
  const std::uint64_t sent = ft.stats(0).bytes_sent;
  EXPECT_GT(sent, 0u);
  // Compact binary envelope: far below the ~45-byte N-Triples line the
  // old text format shipped for this triple.
  EXPECT_LT(sent, 40u);
  EXPECT_EQ(ft.stats(1).bytes_received, sent);
  EXPECT_GE(ft.stats(0).send_seconds, 0.0);
}

TEST_F(FileTransportTest, EmptyRoundYieldsNothing) {
  FileTransport ft(dir, 2);
  EXPECT_TRUE(ft.receive(0, 7).empty());
}

// ---------------------------------------------------------------------------
// Torn files, write atomicity, checksums

/// The only .batch file in the spool, or an empty path.
std::filesystem::path sole_batch_file(const std::filesystem::path& spool) {
  std::filesystem::path found;
  for (const auto& entry : std::filesystem::directory_iterator(spool)) {
    if (entry.path().extension() == ".batch") {
      EXPECT_TRUE(found.empty()) << "more than one batch file";
      found = entry.path();
    }
  }
  return found;
}

Batch make_file_batch(std::vector<rdf::Triple> tuples) {
  Batch b;
  b.from = 0;
  b.to = 1;
  b.round = 0;
  b.seq = 0;
  b.attempt = 0;
  b.tuples = std::move(tuples);
  b.checksum = batch_checksum(b.tuples);
  return b;
}

TEST_F(FileTransportTest, SendLeavesNoTempFiles) {
  FileTransport ft(dir, 2);
  ft.send_batch(make_file_batch({triple("http://ex/a", "http://ex/p",
                                        "http://ex/b")}));
  // The batch is staged as <name>.tmp and atomically renamed: a reader
  // scanning the spool can never observe a half-written .batch file.
  std::size_t batches = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
    batches += entry.path().extension() == ".batch";
  }
  EXPECT_EQ(batches, 1u);
}

TEST_F(FileTransportTest, TruncatedBatchFileIsDetectedNotSilentlyWrong) {
  FileTransport ft(dir, 2);
  ft.send_batch(make_file_batch({
      triple("http://ex/a", "http://ex/p", "http://ex/b"),
      triple("http://ex/c", "http://ex/p", "http://ex/d"),
      triple("http://ex/e", "http://ex/p", "http://ex/f"),
  }));

  // Tear the file: chop off the tail, as a crashed writer without the
  // tmp+rename discipline (or a truncated copy) would.
  const std::filesystem::path path = sole_batch_file(ft.spool_dir());
  ASSERT_FALSE(path.empty());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 10);

  const std::vector<Batch> got = ft.receive_batches(1, 0);
  ASSERT_EQ(got.size(), 1u);
  // The tear must surface as a failed integrity check — never as a
  // silently smaller batch that passes validation.
  EXPECT_TRUE(!got[0].intact ||
              batch_checksum(got[0].tuples) != got[0].checksum);
}

TEST_F(FileTransportTest, TamperedChecksumHeaderIsDetected) {
  FileTransport ft(dir, 2);
  ft.send_batch(make_file_batch({triple("http://ex/a", "http://ex/p",
                                        "http://ex/b")}));

  const std::filesystem::path path = sole_batch_file(ft.spool_dir());
  ASSERT_FALSE(path.empty());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // The envelope checksum is the u64 right after the 4-byte magic and the
  // five identity varints (one byte each for this tiny batch).
  ASSERT_GT(bytes.size(), 17u);
  bytes[9] = static_cast<char>(bytes[9] ^ 0x01);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bytes;
  }

  const std::vector<Batch> got = ft.receive_batches(1, 0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(!got[0].intact ||
              batch_checksum(got[0].tuples) != got[0].checksum);
}

// ---------------------------------------------------------------------------
// FaultyTransport properties: effective exactly-once delivery, and the
// decorator's injected-fault log reconciling with the protocol counters.

struct ProtocolResult {
  std::size_t resends = 0;
  bool converged = false;
  /// Validated payload per batch id — exactly-once effective delivery.
  std::map<std::uint64_t, std::vector<rdf::Triple>> delivered;
};

/// A hand-rolled single-round ack/retry loop: the same protocol the
/// cluster executor runs, reduced to its essence for property testing.
ProtocolResult run_ack_retry(FaultyTransport& ft, std::vector<Batch> pending,
                             std::uint32_t partitions, std::uint32_t round) {
  ProtocolResult result;
  AckBoard board;
  std::unordered_set<std::uint64_t> seen;
  const auto collect = [&] {
    for (std::uint32_t p = 0; p < partitions; ++p) {
      for (Batch& b : ft.receive_batches(p, round)) {
        if (!b.intact || batch_checksum(b.tuples) != b.checksum) {
          ft.note_checksum_failure(p);
          continue;  // no ack: the sender will retransmit
        }
        board.ack(b.id());
        if (!seen.insert(b.id()).second) {
          ft.note_redelivery(p);
          continue;
        }
        result.delivered[b.id()] = std::move(b.tuples);
      }
    }
  };

  for (const Batch& b : pending) {
    ft.send_batch(b);
  }
  collect();
  for (int sweep = 0; sweep < 32; ++sweep) {
    std::erase_if(pending,
                  [&](const Batch& b) { return board.acked(b.id()); });
    if (pending.empty()) {
      result.converged = true;
      break;
    }
    for (Batch& b : pending) {
      b.attempt += 1;
      ft.send_batch(b);
      ++result.resends;
    }
    collect();
  }
  return result;
}

/// One batch per ordered partition pair, with distinct synthetic payloads.
std::vector<Batch> make_pair_batches(std::uint32_t partitions,
                                     std::size_t tuples_per_batch) {
  std::vector<Batch> batches;
  for (std::uint32_t from = 0; from < partitions; ++from) {
    for (std::uint32_t to = 0; to < partitions; ++to) {
      if (to == from) {
        continue;
      }
      Batch b;
      b.from = from;
      b.to = to;
      b.round = 0;
      b.seq = 0;
      for (std::size_t i = 0; i < tuples_per_batch; ++i) {
        b.tuples.push_back({from * 100 + static_cast<rdf::TermId>(i) + 1,
                            to + 1, static_cast<rdf::TermId>(i) + 7});
      }
      b.checksum = batch_checksum(b.tuples);
      batches.push_back(std::move(b));
    }
  }
  return batches;
}

std::vector<rdf::Triple> sorted(std::vector<rdf::Triple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

TEST(FaultyTransportProperty, ExactlyOnceUnderDropCorruptReorder) {
  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    MemoryTransport inner(4);
    FaultSpec spec;
    spec.seed = seed;
    spec.drop = 0.3;
    spec.corrupt = 0.2;
    spec.reorder = 0.3;
    FaultyTransport ft(inner, spec);

    std::vector<Batch> batches = make_pair_batches(4, 3);
    std::map<std::uint64_t, std::vector<rdf::Triple>> sent;
    for (const Batch& b : batches) {
      sent[b.id()] = sorted(b.tuples);
    }

    const ProtocolResult res = run_ack_retry(ft, batches, 4, 0);
    ASSERT_TRUE(res.converged) << "seed " << seed;

    // Every batch delivered effectively exactly once, payload intact
    // (reorder shuffles tuples within a batch; content is a set).
    ASSERT_EQ(res.delivered.size(), sent.size()) << "seed " << seed;
    for (const auto& [id, tuples] : res.delivered) {
      EXPECT_EQ(sorted(tuples), sent.at(id)) << "seed " << seed;
    }

    // Reconciliation: every destructive fault costs exactly one resend.
    const FaultLog log = ft.injected_faults();
    EXPECT_EQ(res.resends, log.drops + log.corruptions) << "seed " << seed;

    CommStats total;
    for (std::uint32_t p = 0; p < 4; ++p) {
      total.merge(ft.stats(p));
    }
    // Each injected corruption is detected exactly once; nothing else
    // trips the checksum.  No duplicates injected => no redeliveries.
    EXPECT_EQ(total.checksum_failures, log.corruptions) << "seed " << seed;
    EXPECT_EQ(total.redeliveries, 0u) << "seed " << seed;
    // The inner transport counts a retry per retransmission it actually
    // sees: resends minus the retransmissions the decorator dropped.
    EXPECT_LE(total.retries, res.resends) << "seed " << seed;
    EXPECT_GE(total.retries + log.drops, res.resends) << "seed " << seed;

    total_faults += log.total();
  }
  // The sweep must actually have exercised the fault paths.
  EXPECT_GT(total_faults, 100u);
}

TEST(FaultyTransportProperty, DuplicatesAreRedeliveredNotReapplied) {
  std::uint64_t total_duplicates = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    MemoryTransport inner(4);
    FaultSpec spec;
    spec.seed = seed;
    spec.duplicate = 0.5;
    FaultyTransport ft(inner, spec);

    std::vector<Batch> batches = make_pair_batches(4, 2);
    const std::size_t expected = batches.size();
    const ProtocolResult res = run_ack_retry(ft, batches, 4, 0);

    // Duplication is not destructive: everything lands first try.
    ASSERT_TRUE(res.converged) << "seed " << seed;
    EXPECT_EQ(res.resends, 0u) << "seed " << seed;
    EXPECT_EQ(res.delivered.size(), expected) << "seed " << seed;

    const FaultLog log = ft.injected_faults();
    CommStats total;
    for (std::uint32_t p = 0; p < 4; ++p) {
      total.merge(ft.stats(p));
    }
    // Every injected duplicate is discarded by id — exactly once each.
    EXPECT_EQ(total.redeliveries, log.duplicates) << "seed " << seed;
    EXPECT_EQ(total.retries, 0u) << "seed " << seed;
    EXPECT_EQ(total.checksum_failures, 0u) << "seed " << seed;
    total_duplicates += log.duplicates;
  }
  EXPECT_GT(total_duplicates, 50u);
}

TEST(FaultyTransportProperty, DelayedBatchesRetransmitAndLateCopiesDrain) {
  MemoryTransport inner(2);
  FaultSpec spec;
  spec.seed = 5;
  spec.delay = 1.0;  // every faultable attempt is delayed
  FaultyTransport ft(inner, spec);

  Batch b;
  b.from = 0;
  b.to = 1;
  b.round = 0;
  b.seq = 0;
  b.tuples = {{1, 2, 3}};
  b.checksum = batch_checksum(b.tuples);

  const ProtocolResult res = run_ack_retry(ft, {b}, 2, 0);
  ASSERT_TRUE(res.converged);
  // Attempts 0..2 go to limbo (max_faulty_attempts = 3); attempt 3 is
  // exempt from faults and delivers.  Three resends, three limbo copies.
  EXPECT_EQ(res.resends, 3u);
  EXPECT_EQ(ft.injected_faults().delays, 3u);
  EXPECT_EQ(ft.limbo_remaining(), 3u);

  // The limbo copies surface in later rounds (due_round <= round) where
  // the receiver's id-dedup discards them; they never corrupt the run.
  std::size_t late = 0;
  for (std::uint32_t round = 1; round <= 1 + spec.max_delay_rounds; ++round) {
    for (const Batch& copy : ft.receive_batches(1, round)) {
      EXPECT_EQ(copy.id(), b.id());
      EXPECT_TRUE(copy.intact);
      EXPECT_EQ(batch_checksum(copy.tuples), copy.checksum);
      ++late;
    }
  }
  EXPECT_EQ(late, 3u);
  EXPECT_EQ(ft.limbo_remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Routers

TEST(OwnerRouter, RoutesToOwnersOfSubjectAndObject) {
  partition::OwnerTable owners;
  owners[10] = 0;
  owners[20] = 1;
  owners[30] = 2;
  const OwnerRouter router(owners);

  std::vector<std::uint32_t> dests;
  router.route({10, 99, 20}, /*self=*/0, dests);
  ASSERT_EQ(dests.size(), 1u);  // subject owned by self, object by 1
  EXPECT_EQ(dests[0], 1u);

  dests.clear();
  router.route({20, 99, 30}, 0, dests);
  EXPECT_EQ(dests.size(), 2u);

  dests.clear();
  router.route({10, 99, 10}, 0, dests);  // both owned by self
  EXPECT_TRUE(dests.empty());

  dests.clear();
  router.route({20, 99, 20}, 0, dests);  // same owner twice: one dest
  ASSERT_EQ(dests.size(), 1u);
}

TEST(OwnerRouter, UnknownTermsContributeNoDestination) {
  partition::OwnerTable owners;
  owners[10] = 1;
  const OwnerRouter router(owners);
  std::vector<std::uint32_t> dests;
  router.route({99, 98, 97}, 0, dests);
  EXPECT_TRUE(dests.empty());
}

TEST(RuleMatchRouter, RoutesTuplesToTriggeredPartitions) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  std::vector<rules::RuleSet> parts(2);
  parts[0].add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  parts[1].add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));

  const RuleMatchRouter router(parts);
  const auto p = dict.find_iri("p");
  const auto q = dict.find_iri("q");

  std::vector<std::uint32_t> dests;
  router.route({1, q, 2}, /*self=*/0, dests);
  ASSERT_EQ(dests.size(), 1u);  // q-tuples trigger partition 1
  EXPECT_EQ(dests[0], 1u);

  dests.clear();
  router.route({1, p, 2}, 1, dests);  // p-tuples trigger partition 0
  ASSERT_EQ(dests.size(), 1u);
  EXPECT_EQ(dests[0], 0u);

  dests.clear();
  router.route({1, q, 2}, 1, dests);  // own partition excluded
  EXPECT_TRUE(dests.empty());
}

TEST(RuleMatchRouter, VariablePredicateAtomMatchesEverything) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  std::vector<rules::RuleSet> parts(2);
  parts[0].add(*parser.parse_rule("r: (?x <sameAs> ?y) (?x ?p ?z) -> (?y ?p ?z)"));
  parts[1].add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));
  const RuleMatchRouter router(parts);
  std::vector<std::uint32_t> dests;
  router.route({1, 12345, 2}, 1, dests);
  ASSERT_EQ(dests.size(), 1u);  // the variable-predicate atom matches
  EXPECT_EQ(dests[0], 0u);
}

TEST(AtomMatchesTuple, RepeatedVariableConstraint) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  const auto rule = parser.parse_rule("r: (?x <p> ?x) -> (?x <q> ?x)");
  ASSERT_TRUE(rule.has_value());
  const auto p = dict.find_iri("p");
  EXPECT_TRUE(atom_matches_tuple(rule->body[0], {7, p, 7}));
  EXPECT_FALSE(atom_matches_tuple(rule->body[0], {7, p, 8}));
}

}  // namespace
}  // namespace parowl::parallel
