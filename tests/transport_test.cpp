#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <thread>

#include "parowl/parallel/router.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::parallel {
namespace {

TEST(MemoryTransport, DeliversBatchesByRoundAndDestination) {
  MemoryTransport t(3);
  const std::vector<rdf::Triple> batch1{{1, 2, 3}};
  const std::vector<rdf::Triple> batch2{{4, 5, 6}, {7, 8, 9}};
  t.send(0, 1, 0, batch1);
  t.send(2, 1, 0, batch2);
  t.send(0, 1, 1, batch1);  // later round: separate box

  const auto round0 = t.receive(1, 0);
  EXPECT_EQ(round0.size(), 3u);
  const auto round1 = t.receive(1, 1);
  EXPECT_EQ(round1.size(), 1u);
  // Inbox drained.
  EXPECT_TRUE(t.receive(1, 0).empty());
  EXPECT_TRUE(t.receive(0, 0).empty());
}

TEST(MemoryTransport, StatsTrackTraffic) {
  MemoryTransport t(2);
  const std::vector<rdf::Triple> batch{{1, 2, 3}, {4, 5, 6}};
  t.send(0, 1, 0, batch);
  t.receive(1, 0);
  const CommStats s0 = t.stats(0);
  const CommStats s1 = t.stats(1);
  EXPECT_EQ(s0.messages_sent, 1u);
  EXPECT_EQ(s0.bytes_sent, 2 * sizeof(rdf::Triple));
  EXPECT_EQ(s1.bytes_received, 2 * sizeof(rdf::Triple));
}

TEST(MemoryTransport, ConcurrentSendsAreSafe) {
  MemoryTransport t(4);
  std::vector<std::jthread> threads;
  for (std::uint32_t w = 0; w < 4; ++w) {
    threads.emplace_back([&t, w] {
      for (std::uint32_t i = 0; i < 500; ++i) {
        const std::vector<rdf::Triple> batch{{w + 1, i + 1, 1}};
        t.send(w, (w + 1) % 4, 0, batch);
      }
    });
  }
  threads.clear();  // join
  std::size_t total = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    total += t.receive(p, 0).size();
  }
  EXPECT_EQ(total, 2000u);
}

class FileTransportTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("parowl_ft_" + std::to_string(::getpid()));

  rdf::Triple triple(const std::string& s, const std::string& p,
                     const std::string& o) {
    return {dict.intern_iri(s), dict.intern_iri(p), dict.intern_iri(o)};
  }
};

TEST_F(FileTransportTest, RoundTripsTriples) {
  const auto t1 = triple("http://ex/a", "http://ex/p", "http://ex/b");
  const rdf::Triple t2{dict.intern_iri("http://ex/a"),
                       dict.intern_iri("http://ex/p"),
                       dict.intern_literal("\"lit value\"")};
  {
    FileTransport ft(dir, dict, 2);
    ft.send(0, 1, 0, std::vector<rdf::Triple>{t1, t2});
    const auto got = ft.receive(1, 0);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], t1);
    EXPECT_EQ(got[1], t2);
    // Batch file consumed after receive.
    EXPECT_TRUE(ft.receive(1, 0).empty());
  }
  // Spool directory removed on destruction.
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST_F(FileTransportTest, BlankNodesRoundTrip) {
  FileTransport ft(dir, dict, 2);
  const rdf::Triple t{dict.intern_blank("b0"), dict.intern_iri("http://p"),
                      dict.intern_blank("b1")};
  ft.send(1, 0, 3, std::vector<rdf::Triple>{t});
  const auto got = ft.receive(0, 3);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], t);
}

TEST_F(FileTransportTest, MultipleSendersAccumulate) {
  FileTransport ft(dir, dict, 3);
  ft.send(0, 2, 0, std::vector<rdf::Triple>{triple("a", "p", "b")});
  ft.send(1, 2, 0, std::vector<rdf::Triple>{triple("c", "p", "d")});
  EXPECT_EQ(ft.receive(2, 0).size(), 2u);
}

TEST_F(FileTransportTest, StatsMeasureBytes) {
  FileTransport ft(dir, dict, 2);
  ft.send(0, 1, 0, std::vector<rdf::Triple>{triple("http://ex/aaa",
                                                   "http://ex/ppp",
                                                   "http://ex/ooo")});
  ft.receive(1, 0);
  EXPECT_GT(ft.stats(0).bytes_sent, 30u);  // full N-Triples line
  EXPECT_EQ(ft.stats(1).bytes_received, ft.stats(0).bytes_sent);
  EXPECT_GE(ft.stats(0).send_seconds, 0.0);
}

TEST_F(FileTransportTest, EmptyRoundYieldsNothing) {
  FileTransport ft(dir, dict, 2);
  EXPECT_TRUE(ft.receive(0, 7).empty());
}

// ---------------------------------------------------------------------------
// Routers

TEST(OwnerRouter, RoutesToOwnersOfSubjectAndObject) {
  partition::OwnerTable owners;
  owners[10] = 0;
  owners[20] = 1;
  owners[30] = 2;
  const OwnerRouter router(owners);

  std::vector<std::uint32_t> dests;
  router.route({10, 99, 20}, /*self=*/0, dests);
  ASSERT_EQ(dests.size(), 1u);  // subject owned by self, object by 1
  EXPECT_EQ(dests[0], 1u);

  dests.clear();
  router.route({20, 99, 30}, 0, dests);
  EXPECT_EQ(dests.size(), 2u);

  dests.clear();
  router.route({10, 99, 10}, 0, dests);  // both owned by self
  EXPECT_TRUE(dests.empty());

  dests.clear();
  router.route({20, 99, 20}, 0, dests);  // same owner twice: one dest
  ASSERT_EQ(dests.size(), 1u);
}

TEST(OwnerRouter, UnknownTermsContributeNoDestination) {
  partition::OwnerTable owners;
  owners[10] = 1;
  const OwnerRouter router(owners);
  std::vector<std::uint32_t> dests;
  router.route({99, 98, 97}, 0, dests);
  EXPECT_TRUE(dests.empty());
}

TEST(RuleMatchRouter, RoutesTuplesToTriggeredPartitions) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  std::vector<rules::RuleSet> parts(2);
  parts[0].add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  parts[1].add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));

  const RuleMatchRouter router(parts);
  const auto p = dict.find_iri("p");
  const auto q = dict.find_iri("q");

  std::vector<std::uint32_t> dests;
  router.route({1, q, 2}, /*self=*/0, dests);
  ASSERT_EQ(dests.size(), 1u);  // q-tuples trigger partition 1
  EXPECT_EQ(dests[0], 1u);

  dests.clear();
  router.route({1, p, 2}, 1, dests);  // p-tuples trigger partition 0
  ASSERT_EQ(dests.size(), 1u);
  EXPECT_EQ(dests[0], 0u);

  dests.clear();
  router.route({1, q, 2}, 1, dests);  // own partition excluded
  EXPECT_TRUE(dests.empty());
}

TEST(RuleMatchRouter, VariablePredicateAtomMatchesEverything) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  std::vector<rules::RuleSet> parts(2);
  parts[0].add(*parser.parse_rule("r: (?x <sameAs> ?y) (?x ?p ?z) -> (?y ?p ?z)"));
  parts[1].add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));
  const RuleMatchRouter router(parts);
  std::vector<std::uint32_t> dests;
  router.route({1, 12345, 2}, 1, dests);
  ASSERT_EQ(dests.size(), 1u);  // the variable-predicate atom matches
  EXPECT_EQ(dests[0], 0u);
}

TEST(AtomMatchesTuple, RepeatedVariableConstraint) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  const auto rule = parser.parse_rule("r: (?x <p> ?x) -> (?x <q> ?x)");
  ASSERT_TRUE(rule.has_value());
  const auto p = dict.find_iri("p");
  EXPECT_TRUE(atom_matches_tuple(rule->body[0], {7, p, 7}));
  EXPECT_FALSE(atom_matches_tuple(rule->body[0], {7, p, 8}));
}

}  // namespace
}  // namespace parowl::parallel
