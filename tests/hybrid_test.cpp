#include <gtest/gtest.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::parallel {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  rdf::TripleStore serial;

  void SetUp() override {
    gen::LubmOptions opts;
    opts.universities = 2;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 4;
    opts.students_per_faculty = 3;
    gen::generate_lubm(opts, dict, store);

    serial.insert_all(store.triples());
    reason::materialize(serial, dict, vocab, {});
  }

  void expect_equivalent(const ParallelResult& result) {
    ASSERT_TRUE(result.merged.has_value());
    EXPECT_EQ(result.merged->size(), serial.size());
    for (const rdf::Triple& t : serial.triples()) {
      ASSERT_TRUE(result.merged->contains(t));
    }
    for (const rdf::Triple& t : result.merged->triples()) {
      ASSERT_TRUE(serial.contains(t));
    }
  }
};

TEST_F(HybridTest, TwoByTwoGridMatchesSerial) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.approach = Approach::kHybrid;
  opts.partitions = 2;       // data parts
  opts.rule_partitions = 2;  // rule parts -> 4 workers
  opts.policy = &policy;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_EQ(result.cluster.results_per_partition.size(), 4u);
}

TEST_F(HybridTest, AsymmetricGridMatchesSerial) {
  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  ParallelOptions opts;
  opts.approach = Approach::kHybrid;
  opts.partitions = 2;
  opts.rule_partitions = 3;  // 6 workers
  opts.policy = &policy;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(HybridTest, DegenerateGridsReduceToPureApproaches) {
  const partition::GraphOwnerPolicy policy;

  // 1 rule part == pure data partitioning.
  ParallelOptions data_like;
  data_like.approach = Approach::kHybrid;
  data_like.partitions = 3;
  data_like.rule_partitions = 1;
  data_like.policy = &policy;
  expect_equivalent(parallel_materialize(store, dict, vocab, data_like));

  // 1 data part == pure rule partitioning.
  ParallelOptions rule_like;
  rule_like.approach = Approach::kHybrid;
  rule_like.partitions = 1;
  rule_like.rule_partitions = 3;
  rule_like.policy = &policy;
  expect_equivalent(parallel_materialize(store, dict, vocab, rule_like));
}

TEST_F(HybridTest, HybridAsyncMatchesSerial) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.approach = Approach::kHybrid;
  opts.partitions = 2;
  opts.rule_partitions = 2;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(HybridTest, HybridThreadedMatchesSerial) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.approach = Approach::kHybrid;
  opts.partitions = 2;
  opts.rule_partitions = 2;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kThreaded;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(HybridTest, HybridOnMdcMatchesSerial) {
  rdf::Dictionary d2;
  ontology::Vocabulary v2(d2);
  rdf::TripleStore mdc;
  gen::MdcOptions mopts;
  mopts.fields = 2;
  gen::generate_mdc(mopts, d2, mdc);

  rdf::TripleStore mdc_serial;
  mdc_serial.insert_all(mdc.triples());
  reason::materialize(mdc_serial, d2, v2, {});

  const partition::DomainOwnerPolicy policy(&gen::mdc_field_key);
  ParallelOptions opts;
  opts.approach = Approach::kHybrid;
  opts.partitions = 2;
  opts.rule_partitions = 2;
  opts.policy = &policy;
  const auto result = parallel_materialize(mdc, d2, v2, opts);
  ASSERT_TRUE(result.merged.has_value());
  EXPECT_EQ(result.merged->size(), mdc_serial.size());
  for (const rdf::Triple& t : mdc_serial.triples()) {
    ASSERT_TRUE(result.merged->contains(t));
  }
}

TEST(HybridRouterUnit, GridDestinations) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  std::vector<rules::RuleSet> rule_parts(2);
  rule_parts[0].add(*parser.parse_rule("r0: (?x <p> ?y) -> (?x <q> ?y)"));
  rule_parts[1].add(*parser.parse_rule("r1: (?x <q> ?y) -> (?x <r> ?y)"));

  partition::OwnerTable owners;
  owners[100] = 0;
  owners[200] = 1;
  const HybridRouter router(owners, rule_parts);

  const auto q = dict.find_iri("q");
  // (100 q 200): owners {0,1}; triggers rule part 1 only.
  // Destinations: (0,1) = 1 and (1,1) = 3.
  std::vector<std::uint32_t> dests;
  router.route({100, q, 200}, /*self=*/99, dests);
  ASSERT_EQ(dests.size(), 2u);
  EXPECT_EQ(dests[0], 1u);
  EXPECT_EQ(dests[1], 3u);

  // Self exclusion.
  dests.clear();
  router.route({100, q, 200}, /*self=*/1, dests);
  ASSERT_EQ(dests.size(), 1u);
  EXPECT_EQ(dests[0], 3u);
}

}  // namespace
}  // namespace parowl::parallel
