// Compiled with PAROWL_OBS_DISABLED defined *before* any obs header: the
// instrumentation macros in this translation unit must expand to nothing.
// obs_test.cpp calls run_instrumented_block and asserts that neither the
// global tracer nor the global registry saw anything.

#define PAROWL_OBS_DISABLED

#include "parowl/obs/obs.hpp"

namespace parowl::obs_disabled_probe {

int run_instrumented_block(int iterations) {
  int total = 0;
  for (int i = 0; i < iterations; ++i) {
    PAROWL_SPAN("obs_disabled_probe.iter", {{"i", i}});
    PAROWL_COUNT("obs_disabled_probe.calls", 1);
    ++total;
  }
  return total;
}

}  // namespace parowl::obs_disabled_probe
