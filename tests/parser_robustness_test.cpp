#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/turtle.hpp"
#include "parowl/rules/rule_parser.hpp"
#include "parowl/util/rng.hpp"

namespace parowl {
namespace {

/// Property: no parser crashes, loops, or corrupts state on arbitrary
/// byte soup.  Inputs are seeded random strings over a byte alphabet that
/// includes the parsers' structural characters.
class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string random_soup(util::Rng& rng, std::size_t length) {
    static constexpr char alphabet[] =
        "<>\"\\.;,@?#:{}()ab z0159_^-\n\tPREFIXSELECTWHERE";
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      out += alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    return out;
  }
};

TEST_P(ParserRobustness, NtriplesNeverCrashes) {
  util::Rng rng(GetParam());
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 50; ++i) {
    std::istringstream in(random_soup(rng, 1 + rng.below(200)));
    const rdf::ParseStats stats = rdf::parse_ntriples(in, dict, store);
    EXPECT_LE(stats.duplicates, stats.triples);
  }
  // The store stays internally consistent.
  EXPECT_EQ(store.count({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm}),
            store.size());
}

TEST_P(ParserRobustness, TurtleNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x7e57);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 50; ++i) {
    rdf::parse_turtle_text(random_soup(rng, 1 + rng.below(200)), dict,
                           store);
  }
  EXPECT_EQ(store.count({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm}),
            store.size());
}

TEST_P(ParserRobustness, SparqlNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5bad);
  rdf::Dictionary dict;
  query::SparqlParser parser(dict);
  for (int i = 0; i < 50; ++i) {
    std::string error;
    (void)parser.parse(random_soup(rng, 1 + rng.below(200)), &error);
  }
}

TEST_P(ParserRobustness, RuleParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x1e5u);
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  for (int i = 0; i < 50; ++i) {
    std::string error;
    (void)parser.parse_rule(random_soup(rng, 1 + rng.below(120)), &error);
  }
}

TEST_P(ParserRobustness, SnapshotLoaderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 50; ++i) {
    // Random bytes, sometimes with a valid magic prefix.
    std::string data;
    if (rng.chance(0.5)) {
      data = "PARO";
    }
    const std::size_t len = 1 + rng.below(300);
    for (std::size_t b = 0; b < len; ++b) {
      data += static_cast<char>(rng.below(256));
    }
    std::istringstream in(data);
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::string error;
    (void)rdf::load_snapshot(in, dict, store, &error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace parowl
