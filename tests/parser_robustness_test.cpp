#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/turtle.hpp"
#include "parowl/rules/rule_parser.hpp"
#include "parowl/util/rng.hpp"

namespace parowl {
namespace {

/// Property: no parser crashes, loops, or corrupts state on arbitrary
/// byte soup.  Inputs are seeded random strings over a byte alphabet that
/// includes the parsers' structural characters.
class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string random_soup(util::Rng& rng, std::size_t length) {
    static constexpr char alphabet[] =
        "<>\"\\.;,@?#:{}()ab z0159_^-\n\tPREFIXSELECTWHERE";
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      out += alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    return out;
  }
};

TEST_P(ParserRobustness, NtriplesNeverCrashes) {
  util::Rng rng(GetParam());
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 50; ++i) {
    std::istringstream in(random_soup(rng, 1 + rng.below(200)));
    const rdf::ParseStats stats = rdf::parse_ntriples(in, dict, store);
    EXPECT_LE(stats.duplicates, stats.triples);
  }
  // The store stays internally consistent.
  EXPECT_EQ(store.count({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm}),
            store.size());
}

TEST_P(ParserRobustness, TurtleNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x7e57);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 50; ++i) {
    rdf::parse_turtle_text(random_soup(rng, 1 + rng.below(200)), dict,
                           store);
  }
  EXPECT_EQ(store.count({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm}),
            store.size());
}

TEST_P(ParserRobustness, SparqlNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5bad);
  rdf::Dictionary dict;
  query::SparqlParser parser(dict);
  for (int i = 0; i < 50; ++i) {
    std::string error;
    (void)parser.parse(random_soup(rng, 1 + rng.below(200)), &error);
  }
}

TEST_P(ParserRobustness, RuleParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x1e5u);
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  for (int i = 0; i < 50; ++i) {
    std::string error;
    (void)parser.parse_rule(random_soup(rng, 1 + rng.below(120)), &error);
  }
}

TEST_P(ParserRobustness, SnapshotLoaderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 50; ++i) {
    // Random bytes, sometimes with a valid magic prefix.
    std::string data;
    if (rng.chance(0.5)) {
      data = "PARO";
    }
    const std::size_t len = 1 + rng.below(300);
    for (std::size_t b = 0; b < len; ++b) {
      data += static_cast<char>(rng.below(256));
    }
    std::istringstream in(data);
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::string error;
    (void)rdf::load_snapshot(in, dict, store, &error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// ---------------------------------------------------------------------------
// Directed diagnostics: parse errors carry 1-based line numbers

TEST(ParserDiagnostics, NtriplesErrorNamesTheOffendingLine) {
  const std::string text =
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "# a comment line\n"
      "this is not a triple\n"
      "<http://x/s> <http://x/p> <http://x/o2> .\n";
  std::istringstream in(text);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const rdf::ParseStats stats = rdf::parse_ntriples(in, dict, store);
  EXPECT_EQ(stats.triples, 2u);
  EXPECT_EQ(stats.bad_lines, 1u);
  EXPECT_EQ(stats.first_error.rfind("line 3:", 0), 0u) << stats.first_error;
}

TEST(ParserDiagnostics, TurtleErrorNamesTheOffendingLine) {
  const std::string text =
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n"
      "ex:broken ex:q ( 1 2 3 ) .\n";
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const rdf::ParseStats stats = rdf::parse_turtle_text(text, dict, store);
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_GE(stats.bad_lines, 1u);
  EXPECT_EQ(stats.first_error.rfind("line 3:", 0), 0u) << stats.first_error;
}

TEST(ParserDiagnostics, TurtleDirectiveErrorOnFirstLine) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const rdf::ParseStats stats =
      rdf::parse_turtle_text("@prefix broken\n", dict, store);
  EXPECT_EQ(stats.triples, 0u);
  EXPECT_EQ(stats.first_error.rfind("line 1:", 0), 0u) << stats.first_error;
}

// ---------------------------------------------------------------------------
// Directed snapshot-loader robustness: malformed .snap bytes fail cleanly
// with a diagnostic instead of crashing, over-allocating, or loading junk.

std::string valid_snapshot_bytes() {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const auto s = dict.intern_iri("http://x/s");
  const auto p = dict.intern_iri("http://x/p");
  const auto o = dict.intern_iri("http://x/o");
  store.insert({s, p, o});
  std::ostringstream out;
  rdf::save_snapshot(out, dict, store);
  return out.str();
}

bool try_load(const std::string& bytes, std::string* error) {
  std::istringstream in(bytes);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  return rdf::load_snapshot(in, dict, store, error);
}

TEST(SnapshotRobustness, RoundTripBaseline) {
  std::string error;
  EXPECT_TRUE(try_load(valid_snapshot_bytes(), &error)) << error;
}

TEST(SnapshotRobustness, TruncationAtEveryPrefixFailsCleanly) {
  const std::string bytes = valid_snapshot_bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string error;
    EXPECT_FALSE(try_load(bytes.substr(0, cut), &error))
        << "prefix of " << cut << " bytes loaded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotRobustness, WrongMagicIsRejected) {
  std::string bytes = valid_snapshot_bytes();
  bytes[0] = 'X';
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "bad magic");
}

TEST(SnapshotRobustness, WrongFormatVersionIsRejected) {
  std::string bytes = valid_snapshot_bytes();
  bytes[4] = static_cast<char>(0x7f);  // version field, little-endian
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "unsupported snapshot version");
}

TEST(SnapshotRobustness, HugeLexicalLengthFailsOnStreamNotAllocation) {
  // Header + term count (1), then a term entry claiming a ~4 GB lexical.
  // The chunked reader must fail on stream exhaustion, not allocate 4 GB.
  std::string bytes = valid_snapshot_bytes();
  // Layout: magic(4) version(4) term_count(8) kind(1) length(4) ...
  bytes[17] = static_cast<char>(0xff);
  bytes[18] = static_cast<char>(0xff);
  bytes[19] = static_cast<char>(0xff);
  bytes[20] = static_cast<char>(0xfe);
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "truncated term lexical");
}

TEST(SnapshotRobustness, InvalidTermKindIsRejected) {
  std::string bytes = valid_snapshot_bytes();
  bytes[16] = static_cast<char>(9);  // kind byte of the first term
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "invalid term kind");
}

TEST(SnapshotRobustness, TripleReferencingUnknownTermIsRejected) {
  // Corrupt the subject id of the only triple (the last 12 bytes are
  // s,p,o as u32 little-endian).
  std::string bytes = valid_snapshot_bytes();
  bytes[bytes.size() - 12] = static_cast<char>(0xee);
  bytes[bytes.size() - 11] = static_cast<char>(0xee);
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "triple references unknown term");
}

TEST(SnapshotRobustness, NonEmptyTargetIsRejected) {
  std::istringstream in(valid_snapshot_bytes());
  rdf::Dictionary dict;
  rdf::TripleStore store;
  (void)dict.intern_iri("http://already/here");
  std::string error;
  EXPECT_FALSE(rdf::load_snapshot(in, dict, store, &error));
  EXPECT_EQ(error, "dictionary/store must be empty");
}

}  // namespace
}  // namespace parowl
