#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/turtle.hpp"
#include "parowl/rules/rule_parser.hpp"
#include "parowl/util/rng.hpp"

namespace parowl {
namespace {

/// Property: no parser crashes, loops, or corrupts state on arbitrary
/// byte soup.  Inputs are seeded random strings over a byte alphabet that
/// includes the parsers' structural characters.
class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string random_soup(util::Rng& rng, std::size_t length) {
    static constexpr char alphabet[] =
        "<>\"\\.;,@?#:{}()ab z0159_^-\n\tPREFIXSELECTWHERE";
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      out += alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    return out;
  }
};

TEST_P(ParserRobustness, NtriplesNeverCrashes) {
  util::Rng rng(GetParam());
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 50; ++i) {
    std::istringstream in(random_soup(rng, 1 + rng.below(200)));
    const rdf::ParseStats stats = rdf::parse_ntriples(in, dict, store);
    EXPECT_LE(stats.duplicates, stats.triples);
  }
  // The store stays internally consistent.
  EXPECT_EQ(store.count({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm}),
            store.size());
}

TEST_P(ParserRobustness, TurtleNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x7e57);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  for (int i = 0; i < 50; ++i) {
    rdf::parse_turtle_text(random_soup(rng, 1 + rng.below(200)), dict,
                           store);
  }
  EXPECT_EQ(store.count({rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm}),
            store.size());
}

TEST_P(ParserRobustness, SparqlNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x5bad);
  rdf::Dictionary dict;
  query::SparqlParser parser(dict);
  for (int i = 0; i < 50; ++i) {
    std::string error;
    (void)parser.parse(random_soup(rng, 1 + rng.below(200)), &error);
  }
}

TEST_P(ParserRobustness, RuleParserNeverCrashes) {
  util::Rng rng(GetParam() ^ 0x1e5u);
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  for (int i = 0; i < 50; ++i) {
    std::string error;
    (void)parser.parse_rule(random_soup(rng, 1 + rng.below(120)), &error);
  }
}

TEST_P(ParserRobustness, SnapshotLoaderNeverCrashes) {
  util::Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 50; ++i) {
    // Random bytes, sometimes with a valid magic prefix.
    std::string data;
    if (rng.chance(0.5)) {
      data = "PARO";
    }
    const std::size_t len = 1 + rng.below(300);
    for (std::size_t b = 0; b < len; ++b) {
      data += static_cast<char>(rng.below(256));
    }
    std::istringstream in(data);
    rdf::Dictionary dict;
    rdf::TripleStore store;
    std::string error;
    (void)rdf::load_snapshot(in, dict, store, &error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// ---------------------------------------------------------------------------
// Directed diagnostics: parse errors carry 1-based line numbers

TEST(ParserDiagnostics, NtriplesErrorNamesTheOffendingLine) {
  const std::string text =
      "<http://x/s> <http://x/p> <http://x/o> .\n"
      "# a comment line\n"
      "this is not a triple\n"
      "<http://x/s> <http://x/p> <http://x/o2> .\n";
  std::istringstream in(text);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const rdf::ParseStats stats = rdf::parse_ntriples(in, dict, store);
  EXPECT_EQ(stats.triples, 2u);
  EXPECT_EQ(stats.bad_lines, 1u);
  EXPECT_EQ(stats.first_error.rfind("line 3 (byte ", 0), 0u)
      << stats.first_error;
  EXPECT_EQ(stats.first_error_line, 3u);
  // Offset of the bad line's first byte: the two lines before it.
  EXPECT_EQ(stats.first_error_offset, 41u + 17u);
}

TEST(ParserDiagnostics, TurtleErrorNamesTheOffendingLine) {
  const std::string text =
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n"
      "ex:broken ex:q ( 1 2 3 ) .\n";
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const rdf::ParseStats stats = rdf::parse_turtle_text(text, dict, store);
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_GE(stats.bad_lines, 1u);
  EXPECT_EQ(stats.first_error.rfind("line 3 (byte ", 0), 0u)
      << stats.first_error;
  EXPECT_EQ(stats.first_error_line, 3u);
  // The error position sits inside line 3, past the two lines before it.
  EXPECT_GE(stats.first_error_offset, 36u + 17u);
}

TEST(ParserDiagnostics, TurtleDirectiveErrorOnFirstLine) {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const rdf::ParseStats stats =
      rdf::parse_turtle_text("@prefix broken\n", dict, store);
  EXPECT_EQ(stats.triples, 0u);
  EXPECT_EQ(stats.first_error.rfind("line 1 (byte ", 0), 0u)
      << stats.first_error;
  EXPECT_EQ(stats.first_error_line, 1u);
}

// ---------------------------------------------------------------------------
// Directed snapshot-loader robustness: malformed .snap bytes fail cleanly
// with a diagnostic instead of crashing, over-allocating, or loading junk.

std::string valid_snapshot_bytes() {
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const auto s = dict.intern_iri("http://x/s");
  const auto p = dict.intern_iri("http://x/p");
  const auto o = dict.intern_iri("http://x/o");
  store.insert({s, p, o});
  std::ostringstream out;
  rdf::save_snapshot(out, dict, store);
  return out.str();
}

bool try_load(const std::string& bytes, std::string* error) {
  std::istringstream in(bytes);
  rdf::Dictionary dict;
  rdf::TripleStore store;
  return rdf::load_snapshot(in, dict, store, error);
}

TEST(SnapshotRobustness, RoundTripBaseline) {
  std::string error;
  EXPECT_TRUE(try_load(valid_snapshot_bytes(), &error)) << error;
}

TEST(SnapshotRobustness, TruncationAtEveryPrefixFailsCleanly) {
  const std::string bytes = valid_snapshot_bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string error;
    EXPECT_FALSE(try_load(bytes.substr(0, cut), &error))
        << "prefix of " << cut << " bytes loaded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotRobustness, WrongMagicIsRejected) {
  std::string bytes = valid_snapshot_bytes();
  bytes[0] = 'X';
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "bad magic");
}

TEST(SnapshotRobustness, WrongFormatVersionIsRejected) {
  std::string bytes = valid_snapshot_bytes();
  bytes[4] = static_cast<char>(0x7f);  // version field, little-endian
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "unsupported snapshot version");
}

TEST(SnapshotRobustness, HugeLexicalLengthFailsOnStreamNotAllocation) {
  // Rewrite the first term entry's suffix length as a ~4 GB varint.  The
  // chunked reader must fail on stream exhaustion, not allocate 4 GB.
  // Layout: magic(4) version(4) term_count varint(1) then the first term
  // entry: kind(1) shared varint(1) suffix_len varint(1) suffix...
  const std::string bytes = valid_snapshot_bytes();
  std::string hacked = bytes.substr(0, 11);
  hacked += static_cast<char>(0xfe);  // varint 0xFFFFFFFE
  hacked += static_cast<char>(0xff);
  hacked += static_cast<char>(0xff);
  hacked += static_cast<char>(0xff);
  hacked += static_cast<char>(0x0f);
  hacked += bytes.substr(12);
  std::string error;
  EXPECT_FALSE(try_load(hacked, &error));
  EXPECT_EQ(error, "truncated term lexical");
}

TEST(SnapshotRobustness, InvalidTermKindIsRejected) {
  std::string bytes = valid_snapshot_bytes();
  bytes[9] = static_cast<char>(9);  // kind byte of the first term
  std::string error;
  EXPECT_FALSE(try_load(bytes, &error));
  EXPECT_EQ(error, "invalid term kind");
}

TEST(SnapshotRobustness, TripleReferencingUnknownTermIsRejected) {
  // A snapshot whose store mentions an id the dictionary never assigned:
  // every block checksum is valid, so only the id-range check can object.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  const auto s = dict.intern_iri("http://x/s");
  const auto p = dict.intern_iri("http://x/p");
  store.insert({s, p, 7});  // id 7: beyond the 2 interned terms
  std::ostringstream out;
  rdf::save_snapshot(out, dict, store);
  std::string error;
  EXPECT_FALSE(try_load(out.str(), &error));
  EXPECT_EQ(error, "triple references unknown term");
}

TEST(SnapshotRobustness, EverySingleByteFlipIsDetected) {
  const std::string bytes = valid_snapshot_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      std::string error;
      EXPECT_FALSE(try_load(mutated, &error))
          << "flip of bit mask " << int(mask) << " at byte " << i
          << " loaded successfully";
    }
  }
}

TEST(SnapshotRobustness, NonEmptyTargetIsRejected) {
  std::istringstream in(valid_snapshot_bytes());
  rdf::Dictionary dict;
  rdf::TripleStore store;
  (void)dict.intern_iri("http://already/here");
  std::string error;
  EXPECT_FALSE(rdf::load_snapshot(in, dict, store, &error));
  EXPECT_EQ(error, "dictionary/store must be empty");
}

}  // namespace
}  // namespace parowl
