// Fault-schedule equivalence harness: the headline invariant of the
// fault-tolerance layer is that ANY seeded fault schedule the retry /
// recovery machinery survives yields a closure *bit-identical* to the
// fault-free run — not merely set-equal.  The fingerprint below therefore
// captures the exact per-worker store logs (insertion order included) and
// per-rule firing counts, and the sweep compares them across ~50 schedules
// spanning fault mixes, seeds, partition counts, and both transports.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/cluster.hpp"
#include "parowl/parallel/router.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::parallel {
namespace {

/// Everything that must be bit-identical between a faulty and a fault-free
/// run: the per-worker store logs (order matters), per-rule firings, round
/// counts, and the union size.
struct Fingerprint {
  std::vector<std::vector<rdf::Triple>> logs;
  std::vector<std::vector<std::size_t>> firings;
  std::vector<std::size_t> rounds_per_worker;
  std::size_t union_results = 0;
  std::size_t rounds = 0;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  std::optional<rules::CompiledRules> compiled;
  partition::HashOwnerPolicy policy;
  std::uint32_t unique_dirs = 0;

  void SetUp() override {
    gen::LubmOptions opts;
    opts.universities = 2;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 3;
    opts.students_per_faculty = 2;
    gen::generate_lubm(opts, dict, store);
    compiled = reason::compile_ontology(store, vocab, {});
  }

  /// A throwaway directory unique to this process and call.
  std::filesystem::path scratch_dir(const std::string& tag) {
    return std::filesystem::temp_directory_path() /
           ("parowl_fi_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(unique_dirs++));
  }

  /// Partition, build a cluster over `transport`, run it, and fingerprint.
  Fingerprint run(std::uint32_t partitions, Transport& transport,
                  const ClusterOptions& copts,
                  ClusterResult* out = nullptr) {
    partition::DataPartitioning dp = partition::partition_data(
        store, dict, vocab, policy, partitions);
    const auto router =
        std::make_shared<OwnerRouter>(std::move(dp.owners));
    Cluster cluster(transport, copts);
    WorkerOptions wopts;
    wopts.dict = &dict;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      cluster.add_worker(compiled->rules, router, wopts);
      cluster.load(p, dp.parts[p]);
    }
    const ClusterResult result = cluster.run();
    if (out != nullptr) {
      *out = result;
    }
    return fingerprint(cluster, result);
  }

  static Fingerprint fingerprint(const Cluster& cluster,
                                 const ClusterResult& result) {
    Fingerprint fp;
    for (std::uint32_t p = 0; p < cluster.num_workers(); ++p) {
      const Worker& w = cluster.worker(p);
      fp.logs.push_back(w.store().triples());
      fp.firings.push_back(w.rule_firings());
      fp.rounds_per_worker.push_back(w.rounds().size());
    }
    fp.union_results = result.union_results;
    fp.rounds = result.rounds;
    return fp;
  }

  static void expect_identical(const Fingerprint& got,
                               const Fingerprint& golden,
                               const std::string& label) {
    ASSERT_EQ(got.logs.size(), golden.logs.size()) << label;
    for (std::size_t p = 0; p < golden.logs.size(); ++p) {
      EXPECT_EQ(got.logs[p], golden.logs[p])
          << label << ": worker " << p << " store log diverged";
      EXPECT_EQ(got.firings[p], golden.firings[p])
          << label << ": worker " << p << " rule firings diverged";
      EXPECT_EQ(got.rounds_per_worker[p], golden.rounds_per_worker[p])
          << label << ": worker " << p << " round count diverged";
    }
    EXPECT_EQ(got.union_results, golden.union_results) << label;
    EXPECT_EQ(got.rounds, golden.rounds) << label;
  }
};

/// Named fault mixes the sweeps draw from.
struct Mix {
  const char* name;
  double drop, duplicate, corrupt, delay, reorder;
};

constexpr Mix kMixes[] = {
    {"drop", 0.30, 0.0, 0.0, 0.0, 0.0},
    {"dup", 0.0, 0.35, 0.0, 0.0, 0.0},
    {"corrupt", 0.0, 0.0, 0.25, 0.0, 0.0},
    {"reorder", 0.0, 0.0, 0.0, 0.0, 0.60},
    {"mixed", 0.15, 0.10, 0.10, 0.10, 0.30},
};

FaultSpec make_spec(const Mix& mix, std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.drop = mix.drop;
  spec.duplicate = mix.duplicate;
  spec.corrupt = mix.corrupt;
  spec.delay = mix.delay;
  spec.reorder = mix.reorder;
  return spec;
}

// 3 partition counts x 5 mixes x 3 seeds = 45 schedules over the memory
// transport, every one byte-compared against its fault-free golden run.
TEST_F(FaultInjectionTest, MemoryTransportScheduleSweepIsBitIdentical) {
  const std::uint32_t partition_counts[] = {2, 4, 8};
  const std::uint64_t seeds[] = {11, 23, 47};
  std::size_t schedules = 0;
  std::uint64_t injected_total = 0;

  for (const std::uint32_t parts : partition_counts) {
    MemoryTransport golden_transport(parts);
    const Fingerprint golden = run(parts, golden_transport, {});

    for (const Mix& mix : kMixes) {
      for (const std::uint64_t seed : seeds) {
        MemoryTransport inner(parts);
        const FaultSpec spec = make_spec(mix, seed);
        FaultyTransport faulty(inner, spec);
        ClusterResult result;
        const Fingerprint fp = run(parts, faulty, {}, &result);

        const std::string label = std::string(mix.name) + "/seed" +
                                  std::to_string(seed) + "/p" +
                                  std::to_string(parts);
        expect_identical(fp, golden, label);
        injected_total += result.report.injected.total();
        ++schedules;
      }
    }
  }
  EXPECT_EQ(schedules, 45u);
  // The sweep must have actually perturbed the runs, massively.
  EXPECT_GT(injected_total, 200u);
}

// The same invariant over the file transport (atomic-rename spool files):
// 2 partition counts x 2 mixes x 2 seeds = 8 schedules.
TEST_F(FaultInjectionTest, FileTransportScheduleSweepIsBitIdentical) {
  const std::uint32_t partition_counts[] = {2, 4};
  const Mix file_mixes[] = {kMixes[2], kMixes[4]};  // corrupt, mixed
  const std::uint64_t seeds[] = {7, 19};
  std::uint64_t injected_total = 0;

  for (const std::uint32_t parts : partition_counts) {
    {
      FileTransport golden_transport(scratch_dir("golden"), parts);
      const Fingerprint golden = run(parts, golden_transport, {});

      for (const Mix& mix : file_mixes) {
        for (const std::uint64_t seed : seeds) {
          FileTransport inner(scratch_dir("faulty"), parts);
          const FaultSpec spec = make_spec(mix, seed);
          FaultyTransport faulty(inner, spec);
          ClusterResult result;
          const Fingerprint fp = run(parts, faulty, {}, &result);
          expect_identical(fp, golden,
                           std::string("file/") + mix.name + "/seed" +
                               std::to_string(seed) + "/p" +
                               std::to_string(parts));
          injected_total += result.report.injected.total();
        }
      }
    }
  }
  EXPECT_GT(injected_total, 20u);
}

// Kill worker k at round r, recover from the round-(r-1) checkpoints, and
// the completed run is still bit-identical to the never-crashed one.
TEST_F(FaultInjectionTest, WorkerKillRecoversToBitIdenticalFixpoint) {
  const std::uint32_t parts = 4;
  MemoryTransport golden_transport(parts);
  ClusterResult golden_result;
  const Fingerprint golden = run(parts, golden_transport, {}, &golden_result);
  ASSERT_GE(golden_result.rounds, 2u)
      << "fixture too small to crash mid-run";

  for (const std::uint32_t crash_worker : {1u, 3u}) {
    const auto ckpt = scratch_dir("crash");
    MemoryTransport transport(parts);
    ClusterOptions copts;
    copts.checkpoint.dir = ckpt.string();
    copts.fault_tolerance.crash_at_round = 1;
    copts.fault_tolerance.crash_worker = crash_worker;
    ClusterResult result;
    const Fingerprint fp = run(parts, transport, copts, &result);

    const std::string label = "crash worker " + std::to_string(crash_worker);
    expect_identical(fp, golden, label);
    EXPECT_TRUE(result.report.recovered) << label;
    EXPECT_EQ(result.report.recovered_from_round, 0) << label;
    EXPECT_GT(result.report.checkpoints_written, 0u) << label;
    std::filesystem::remove_all(ckpt);
  }
}

// Crash recovery composed with an active fault schedule: the stale
// in-flight batches of the crashed round plus injected faults must all be
// absorbed by dedup/retry without disturbing the closure.
TEST_F(FaultInjectionTest, CrashUnderFaultsIsStillBitIdentical) {
  const std::uint32_t parts = 4;
  MemoryTransport golden_transport(parts);
  ClusterResult golden_result;
  const Fingerprint golden = run(parts, golden_transport, {}, &golden_result);
  ASSERT_GE(golden_result.rounds, 2u);

  const auto ckpt = scratch_dir("crash_faulty");
  MemoryTransport inner(parts);
  const FaultSpec spec = make_spec(kMixes[4], 31);  // mixed
  FaultyTransport faulty(inner, spec);
  ClusterOptions copts;
  copts.checkpoint.dir = ckpt.string();
  copts.fault_tolerance.crash_at_round = 1;
  copts.fault_tolerance.crash_worker = 2;
  ClusterResult result;
  const Fingerprint fp = run(parts, faulty, copts, &result);

  expect_identical(fp, golden, "crash+faults");
  EXPECT_TRUE(result.report.recovered);
  EXPECT_GT(result.report.injected.total(), 0u);
  std::filesystem::remove_all(ckpt);
}

// Cold restart: a *fresh* cluster (new transport, empty workers) restored
// from the checkpoint files of a finished run resumes and lands on the
// same fixpoint — the full process-restart story, not just in-run recovery.
TEST_F(FaultInjectionTest, FreshClusterRestoresFromCheckpointFiles) {
  const std::uint32_t parts = 3;
  const auto ckpt = scratch_dir("restart");

  MemoryTransport first_transport(parts);
  ClusterOptions copts;
  copts.checkpoint.dir = ckpt.string();
  ClusterResult first_result;
  const Fingerprint golden = run(parts, first_transport, copts, &first_result);
  EXPECT_GT(first_result.report.checkpoints_written, 0u);

  // Second process: same plan, fresh state, restore then run to completion.
  partition::DataPartitioning dp = partition::partition_data(
      store, dict, vocab, policy, parts);
  const auto router = std::make_shared<OwnerRouter>(std::move(dp.owners));
  MemoryTransport second_transport(parts);
  Cluster cluster(second_transport, copts);
  WorkerOptions wopts;
  wopts.dict = &dict;
  for (std::uint32_t p = 0; p < parts; ++p) {
    cluster.add_worker(compiled->rules, router, wopts);
  }
  const std::int64_t restored = cluster.restore_from_checkpoints();
  EXPECT_GE(restored, 0);
  const ClusterResult second_result = cluster.run();
  expect_identical(fingerprint(cluster, second_result), golden,
                   "cold restart");

  std::filesystem::remove_all(ckpt);
}

// A damaged checkpoint round must be skipped in favour of the newest round
// whose complete per-worker set still loads cleanly.
TEST_F(FaultInjectionTest, DamagedCheckpointRoundFallsBackToOlderOne) {
  const std::uint32_t parts = 2;
  const auto ckpt = scratch_dir("damaged");

  MemoryTransport first_transport(parts);
  ClusterOptions copts;
  copts.checkpoint.dir = ckpt.string();
  ClusterResult first_result;
  run(parts, first_transport, copts, &first_result);
  ASSERT_GE(first_result.rounds, 2u);

  // Find the newest checkpoint round and truncate one of its files.
  std::int64_t newest = -1;
  for (const auto& entry : std::filesystem::directory_iterator(ckpt)) {
    const std::string stem = entry.path().stem().string();
    const auto pos = stem.find("_r");
    if (entry.path().extension() == ".ckpt" && pos != std::string::npos) {
      newest = std::max<std::int64_t>(newest,
                                      std::stoll(stem.substr(pos + 2)));
    }
  }
  ASSERT_GE(newest, 1);
  const auto damaged = std::filesystem::path(ckpt) /
                       ("w0_r" + std::to_string(newest) + ".ckpt");
  ASSERT_TRUE(std::filesystem::exists(damaged));
  std::filesystem::resize_file(
      damaged, std::filesystem::file_size(damaged) / 2);

  partition::DataPartitioning dp = partition::partition_data(
      store, dict, vocab, policy, parts);
  const auto router = std::make_shared<OwnerRouter>(std::move(dp.owners));
  MemoryTransport second_transport(parts);
  Cluster cluster(second_transport, copts);
  WorkerOptions wopts;
  wopts.dict = &dict;
  for (std::uint32_t p = 0; p < parts; ++p) {
    cluster.add_worker(compiled->rules, router, wopts);
  }
  const std::int64_t restored = cluster.restore_from_checkpoints();
  EXPECT_LT(restored, newest);
  EXPECT_GE(restored, 0);

  std::filesystem::remove_all(ckpt);
}

}  // namespace
}  // namespace parowl::parallel
