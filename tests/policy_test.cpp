#include <gtest/gtest.h>

#include <unordered_set>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/partition/metrics.hpp"
#include "parowl/partition/owner_policy.hpp"

namespace parowl::partition {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;

  void lubm(std::uint32_t universities) {
    gen::LubmOptions opts;
    opts.universities = universities;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 4;
    opts.students_per_faculty = 3;
    gen::generate_lubm(opts, dict, store);
  }
};

TEST_F(PolicyTest, HashPolicyCoversAllResources) {
  lubm(2);
  const auto split = ontology::split_schema(store, vocab);
  const HashOwnerPolicy policy;
  const OwnerTable owners = policy.assign(split.instance, dict, 4);
  for (const rdf::Triple& t : split.instance) {
    EXPECT_TRUE(owners.contains(t.s));
    if (dict.is_resource(t.o)) {
      EXPECT_TRUE(owners.contains(t.o));
    }
    EXPECT_LT(owners.at(t.s), 4u);
  }
}

TEST_F(PolicyTest, HashPolicyIsDeterministic) {
  lubm(1);
  const auto split = ontology::split_schema(store, vocab);
  const HashOwnerPolicy policy;
  const OwnerTable a = policy.assign(split.instance, dict, 4);
  const OwnerTable b = policy.assign(split.instance, dict, 4);
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [term, part] : a) {
    EXPECT_EQ(b.at(term), part);
  }
  // owner_of agrees with the table.
  for (const auto& [term, part] : a) {
    EXPECT_EQ(policy.owner_of(dict.lexical(term), 4), part);
  }
}

TEST_F(PolicyTest, LubmUniversityKeyExtraction) {
  EXPECT_EQ(lubm_university_key("http://www.Univ3.edu/Department1"), 3);
  EXPECT_EQ(lubm_university_key(
                "http://www.Department0.Univ12.edu/FullProfessor1"),
            12);
  EXPECT_EQ(lubm_university_key("http://example.org/nothing"),
            DomainOwnerPolicy::kNoKey);
  EXPECT_EQ(lubm_university_key("http://www.Univ.edu/x"),
            DomainOwnerPolicy::kNoKey);
}

TEST_F(PolicyTest, MdcFieldKeyExtraction) {
  EXPECT_EQ(gen::mdc_field_key("http://cisoft.usc.edu/data/Field7/Well1"), 7);
  EXPECT_EQ(gen::mdc_field_key("http://x/noField"), -1);
}

TEST_F(PolicyTest, DomainPolicyGroupsUniversitiesTogether) {
  lubm(4);
  const auto split = ontology::split_schema(store, vocab);
  const DomainOwnerPolicy policy(&lubm_university_key);
  const OwnerTable owners = policy.assign(split.instance, dict, 2);

  // All nodes of one university (identifiable by key) share a partition.
  std::unordered_map<std::int64_t, std::uint32_t> univ_part;
  for (const auto& [term, part] : owners) {
    const auto key = lubm_university_key(dict.lexical(term));
    if (key == DomainOwnerPolicy::kNoKey) {
      continue;
    }
    const auto [it, fresh] = univ_part.try_emplace(key, part);
    EXPECT_EQ(it->second, part) << "university " << key << " split";
  }
  EXPECT_EQ(univ_part.size(), 4u);
}

TEST_F(PolicyTest, GraphPolicyProducesValidOwners) {
  lubm(2);
  const auto split = ontology::split_schema(store, vocab);
  const GraphOwnerPolicy policy;
  const OwnerTable owners = policy.assign(split.instance, dict, 4);
  std::unordered_set<std::uint32_t> used;
  for (const auto& [term, part] : owners) {
    EXPECT_LT(part, 4u);
    used.insert(part);
  }
  EXPECT_GE(used.size(), 2u);  // actually spreads nodes
}

TEST_F(PolicyTest, DataPartitioningAssignsEveryInstanceTriple) {
  lubm(2);
  const GraphOwnerPolicy policy;
  const DataPartitioning dp =
      partition_data(store, dict, vocab, policy, 4);

  ASSERT_EQ(dp.parts.size(), 4u);
  EXPECT_GT(dp.schema.size(), 0u);
  EXPECT_GE(dp.partition_seconds, 0.0);

  // Union of parts == instance triples; replication factor <= 2.
  const auto split = ontology::split_schema(store, vocab);
  std::unordered_set<rdf::Triple, rdf::TripleHash> in_parts;
  std::size_t total = 0;
  for (const auto& part : dp.parts) {
    total += part.size();
    in_parts.insert(part.begin(), part.end());
  }
  EXPECT_EQ(in_parts.size(), split.instance.size());
  EXPECT_LE(total, 2 * split.instance.size());
  for (const rdf::Triple& t : split.instance) {
    EXPECT_TRUE(in_parts.contains(t));
  }
}

TEST_F(PolicyTest, JoinableTuplesAreColocated) {
  // The correctness property behind Algorithm 1 (§III-A): any two tuples
  // that share a resource r (as S or O) both appear in owner(r)'s part.
  lubm(2);
  std::vector<std::unique_ptr<OwnerPolicy>> policies;
  policies.push_back(std::make_unique<GraphOwnerPolicy>());
  policies.push_back(std::make_unique<HashOwnerPolicy>());
  policies.push_back(
      std::make_unique<DomainOwnerPolicy>(&lubm_university_key));
  PartitionerOptions hdrf;
  hdrf.kind = PartitionerKind::kHdrf;
  policies.push_back(std::make_unique<StreamingOwnerPolicy>(hdrf));
  PartitionerOptions fennel_sm;
  fennel_sm.kind = PartitionerKind::kFennel;
  fennel_sm.split_merge_factor = 4;
  policies.push_back(std::make_unique<StreamingOwnerPolicy>(fennel_sm));
  for (const auto& policy : policies) {
    const DataPartitioning dp =
        partition_data(store, dict, vocab, *policy, 3);
    std::vector<std::unordered_set<rdf::Triple, rdf::TripleHash>> parts(3);
    for (std::size_t p = 0; p < 3; ++p) {
      parts[p].insert(dp.parts[p].begin(), dp.parts[p].end());
    }
    const auto split = ontology::split_schema(store, vocab);
    for (const rdf::Triple& t : split.instance) {
      // t must be present at owner(subject) and owner(object).
      EXPECT_TRUE(parts[dp.owners.at(t.s)].contains(t));
      if (dict.is_resource(t.o) && dp.owners.contains(t.o)) {
        EXPECT_TRUE(parts[dp.owners.at(t.o)].contains(t));
      }
    }
  }
}

TEST_F(PolicyTest, MetricsBalAndIr) {
  lubm(4);
  const DomainOwnerPolicy domain_policy(&lubm_university_key);
  const HashOwnerPolicy hash_policy;

  const auto dp_domain = partition_data(store, dict, vocab, domain_policy, 4);
  const auto dp_hash = partition_data(store, dict, vocab, hash_policy, 4);

  const PartitionMetrics m_domain =
      compute_partition_metrics(dp_domain, dict);
  const PartitionMetrics m_hash = compute_partition_metrics(dp_hash, dict);

  // Domain partitioning on LUBM keeps replication low; hashing scatters
  // connected nodes, so its IR must be much higher (the Table I contrast).
  EXPECT_LT(m_domain.input_replication, 0.5);
  EXPECT_GT(m_hash.input_replication, m_domain.input_replication * 2);
  EXPECT_EQ(m_domain.nodes_per_partition.size(), 4u);
  EXPECT_GT(m_domain.total_nodes, 0u);
}

TEST_F(PolicyTest, SplitMergeImprovesOrMatchesHdrfOnLubm) {
  // The FSM acceptance property at equal balance tolerance: over-partition
  // to k*m then merge must never replicate more than plain HDRF at k.
  lubm(2);
  PartitionerOptions plain;
  plain.kind = PartitionerKind::kHdrf;
  PartitionerOptions merged = plain;
  merged.split_merge_factor = 4;

  const StreamingOwnerPolicy plain_policy(plain);
  const StreamingOwnerPolicy merged_policy(merged);
  const auto dp_plain = partition_data(store, dict, vocab, plain_policy, 4);
  const auto dp_merged = partition_data(store, dict, vocab, merged_policy, 4);
  EXPECT_EQ(dp_plain.algorithm, "hdrf");
  EXPECT_EQ(dp_merged.algorithm, "hdrf+sm4");
  EXPECT_LE(dp_merged.plan_metrics.replication_factor,
            dp_plain.plan_metrics.replication_factor + 1e-9);
}

TEST_F(PolicyTest, MetricsOnSinglePartitionAreZero) {
  lubm(1);
  const HashOwnerPolicy policy;
  const auto dp = partition_data(store, dict, vocab, policy, 1);
  const PartitionMetrics m = compute_partition_metrics(dp, dict);
  EXPECT_DOUBLE_EQ(m.bal, 0.0);
  EXPECT_NEAR(m.input_replication, 0.0, 1e-9);
}

TEST_F(PolicyTest, OutputReplicationMetric) {
  const std::vector<std::size_t> results{50, 60};
  EXPECT_NEAR(output_replication(results, 100), 0.10, 1e-9);
  EXPECT_NEAR(output_replication(results, 110), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(output_replication(results, 0), 0.0);
}

TEST_F(PolicyTest, MdcDomainPolicyKeepsFieldsTogether) {
  gen::MdcOptions opts;
  opts.fields = 3;
  gen::generate_mdc(opts, dict, store);
  const DomainOwnerPolicy policy(&gen::mdc_field_key, "MDC dom");
  const DataPartitioning dp = partition_data(store, dict, vocab, policy, 3);
  const PartitionMetrics m = compute_partition_metrics(dp, dict);
  EXPECT_LT(m.input_replication, 0.2);
  EXPECT_EQ(policy.name(), "MDC dom");
}

}  // namespace
}  // namespace parowl::partition
