#include <gtest/gtest.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/reason/explain.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::reason {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore base;
  rdf::TripleStore materialized;
  rules::RuleSet active_rules;

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  void materialize_kb() {
    materialized.insert_all(base.triples());
    const rules::CompiledRules compiled = compile_ontology(base, vocab);
    // Schema-closure ground facts count as asserted for explanation: the
    // compiler folded their derivations into rule constants.
    materialized.insert_all(compiled.ground_facts);
    base.insert_all(compiled.ground_facts);
    ForwardOptions fopts;
    fopts.dict = &dict;
    ForwardEngine(materialized, compiled.rules, fopts).run(0);
    active_rules = compiled.rules;
  }

  /// Count asserted leaves / total nodes in a proof tree.
  static void tree_stats(const Derivation& node, std::size_t& leaves,
                         std::size_t& nodes) {
    ++nodes;
    if (node.asserted) {
      ++leaves;
      EXPECT_TRUE(node.premises.empty());
    }
    for (const auto& p : node.premises) {
      tree_stats(*p, leaves, nodes);
    }
  }
};

TEST_F(ExplainTest, BaseFactIsAsserted) {
  base.insert({iri("a"), iri("p"), iri("b")});
  materialize_kb();
  const Explainer ex(materialized, base, active_rules);
  const auto proof = ex.explain({iri("a"), iri("p"), iri("b")});
  ASSERT_NE(proof, nullptr);
  EXPECT_TRUE(proof->asserted);
}

TEST_F(ExplainTest, SubclassDerivationExplained) {
  const auto student = iri("Student"), person = iri("Person");
  base.insert({student, vocab.rdfs_subclass_of, person});
  base.insert({iri("sam"), vocab.rdf_type, student});
  materialize_kb();

  const Explainer ex(materialized, base, active_rules);
  const auto proof = ex.explain({iri("sam"), vocab.rdf_type, person});
  ASSERT_NE(proof, nullptr);
  EXPECT_FALSE(proof->asserted);
  EXPECT_EQ(proof->rule_name, "rdfs9");
  ASSERT_EQ(proof->premises.size(), 1u);
  EXPECT_TRUE(proof->premises[0]->asserted);
}

TEST_F(ExplainTest, TransitiveChainProofBottomsOut) {
  const auto anc = iri("anc");
  base.insert({anc, vocab.rdf_type, vocab.owl_transitive_property});
  base.insert({iri("a"), anc, iri("b")});
  base.insert({iri("b"), anc, iri("c")});
  base.insert({iri("c"), anc, iri("d")});
  materialize_kb();

  const Explainer ex(materialized, base, active_rules);
  const auto proof = ex.explain({iri("a"), anc, iri("d")});
  ASSERT_NE(proof, nullptr);
  EXPECT_EQ(proof->rule_name, "rdfp4");
  std::size_t leaves = 0, nodes = 0;
  tree_stats(*proof, leaves, nodes);
  EXPECT_GE(leaves, 3u);  // the full chain participates
  EXPECT_GT(nodes, leaves);
}

TEST_F(ExplainTest, SymmetricPairDoesNotLoop) {
  const auto knows = iri("knows");
  base.insert({knows, vocab.rdf_type, vocab.owl_symmetric_property});
  base.insert({iri("x"), knows, iri("y")});
  materialize_kb();

  const Explainer ex(materialized, base, active_rules);
  // (y knows x) is derived from the asserted (x knows y), never from
  // itself via double symmetry.
  const auto proof = ex.explain({iri("y"), knows, iri("x")});
  ASSERT_NE(proof, nullptr);
  EXPECT_EQ(proof->rule_name, "rdfp3");
  ASSERT_EQ(proof->premises.size(), 1u);
  EXPECT_TRUE(proof->premises[0]->asserted);
}

TEST_F(ExplainTest, UnknownTripleHasNoProof) {
  base.insert({iri("a"), iri("p"), iri("b")});
  materialize_kb();
  const Explainer ex(materialized, base, active_rules);
  EXPECT_EQ(ex.explain({iri("b"), iri("p"), iri("a")}), nullptr);
}

TEST_F(ExplainTest, EveryInferredLubmTripleIsExplainable) {
  gen::LubmOptions opts;
  opts.universities = 1;
  opts.departments_per_university = 1;
  opts.faculty_per_department = 2;
  opts.students_per_faculty = 2;
  gen::generate_lubm(opts, dict, base);
  materialize_kb();

  const Explainer ex(materialized, base, active_rules);
  std::size_t checked = 0;
  for (const rdf::Triple& t : materialized.triples()) {
    if (base.contains(t)) {
      continue;
    }
    const auto proof = ex.explain(t);
    ASSERT_NE(proof, nullptr)
        << "no proof for a materialized triple (id " << t.s << ")";
    ++checked;
  }
  EXPECT_GT(checked, 30u);
}

TEST_F(ExplainTest, TextRenderingMentionsRuleAndLeaves) {
  const auto student = iri("http://ex#Student"),
             person = iri("http://ex#Person");
  base.insert({student, vocab.rdfs_subclass_of, person});
  base.insert({iri("http://ex#sam"), vocab.rdf_type, student});
  materialize_kb();

  const Explainer ex(materialized, base, active_rules);
  const auto proof =
      ex.explain({iri("http://ex#sam"), vocab.rdf_type, person});
  ASSERT_NE(proof, nullptr);
  const std::string text = ex.to_text(*proof, dict);
  EXPECT_NE(text.find("rdfs9"), std::string::npos);
  EXPECT_NE(text.find("[asserted]"), std::string::npos);
  EXPECT_NE(text.find("sam"), std::string::npos);
}

}  // namespace
}  // namespace parowl::reason
