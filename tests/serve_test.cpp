#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/result_cache.hpp"
#include "parowl/serve/service.hpp"
#include "parowl/serve/workload.hpp"

namespace parowl {
namespace {

/// Materialized LUBM-1 universe shared by the service tests.
struct ServeFixtureData {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore store;  // materialized

  ServeFixtureData() : vocab(std::make_unique<ontology::Vocabulary>(dict)) {
    gen::LubmOptions o;
    o.universities = 1;
    gen::generate_lubm(o, dict, store);
    reason::materialize(store, dict, *vocab, {});
  }
};

serve::ServiceOptions small_options(std::size_t threads = 2) {
  serve::ServiceOptions o;
  o.threads = threads;
  o.queue_capacity = 256;
  o.cache_shards = 4;
  o.cache_capacity_per_shard = 64;
  return o;
}

// ---------------------------------------------------------------------------
// normalize_query / cache primitives

TEST(NormalizeQuery, CollapsesLayoutDifferences) {
  const std::string a =
      serve::normalize_query("SELECT ?x\nWHERE {\n  ?x a ub:Student\n}\n");
  const std::string b =
      serve::normalize_query("  SELECT  ?x WHERE { ?x a ub:Student }  ");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "SELECT ?x WHERE { ?x a ub:Student }");
}

TEST(NormalizeQuery, StripsComments) {
  EXPECT_EQ(serve::normalize_query("SELECT ?x # everything\nWHERE { }"),
            "SELECT ?x WHERE { }");
}

TEST(ResultCache, LruEvictsOldest) {
  serve::ResultCache cache(/*shards=*/1, /*capacity_per_shard=*/2);
  serve::CachedResult entry;
  entry.version = 1;
  entry.predicate_footprint = {7};
  cache.insert("q1", entry);
  cache.insert("q2", entry);
  ASSERT_TRUE(cache.lookup("q1").has_value());  // refresh q1: q2 is now LRU
  cache.insert("q3", entry);
  EXPECT_FALSE(cache.lookup("q2").has_value());
  EXPECT_TRUE(cache.lookup("q1").has_value());
  EXPECT_TRUE(cache.lookup("q3").has_value());
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(ResultCache, FootprintInvalidationIsSelective) {
  serve::ResultCache cache(2, 8);
  serve::CachedResult touches_7;
  touches_7.version = 1;
  touches_7.predicate_footprint = {7};
  serve::CachedResult touches_9;
  touches_9.version = 1;
  touches_9.predicate_footprint = {9};
  serve::CachedResult wildcard;
  wildcard.version = 1;
  wildcard.wildcard_predicate = true;
  cache.insert("a", touches_7);
  cache.insert("b", touches_9);
  cache.insert("c", wildcard);

  const rdf::TermId delta[] = {7};
  EXPECT_EQ(cache.on_update(delta, /*new_version=*/2), 2u);  // "a" and "c"
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("b").has_value());
  EXPECT_FALSE(cache.lookup("c").has_value());
}

TEST(ResultCache, VersionFloorRejectsStaleInserts) {
  serve::ResultCache cache(1, 8);
  const rdf::TermId delta[] = {7};
  cache.on_update(delta, /*new_version=*/2);

  serve::CachedResult stale;
  stale.version = 1;  // computed against the pre-update snapshot
  cache.insert("q", stale);
  EXPECT_FALSE(cache.lookup("q").has_value());
  EXPECT_EQ(cache.counters().rejected, 1u);

  serve::CachedResult fresh;
  fresh.version = 2;
  cache.insert("q", fresh);
  EXPECT_TRUE(cache.lookup("q").has_value());
}

TEST(ResultCache, DisabledCacheNeverHits) {
  serve::ResultCache cache(4, /*capacity_per_shard=*/0);
  EXPECT_FALSE(cache.enabled());
  serve::CachedResult entry;
  entry.version = 1;
  cache.insert("q", entry);
  EXPECT_FALSE(cache.lookup("q").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LatencyHistogram, PercentilesBracketSamples) {
  serve::LatencyHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.record_seconds(100e-6);  // 100 us
  }
  for (int i = 0; i < 10; ++i) {
    h.record_seconds(10e-3);  // 10 ms
  }
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.percentile_seconds(0.50);
  EXPECT_GE(p50, 100e-6);
  EXPECT_LT(p50, 1e-3);
  const double p99 = h.percentile_seconds(0.99);
  EXPECT_GE(p99, 10e-3);
  EXPECT_LT(p99, 50e-3);
}

// ---------------------------------------------------------------------------
// acceptance (a): concurrent queries return byte-identical results to serial

TEST(QueryService, ConcurrentQueriesMatchSerialExecution) {
  ServeFixtureData fx;

  // Serial ground truth, computed directly against the store.
  std::vector<std::string> texts;
  std::vector<query::ResultSet> expected;
  {
    query::SparqlParser parser(fx.dict);
    for (const gen::LubmQuery& q : gen::lubm_queries()) {
      texts.push_back(q.sparql);
      std::string error;
      const auto parsed = parser.parse(q.sparql, &error);
      ASSERT_TRUE(parsed.has_value()) << q.name << ": " << error;
      expected.push_back(query::evaluate(fx.store, *parsed));
    }
  }

  rdf::TripleStore copy = fx.store;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(copy),
                              small_options(/*threads=*/4));

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the start so every thread still covers every query.
        for (std::size_t i = 0; i < texts.size(); ++i) {
          const std::size_t q = (i + static_cast<std::size_t>(t)) % texts.size();
          const serve::Response r = service.execute(texts[q]);
          if (r.status != serve::RequestStatus::kOk ||
              r.results.columns != expected[q].columns ||
              r.results.rows != expected[q].rows) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed,
            static_cast<std::uint64_t>(kThreads * kRounds) * texts.size());
  // 14 distinct queries, hundreds of requests: nearly everything hits.
  EXPECT_GT(stats.cache.hits, stats.cache.misses);
}

// ---------------------------------------------------------------------------
// acceptance (b): incremental updates invalidate exactly the overlapping
// entries and re-executed queries see the new closure

TEST(QueryService, UpdateInvalidatesByPredicateFootprint) {
  ServeFixtureData fx;
  const std::string prefix =
      std::string("PREFIX ub: <") + gen::kUnivBenchNs + ">\n";
  const std::string q_students =
      prefix + "SELECT ?x WHERE { ?x a ub:Student }";
  const std::string q_names =
      prefix + "SELECT ?x ?n WHERE { ?x ub:name ?n }";

  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store),
                              small_options());

  const serve::Response students_before = service.execute(q_students);
  const serve::Response names_before = service.execute(q_names);
  ASSERT_EQ(students_before.status, serve::RequestStatus::kOk);
  ASSERT_GT(students_before.results.size(), 0u);
  EXPECT_EQ(service.execute(q_students).cache_hit, true);
  EXPECT_EQ(service.execute(q_names).cache_hit, true);

  // A new graduate student arrives: the closure must type it as a Student
  // (subclass chain), so the delta touches rdf:type.
  std::vector<rdf::Triple> batch;
  service.with_dict_exclusive([&](rdf::Dictionary& dict) {
    const auto stu =
        dict.intern_iri("http://www.Department0.Univ0.edu/BrandNewStudent");
    const auto type =
        dict.intern_iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    const auto grad = dict.intern_iri(std::string(gen::kUnivBenchNs) +
                                      "GraduateStudent");
    batch.push_back({stu, type, grad});
    return 0;
  });
  const serve::UpdateOutcome outcome = service.apply_update(batch);
  ASSERT_FALSE(outcome.result.schema_changed);
  EXPECT_EQ(outcome.version, 2u);
  EXPECT_EQ(outcome.result.added, 1u);
  EXPECT_GE(outcome.result.inferred, 1u);  // at least (stu, type, Student)
  EXPECT_GE(outcome.invalidated, 1u);      // the type-footprint entry

  // The students query was invalidated and now reflects the new closure.
  const serve::Response students_after = service.execute(q_students);
  EXPECT_FALSE(students_after.cache_hit);
  EXPECT_EQ(students_after.snapshot_version, 2u);
  EXPECT_EQ(students_after.results.size(),
            students_before.results.size() + 1);

  // The names query's footprint (ub:name) is untouched: still cached, same
  // answer.
  const serve::Response names_after = service.execute(q_names);
  EXPECT_TRUE(names_after.cache_hit);
  EXPECT_EQ(names_after.results.rows, names_before.results.rows);

  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_version, 2u);
  EXPECT_EQ(stats.updates_applied, 1u);
}

TEST(QueryService, SchemaUpdateIsRejectedWithoutPublishing) {
  ServeFixtureData fx;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store),
                              small_options());
  std::vector<rdf::Triple> batch;
  service.with_dict_exclusive([&](rdf::Dictionary& dict) {
    const auto cls = dict.intern_iri("http://example.org/NewClass");
    const auto subclass = dict.intern_iri(
        "http://www.w3.org/2000/01/rdf-schema#subClassOf");
    const auto thing =
        dict.intern_iri("http://www.w3.org/2002/07/owl#Thing");
    batch.push_back({cls, subclass, thing});
    return 0;
  });
  const serve::UpdateOutcome outcome = service.apply_update(batch);
  EXPECT_TRUE(outcome.result.schema_changed);
  EXPECT_EQ(outcome.version, 0u);
  EXPECT_EQ(service.snapshot()->version, 1u);
}

// ---------------------------------------------------------------------------
// acceptance (c): full queue sheds with kOverloaded, deterministically

TEST(QueryService, ShedsWithOverloadedWhenQueueIsFull) {
  ServeFixtureData fx;
  serve::ServiceOptions opts = small_options(/*threads=*/1);
  opts.queue_capacity = 2;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store), opts);
  const std::string q = gen::lubm_queries().front().sparql;

  // Park the single worker on a gate job so nothing drains the queue.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  serve::Executor::Job job;
  job.run = [gate](bool) { gate.wait(); };
  ASSERT_TRUE(service.executor().try_submit(std::move(job)));
  while (service.executor().queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Fill the bounded queue exactly to capacity...
  std::atomic<int> ok{0}, overloaded{0};
  auto done = [&](const serve::Response& r) {
    if (r.status == serve::RequestStatus::kOk) {
      ok.fetch_add(1);
    } else if (r.status == serve::RequestStatus::kOverloaded) {
      overloaded.fetch_add(1);
    }
  };
  EXPECT_TRUE(service.submit(q, done));
  EXPECT_TRUE(service.submit(q, done));

  // ... and the next admissions must shed, inline, without blocking.
  EXPECT_FALSE(service.submit(q, done));
  EXPECT_FALSE(service.submit(q, done));
  EXPECT_EQ(overloaded.load(), 2);

  release.set_value();
  service.drain();
  EXPECT_EQ(ok.load(), 2);
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(QueryService, ExpiredRequestsReportDeadlineExceeded) {
  ServeFixtureData fx;
  serve::ServiceOptions opts = small_options(/*threads=*/1);
  opts.queue_capacity = 8;
  opts.default_deadline_seconds = 1e-3;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store), opts);
  const std::string q = gen::lubm_queries().front().sparql;

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  serve::Executor::Job job;
  job.run = [gate](bool) { gate.wait(); };
  ASSERT_TRUE(service.executor().try_submit(std::move(job)));
  while (service.executor().queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<int> expired{0};
  service.submit(q, [&](const serve::Response& r) {
    if (r.status == serve::RequestStatus::kDeadlineExceeded) {
      expired.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // > deadline
  release.set_value();
  service.drain();
  EXPECT_EQ(expired.load(), 1);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST(QueryService, ParseErrorsAreReportedNotCached) {
  ServeFixtureData fx;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store),
                              small_options());
  const serve::Response r = service.execute("NOT SPARQL AT ALL");
  EXPECT_EQ(r.status, serve::RequestStatus::kParseError);
  EXPECT_FALSE(r.error.empty());
  const serve::Response again = service.execute("NOT SPARQL AT ALL");
  EXPECT_EQ(again.status, serve::RequestStatus::kParseError);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(service.stats().parse_errors, 2u);
}

// ---------------------------------------------------------------------------
// workload driver

TEST(Workload, ClosedLoopAnswersEveryRequest) {
  ServeFixtureData fx;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store),
                              small_options());
  std::vector<std::string> queries;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    queries.push_back(q.sparql);
  }
  serve::WorkloadOptions wopts;
  wopts.mode = serve::WorkloadMode::kClosedLoop;
  wopts.total_requests = 60;
  wopts.clients = 3;
  wopts.seed = 7;
  const serve::WorkloadReport report =
      serve::run_workload(service, queries, wopts);
  EXPECT_EQ(report.submitted, 60u);
  EXPECT_EQ(report.completed + report.shed + report.deadline_exceeded +
                report.parse_errors,
            60u);
  EXPECT_EQ(report.parse_errors, 0u);
  EXPECT_EQ(report.latency.count(), 60u);
}

TEST(Workload, OpenLoopShedsWhenOfferedLoadExceedsQueue) {
  ServeFixtureData fx;
  serve::ServiceOptions opts = small_options(/*threads=*/1);
  opts.queue_capacity = 1;
  opts.cache_enabled = false;  // every request pays full evaluation
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store), opts);
  // The heaviest queries at an arrival rate far beyond one thread's
  // capacity: a bounded queue of one must shed some of them.
  std::vector<std::string> queries;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    queries.push_back(q.sparql);
  }
  serve::WorkloadOptions wopts;
  wopts.mode = serve::WorkloadMode::kOpenLoop;
  wopts.total_requests = 300;
  wopts.arrival_rate_qps = 1e6;
  wopts.seed = 11;
  const serve::WorkloadReport report =
      serve::run_workload(service, queries, wopts);
  EXPECT_EQ(report.submitted, 300u);
  EXPECT_EQ(report.completed + report.shed + report.deadline_exceeded, 300u);
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.completed, 0u);
}

TEST(Workload, LoadQueryLinesSkipsNoiseAndJoinsContinuations) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "SELECT ?x WHERE { ?x a ub:Student }\n"
      "PREFIX ub: <http://x/> \\\n"
      "  SELECT ?y WHERE { ?y a ub:Course }\n");
  const std::vector<std::string> queries = serve::load_query_lines(in);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0], "SELECT ?x WHERE { ?x a ub:Student }");
  EXPECT_EQ(queries[1],
            "PREFIX ub: <http://x/> SELECT ?y WHERE { ?y a ub:Course }");
}

// ---------------------------------------------------------------------------
// updates racing live traffic stay consistent (deterministic seed)

TEST(QueryService, ConcurrentUpdatesNeverServeTornResults) {
  ServeFixtureData fx;
  const std::string prefix =
      std::string("PREFIX ub: <") + gen::kUnivBenchNs + ">\n";
  const std::string q_students =
      prefix + "SELECT ?x WHERE { ?x a ub:GraduateStudent }";

  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store),
                              small_options(/*threads=*/2));
  const std::size_t base_count = service.execute(q_students).results.size();

  constexpr int kBatches = 5;
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<rdf::Triple> batch;
      service.with_dict_exclusive([&](rdf::Dictionary& dict) {
        const auto stu = dict.intern_iri(
            "http://www.Department0.Univ0.edu/RaceStudent" +
            std::to_string(b));
        const auto type = dict.intern_iri(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
        const auto grad = dict.intern_iri(std::string(gen::kUnivBenchNs) +
                                          "GraduateStudent");
        batch.push_back({stu, type, grad});
        return 0;
      });
      service.apply_update(batch);
    }
  });

  // Readers: counts must be monotone in [base, base + kBatches] — a torn
  // snapshot or stale-but-overlapping cache hit would break monotonicity.
  std::atomic<bool> violation{false};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::size_t last = base_count;
      for (int i = 0; i < 200; ++i) {
        const serve::Response r = service.execute(q_students);
        const std::size_t n = r.results.size();
        if (n < last || n > base_count + kBatches) {
          violation = true;
        }
        last = n;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_FALSE(violation.load());

  // After the writer finishes, the closure reflects every batch.
  const serve::Response final_r = service.execute(q_students);
  EXPECT_EQ(final_r.results.size(), base_count + kBatches);
  EXPECT_EQ(service.snapshot()->version, 1u + kBatches);
}

TEST(QueryService, SaveSnapshotPersistsTheLatestPublishedVersion) {
  ServeFixtureData fx;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(fx.store),
                              small_options());

  // Advance past the initial version so the saved bytes provably come from
  // the *current* snapshot, not the construction-time store.
  std::vector<rdf::Triple> batch;
  service.with_dict_exclusive([&](rdf::Dictionary& dict) {
    const auto stu = dict.intern_iri(
        "http://www.Department0.Univ0.edu/SnapshotStudent0");
    const auto type = dict.intern_iri(
        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
    const auto grad = dict.intern_iri(std::string(gen::kUnivBenchNs) +
                                      "GraduateStudent");
    batch.push_back({stu, type, grad});
    return 0;
  });
  service.apply_update(batch);

  std::ostringstream out;
  const rdf::SnapshotStats ss = service.save_snapshot(out);
  EXPECT_EQ(ss.bytes, out.str().size());
  EXPECT_EQ(ss.triples, service.snapshot()->store.size());

  // The snapshot reloads into a KB identical to what the service serves.
  std::istringstream in(out.str());
  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  std::string error;
  ASSERT_TRUE(rdf::load_snapshot(in, dict2, store2, &error)) << error;
  EXPECT_EQ(store2.size(), service.snapshot()->store.size());
  EXPECT_EQ(store2.triples(), service.snapshot()->store.triples());
}

}  // namespace
}  // namespace parowl
