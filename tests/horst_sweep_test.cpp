#include <gtest/gtest.h>

#include <algorithm>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/reason/equality.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::reason {
namespace {

/// Property sweep: for every HorstOptions configuration, the four engine
/// modes (forward/query-driven x compiled/generic) derive the same closure
/// on the same data.
struct SweepCase {
  bool same_as;
  bool restrictions;
  bool reflexivity;
  const char* dataset;  // "lubm" | "mdc" | "sameas"
};

class HorstSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab =
      std::make_unique<ontology::Vocabulary>(dict);
  rdf::TripleStore base;

  void build_dataset(const char* name) {
    if (std::string_view(name) == "lubm") {
      gen::LubmOptions o;
      o.universities = 1;
      o.departments_per_university = 1;
      o.faculty_per_department = 3;
      o.students_per_faculty = 2;
      gen::generate_lubm(o, dict, base);
    } else if (std::string_view(name) == "mdc") {
      gen::MdcOptions o;
      o.fields = 1;
      o.wells_per_reservoir = 3;
      gen::generate_mdc(o, dict, base);
    } else {
      // sameAs-heavy synthetic: inverse-functional emails plus facts to
      // propagate, and a hasValue restriction.
      const auto email = dict.intern_iri("http://ex/email");
      const auto mbox = dict.intern_iri("http://ex/mbox");
      const auto vip = dict.intern_iri("http://ex/VIP");
      const auto badge = dict.intern_iri("http://ex/badge");
      const auto gold = dict.intern_iri("http://ex/gold");
      base.insert({email, vocab->rdf_type,
                   vocab->owl_inverse_functional_property});
      base.insert({vip, vocab->owl_on_property, badge});
      base.insert({vip, vocab->owl_has_value, gold});
      for (int i = 0; i < 4; ++i) {
        const auto a =
            dict.intern_iri("http://ex/a" + std::to_string(i));
        const auto b =
            dict.intern_iri("http://ex/b" + std::to_string(i));
        const auto m =
            dict.intern_iri("http://ex/m" + std::to_string(i));
        base.insert({a, email, m});
        base.insert({b, email, m});
        base.insert({a, mbox, dict.intern_iri("http://ex/box" +
                                              std::to_string(i))});
        base.insert({a, badge, gold});
      }
    }
  }
};

TEST_P(HorstSweep, AllEngineModesAgree) {
  const SweepCase c = GetParam();
  build_dataset(c.dataset);

  rules::HorstOptions horst;
  horst.include_same_as = c.same_as;
  horst.include_restrictions = c.restrictions;
  horst.include_reflexivity = c.reflexivity;

  MaterializeOptions configs[4];
  configs[0] = {};  // forward, compiled
  configs[1].strategy = Strategy::kQueryDriven;
  configs[2].compile = false;  // forward, generic
  configs[3].strategy = Strategy::kQueryDriven;
  configs[3].share_tables = true;

  std::vector<rdf::TripleStore> stores(4);
  std::vector<std::size_t> inferred(4);
  for (int i = 0; i < 4; ++i) {
    configs[i].horst = horst;
    stores[i].insert_all(base.triples());
    inferred[static_cast<std::size_t>(i)] =
        materialize(stores[i], dict, *vocab, configs[i]).inferred;
  }

  // The generic run (configs[2]) also derives schema-level triples that
  // compiled runs pre-fold as ground facts, so compare instance-level
  // entailments: every triple of each closure must appear in the generic
  // closure, and the compiled closures must agree with each other exactly.
  EXPECT_EQ(stores[0].size(), stores[1].size());
  EXPECT_EQ(stores[0].size(), stores[3].size());
  for (const rdf::Triple& t : stores[0].triples()) {
    ASSERT_TRUE(stores[1].contains(t));
    ASSERT_TRUE(stores[3].contains(t));
    ASSERT_TRUE(stores[2].contains(t));
  }
  EXPECT_GT(inferred[0], 0u);

  // Equality-mode axis: with the sameAs rules active the forward engine can
  // also run under representative rewriting; the expanded rewrite closure
  // must equal the naive closure for the same HorstOptions, compiled or
  // generic.
  if (c.same_as) {
    for (const bool compile : {true, false}) {
      EqualityManager eq;
      MaterializeOptions ropts;
      ropts.horst = horst;
      ropts.compile = compile;
      ropts.equality_mode = EqualityMode::kRewrite;
      ropts.equality = &eq;
      rdf::TripleStore rewritten;
      rewritten.insert_all(base.triples());
      materialize(rewritten, dict, *vocab, ropts);

      std::vector<rdf::Triple> expected =
          (compile ? stores[0] : stores[2]).triples();
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(expand_closure(rewritten, eq, vocab->owl_same_as), expected)
          << (compile ? "compiled" : "generic") << " rewrite";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, HorstSweep,
    ::testing::Values(SweepCase{true, true, false, "lubm"},
                      SweepCase{false, true, false, "lubm"},
                      SweepCase{true, false, false, "lubm"},
                      SweepCase{true, true, true, "lubm"},
                      SweepCase{true, true, false, "mdc"},
                      SweepCase{false, false, false, "mdc"},
                      SweepCase{true, true, false, "sameas"},
                      SweepCase{true, false, true, "sameas"}),
    [](const auto& param_info) {
      const SweepCase& c = param_info.param;
      return std::string(c.dataset) + (c.same_as ? "_sa" : "") +
             (c.restrictions ? "_re" : "") + (c.reflexivity ? "_rf" : "");
    });

}  // namespace
}  // namespace parowl::reason
