// Sync/async equivalence harness: the asynchronous executor (kAsync /
// kAsyncThreaded) drops the round barrier, so per-worker store logs are no
// longer *order*-identical to the synchronous run — but OWL-Horst closure
// is monotone and confluent, so the final per-worker tuple SETS (and hence
// the sorted logs, the union, and the per-partition result counts) are
// interleaving-independent.  The sweep below pins exactly that invariant
// across partition counts, both transports, the PR 3 fault-schedule
// matrix, steal on/off, and a kill/restore mid-run.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/cluster.hpp"
#include "parowl/parallel/router.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::parallel {
namespace {

/// The interleaving-independent closure fingerprint: per-worker store logs
/// sorted into canonical order, plus the derived aggregates.
struct SortedFingerprint {
  std::vector<std::vector<rdf::Triple>> logs;  // each sorted
  std::vector<std::size_t> results_per_partition;
  std::size_t union_results = 0;
};

class AsyncEquivalenceTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  std::optional<rules::CompiledRules> compiled;
  partition::HashOwnerPolicy policy;
  std::uint32_t unique_dirs = 0;

  void SetUp() override {
    gen::LubmOptions opts;
    opts.universities = 2;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 3;
    opts.students_per_faculty = 2;
    gen::generate_lubm(opts, dict, store);
    compiled = reason::compile_ontology(store, vocab, {});
  }

  std::filesystem::path scratch_dir(const std::string& tag) {
    return std::filesystem::temp_directory_path() /
           ("parowl_ae_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(unique_dirs++));
  }

  SortedFingerprint run(std::uint32_t partitions, Transport& transport,
                        ClusterOptions copts, ClusterResult* out = nullptr) {
    partition::DataPartitioning dp = partition::partition_data(
        store, dict, vocab, policy, partitions);
    const auto router =
        std::make_shared<OwnerRouter>(std::move(dp.owners));
    Cluster cluster(transport, copts);
    WorkerOptions wopts;
    wopts.dict = &dict;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      cluster.add_worker(compiled->rules, router, wopts);
      cluster.load(p, dp.parts[p]);
    }
    const ClusterResult result = cluster.run();
    if (out != nullptr) {
      *out = result;
    }
    return fingerprint(cluster, result);
  }

  /// Golden: the round-synchronous executor on a clean memory transport.
  SortedFingerprint golden(std::uint32_t partitions) {
    MemoryTransport transport(partitions);
    return run(partitions, transport, {});
  }

  static SortedFingerprint fingerprint(const Cluster& cluster,
                                       const ClusterResult& result) {
    SortedFingerprint fp;
    for (std::uint32_t p = 0; p < cluster.num_workers(); ++p) {
      std::vector<rdf::Triple> log = cluster.worker(p).store().triples();
      std::sort(log.begin(), log.end());
      fp.logs.push_back(std::move(log));
    }
    fp.results_per_partition = result.results_per_partition;
    fp.union_results = result.union_results;
    return fp;
  }

  static void expect_identical(const SortedFingerprint& got,
                               const SortedFingerprint& want,
                               const std::string& label) {
    ASSERT_EQ(got.logs.size(), want.logs.size()) << label;
    for (std::size_t p = 0; p < want.logs.size(); ++p) {
      EXPECT_EQ(got.logs[p], want.logs[p])
          << label << ": worker " << p << " closure set diverged";
    }
    EXPECT_EQ(got.results_per_partition, want.results_per_partition)
        << label;
    EXPECT_EQ(got.union_results, want.union_results) << label;
  }

  static ClusterOptions async_options() {
    ClusterOptions copts;
    copts.mode = ExecutionMode::kAsync;
    // Small grains force many interleaved activations and steals.
    copts.async.chunk = 64;
    copts.async.steal_batch = 64;
    return copts;
  }
};

/// The PR 3 fault-mix matrix (tests/fault_injection_test.cpp).
struct Mix {
  const char* name;
  double drop, duplicate, corrupt, delay, reorder;
};

constexpr Mix kMixes[] = {
    {"drop", 0.30, 0.0, 0.0, 0.0, 0.0},
    {"dup", 0.0, 0.35, 0.0, 0.0, 0.0},
    {"corrupt", 0.0, 0.0, 0.25, 0.0, 0.0},
    {"reorder", 0.0, 0.0, 0.0, 0.0, 0.60},
    {"mixed", 0.15, 0.10, 0.10, 0.10, 0.30},
};

FaultSpec make_spec(const Mix& mix, std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.drop = mix.drop;
  spec.duplicate = mix.duplicate;
  spec.corrupt = mix.corrupt;
  spec.delay = mix.delay;
  spec.reorder = mix.reorder;
  return spec;
}

// Fault-free async vs sync over every partition count, steal on and off.
TEST_F(AsyncEquivalenceTest, CleanRunMatchesSyncAcrossPartitionCounts) {
  for (const std::uint32_t parts : {1u, 2u, 4u, 8u}) {
    const SortedFingerprint want = golden(parts);
    for (const bool steal : {true, false}) {
      MemoryTransport transport(parts);
      ClusterOptions copts = async_options();
      copts.async.steal = steal;
      const SortedFingerprint got = run(parts, transport, copts);
      expect_identical(got, want,
                       "clean/p" + std::to_string(parts) +
                           (steal ? "/steal" : "/nosteal"));
    }
  }
}

// The full memory-transport fault matrix under kAsync: 3 partition counts
// x 5 mixes x 3 seeds = 45 schedules, every one set-identical to the
// synchronous fault-free golden run.
TEST_F(AsyncEquivalenceTest, MemoryTransportFaultSweepMatchesSync) {
  const std::uint32_t partition_counts[] = {2, 4, 8};
  const std::uint64_t seeds[] = {11, 23, 47};
  std::size_t schedules = 0;
  std::uint64_t injected_total = 0;

  for (const std::uint32_t parts : partition_counts) {
    const SortedFingerprint want = golden(parts);
    for (const Mix& mix : kMixes) {
      for (const std::uint64_t seed : seeds) {
        MemoryTransport inner(parts);
        const FaultSpec spec = make_spec(mix, seed);
        FaultyTransport faulty(inner, spec);
        ClusterResult result;
        const SortedFingerprint got =
            run(parts, faulty, async_options(), &result);
        expect_identical(got, want,
                         std::string("async/") + mix.name + "/seed" +
                             std::to_string(seed) + "/p" +
                             std::to_string(parts));
        injected_total += result.report.injected.total();
        ++schedules;
      }
    }
  }
  EXPECT_EQ(schedules, 45u);
  EXPECT_GT(injected_total, 200u);
}

// The same invariant over the file transport: 2 partition counts x 2 mixes
// x 2 seeds = 8 schedules.
TEST_F(AsyncEquivalenceTest, FileTransportFaultSweepMatchesSync) {
  const std::uint32_t partition_counts[] = {2, 4};
  const Mix file_mixes[] = {kMixes[2], kMixes[4]};  // corrupt, mixed
  const std::uint64_t seeds[] = {7, 19};
  std::uint64_t injected_total = 0;

  for (const std::uint32_t parts : partition_counts) {
    const SortedFingerprint want = golden(parts);
    for (const Mix& mix : file_mixes) {
      for (const std::uint64_t seed : seeds) {
        FileTransport inner(scratch_dir("faulty"), parts);
        const FaultSpec spec = make_spec(mix, seed);
        FaultyTransport faulty(inner, spec);
        ClusterResult result;
        const SortedFingerprint got =
            run(parts, faulty, async_options(), &result);
        expect_identical(got, want,
                         std::string("async-file/") + mix.name + "/seed" +
                             std::to_string(seed) + "/p" +
                             std::to_string(parts));
        injected_total += result.report.injected.total();
      }
    }
  }
  EXPECT_GT(injected_total, 20u);
}

// The threaded async executor (real concurrency, mutex-guarded steals)
// lands on the same closure sets.
TEST_F(AsyncEquivalenceTest, ThreadedAsyncMatchesSync) {
  for (const std::uint32_t parts : {2u, 4u}) {
    const SortedFingerprint want = golden(parts);
    MemoryTransport transport(parts);
    ClusterOptions copts = async_options();
    copts.mode = ExecutionMode::kAsyncThreaded;
    const SortedFingerprint got = run(parts, transport, copts);
    expect_identical(got, want, "threaded/p" + std::to_string(parts));
  }
}

// Kill a worker mid-run (after the first token-epoch checkpoint), restore
// the whole cluster from the epoch checkpoints, and the completed run still
// lands on the synchronous closure.
TEST_F(AsyncEquivalenceTest, KillRestoreMidRunMatchesSync) {
  const std::uint32_t parts = 4;
  const SortedFingerprint want = golden(parts);

  for (const std::uint32_t crash_worker : {1u, 3u}) {
    const auto ckpt = scratch_dir("crash");
    MemoryTransport transport(parts);
    ClusterOptions copts = async_options();
    copts.checkpoint.dir = ckpt.string();
    copts.fault_tolerance.crash_at_round = 1;  // Nth activation post-ckpt
    copts.fault_tolerance.crash_worker = crash_worker;
    ClusterResult result;
    const SortedFingerprint got = run(parts, transport, copts, &result);

    const std::string label =
        "async crash worker " + std::to_string(crash_worker);
    expect_identical(got, want, label);
    EXPECT_TRUE(result.report.recovered) << label;
    EXPECT_GT(result.report.checkpoints_written, 0u) << label;
    std::filesystem::remove_all(ckpt);
  }
}

// Kill/restore composed with an active fault schedule.
TEST_F(AsyncEquivalenceTest, KillRestoreUnderFaultsMatchesSync) {
  const std::uint32_t parts = 4;
  const SortedFingerprint want = golden(parts);

  const auto ckpt = scratch_dir("crash_faulty");
  MemoryTransport inner(parts);
  const FaultSpec spec = make_spec(kMixes[4], 31);  // mixed
  FaultyTransport faulty(inner, spec);
  ClusterOptions copts = async_options();
  copts.checkpoint.dir = ckpt.string();
  copts.fault_tolerance.crash_at_round = 1;
  copts.fault_tolerance.crash_worker = 2;
  ClusterResult result;
  const SortedFingerprint got = run(parts, faulty, copts, &result);

  expect_identical(got, want, "async crash+faults");
  EXPECT_TRUE(result.report.recovered);
  EXPECT_GT(result.report.injected.total(), 0u);
  std::filesystem::remove_all(ckpt);
}

}  // namespace
}  // namespace parowl::parallel
