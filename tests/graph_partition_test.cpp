#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "parowl/partition/graph.hpp"
#include "parowl/partition/multilevel.hpp"
#include "parowl/partition/partitioner.hpp"
#include "parowl/partition/streaming.hpp"
#include "parowl/rdf/chunked_reader.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::partition {
namespace {

Graph path_graph(std::uint32_t n) {
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, 1});
  }
  return build_graph(n, edges);
}

/// Two dense clusters of size n joined by a single bridge edge.
Graph two_cluster_graph(std::uint32_t n) {
  std::vector<WeightedEdge> edges;
  for (std::uint32_t c = 0; c < 2; ++c) {
    const std::uint32_t base = c * n;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        edges.push_back({base + i, base + j, 1});
      }
    }
  }
  edges.push_back({0, n, 1});  // bridge
  return build_graph(2 * n, edges);
}

TEST(BuildGraph, MergesParallelEdgesAndDropsSelfLoops) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 0, 2}, {1, 1, 5}};
  const Graph g = build_graph(2, edges);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.adjwgt[g.xadj[0]], 3u);  // 1 + 2 merged
}

TEST(BuildGraph, VertexWeightsDefaultToOne) {
  const Graph g = build_graph(3, {});
  EXPECT_EQ(g.total_vwgt, 3u);
  const std::vector<std::uint64_t> weights{5, 2, 1};
  const Graph h = build_graph(3, {}, weights);
  EXPECT_EQ(h.total_vwgt, 8u);
}

TEST(BuildGraph, CsrIsConsistent) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  const Graph g = build_graph(3, edges);
  EXPECT_EQ(g.xadj.size(), 4u);
  EXPECT_EQ(g.xadj.back(), g.adjncy.size());
  // Triangle: every vertex has degree 2.
  for (std::uint32_t v = 0; v < 3; ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 2u);
  }
}

TEST(ResourceGraph, BuiltFromTriples) {
  rdf::Dictionary dict;
  const auto a = dict.intern_iri("a"), b = dict.intern_iri("b"),
             p = dict.intern_iri("p");
  const auto lit = dict.intern_literal("\"x\"");
  const std::vector<rdf::Triple> triples{{a, p, b}, {a, p, lit}};
  const ResourceGraph rg = build_resource_graph(triples, dict);
  // a and b are vertices; the literal is not.
  EXPECT_EQ(rg.graph.num_vertices(), 2u);
  EXPECT_EQ(rg.graph.num_edges(), 1u);
  EXPECT_TRUE(rg.node_of.contains(a));
  EXPECT_FALSE(rg.node_of.contains(lit));
  EXPECT_EQ(rg.node_term[rg.node_of.at(b)], b);
}

TEST(PartitionGraph, KEqualsOneIsTrivial) {
  const Graph g = path_graph(10);
  const PartitionPlan plan = partition_csr_graph(g, 1);
  EXPECT_EQ(plan.metrics.edge_cut, 0u);
  for (const auto part : plan.assignment) {
    EXPECT_EQ(part, 0u);
  }
}

TEST(PartitionGraph, BisectionOfPathCutsOneEdge) {
  const Graph g = path_graph(64);
  const PartitionPlan plan = partition_csr_graph(g, 2);
  EXPECT_EQ(plan.metrics.edge_cut, 1u);  // optimal for a path
  ASSERT_EQ(plan.metrics.partition_weights.size(), 2u);
  EXPECT_NEAR(static_cast<double>(plan.metrics.partition_weights[0]), 32.0,
              4.0);
}

TEST(PartitionGraph, FindsTheBridgeBetweenClusters) {
  const Graph g = two_cluster_graph(20);
  const PartitionPlan plan = partition_csr_graph(g, 2);
  EXPECT_EQ(plan.metrics.edge_cut, 1u);
  // The two clusters must be separated exactly.
  for (std::uint32_t v = 1; v < 20; ++v) {
    EXPECT_EQ(plan.assignment[v], plan.assignment[0]);
    EXPECT_EQ(plan.assignment[20 + v], plan.assignment[20]);
  }
  EXPECT_NE(plan.assignment[0], plan.assignment[20]);
}

TEST(PartitionGraph, AssignmentsAreInRange) {
  const Graph g = two_cluster_graph(12);
  for (const int k : {2, 3, 4, 7}) {
    const PartitionPlan plan = partition_csr_graph(g, k);
    for (const auto part : plan.assignment) {
      EXPECT_LT(part, static_cast<std::uint32_t>(k));
    }
  }
}

TEST(PartitionGraph, BalancedOnRandomGraph) {
  util::Rng rng(5);
  const std::uint32_t n = 4000;
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      edges.push_back({i, static_cast<std::uint32_t>(rng.below(n)), 1});
    }
  }
  const Graph g = build_graph(n, edges);
  for (const int k : {2, 4, 8}) {
    const PartitionPlan plan = partition_csr_graph(g, k);
    const double target = static_cast<double>(n) / k;
    for (const auto w : plan.metrics.partition_weights) {
      EXPECT_LT(static_cast<double>(w), target * 1.3)
          << "k=" << k << " imbalanced";
      EXPECT_GT(static_cast<double>(w), target * 0.7);
    }
  }
}

TEST(PartitionGraph, RefinementReducesCut) {
  util::Rng rng(17);
  // Ring of cliques: refinement should find clean clique boundaries.
  const std::uint32_t cliques = 16, size = 12;
  std::vector<WeightedEdge> edges;
  for (std::uint32_t c = 0; c < cliques; ++c) {
    const std::uint32_t base = c * size;
    for (std::uint32_t i = 0; i < size; ++i) {
      for (std::uint32_t j = i + 1; j < size; ++j) {
        edges.push_back({base + i, base + j, 1});
      }
    }
    edges.push_back({base, ((c + 1) % cliques) * size, 1});
  }
  const Graph g = build_graph(cliques * size, edges);

  PartitionerOptions with, without;
  without.refine = false;
  const auto cut_with = partition_csr_graph(g, 4, with).metrics.edge_cut;
  const auto cut_without = partition_csr_graph(g, 4, without).metrics.edge_cut;
  EXPECT_LE(cut_with, cut_without);
  EXPECT_LE(cut_with, 16u);  // never worse than cutting every bridge
}

TEST(PartitionGraph, DeterministicForSameSeed) {
  const Graph g = two_cluster_graph(30);
  PartitionerOptions opts;
  opts.seed = 99;
  const auto a = partition_csr_graph(g, 4, opts);
  const auto b = partition_csr_graph(g, 4, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.metrics.edge_cut, b.metrics.edge_cut);
}

TEST(PartitionGraph, HandlesDisconnectedGraph) {
  // Two components, no edges between them at all.
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i + 1 < 50; ++i) {
    edges.push_back({i, i + 1, 1});
    edges.push_back({50 + i, 50 + i + 1, 1});
  }
  const Graph g = build_graph(100, edges);
  const PartitionPlan plan = partition_csr_graph(g, 2);
  EXPECT_EQ(plan.metrics.edge_cut, 0u);
  EXPECT_EQ(plan.metrics.partition_weights[0], 50u);
}

TEST(PartitionGraph, EmptyGraph) {
  const Graph g = build_graph(0, {});
  const PartitionPlan plan = partition_csr_graph(g, 4);
  EXPECT_TRUE(plan.assignment.empty());
  EXPECT_EQ(plan.metrics.edge_cut, 0u);
}

TEST(PartitionGraph, SingleVertex) {
  const Graph g = build_graph(1, {});
  const PartitionPlan plan = partition_csr_graph(g, 4);
  ASSERT_EQ(plan.assignment.size(), 1u);
  EXPECT_LT(plan.assignment[0], 4u);
}

TEST(PartitionGraph, BalancesVertexWeightsNotCounts) {
  // 64 light vertices (weight 1) + 8 heavy ones (weight 8) in one clique
  // chain; a 2-way split must balance total weight, so the heavy vertices
  // cannot all land on one side with half the light ones.
  std::vector<WeightedEdge> edges;
  std::vector<std::uint64_t> weights(72, 1);
  for (std::uint32_t i = 0; i + 1 < 72; ++i) {
    edges.push_back({i, i + 1, 1});
  }
  for (std::uint32_t h = 64; h < 72; ++h) {
    weights[h] = 8;
  }
  const Graph g = build_graph(72, edges, weights);
  EXPECT_EQ(g.total_vwgt, 64u + 8u * 8u);

  const PartitionPlan plan = partition_csr_graph(g, 2);
  const double half = static_cast<double>(g.total_vwgt) / 2;
  EXPECT_NEAR(static_cast<double>(plan.metrics.partition_weights[0]), half,
              half * 0.25);
}

TEST(ComputeGraphMetrics, CountsWeightedCrossings) {
  const std::vector<WeightedEdge> edges{{0, 1, 5}, {1, 2, 3}};
  const Graph g = build_graph(3, edges);
  const std::vector<std::uint32_t> split_last{0, 0, 1};
  const std::vector<std::uint32_t> split_mid{0, 1, 0};
  const std::vector<std::uint32_t> all_one{0, 0, 0};
  EXPECT_EQ(compute_graph_metrics(g, split_last, 2).edge_cut, 3u);
  EXPECT_EQ(compute_graph_metrics(g, split_mid, 2).edge_cut, 8u);
  EXPECT_EQ(compute_graph_metrics(g, all_one, 2).edge_cut, 0u);
}

TEST(ComputeGraphMetrics, ReplicationUnderPlacementRule) {
  // Path 0-1-2 split {0},{1},{2}: every vertex is replicated to each
  // neighbor's partition.  RF = (2 + 3 + 2) / 3.
  const Graph g = path_graph(3);
  const std::vector<std::uint32_t> assignment{0, 1, 2};
  const PartitionMetrics m = compute_graph_metrics(g, assignment, 3);
  EXPECT_NEAR(m.replication_factor, 7.0 / 3.0, 1e-9);
  EXPECT_EQ(m.total_nodes, 3u);
  EXPECT_EQ(m.edge_cut, 2u);
}

// ---------------------------------------------------------------------------
// Streaming partitioners (HDRF / Fennel / NE) and the split-merge post-pass.
// ---------------------------------------------------------------------------

/// Synthetic instance triples: `n` entities, `m` random subject-object
/// edges, deterministic under `seed`.
struct TripleFixture {
  rdf::Dictionary dict;
  std::vector<rdf::Triple> triples;
  std::vector<rdf::TermId> entities;

  TripleFixture(std::uint32_t n, std::size_t m, std::uint64_t seed) {
    const auto p = dict.intern_iri("http://ex/p");
    entities.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      entities.push_back(
          dict.intern_iri("http://ex/e" + std::to_string(i)));
    }
    util::Rng rng(seed);
    triples.reserve(m);
    for (std::size_t e = 0; e < m; ++e) {
      const auto s = entities[rng.below(n)];
      const auto o = entities[rng.below(n)];
      triples.push_back({s, p, o});
    }
  }
};

PartitionerOptions streaming_options(PartitionerKind kind) {
  PartitionerOptions opts;
  opts.kind = kind;
  return opts;
}

TEST(StreamingPartitioner, DeterministicForSameStream) {
  const TripleFixture fx(300, 2000, 11);
  for (const auto kind : {PartitionerKind::kHdrf, PartitionerKind::kFennel,
                          PartitionerKind::kNe}) {
    const PartitionerOptions opts = streaming_options(kind);
    auto first = make_partitioner(opts, fx.dict, 4);
    first->ingest(fx.triples);
    const PartitionPlan a = first->finalize();
    auto second = make_partitioner(opts, fx.dict, 4);
    second->ingest(fx.triples);
    const PartitionPlan b = second->finalize();
    EXPECT_EQ(a.owners, b.owners) << a.algorithm;
    EXPECT_EQ(a.metrics.edge_cut, b.metrics.edge_cut);
  }
}

TEST(StreamingPartitioner, IndependentOfChunkBoundaries) {
  const TripleFixture fx(300, 2000, 23);
  for (const auto kind : {PartitionerKind::kHdrf, PartitionerKind::kFennel,
                          PartitionerKind::kNe}) {
    const PartitionerOptions opts = streaming_options(kind);
    auto whole = make_partitioner(opts, fx.dict, 4);
    whole->ingest(fx.triples);
    const PartitionPlan reference = whole->finalize();

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{1000}}) {
      auto chunked = make_partitioner(opts, fx.dict, 4);
      for (std::size_t at = 0; at < fx.triples.size(); at += chunk) {
        const std::size_t len = std::min(chunk, fx.triples.size() - at);
        chunked->ingest(
            std::span<const rdf::Triple>(fx.triples).subspan(at, len));
      }
      const PartitionPlan plan = chunked->finalize();
      EXPECT_EQ(plan.owners, reference.owners)
          << reference.algorithm << " chunk=" << chunk;
    }
  }
}

TEST(StreamingPartitioner, IndependentOfIngestThreads) {
  // The chunk_sink hook feeds the partitioner straight from the parallel
  // reader; the assignment must match the serial reader bit for bit.
  std::string text;
  util::Rng rng(7);
  const std::uint32_t n = 200;
  for (std::size_t e = 0; e < 3000; ++e) {
    text += "<http://ex/e" + std::to_string(rng.below(n)) + "> <http://ex/p> "
            "<http://ex/e" + std::to_string(rng.below(n)) + "> .\n";
  }

  OwnerTable reference;
  for (const unsigned threads : {1u, 4u}) {
    rdf::Dictionary dict;
    rdf::TripleStore store;
    PartitionerOptions opts = streaming_options(PartitionerKind::kHdrf);
    auto partitioner = make_partitioner(opts, dict, 4);
    rdf::IngestOptions ingest;
    ingest.threads = threads;
    ingest.chunk_sink = [&](std::span<const rdf::Triple> chunk) {
      partitioner->ingest(chunk);
    };
    rdf::ingest_ntriples(text, dict, store, ingest);
    PartitionPlan plan = partitioner->finalize();
    EXPECT_EQ(plan.triples_ingested, store.size());
    if (threads == 1) {
      reference = std::move(plan.owners);
    } else {
      EXPECT_EQ(plan.owners, reference);
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(StreamingPartitioner, HonorsBalanceSlack) {
  const TripleFixture fx(600, 4000, 31);
  for (const auto kind : {PartitionerKind::kHdrf, PartitionerKind::kFennel,
                          PartitionerKind::kNe}) {
    PartitionerOptions opts = streaming_options(kind);
    opts.balance_slack = 0.05;
    auto partitioner = make_partitioner(opts, fx.dict, 4);
    partitioner->ingest(fx.triples);
    const PartitionPlan plan = partitioner->finalize();
    ASSERT_EQ(plan.metrics.partition_weights.size(), 4u);
    std::uint64_t total = 0;
    for (const auto w : plan.metrics.partition_weights) {
      total += w;
    }
    // Progressive cap + least-loaded fallback guarantee:
    //   max_load <= (1 + slack) * total / k + max_vertex_weight.
    const double bound =
        (1.0 + opts.balance_slack) * static_cast<double>(total) / 4.0 + 2.0;
    for (const auto w : plan.metrics.partition_weights) {
      EXPECT_LE(static_cast<double>(w), bound) << plan.algorithm;
    }
  }
}

TEST(StreamingPartitioner, PeakStateIsLinearInVertices) {
  // Many more edges than vertices: state must track |V| + window + k^2,
  // never |E| (the acceptance criterion for the streaming path).
  const std::uint32_t n = 500;
  const std::size_t m = 30000;
  const TripleFixture fx(n, m, 43);
  PartitionerOptions opts = streaming_options(PartitionerKind::kHdrf);
  auto partitioner = make_partitioner(opts, fx.dict, 8);
  partitioner->ingest(fx.triples);
  const PartitionPlan plan = partitioner->finalize();
  EXPECT_EQ(plan.triples_ingested, m);
  const std::size_t budget = n + opts.window + 8 * 8 + 2 * 8 + 64;
  EXPECT_LE(plan.peak_state_entries, budget);
  EXPECT_LT(plan.peak_state_entries, m / 4);  // decisively below O(|E|)
}

/// Community-structured triples: dense blocks with sparse cross edges —
/// the regime where merging co-replicated fine parts pays off.
TripleFixture community_fixture(std::uint32_t communities,
                                std::uint32_t size, std::uint64_t seed) {
  TripleFixture fx(communities * size, 0, seed);
  const auto p = fx.dict.intern_iri("http://ex/p");
  util::Rng rng(seed);
  for (std::uint32_t c = 0; c < communities; ++c) {
    const std::uint32_t base = c * size;
    for (std::size_t e = 0; e < std::size_t{6} * size; ++e) {
      const auto s = fx.entities[base + rng.below(size)];
      const auto o = fx.entities[base + rng.below(size)];
      fx.triples.push_back({s, p, o});
    }
    // A few cross-community edges.
    const auto s = fx.entities[base + rng.below(size)];
    const auto o = fx.entities[rng.below(communities * size)];
    fx.triples.push_back({s, p, o});
  }
  return fx;
}

TEST(StreamingPartitioner, SplitMergeImprovesOrMatchesReplication) {
  const TripleFixture fx = community_fixture(16, 30, 3);
  PartitionerOptions plain = streaming_options(PartitionerKind::kHdrf);
  PartitionerOptions merged = plain;
  merged.split_merge_factor = 4;

  auto a = make_partitioner(plain, fx.dict, 4);
  a->ingest(fx.triples);
  const PartitionPlan plan_plain = a->finalize();
  auto b = make_partitioner(merged, fx.dict, 4);
  b->ingest(fx.triples);
  const PartitionPlan plan_merged = b->finalize();

  EXPECT_EQ(plan_merged.algorithm, "hdrf+sm4");
  EXPECT_LE(plan_merged.metrics.replication_factor,
            plan_plain.metrics.replication_factor + 1e-9);
  // Both must still respect the balance cap at the final k.
  std::uint64_t total = 0;
  for (const auto w : plan_merged.metrics.partition_weights) {
    total += w;
  }
  const double bound =
      (1.0 + merged.balance_slack) * static_cast<double>(total) / 4.0 + 2.0;
  for (const auto w : plan_merged.metrics.partition_weights) {
    EXPECT_LE(static_cast<double>(w), bound);
  }
}

TEST(StreamingCsr, AssignmentsValidForAllKinds) {
  const Graph g = two_cluster_graph(16);
  for (const auto kind : {PartitionerKind::kHdrf, PartitionerKind::kFennel,
                          PartitionerKind::kNe}) {
    const PartitionPlan plan =
        partition_csr_graph(g, 4, streaming_options(kind));
    ASSERT_EQ(plan.assignment.size(), g.num_vertices()) << plan.algorithm;
    for (const auto part : plan.assignment) {
      EXPECT_LT(part, 4u);
    }
    EXPECT_EQ(plan.partitions, 4u);
    EXPECT_TRUE(plan.owners.empty());
  }
}

TEST(StreamingCsr, NeKeepsClustersMostlyTogether) {
  // Two dense clusters: a window-local BFS region grower should cut far
  // fewer edges than a random split (~half of 381).
  const Graph g = two_cluster_graph(20);
  const PartitionPlan plan =
      partition_csr_graph(g, 2, streaming_options(PartitionerKind::kNe));
  EXPECT_LT(plan.metrics.edge_cut, g.num_edges() / 3);
}

TEST(SplitMergeRemap, IdentityWhenAlreadyCoarse) {
  const std::vector<std::uint64_t> masks{0b01, 0b10};
  const std::vector<std::uint64_t> weights{5, 5};
  const auto remap = split_merge_remap(masks, weights, 2, 0.05);
  EXPECT_EQ(remap, (std::vector<std::uint32_t>{0, 1}));
}

TEST(SplitMergeRemap, MergesCoReplicatedParts) {
  // Vertices replicated across {0,1} and across {2,3}: merging those pairs
  // erases all replication, so the greedy pass must find exactly them.
  std::vector<std::uint64_t> masks;
  std::vector<std::uint64_t> weights{10, 10, 10, 10};
  for (int i = 0; i < 8; ++i) {
    masks.push_back(0b0011);
    masks.push_back(0b1100);
  }
  const auto remap = split_merge_remap(masks, weights, 2, 0.05);
  EXPECT_EQ(remap[0], remap[1]);
  EXPECT_EQ(remap[2], remap[3]);
  EXPECT_NE(remap[0], remap[2]);
}

TEST(SplitMergeRemap, RespectsWeightCap) {
  // Max gain would merge 0 and 1, but their combined weight busts the cap;
  // the pass must fall back to a feasible pair.
  std::vector<std::uint64_t> masks(6, 0b0011);
  const std::vector<std::uint64_t> weights{60, 60, 10, 10};
  const auto remap = split_merge_remap(masks, weights, 2, 0.10);
  // Total 140, cap = 1.1 * 70 = 77: {60, 60} is infeasible.
  EXPECT_NE(remap[0], remap[1]);
}

TEST(PartitionerFactory, ParsesKindNames) {
  EXPECT_EQ(partitioner_kind_from("hdrf"), PartitionerKind::kHdrf);
  EXPECT_EQ(partitioner_kind_from("fennel"), PartitionerKind::kFennel);
  EXPECT_EQ(partitioner_kind_from("ne"), PartitionerKind::kNe);
  EXPECT_EQ(partitioner_kind_from("multilevel"), PartitionerKind::kMultilevel);
  // Legacy alias used by the old --policy flag.
  EXPECT_EQ(partitioner_kind_from("graph"), PartitionerKind::kMultilevel);
  EXPECT_FALSE(partitioner_kind_from("metis").has_value());
  EXPECT_EQ(to_string(PartitionerKind::kFennel), "fennel");
}

TEST(PartitionerFactory, StreamingRejectsTooManyPartitions) {
  rdf::Dictionary dict;
  EXPECT_THROW(
      make_partitioner(streaming_options(PartitionerKind::kHdrf), dict, 65),
      std::invalid_argument);
}

}  // namespace
}  // namespace parowl::partition
