#include <gtest/gtest.h>

#include <numeric>

#include "parowl/partition/graph.hpp"
#include "parowl/partition/multilevel.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::partition {
namespace {

Graph path_graph(std::uint32_t n) {
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, 1});
  }
  return build_graph(n, edges);
}

/// Two dense clusters of size n joined by a single bridge edge.
Graph two_cluster_graph(std::uint32_t n) {
  std::vector<WeightedEdge> edges;
  for (std::uint32_t c = 0; c < 2; ++c) {
    const std::uint32_t base = c * n;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = i + 1; j < n; ++j) {
        edges.push_back({base + i, base + j, 1});
      }
    }
  }
  edges.push_back({0, n, 1});  // bridge
  return build_graph(2 * n, edges);
}

TEST(BuildGraph, MergesParallelEdgesAndDropsSelfLoops) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 0, 2}, {1, 1, 5}};
  const Graph g = build_graph(2, edges);
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.adjwgt[g.xadj[0]], 3u);  // 1 + 2 merged
}

TEST(BuildGraph, VertexWeightsDefaultToOne) {
  const Graph g = build_graph(3, {});
  EXPECT_EQ(g.total_vwgt, 3u);
  const std::vector<std::uint64_t> weights{5, 2, 1};
  const Graph h = build_graph(3, {}, weights);
  EXPECT_EQ(h.total_vwgt, 8u);
}

TEST(BuildGraph, CsrIsConsistent) {
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  const Graph g = build_graph(3, edges);
  EXPECT_EQ(g.xadj.size(), 4u);
  EXPECT_EQ(g.xadj.back(), g.adjncy.size());
  // Triangle: every vertex has degree 2.
  for (std::uint32_t v = 0; v < 3; ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 2u);
  }
}

TEST(ResourceGraph, BuiltFromTriples) {
  rdf::Dictionary dict;
  const auto a = dict.intern_iri("a"), b = dict.intern_iri("b"),
             p = dict.intern_iri("p");
  const auto lit = dict.intern_literal("\"x\"");
  const std::vector<rdf::Triple> triples{{a, p, b}, {a, p, lit}};
  const ResourceGraph rg = build_resource_graph(triples, dict);
  // a and b are vertices; the literal is not.
  EXPECT_EQ(rg.graph.num_vertices(), 2u);
  EXPECT_EQ(rg.graph.num_edges(), 1u);
  EXPECT_TRUE(rg.node_of.contains(a));
  EXPECT_FALSE(rg.node_of.contains(lit));
  EXPECT_EQ(rg.node_term[rg.node_of.at(b)], b);
}

TEST(PartitionGraph, KEqualsOneIsTrivial) {
  const Graph g = path_graph(10);
  const PartitionResult pr = partition_graph(g, 1);
  EXPECT_EQ(pr.edge_cut, 0u);
  for (const auto part : pr.assignment) {
    EXPECT_EQ(part, 0u);
  }
}

TEST(PartitionGraph, BisectionOfPathCutsOneEdge) {
  const Graph g = path_graph(64);
  const PartitionResult pr = partition_graph(g, 2);
  EXPECT_EQ(pr.edge_cut, 1u);  // optimal for a path
  const auto weights = partition_weights(g, pr.assignment, 2);
  EXPECT_NEAR(static_cast<double>(weights[0]), 32.0, 4.0);
}

TEST(PartitionGraph, FindsTheBridgeBetweenClusters) {
  const Graph g = two_cluster_graph(20);
  const PartitionResult pr = partition_graph(g, 2);
  EXPECT_EQ(pr.edge_cut, 1u);
  // The two clusters must be separated exactly.
  for (std::uint32_t v = 1; v < 20; ++v) {
    EXPECT_EQ(pr.assignment[v], pr.assignment[0]);
    EXPECT_EQ(pr.assignment[20 + v], pr.assignment[20]);
  }
  EXPECT_NE(pr.assignment[0], pr.assignment[20]);
}

TEST(PartitionGraph, AssignmentsAreInRange) {
  const Graph g = two_cluster_graph(12);
  for (const int k : {2, 3, 4, 7}) {
    const PartitionResult pr = partition_graph(g, k);
    for (const auto part : pr.assignment) {
      EXPECT_LT(part, static_cast<std::uint32_t>(k));
    }
  }
}

TEST(PartitionGraph, BalancedOnRandomGraph) {
  util::Rng rng(5);
  const std::uint32_t n = 4000;
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      edges.push_back({i, static_cast<std::uint32_t>(rng.below(n)), 1});
    }
  }
  const Graph g = build_graph(n, edges);
  for (const int k : {2, 4, 8}) {
    const PartitionResult pr = partition_graph(g, k);
    const auto weights = partition_weights(g, pr.assignment, k);
    const double target = static_cast<double>(n) / k;
    for (const auto w : weights) {
      EXPECT_LT(static_cast<double>(w), target * 1.3)
          << "k=" << k << " imbalanced";
      EXPECT_GT(static_cast<double>(w), target * 0.7);
    }
  }
}

TEST(PartitionGraph, RefinementReducesCut) {
  util::Rng rng(17);
  // Ring of cliques: refinement should find clean clique boundaries.
  const std::uint32_t cliques = 16, size = 12;
  std::vector<WeightedEdge> edges;
  for (std::uint32_t c = 0; c < cliques; ++c) {
    const std::uint32_t base = c * size;
    for (std::uint32_t i = 0; i < size; ++i) {
      for (std::uint32_t j = i + 1; j < size; ++j) {
        edges.push_back({base + i, base + j, 1});
      }
    }
    edges.push_back({base, ((c + 1) % cliques) * size, 1});
  }
  const Graph g = build_graph(cliques * size, edges);

  MultilevelOptions with, without;
  without.refine = false;
  const auto cut_with = partition_graph(g, 4, with).edge_cut;
  const auto cut_without = partition_graph(g, 4, without).edge_cut;
  EXPECT_LE(cut_with, cut_without);
  EXPECT_LE(cut_with, 16u);  // never worse than cutting every bridge
}

TEST(PartitionGraph, DeterministicForSameSeed) {
  const Graph g = two_cluster_graph(30);
  MultilevelOptions opts;
  opts.seed = 99;
  const auto a = partition_graph(g, 4, opts);
  const auto b = partition_graph(g, 4, opts);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(PartitionGraph, HandlesDisconnectedGraph) {
  // Two components, no edges between them at all.
  std::vector<WeightedEdge> edges;
  for (std::uint32_t i = 0; i + 1 < 50; ++i) {
    edges.push_back({i, i + 1, 1});
    edges.push_back({50 + i, 50 + i + 1, 1});
  }
  const Graph g = build_graph(100, edges);
  const PartitionResult pr = partition_graph(g, 2);
  EXPECT_EQ(pr.edge_cut, 0u);
  const auto weights = partition_weights(g, pr.assignment, 2);
  EXPECT_EQ(weights[0], 50u);
}

TEST(PartitionGraph, EmptyGraph) {
  const Graph g = build_graph(0, {});
  const PartitionResult pr = partition_graph(g, 4);
  EXPECT_TRUE(pr.assignment.empty());
  EXPECT_EQ(pr.edge_cut, 0u);
}

TEST(PartitionGraph, SingleVertex) {
  const Graph g = build_graph(1, {});
  const PartitionResult pr = partition_graph(g, 4);
  ASSERT_EQ(pr.assignment.size(), 1u);
  EXPECT_LT(pr.assignment[0], 4u);
}

TEST(PartitionGraph, BalancesVertexWeightsNotCounts) {
  // 64 light vertices (weight 1) + 8 heavy ones (weight 8) in one clique
  // chain; a 2-way split must balance total weight, so the heavy vertices
  // cannot all land on one side with half the light ones.
  std::vector<WeightedEdge> edges;
  std::vector<std::uint64_t> weights(72, 1);
  for (std::uint32_t i = 0; i + 1 < 72; ++i) {
    edges.push_back({i, i + 1, 1});
  }
  for (std::uint32_t h = 64; h < 72; ++h) {
    weights[h] = 8;
  }
  const Graph g = build_graph(72, edges, weights);
  EXPECT_EQ(g.total_vwgt, 64u + 8u * 8u);

  const PartitionResult pr = partition_graph(g, 2);
  const auto side_weights = partition_weights(g, pr.assignment, 2);
  const double half = static_cast<double>(g.total_vwgt) / 2;
  EXPECT_NEAR(static_cast<double>(side_weights[0]), half, half * 0.25);
}

TEST(ComputeEdgeCut, CountsWeightedCrossings) {
  const std::vector<WeightedEdge> edges{{0, 1, 5}, {1, 2, 3}};
  const Graph g = build_graph(3, edges);
  EXPECT_EQ(compute_edge_cut(g, {0, 0, 1}), 3u);
  EXPECT_EQ(compute_edge_cut(g, {0, 1, 0}), 8u);
  EXPECT_EQ(compute_edge_cut(g, {0, 0, 0}), 0u);
}

}  // namespace
}  // namespace parowl::partition
