// Tests for parowl::obs — the metrics registry, the span tracer, the stats
// protocol, and the guarantee that instrumentation never changes results.
//
// The tracer and registry are process-global, so every test that enables
// them restores the disabled/empty state on exit (ObsTraceTest fixture).

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <thread>
#include <vector>

#include "parowl/obs/obs.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/rdf/chunked_reader.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/util/table.hpp"

// Defined in obs_disabled_tu.cpp, compiled with PAROWL_OBS_DISABLED: runs a
// block whose PAROWL_SPAN / PAROWL_COUNT must compile away to nothing.
namespace parowl::obs_disabled_probe {
int run_instrumented_block(int iterations);
}

namespace parowl::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser (objects/arrays/strings/numbers/bools/null).
// Used to prove the trace and metrics emitters produce well-formed JSON
// without depending on an external library.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  /// True iff `text` is exactly one valid JSON value (plus whitespace).
  bool valid() {
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsRegistryTest, CounterConcurrentTotalIsExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("test.hits");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsRegistryTest, LookupReturnsStableInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("same");
  registry.counter("other").add(7);
  Counter& b = registry.counter("same");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(ObsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("depth");
  g.set(4.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.5);
}

TEST(ObsRegistryTest, HistogramPercentilesAreOrderedAndCounted) {
  Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.record_seconds(1e-4);  // 100 us
  }
  for (int i = 0; i < 10; ++i) {
    h.record_seconds(1e-1);  // 100 ms
  }
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.percentile_seconds(0.50);
  const double p95 = h.percentile_seconds(0.95);
  const double p99 = h.percentile_seconds(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 must land in the 100 us bucket region, p99 in the 100 ms region;
  // bucket upper edges bound the error to 2x.
  EXPECT_LT(p50, 1e-3);
  EXPECT_GT(p99, 1e-2);

  Histogram copy(h);  // copy merges
  EXPECT_EQ(copy.count(), 100u);
  copy.merge(h);
  EXPECT_EQ(copy.count(), 200u);
}

TEST(ObsRegistryTest, SnapshotAndJsonAreWellFormed) {
  MetricsRegistry registry;
  registry.counter("b.count").add(3);
  registry.counter("a.count").add(1);
  registry.gauge("a.gauge").set(2.5);
  registry.histogram("lat").record_seconds(0.001);

  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");  // sorted by name
  EXPECT_EQ(snap.counters[1].second, 3u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);

  std::ostringstream os;
  registry.to_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracer / spans

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
    Tracer::global().set_max_events(1u << 20);
  }
};

TEST_F(ObsTraceTest, SpanRecordsNameArgsAndCategory) {
  {
    Span span("reason.round", {{"round", 3}, {"rate", 0.5}, {"tag", "x"}});
    span.arg({"derived", 17});
  }
  EXPECT_EQ(Tracer::global().event_count(), 1u);
  std::ostringstream os;
  Tracer::global().write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"name\":\"reason.round\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"reason\""), std::string::npos);
  EXPECT_NE(json.find("\"round\":3"), std::string::npos);
  EXPECT_NE(json.find("\"derived\":17"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":\"x\""), std::string::npos);
}

TEST_F(ObsTraceTest, NestedSpansShareTheThreadTrack) {
  {
    Span outer("parallel.round", {});
    {
      Span inner("parallel.compute", {});
    }
  }
  EXPECT_EQ(Tracer::global().event_count(), 2u);
  // Same thread -> same track id, so Perfetto renders the inner span nested
  // inside the outer one on the same row.
  std::ostringstream os;
  Tracer::global().write_json(os);
  const std::string json = os.str();
  ASSERT_NE(json.find("parallel.round"), std::string::npos);
  ASSERT_NE(json.find("parallel.compute"), std::string::npos);
  const std::string tid_key = "\"tid\":";
  const auto first_tid = json.find(tid_key);
  const auto second_tid = json.find(tid_key, first_tid + tid_key.size());
  ASSERT_NE(second_tid, std::string::npos);
  const auto tid_of = [&](std::size_t at) {
    return std::stoul(json.substr(at + tid_key.size()));
  };
  EXPECT_EQ(tid_of(first_tid), tid_of(second_tid));
}

TEST_F(ObsTraceTest, SpansFromDifferentThreadsGetDifferentTracks) {
  std::uint32_t main_track = 0;
  std::uint32_t other_track = 0;
  {
    Span span("a.main", {});
    main_track = Tracer::this_thread_track();
  }
  std::thread other([&other_track] {
    Span span("a.other", {});
    other_track = Tracer::this_thread_track();
  });
  other.join();
  EXPECT_NE(main_track, other_track);
  EXPECT_EQ(Tracer::global().event_count(), 2u);
}

TEST_F(ObsTraceTest, TidOverridePinsVirtualTrack) {
  Tracer::global().name_track(107, "worker 7");
  {
    Span span("parallel.round", {{"round", 1}}, 107);
  }
  std::ostringstream os;
  Tracer::global().write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"tid\":107"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 7\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST_F(ObsTraceTest, CloseEndsTheSpanOnce) {
  Span span("a.early", {});
  span.close();
  EXPECT_FALSE(span.live());
  span.close();  // second close is a no-op
  EXPECT_EQ(Tracer::global().event_count(), 1u);
}

TEST_F(ObsTraceTest, EventCapDropsInsteadOfGrowing) {
  Tracer::global().set_max_events(10);
  for (int i = 0; i < 25; ++i) {
    Span span("a.b", {});
  }
  EXPECT_LE(Tracer::global().event_count(), 10u);
  EXPECT_GE(Tracer::global().dropped_count(), 15u);
}

TEST_F(ObsTraceTest, DisabledSpansAreNotLiveAndRecordNothing) {
  Tracer::global().set_enabled(false);
  {
    Span span("a.b", {{"k", 1}});
    EXPECT_FALSE(span.live());
    span.arg({"ignored", 2});
  }
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(ObsTraceTest, WriteJsonIsAlwaysParseable) {
  // Escaping-hostile content: quotes, backslashes, control chars.
  {
    Span span("weird.\"name\\", {{"k\n", "v\t\"x\\"}});
  }
  std::ostringstream os;
  Tracer::global().write_json(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST_F(ObsTraceTest, ConcurrentSpansAllArrive) {
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        Span span("load.spin", {{"i", i}});
      }
    });
  }
  for (auto& t : pool) {
    t.join();
  }
  EXPECT_EQ(Tracer::global().event_count(), kThreads * kPerThread);
  std::ostringstream os;
  Tracer::global().write_json(os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

// ---------------------------------------------------------------------------
// PAROWL_OBS_DISABLED compile-out guard (obs_disabled_tu.cpp)

TEST(ObsDisabledTest, MacrosCompileToNothing) {
  Tracer::global().clear();
  Tracer::global().set_enabled(true);
  const std::uint64_t before =
      MetricsRegistry::global().counter("obs_disabled_probe.calls").value();
  const int result = obs_disabled_probe::run_instrumented_block(50);
  EXPECT_EQ(result, 50);
  EXPECT_EQ(
      MetricsRegistry::global().counter("obs_disabled_probe.calls").value(),
      before);  // PAROWL_COUNT compiled out
  EXPECT_EQ(Tracer::global().event_count(), 0u);  // PAROWL_SPAN compiled out
  Tracer::global().set_enabled(false);
  Tracer::global().clear();
}

// ---------------------------------------------------------------------------
// Stats protocol (fields / to_json / print / publish)

TEST(ObsReportTest, FieldsDriveJsonTableAndRegistry) {
  rdf::ParseStats stats;
  stats.triples = 12;
  stats.duplicates = 3;
  stats.bad_lines = 1;
  stats.first_error = "line 9: bad \"term\"";

  const std::string json = to_json(stats);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"triples\":12"), std::string::npos);
  EXPECT_NE(json.find("\\\"term\\\""), std::string::npos);

  util::Table table({"metric", "value"});
  print(stats, table);
  EXPECT_EQ(table.row_count(), fields(stats).size());

  MetricsRegistry registry;
  publish(stats, "rdf.test", registry);
  EXPECT_DOUBLE_EQ(registry.gauge("rdf.test.triples").value(), 12.0);
  EXPECT_DOUBLE_EQ(registry.gauge("rdf.test.duplicates").value(), 3.0);
  // Publishing is idempotent (gauges use set semantics).
  publish(stats, "rdf.test", registry);
  EXPECT_DOUBLE_EQ(registry.gauge("rdf.test.triples").value(), 12.0);
}

TEST(ObsReportTest, EveryLayerStatsTypeIsReportable) {
  static_assert(Reportable<rdf::ParseStats>);
  static_assert(Reportable<rdf::IngestStats>);
  static_assert(Reportable<rdf::SnapshotStats>);
  static_assert(Reportable<reason::ForwardStats>);
  static_assert(Reportable<reason::MaterializeResult>);
  static_assert(Reportable<parallel::CommStats>);
  static_assert(Reportable<parallel::RunReport>);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// ObsOptions / configure / sampling

TEST(ObsConfigTest, SampleStrideFollowsConfigureAndIsMonotonic) {
  ObsOptions o;
  EXPECT_EQ(sample_stride(), 1u);  // default
  o.sample_every = 4;
  configure(o);
  EXPECT_EQ(sample_stride(), 4u);
  // A nested driver configuring with default-constructed options must not
  // lower the requested stride (the monotonic rule).
  configure(ObsOptions{});
  EXPECT_EQ(sample_stride(), 4u);
  o.sample_every = 8;
  configure(o);
  EXPECT_EQ(sample_stride(), 8u);
  EXPECT_FALSE(o.tracing_requested());
  o.trace_out = "/tmp/x.json";
  EXPECT_TRUE(o.tracing_requested());
}

// ---------------------------------------------------------------------------
// Determinism: instrumentation must never change results.

class ObsDeterminismTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  void tiny_family_kb_into(rdf::TripleStore& target) {
    const auto anc = iri("ancestorOf");
    const auto parent = iri("parentOf");
    target.insert({anc, vocab.rdf_type, vocab.owl_transitive_property});
    target.insert({parent, vocab.rdfs_subproperty_of, anc});
    target.insert({iri("a"), parent, iri("b")});
    target.insert({iri("b"), parent, iri("c")});
    target.insert({iri("c"), parent, iri("d")});
  }
};

TEST_F(ObsDeterminismTest, ClosureIsBitIdenticalWithTracingOnAndOff) {
  rdf::TripleStore off_store;
  tiny_family_kb_into(off_store);
  rdf::TripleStore on_store;
  tiny_family_kb_into(on_store);

  Tracer::global().clear();
  Tracer::global().set_enabled(false);
  const reason::MaterializeResult off =
      reason::materialize(off_store, dict, vocab, {});

  Tracer::global().set_enabled(true);
  const reason::MaterializeResult on =
      reason::materialize(on_store, dict, vocab, {});
  EXPECT_GT(Tracer::global().event_count(), 0u);
  Tracer::global().set_enabled(false);
  Tracer::global().clear();

  EXPECT_EQ(off.inferred, on.inferred);
  EXPECT_EQ(off.iterations, on.iterations);
  ASSERT_EQ(off_store.size(), on_store.size());
  // Bit-identical: same triples in the same derivation order.
  for (std::size_t i = 0; i < off_store.size(); ++i) {
    EXPECT_EQ(off_store.triples()[i], on_store.triples()[i]) << "at " << i;
  }
}

TEST_F(ObsDeterminismTest, TracedClusterRunEmitsPerWorkerSpans) {
  rdf::TripleStore store;
  tiny_family_kb_into(store);

  Tracer::global().clear();
  Tracer::global().set_enabled(true);

  parallel::ParallelOptions opts;
  opts.partitions = 2;
  const partition::HashOwnerPolicy policy;
  opts.policy = &policy;
  const parallel::ParallelResult r =
      parallel::parallel_materialize(store, dict, vocab, opts);
  EXPECT_GT(r.inferred, 0u);

  std::ostringstream os;
  Tracer::global().write_json(os);
  const std::string json = os.str();
  Tracer::global().set_enabled(false);
  Tracer::global().clear();

  EXPECT_TRUE(JsonChecker(json).valid());
  // Per-worker virtual tracks 100 and 101, named and carrying round spans.
  EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":100"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":101"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parallel.round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parallel.send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parallel.recv\""), std::string::npos);
}

}  // namespace
}  // namespace parowl::obs
