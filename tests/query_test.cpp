#include <gtest/gtest.h>

#include <algorithm>

#include "parowl/gen/lubm.hpp"
#include "parowl/query/bgp.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::query {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  SparqlParser parser{dict};

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  void small_kb() {
    const auto type = vocab.rdf_type;
    store.insert({iri("http://ex/kim"), type, iri("http://ex/Professor")});
    store.insert({iri("http://ex/bo"), type, iri("http://ex/Professor")});
    store.insert({iri("http://ex/sam"), type, iri("http://ex/Student")});
    store.insert({iri("http://ex/kim"), iri("http://ex/worksFor"),
                  iri("http://ex/csdept")});
    store.insert({iri("http://ex/bo"), iri("http://ex/worksFor"),
                  iri("http://ex/eedept")});
    store.insert({iri("http://ex/sam"), iri("http://ex/advisor"),
                  iri("http://ex/kim")});
    parser.add_prefix("ex", "http://ex/");
  }

  ResultSet run(const std::string& text) {
    std::string error;
    const auto q = parser.parse(text, &error);
    EXPECT_TRUE(q.has_value()) << error;
    if (!q) {
      return {};
    }
    return evaluate(store, *q);
  }
};

TEST_F(QueryTest, SinglederPatternBindsVariable) {
  small_kb();
  const ResultSet r = run("SELECT ?x WHERE { ?x a ex:Professor }");
  EXPECT_EQ(r.size(), 2u);
  ASSERT_EQ(r.columns.size(), 1u);
  EXPECT_EQ(r.columns[0], "x");
}

TEST_F(QueryTest, JoinAcrossPatterns) {
  small_kb();
  const ResultSet r = run(
      "SELECT ?s ?prof WHERE { ?s ex:advisor ?prof . ?prof a ex:Professor }");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], iri("http://ex/sam"));
  EXPECT_EQ(r.rows[0][1], iri("http://ex/kim"));
}

TEST_F(QueryTest, ConstantSubjectProbe) {
  small_kb();
  const ResultSet r =
      run("SELECT ?d WHERE { ex:kim ex:worksFor ?d }");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], iri("http://ex/csdept"));
}

TEST_F(QueryTest, SelectStarProjectsAllVariables) {
  small_kb();
  const ResultSet r = run("SELECT * WHERE { ?x ex:worksFor ?d }");
  EXPECT_EQ(r.columns.size(), 2u);
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(QueryTest, DistinctDeduplicates) {
  small_kb();
  // Two professors -> each matches; projection on the class only.
  const ResultSet all = run("SELECT ?c WHERE { ?x a ?c . ?x ex:worksFor ?d }");
  const ResultSet distinct =
      run("SELECT DISTINCT ?c WHERE { ?x a ?c . ?x ex:worksFor ?d }");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(distinct.size(), 1u);
}

TEST_F(QueryTest, LimitTruncates) {
  small_kb();
  const ResultSet r = run("SELECT ?x WHERE { ?x a ?c } LIMIT 2");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(QueryTest, LiteralObjectMatch) {
  small_kb();
  store.insert({iri("http://ex/kim"), iri("http://ex/name"),
                dict.intern_literal("\"Kim\"")});
  const ResultSet r = run("SELECT ?x WHERE { ?x ex:name \"Kim\" }");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], iri("http://ex/kim"));
}

TEST_F(QueryTest, EmptyResultForNoMatch) {
  small_kb();
  const ResultSet r = run("SELECT ?x WHERE { ?x a ex:Dean }");
  EXPECT_EQ(r.size(), 0u);
}

TEST_F(QueryTest, ParserRejectsMalformedQueries) {
  small_kb();
  std::string error;
  EXPECT_FALSE(parser.parse("WHERE { ?x a ex:P }", &error).has_value());
  EXPECT_FALSE(parser.parse("SELECT ?x { ?x a }", &error).has_value());
  EXPECT_FALSE(parser.parse("SELECT ?x WHERE { ?x a ex:P", &error));
  EXPECT_FALSE(parser.parse("SELECT ?x WHERE { ?x unknown:p ?y }", &error));
  EXPECT_FALSE(
      parser.parse("SELECT ?x WHERE { ?x a ex:P } LIMIT abc", &error));
  EXPECT_FALSE(parser.parse("SELECT ?x WHERE { }", &error));
}

TEST_F(QueryTest, CaseInsensitiveKeywords) {
  small_kb();
  const ResultSet r =
      run("select distinct ?x where { ?x a ex:Professor } limit 5");
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(QueryTest, SolveBgpCountsSolutions) {
  small_kb();
  const auto worksFor = iri("http://ex/worksFor");
  std::vector<rules::Atom> bgp{
      rules::Atom{rules::AtomTerm::var(0), rules::AtomTerm::constant(worksFor),
                  rules::AtomTerm::var(1)}};
  std::size_t count = 0;
  const std::size_t solutions = solve_bgp(
      store, bgp, 2, [&count](const rules::Binding&) { ++count; });
  EXPECT_EQ(solutions, 2u);
  EXPECT_EQ(count, 2u);
}

TEST_F(QueryTest, ToTextRendersHeaderAndRows) {
  small_kb();
  const ResultSet r = run("SELECT ?x WHERE { ?x a ex:Student }");
  const std::string text = to_text(r, dict);
  EXPECT_NE(text.find("?x"), std::string::npos);
  EXPECT_NE(text.find("http://ex/sam"), std::string::npos);
}

TEST_F(QueryTest, QueriesOverMaterializedLubm) {
  gen::LubmOptions opts;
  opts.universities = 1;
  gen::generate_lubm(opts, dict, store);
  reason::materialize(store, dict, vocab, {});

  parser.add_prefix("ub", gen::kUnivBenchNs);

  // LUBM Query-style: all persons who are members of an organization —
  // only answerable after inference (worksFor < memberOf, typing via
  // domain/range, subclass closure).
  const ResultSet faculty = run(
      "SELECT DISTINCT ?x WHERE { ?x a ub:Faculty . ?x ub:memberOf ?d }");
  EXPECT_GT(faculty.size(), 0u);

  // Every FullProfessor is a Faculty via the subclass closure.
  const ResultSet full = run("SELECT DISTINCT ?x WHERE { ?x a ub:FullProfessor }");
  const ResultSet fac_all = run("SELECT DISTINCT ?x WHERE { ?x a ub:Faculty }");
  EXPECT_GE(fac_all.size(), full.size());
  EXPECT_GT(full.size(), 0u);

  // Transitive subOrganizationOf: research groups are suborgs of the
  // university (2 hops), present only after materialization.
  const ResultSet groups = run(
      "SELECT ?g WHERE { ?g a ub:ResearchGroup . "
      "?g ub:subOrganizationOf <http://www.Univ0.edu> }");
  EXPECT_GT(groups.size(), 0u);
}

}  // namespace
}  // namespace parowl::query
