#include <gtest/gtest.h>

#include <vector>

#include "parowl/perfmodel/polyfit.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::perfmodel {
namespace {

TEST(PolyFit, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 1 + 2x
  const PolyFit fit = fit_polynomial(x, y, 1);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PolyFit, RecoversExactCubic) {
  std::vector<double> x, y;
  for (int i = 1; i <= 8; ++i) {
    x.push_back(i);
    // y = 0.5 x^3 + 2 x^2 - x + 4
    y.push_back(0.5 * i * i * i + 2.0 * i * i - i + 4.0);
  }
  const PolyFit fit = fit_polynomial(x, y, 3);
  EXPECT_NEAR(fit.coefficients[3], 0.5, 1e-6);
  EXPECT_NEAR(fit.coefficients[2], 2.0, 1e-5);
  EXPECT_NEAR(fit.eval(10.0), 0.5 * 1000 + 200 - 10 + 4, 1e-3);
}

TEST(PolyFit, NoisyDataStillCloseFit) {
  util::Rng rng(3);
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i * i * i * (1.0 + 0.02 * (rng.uniform() - 0.5)));
  }
  const PolyFit fit = fit_polynomial(x, y, 3);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_NEAR(fit.coefficients[3], 3.0, 0.3);
}

TEST(PolyFit, ConstantData) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{5, 5, 5};
  const PolyFit fit = fit_polynomial(x, y, 1);
  EXPECT_NEAR(fit.coefficients[0], 5.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 0.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);  // degenerate ss_tot handled
}

TEST(PolyFit, EvalHornerMatchesDirect) {
  PolyFit fit;
  fit.coefficients = {1.0, -2.0, 0.5};
  EXPECT_DOUBLE_EQ(fit.eval(3.0), 1.0 - 6.0 + 4.5);
  EXPECT_DOUBLE_EQ(fit.eval(0.0), 1.0);
}

TEST(PolyFit, ToStringMentionsCoefficients) {
  PolyFit fit;
  fit.coefficients = {1.0, 2.0};
  const std::string s = fit.to_string();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("x^1"), std::string::npos);
}

TEST(PolyFit, ThroughOriginHasZeroIntercept) {
  std::vector<double> x, y;
  for (int i = 1; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 0.5 * i * i * i);
  }
  const PolyFit fit = fit_polynomial_through_origin(x, y, 3);
  ASSERT_EQ(fit.coefficients.size(), 4u);
  EXPECT_DOUBLE_EQ(fit.coefficients[0], 0.0);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-6);
  EXPECT_NEAR(fit.coefficients[3], 0.5, 1e-6);
  EXPECT_NEAR(fit.eval(0.0), 0.0, 1e-12);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(PolyFit, ThroughOriginIgnoresOffsetNoise) {
  // Data with a true intercept: the constrained fit cannot capture it but
  // must still produce a usable superlinear model.
  std::vector<double> x, y;
  for (int i = 1; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(5.0 + i * i);
  }
  const PolyFit fit = fit_polynomial_through_origin(x, y, 2);
  EXPECT_DOUBLE_EQ(fit.coefficients[0], 0.0);
  EXPECT_GT(fit.eval(10.0), fit.eval(5.0));
}

TEST(ModelSpeedup, CubicModelGivesSuperLinearSpeedup) {
  PolyFit cubic;
  cubic.coefficients = {0.0, 0.0, 0.0, 1.0};  // T(n) = n^3
  // Perfect 4-way split: T(n) / T(n/4) = 64.
  EXPECT_NEAR(model_speedup(cubic, 100.0, 25.0), 64.0, 1e-9);
}

TEST(ModelSpeedup, LinearModelGivesLinearSpeedup) {
  PolyFit linear;
  linear.coefficients = {0.0, 2.0};
  EXPECT_NEAR(model_speedup(linear, 100.0, 25.0), 4.0, 1e-9);
}

TEST(ModelSpeedup, ZeroDenominatorIsSafe) {
  PolyFit zero;
  zero.coefficients = {0.0};
  EXPECT_DOUBLE_EQ(model_speedup(zero, 100.0, 25.0), 0.0);
}

}  // namespace
}  // namespace parowl::perfmodel
