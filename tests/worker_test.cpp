#include <gtest/gtest.h>

#include "parowl/parallel/worker.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::parallel {
namespace {

/// Unit tests for the Worker's round mechanics, using a trivial router that
/// sends every derivation to a fixed destination.
class EverythingToRouter final : public Router {
 public:
  explicit EverythingToRouter(std::uint32_t dest) : dest_(dest) {}
  void route(const rdf::Triple&, std::uint32_t self,
             std::vector<std::uint32_t>& out) const override {
    if (dest_ != self) {
      out.push_back(dest_);
    }
  }

 private:
  std::uint32_t dest_;
};

class WorkerTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  rules::RuleParser parser{dict};
  MemoryTransport transport{2};

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  rules::RuleSet trans_rules() {
    rules::RuleSet rs;
    rs.add(*parser.parse_rule("t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"));
    return rs;
  }

  WorkerOptions options() {
    WorkerOptions o;
    o.dict = &dict;
    return o;
  }
};

TEST_F(WorkerTest, ComputeLocalClosesAndRoutes) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")},
                                      {iri("b"), iri("p"), iri("c")}};
  w.load(base);
  EXPECT_EQ(w.base_size(), 2u);

  double seconds = -1.0;
  const std::vector<Outgoing> out = w.compute_local(&seconds);
  EXPECT_GE(seconds, 0.0);
  EXPECT_TRUE(w.store().contains({iri("a"), iri("p"), iri("c")}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dest, 1u);
  ASSERT_EQ(out[0].tuples.size(), 1u);
  EXPECT_EQ(w.result_size(), 1u);
}

TEST_F(WorkerTest, BaseTuplesAreNeverShipped) {
  Worker w(0, rules::RuleSet{}, std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")}};
  w.load(base);
  const std::vector<Outgoing> out = w.compute_local();
  EXPECT_TRUE(out.empty());
}

TEST_F(WorkerTest, AbsorbedTuplesAreReasonedButNotReshipped) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")}};
  w.load(base);
  (void)w.compute_local();

  // Foreign tuple extends the chain; its consequence is shipped but the
  // foreign tuple itself is not.
  const std::vector<rdf::Triple> foreign{{iri("b"), iri("p"), iri("c")}};
  EXPECT_EQ(w.absorb(foreign), 1u);
  const std::vector<Outgoing> out = w.compute_local();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].tuples.size(), 1u);
  EXPECT_EQ(out[0].tuples[0], (rdf::Triple{iri("a"), iri("p"), iri("c")}));
}

TEST_F(WorkerTest, ConsecutiveAbsorbsAllReachTheNextClosure) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{});
  (void)w.compute_local();

  // Two separate absorbs before one compute: both must be in the frontier.
  w.absorb(std::vector<rdf::Triple>{{iri("x"), iri("p"), iri("y")}});
  w.absorb(std::vector<rdf::Triple>{{iri("y"), iri("p"), iri("z")}});
  (void)w.compute_local();
  EXPECT_TRUE(w.store().contains({iri("x"), iri("p"), iri("z")}));
}

TEST_F(WorkerTest, AbsorbDeduplicates) {
  Worker w(0, rules::RuleSet{}, std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")}};
  w.load(base);
  EXPECT_EQ(w.absorb(base), 0u);  // already known
}

TEST_F(WorkerTest, RoundStatsAccumulate) {
  Worker w0(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
            &transport, options());
  Worker w1(1, trans_rules(), std::make_shared<EverythingToRouter>(0),
            &transport, options());
  w0.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")},
                                   {iri("b"), iri("p"), iri("c")}});
  w1.load(std::vector<rdf::Triple>{});

  const std::size_t sent0 = w0.compute_and_send(0);
  EXPECT_EQ(sent0, 1u);
  EXPECT_EQ(w1.compute_and_send(0), 0u);
  EXPECT_EQ(w1.receive_and_aggregate(0), 1u);

  const RoundStats& rs0 = w0.rounds()[0];
  EXPECT_EQ(rs0.sent_tuples, 1u);
  EXPECT_EQ(rs0.sent_messages, 1u);
  EXPECT_EQ(rs0.derived, 1u);
  const RoundStats& rs1 = w1.rounds()[0];
  EXPECT_EQ(rs1.received_tuples, 1u);
  EXPECT_EQ(rs1.received_new, 1u);
}

}  // namespace
}  // namespace parowl::parallel
