#include <gtest/gtest.h>

#include <sstream>

#include "parowl/parallel/worker.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::parallel {
namespace {

/// Unit tests for the Worker's round mechanics, using a trivial router that
/// sends every derivation to a fixed destination.
class EverythingToRouter final : public Router {
 public:
  explicit EverythingToRouter(std::uint32_t dest) : dest_(dest) {}
  void route(const rdf::Triple&, std::uint32_t self,
             std::vector<std::uint32_t>& out) const override {
    if (dest_ != self) {
      out.push_back(dest_);
    }
  }

 private:
  std::uint32_t dest_;
};

class WorkerTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  rules::RuleParser parser{dict};
  MemoryTransport transport{2};

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  rules::RuleSet trans_rules() {
    rules::RuleSet rs;
    rs.add(*parser.parse_rule("t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"));
    return rs;
  }

  WorkerOptions options() {
    WorkerOptions o;
    o.dict = &dict;
    return o;
  }
};

TEST_F(WorkerTest, ComputeLocalClosesAndRoutes) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")},
                                      {iri("b"), iri("p"), iri("c")}};
  w.load(base);
  EXPECT_EQ(w.base_size(), 2u);

  double seconds = -1.0;
  const std::vector<Outgoing> out = w.compute_local(&seconds);
  EXPECT_GE(seconds, 0.0);
  EXPECT_TRUE(w.store().contains({iri("a"), iri("p"), iri("c")}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dest, 1u);
  ASSERT_EQ(out[0].tuples.size(), 1u);
  EXPECT_EQ(w.result_size(), 1u);
}

TEST_F(WorkerTest, BaseTuplesAreNeverShipped) {
  Worker w(0, rules::RuleSet{}, std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")}};
  w.load(base);
  const std::vector<Outgoing> out = w.compute_local();
  EXPECT_TRUE(out.empty());
}

TEST_F(WorkerTest, AbsorbedTuplesAreReasonedButNotReshipped) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")}};
  w.load(base);
  (void)w.compute_local();

  // Foreign tuple extends the chain; its consequence is shipped but the
  // foreign tuple itself is not.
  const std::vector<rdf::Triple> foreign{{iri("b"), iri("p"), iri("c")}};
  EXPECT_EQ(w.absorb(foreign), 1u);
  const std::vector<Outgoing> out = w.compute_local();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].tuples.size(), 1u);
  EXPECT_EQ(out[0].tuples[0], (rdf::Triple{iri("a"), iri("p"), iri("c")}));
}

TEST_F(WorkerTest, ConsecutiveAbsorbsAllReachTheNextClosure) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{});
  (void)w.compute_local();

  // Two separate absorbs before one compute: both must be in the frontier.
  w.absorb(std::vector<rdf::Triple>{{iri("x"), iri("p"), iri("y")}});
  w.absorb(std::vector<rdf::Triple>{{iri("y"), iri("p"), iri("z")}});
  (void)w.compute_local();
  EXPECT_TRUE(w.store().contains({iri("x"), iri("p"), iri("z")}));
}

TEST_F(WorkerTest, AbsorbDeduplicates) {
  Worker w(0, rules::RuleSet{}, std::make_shared<EverythingToRouter>(1),
           &transport, options());
  const std::vector<rdf::Triple> base{{iri("a"), iri("p"), iri("b")}};
  w.load(base);
  EXPECT_EQ(w.absorb(base), 0u);  // already known
}

TEST_F(WorkerTest, RoundStatsAccumulate) {
  Worker w0(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
            &transport, options());
  Worker w1(1, trans_rules(), std::make_shared<EverythingToRouter>(0),
            &transport, options());
  w0.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")},
                                   {iri("b"), iri("p"), iri("c")}});
  w1.load(std::vector<rdf::Triple>{});

  const std::size_t sent0 = w0.compute_and_send(0);
  EXPECT_EQ(sent0, 1u);
  EXPECT_EQ(w1.compute_and_send(0), 0u);
  EXPECT_EQ(w1.receive_and_aggregate(0), 1u);

  const RoundStats& rs0 = w0.rounds()[0];
  EXPECT_EQ(rs0.sent_tuples, 1u);
  EXPECT_EQ(rs0.sent_messages, 1u);
  EXPECT_EQ(rs0.derived, 1u);
  const RoundStats& rs1 = w1.rounds()[0];
  EXPECT_EQ(rs1.received_tuples, 1u);
  EXPECT_EQ(rs1.received_new, 1u);
}

TEST_F(WorkerTest, RuleFiringsAccumulateAcrossRounds) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")},
                                  {iri("b"), iri("p"), iri("c")}});
  w.compute_and_send(0);  // derives (a p c)
  ASSERT_EQ(w.rule_firings().size(), 1u);
  EXPECT_EQ(w.rule_firings()[0], 1u);

  // A foreign tuple extends the chain; the next round's firings add up.
  w.absorb(std::vector<rdf::Triple>{{iri("c"), iri("p"), iri("d")}});
  w.compute_and_send(1);  // derives (b p d), (a p d), (c? ...)
  EXPECT_GE(w.rule_firings()[0], 3u);
}

// -- Checkpointing ----------------------------------------------------

TEST_F(WorkerTest, CheckpointRoundTripRestoresEverything) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")},
                                  {iri("b"), iri("p"), iri("c")}});
  w.compute_and_send(0);
  w.absorb(std::vector<rdf::Triple>{{iri("c"), iri("p"), iri("d")}});

  std::stringstream buf;
  w.save_checkpoint(buf, 0);

  Worker fresh(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
               &transport, options());
  std::uint32_t round = 99;
  std::string error;
  ASSERT_TRUE(fresh.load_checkpoint(buf, &round, &error)) << error;
  EXPECT_EQ(round, 0u);

  // Identical store log (order included), marks, stats, and firings.
  EXPECT_EQ(fresh.store().triples(), w.store().triples());
  EXPECT_EQ(fresh.base_size(), w.base_size());
  EXPECT_EQ(fresh.result_size(), w.result_size());
  EXPECT_EQ(fresh.rule_firings(), w.rule_firings());
  ASSERT_EQ(fresh.rounds().size(), w.rounds().size());
  EXPECT_EQ(fresh.rounds()[0].derived, w.rounds()[0].derived);
  EXPECT_EQ(fresh.rounds()[0].sent_tuples, w.rounds()[0].sent_tuples);

  // The restored worker continues identically: same next-round closure.
  const std::size_t sent_orig = w.compute_and_send(1);
  const std::size_t sent_fresh = fresh.compute_and_send(1);
  EXPECT_EQ(sent_fresh, sent_orig);
  EXPECT_EQ(fresh.store().triples(), w.store().triples());
  EXPECT_EQ(fresh.rule_firings(), w.rule_firings());
}

TEST_F(WorkerTest, CheckpointDetectsTamperedBytes) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")},
                                  {iri("b"), iri("p"), iri("c")}});
  w.compute_and_send(0);

  std::stringstream buf;
  w.save_checkpoint(buf, 0);
  std::string bytes = buf.str();
  bytes[bytes.size() / 2] ^= 0x40;  // one bit flip mid-file

  std::stringstream damaged(bytes);
  Worker fresh(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
               &transport, options());
  std::uint32_t round = 0;
  std::string error;
  EXPECT_FALSE(fresh.load_checkpoint(damaged, &round, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(WorkerTest, CheckpointDetectsTruncation) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")}});
  w.compute_and_send(0);

  std::stringstream buf;
  w.save_checkpoint(buf, 0);
  const std::string bytes = buf.str();

  // A torn file (every possible prefix) must be rejected, never half-loaded.
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{7}, std::size_t{0}}) {
    std::stringstream torn(bytes.substr(0, cut));
    Worker fresh(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
                 &transport, options());
    EXPECT_FALSE(fresh.load_checkpoint(torn, nullptr, nullptr))
        << "prefix of " << cut << " bytes accepted";
  }
}

TEST_F(WorkerTest, CheckpointRejectsWrongWorker) {
  Worker w(0, trans_rules(), std::make_shared<EverythingToRouter>(1),
           &transport, options());
  w.load(std::vector<rdf::Triple>{{iri("a"), iri("p"), iri("b")}});

  std::stringstream buf;
  w.save_checkpoint(buf, 3);

  Worker other(1, trans_rules(), std::make_shared<EverythingToRouter>(0),
               &transport, options());
  std::string error;
  EXPECT_FALSE(other.load_checkpoint(buf, nullptr, &error));
  EXPECT_NE(error.find("different worker"), std::string::npos) << error;
}

}  // namespace
}  // namespace parowl::parallel
