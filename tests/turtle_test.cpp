#include <gtest/gtest.h>

#include <sstream>

#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/turtle.hpp"

namespace parowl::rdf {
namespace {

class TurtleTest : public ::testing::Test {
 protected:
  Dictionary dict;
  TripleStore store;

  ParseStats parse(const std::string& text) {
    return parse_turtle_text(text, dict, store);
  }
  TermId iri(const std::string& s) { return dict.find_iri(s); }
};

TEST_F(TurtleTest, PrefixedTriples) {
  const ParseStats stats = parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:kim ex:worksFor ex:csdept .\n");
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_EQ(stats.bad_lines, 0u);
  const TermId kim = iri("http://ex/kim");
  ASSERT_NE(kim, kAnyTerm);
  EXPECT_TRUE(store.contains(
      {kim, iri("http://ex/worksFor"), iri("http://ex/csdept")}));
}

TEST_F(TurtleTest, AKeywordIsRdfType) {
  parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:kim a ex:Professor .\n");
  EXPECT_TRUE(store.contains(
      {iri("http://ex/kim"),
       iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
       iri("http://ex/Professor")}));
}

TEST_F(TurtleTest, PredicateAndObjectLists) {
  const ParseStats stats = parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:kim a ex:Professor ;\n"
      "       ex:teaches ex:cs101 , ex:cs202 ;\n"
      "       ex:worksFor ex:csdept .\n");
  EXPECT_EQ(stats.triples, 4u);
  EXPECT_TRUE(store.contains(
      {iri("http://ex/kim"), iri("http://ex/teaches"), iri("http://ex/cs202")}));
}

TEST_F(TurtleTest, LiteralsWithDatatypeAndLang) {
  parse(
      "@prefix ex: <http://ex/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:kim ex:name \"Kim\"@en ;\n"
      "       ex:age \"42\"^^xsd:int ;\n"
      "       ex:height 1.75 ;\n"
      "       ex:papers 12 ;\n"
      "       ex:tenured true .\n");
  EXPECT_NE(dict.find("\"Kim\"@en", TermKind::kLiteral), kAnyTerm);
  EXPECT_NE(dict.find("\"42\"^^<http://www.w3.org/2001/XMLSchema#int>",
                      TermKind::kLiteral),
            kAnyTerm);
  EXPECT_NE(
      dict.find("\"1.75\"^^<http://www.w3.org/2001/XMLSchema#decimal>",
                TermKind::kLiteral),
      kAnyTerm);
  EXPECT_NE(dict.find("\"12\"^^<http://www.w3.org/2001/XMLSchema#integer>",
                      TermKind::kLiteral),
            kAnyTerm);
  EXPECT_NE(dict.find("\"true\"^^<http://www.w3.org/2001/XMLSchema#boolean>",
                      TermKind::kLiteral),
            kAnyTerm);
  EXPECT_EQ(store.size(), 5u);
}

TEST_F(TurtleTest, BlankNodesAndComments) {
  const ParseStats stats = parse(
      "@prefix ex: <http://ex/> . # a comment\n"
      "_:b1 ex:knows _:b2 . # another\n");
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_NE(dict.find("b1", TermKind::kBlank), kAnyTerm);
}

TEST_F(TurtleTest, BaseResolution) {
  parse(
      "@base <http://ex/data/> .\n"
      "<well1> <http://ex/partOf> <field1> .\n");
  EXPECT_NE(iri("http://ex/data/well1"), kAnyTerm);
  EXPECT_NE(iri("http://ex/data/field1"), kAnyTerm);
}

TEST_F(TurtleTest, SparqlStylePrefix) {
  const ParseStats stats = parse(
      "PREFIX ex: <http://ex/>\n"
      "ex:a ex:p ex:b .\n");
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_EQ(stats.bad_lines, 0u);
}

TEST_F(TurtleTest, RecoversAfterMalformedStatement) {
  const ParseStats stats = parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:kim ex:knows [ ex:nested ex:thing ] .\n"  // unsupported
      "ex:kim ex:worksFor ex:csdept .\n");
  EXPECT_EQ(stats.bad_lines, 1u);
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_NE(stats.first_error.find("not supported"), std::string::npos);
}

TEST_F(TurtleTest, UnknownPrefixIsAnError) {
  const ParseStats stats = parse("nope:a nope:b nope:c .\n");
  EXPECT_EQ(stats.bad_lines, 1u);
  EXPECT_EQ(stats.triples, 0u);
}

TEST_F(TurtleTest, DuplicatesCounted) {
  const ParseStats stats = parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:a ex:p ex:b .\n"
      "ex:a ex:p ex:b .\n");
  EXPECT_EQ(stats.triples, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
}

TEST_F(TurtleTest, StreamOverloadMatchesText) {
  std::istringstream in(
      "@prefix ex: <http://ex/> .\nex:x ex:p ex:y .\n");
  const ParseStats stats = parse_turtle(in, dict, store);
  EXPECT_EQ(stats.triples, 1u);
}

// ---------------------------------------------------------------------------
// Snapshot persistence

class SnapshotTest : public ::testing::Test {
 protected:
  Dictionary dict;
  TripleStore store;
};

TEST_F(SnapshotTest, RoundTripsDictionaryAndTriples) {
  const TermId a = dict.intern_iri("http://ex/a");
  const TermId p = dict.intern_iri("http://ex/p");
  const TermId lit = dict.intern_literal("\"v\"@en");
  const TermId b = dict.intern_blank("node0");
  store.insert({a, p, lit});
  store.insert({a, p, b});

  std::stringstream buffer;
  const SnapshotStats saved = save_snapshot(buffer, dict, store);
  EXPECT_EQ(saved.terms, 4u);
  EXPECT_EQ(saved.triples, 2u);

  Dictionary dict2;
  TripleStore store2;
  std::string error;
  ASSERT_TRUE(load_snapshot(buffer, dict2, store2, &error)) << error;
  EXPECT_EQ(dict2.size(), dict.size());
  EXPECT_EQ(store2.size(), store.size());
  // Ids and kinds preserved exactly.
  EXPECT_EQ(dict2.lexical(a), "http://ex/a");
  EXPECT_EQ(dict2.kind(lit), TermKind::kLiteral);
  EXPECT_EQ(dict2.kind(b), TermKind::kBlank);
  EXPECT_TRUE(store2.contains({a, p, lit}));
}

TEST_F(SnapshotTest, EmptyKbRoundTrips) {
  std::stringstream buffer;
  save_snapshot(buffer, dict, store);
  Dictionary dict2;
  TripleStore store2;
  EXPECT_TRUE(load_snapshot(buffer, dict2, store2));
  EXPECT_EQ(dict2.size(), 0u);
  EXPECT_TRUE(store2.empty());
}

TEST_F(SnapshotTest, RejectsCorruptInput) {
  std::string error;
  {
    std::stringstream buffer("not a snapshot");
    Dictionary d2;
    TripleStore s2;
    EXPECT_FALSE(load_snapshot(buffer, d2, s2, &error));
    EXPECT_EQ(error, "bad magic");
  }
  {
    // Truncated after the header.
    std::stringstream buffer;
    store.insert({dict.intern_iri("a"), dict.intern_iri("p"),
                  dict.intern_iri("b")});
    save_snapshot(buffer, dict, store);
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    Dictionary d2;
    TripleStore s2;
    EXPECT_FALSE(load_snapshot(truncated, d2, s2, &error));
  }
}

TEST_F(SnapshotTest, RejectsNonEmptyTargets) {
  std::stringstream buffer;
  save_snapshot(buffer, dict, store);
  Dictionary d2;
  d2.intern_iri("existing");
  TripleStore s2;
  std::string error;
  EXPECT_FALSE(load_snapshot(buffer, d2, s2, &error));
}

TEST_F(SnapshotTest, RejectsOutOfRangeTermIds) {
  // The store mentions an id the dictionary never assigned, so the bytes
  // are internally consistent (checksums pass) but the reference dangles.
  const TermId a = dict.intern_iri("a");
  store.insert({a, a, a + 5});
  std::stringstream buffer;
  save_snapshot(buffer, dict, store);
  Dictionary d2;
  TripleStore s2;
  std::string error;
  EXPECT_FALSE(load_snapshot(buffer, d2, s2, &error));
  EXPECT_EQ(error, "triple references unknown term");
}

}  // namespace
}  // namespace parowl::rdf
