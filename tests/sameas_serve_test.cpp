// Serving-layer equality rewriting: a QueryService (and DistService) built
// on a representative-space closure must answer byte-identically to one
// built on the naive closure — cache on or off, before and after updates
// that merge classes, across a snapshot save/load cycle, and across
// partition counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "parowl/dist/service.hpp"
#include "parowl/gen/sameas.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/service.hpp"

namespace parowl {
namespace {

const char* const kPrefix =
    "PREFIX id: <http://parowl.dev/onto/identity.owl#>\n";

std::vector<std::string> probe_queries() {
  return {
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x id:relatesTo0 ?y }",
      std::string(kPrefix) +
          "SELECT DISTINCT ?x WHERE { ?x id:relatesTo1 ?y }",
      std::string(kPrefix) +
          "SELECT ?y WHERE { id:Entity0_alias1 id:relatesTo0 ?y }",
      std::string(kPrefix) +
          "SELECT ?x ?z WHERE { ?x id:relatesTo0 ?y . ?y id:relatesTo1 ?z }",
      std::string(kPrefix) + "SELECT ?x ?n WHERE { ?x id:displayName ?n }",
  };
}

std::string unsupported_query() {
  return "SELECT ?x ?y WHERE { ?x <http://www.w3.org/2002/07/owl#sameAs> "
         "?y }";
}

/// Clique workload shared by every test: one dictionary, the asserted base,
/// a naive closure, and a rewrite closure with its frozen class map.
struct SameAsServeFixture {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore base;
  rdf::TripleStore naive_store;
  rdf::TripleStore rewrite_store;
  std::shared_ptr<reason::EqualityManager> eq =
      std::make_shared<reason::EqualityManager>();

  SameAsServeFixture()
      : vocab(std::make_unique<ontology::Vocabulary>(dict)) {
    gen::SameAsOptions o;
    o.individuals = 40;
    o.max_clique_size = 5;
    gen::generate_sameas(o, dict, base);

    naive_store = base;
    reason::materialize(naive_store, dict, *vocab, {});

    rewrite_store = base;
    reason::MaterializeOptions opts;
    opts.equality_mode = reason::EqualityMode::kRewrite;
    opts.equality = eq.get();
    reason::materialize(rewrite_store, dict, *vocab, opts);
  }

  [[nodiscard]] std::unique_ptr<serve::QueryService> naive_service(
      serve::ServiceOptions o = small_options()) {
    rdf::TripleStore copy = naive_store;
    return std::make_unique<serve::QueryService>(
        dict, *vocab, std::move(copy), std::move(o), base.triples());
  }

  [[nodiscard]] std::unique_ptr<serve::QueryService> rewrite_service(
      serve::ServiceOptions o = small_options()) {
    rdf::TripleStore copy = rewrite_store;
    return std::make_unique<serve::QueryService>(
        dict, *vocab, std::move(copy), std::move(o), base.triples(), eq);
  }

  static serve::ServiceOptions small_options() {
    serve::ServiceOptions o;
    o.threads = 1;
    o.queue_capacity = 64;
    o.cache_shards = 2;
    o.cache_capacity_per_shard = 32;
    return o;
  }
};

std::vector<std::vector<rdf::TermId>> sorted_rows(query::ResultSet rs) {
  std::sort(rs.rows.begin(), rs.rows.end());
  return std::move(rs.rows);
}

// ---------------------------------------------------------------------------
// Single-store service

TEST(SameAsServe, AnswersMatchNaiveServiceCacheOnAndOff) {
  SameAsServeFixture fx;
  const auto naive = fx.naive_service();

  serve::ServiceOptions cached = SameAsServeFixture::small_options();
  serve::ServiceOptions uncached = SameAsServeFixture::small_options();
  uncached.cache_enabled = false;
  const auto with_cache = fx.rewrite_service(cached);
  const auto without_cache = fx.rewrite_service(uncached);

  for (const std::string& q : probe_queries()) {
    const serve::Response expected = naive->execute(q);
    ASSERT_EQ(expected.status, serve::RequestStatus::kOk) << q;

    const serve::Response miss = with_cache->execute(q);
    ASSERT_EQ(miss.status, serve::RequestStatus::kOk) << q;
    EXPECT_FALSE(miss.cache_hit);
    EXPECT_EQ(sorted_rows(expected.results), sorted_rows(miss.results)) << q;

    // A cache hit must replay the already-expanded rows verbatim.
    const serve::Response hit = with_cache->execute(q);
    ASSERT_EQ(hit.status, serve::RequestStatus::kOk) << q;
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(miss.results.rows, hit.results.rows) << q;

    const serve::Response cold = without_cache->execute(q);
    ASSERT_EQ(cold.status, serve::RequestStatus::kOk) << q;
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_EQ(sorted_rows(expected.results), sorted_rows(cold.results)) << q;
  }
}

TEST(SameAsServe, UnsupportedShapeIsReportedAndCounted) {
  SameAsServeFixture fx;
  const auto service = fx.rewrite_service();

  const serve::Response r1 = service->execute(unsupported_query());
  EXPECT_EQ(r1.status, serve::RequestStatus::kUnsupported);
  EXPECT_FALSE(r1.error.empty());
  EXPECT_TRUE(r1.results.rows.empty());

  // Unsupported answers are never cached — the second call reruns the
  // shape check instead of hitting a bogus empty entry.
  const serve::Response r2 = service->execute(unsupported_query());
  EXPECT_EQ(r2.status, serve::RequestStatus::kUnsupported);
  EXPECT_FALSE(r2.cache_hit);

  const serve::ServiceStats stats = service->stats();
  EXPECT_EQ(stats.unsupported, 2u);
  EXPECT_EQ(stats.total_requests(), 2u);

  // The naive service happily answers the same query (sameAs cliques are
  // materialized there).
  const auto naive = fx.naive_service();
  const serve::Response naive_r = naive->execute(unsupported_query());
  EXPECT_EQ(naive_r.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(naive_r.results.rows.empty());
}

TEST(SameAsServe, UpdateMergingCliquesInvalidatesCacheAndMatchesNaive) {
  SameAsServeFixture fx;
  const auto service = fx.rewrite_service();

  const std::string probe =
      std::string(kPrefix) + "SELECT ?x ?y WHERE { ?x id:relatesTo0 ?y }";
  const serve::Response before = service->execute(probe);
  ASSERT_EQ(before.status, serve::RequestStatus::kOk);
  ASSERT_TRUE(service->execute(probe).cache_hit);  // primed

  // Bridge two cliques with one asserted sameAs edge.
  const rdf::Triple bridge{
      fx.dict.intern_iri(std::string(gen::kSameAsNs) + "Entity0_alias0"),
      fx.vocab->owl_same_as,
      fx.dict.intern_iri(std::string(gen::kSameAsNs) + "Entity1_alias0")};
  const serve::UpdateOutcome outcome = service->apply_update({&bridge, 1});
  EXPECT_GT(outcome.version, 0u);
  EXPECT_GT(outcome.result.eq_merges, 0u);

  // Ground truth: a naive service over base + bridge, materialized fresh.
  rdf::TripleStore naive_store = fx.base;
  naive_store.insert(bridge);
  reason::materialize(naive_store, fx.dict, *fx.vocab, {});
  serve::QueryService naive(fx.dict, *fx.vocab, std::move(naive_store),
                            SameAsServeFixture::small_options());

  // The merge changed relatesTo0 answers (alias0 of Entity1 now expands to
  // Entity0's aliases too), so the primed cache entry must be gone and the
  // fresh answer must match the naive closure.
  const serve::Response after = service->execute(probe);
  ASSERT_EQ(after.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(after.cache_hit);
  const serve::Response expected = naive.execute(probe);
  ASSERT_EQ(expected.status, serve::RequestStatus::kOk);
  EXPECT_EQ(sorted_rows(expected.results), sorted_rows(after.results));
  EXPECT_NE(sorted_rows(before.results), sorted_rows(after.results));
}

TEST(SameAsServe, DeletionTouchingTheClassMapIsRejectedUnpublished) {
  SameAsServeFixture fx;
  const auto service = fx.rewrite_service();
  const std::uint64_t version_before = service->execute("SELECT ?x WHERE { ?x a <" +
      std::string(gen::kSameAsNs) + "Entity> }").snapshot_version;

  // Any payload triple whose endpoint sits in a clique.
  const auto& base = fx.base.triples();
  const auto victim =
      std::find_if(base.begin(), base.end(), [&](const rdf::Triple& t) {
        return t.p != fx.vocab->owl_same_as &&
               (fx.eq->tracked(t.s) || fx.eq->tracked(t.o));
      });
  ASSERT_NE(victim, base.end());

  const serve::UpdateOutcome outcome =
      service->apply_update({}, {&*victim, 1});
  EXPECT_EQ(outcome.version, 0u);
  EXPECT_TRUE(outcome.maintain.equality_rejected);

  // Nothing was published: the snapshot version is unchanged and the
  // refused triple still answers.
  const serve::Response again = service->execute("SELECT ?x WHERE { ?x a <" +
      std::string(gen::kSameAsNs) + "Entity> }");
  EXPECT_EQ(again.snapshot_version, version_before);
}

TEST(SameAsServe, SnapshotRoundTripServesIdenticalAnswers) {
  SameAsServeFixture fx;
  const auto service = fx.rewrite_service();

  std::stringstream buf;
  const rdf::SnapshotStats stats = service->save_snapshot(buf);
  ASSERT_TRUE(buf.good());
  EXPECT_GT(stats.triples, 0u);

  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  rdf::EqualityClassMap map2;
  std::string error;
  ASSERT_TRUE(rdf::load_snapshot(buf, dict2, store2, map2, &error)) << error;
  ASSERT_FALSE(map2.empty());

  auto eq2 = std::make_shared<reason::EqualityManager>(
      reason::EqualityManager::import_map(map2));
  const ontology::Vocabulary vocab2(dict2);
  serve::QueryService restored(dict2, vocab2, std::move(store2),
                               SameAsServeFixture::small_options(), {},
                               std::move(eq2));

  const auto naive = fx.naive_service();
  for (const std::string& q : probe_queries()) {
    const serve::Response expected = naive->execute(q);
    const serve::Response actual = restored.execute(q);
    ASSERT_EQ(actual.status, serve::RequestStatus::kOk) << q;
    EXPECT_EQ(sorted_rows(expected.results), sorted_rows(actual.results))
        << q;
  }
}

// ---------------------------------------------------------------------------
// Distributed facade

TEST(SameAsDist, AnswersMatchNaiveSingleStoreAcrossPartitionCounts) {
  SameAsServeFixture fx;
  const auto naive = fx.naive_service();

  for (const std::uint32_t k : {1u, 2u, 4u}) {
    const partition::HashOwnerPolicy policy;
    partition::OwnerTable owners =
        partition::partition_data(fx.rewrite_store, fx.dict, *fx.vocab,
                                  policy, k)
            .owners;
    parallel::MemoryTransport transport(dist::NodeLayout{k, 1}.num_nodes());
    dist::DistOptions o;
    o.threads = 1;
    o.queue_capacity = 64;
    o.cache_shards = 2;
    o.cache_capacity_per_shard = 32;
    o.equality = fx.eq;
    o.same_as = fx.vocab->owl_same_as;
    dist::DistService dist_service(fx.dict, fx.rewrite_store, std::move(owners),
                                   k, transport, std::move(o));

    for (const std::string& q : probe_queries()) {
      const serve::Response expected = naive->execute(q);
      const serve::Response actual = dist_service.execute(q);
      ASSERT_EQ(actual.status, serve::RequestStatus::kOk)
          << q << " @ k=" << k << ": " << actual.error;
      EXPECT_EQ(sorted_rows(expected.results), sorted_rows(actual.results))
          << q << " @ k=" << k;

      // Cached replay of the expanded merge must be byte-identical.
      const serve::Response hit = dist_service.execute(q);
      ASSERT_EQ(hit.status, serve::RequestStatus::kOk);
      EXPECT_TRUE(hit.cache_hit) << q << " @ k=" << k;
      EXPECT_EQ(actual.results.rows, hit.results.rows);
    }

    const serve::Response bad = dist_service.execute(unsupported_query());
    EXPECT_EQ(bad.status, serve::RequestStatus::kUnsupported);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_EQ(dist_service.stats().unsupported, 1u);
  }
}

}  // namespace
}  // namespace parowl
