#include <gtest/gtest.h>

#include <sstream>

#include "parowl/reason/forward.hpp"
#include "parowl/rules/compiler.hpp"
#include "parowl/rules/dependency_graph.hpp"
#include "parowl/rules/horst_rules.hpp"
#include "parowl/rules/rule.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::rules {
namespace {

TEST(AtomTerm, EncodesConstantsAndVariables) {
  const AtomTerm c = AtomTerm::constant(42);
  EXPECT_TRUE(c.is_const());
  EXPECT_FALSE(c.is_var());
  EXPECT_EQ(c.const_id(), 42u);

  const AtomTerm v = AtomTerm::var(3);
  EXPECT_TRUE(v.is_var());
  EXPECT_EQ(v.var_index(), 3);
}

TEST(Atom, VariablesListsInPositionOrder) {
  const Atom a{AtomTerm::var(2), AtomTerm::constant(1), AtomTerm::var(0)};
  const auto vars = a.variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], 2);
  EXPECT_EQ(vars[1], 0);
}

TEST(Rule, WellFormedRejectsUnsafeHead) {
  Rule r;
  r.body = {Atom{AtomTerm::var(0), AtomTerm::constant(1), AtomTerm::var(1)}};
  r.head = Atom{AtomTerm::var(0), AtomTerm::constant(1), AtomTerm::var(2)};
  r.num_vars = 3;
  EXPECT_FALSE(r.well_formed());  // var 2 not bound by the body
  r.head = Atom{AtomTerm::var(1), AtomTerm::constant(1), AtomTerm::var(0)};
  EXPECT_TRUE(r.well_formed());
}

TEST(Rule, WellFormedRejectsEmptyBody) {
  Rule r;
  r.head = Atom{AtomTerm::constant(1), AtomTerm::constant(2),
                AtomTerm::constant(3)};
  EXPECT_FALSE(r.well_formed());
}

TEST(Rule, SingleJoinDetection) {
  // (?a p ?b) (?b p ?c) -> (?a p ?c): single join on ?b.
  Rule r;
  const auto p = AtomTerm::constant(9);
  r.body = {Atom{AtomTerm::var(0), p, AtomTerm::var(1)},
            Atom{AtomTerm::var(1), p, AtomTerm::var(2)}};
  r.head = Atom{AtomTerm::var(0), p, AtomTerm::var(2)};
  r.num_vars = 3;
  EXPECT_TRUE(r.is_single_join());

  // Disjoint variables: not a join.
  r.body[1] = Atom{AtomTerm::var(3), p, AtomTerm::var(4)};
  r.num_vars = 5;
  EXPECT_FALSE(r.is_single_join());

  // One atom: not single-join.
  r.body.pop_back();
  EXPECT_FALSE(r.is_single_join());
}

TEST(BindAtom, BindsAndChecksConsistency) {
  Binding b{};
  const Atom a{AtomTerm::var(0), AtomTerm::constant(5), AtomTerm::var(0)};
  // Repeated variable must match the same value.
  EXPECT_TRUE(bind_atom(a, rdf::Triple{7, 5, 7}, b));
  EXPECT_EQ(b[0], 7u);
  Binding b2{};
  EXPECT_FALSE(bind_atom(a, rdf::Triple{7, 5, 8}, b2));
  Binding b3{};
  EXPECT_FALSE(bind_atom(a, rdf::Triple{7, 6, 7}, b3));  // const mismatch
}

TEST(ToPattern, ResolvesBoundAndUnbound) {
  Binding b{};
  b[1] = 33;
  const Atom a{AtomTerm::var(0), AtomTerm::constant(5), AtomTerm::var(1)};
  const auto pat = to_pattern(a, b);
  EXPECT_EQ(pat.s, rdf::kAnyTerm);
  EXPECT_EQ(pat.p, 5u);
  EXPECT_EQ(pat.o, 33u);
}

TEST(RuleSet, FindByName) {
  RuleSet rs;
  Rule r;
  r.name = "mine";
  r.body = {Atom{AtomTerm::var(0), AtomTerm::constant(1), AtomTerm::var(1)}};
  r.head = r.body[0];
  r.num_vars = 2;
  rs.add(r);
  EXPECT_NE(rs.find("mine"), nullptr);
  EXPECT_EQ(rs.find("other"), nullptr);
}

// ---------------------------------------------------------------------------
// Parser

class ParserTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  RuleParser parser{dict};
};

TEST_F(ParserTest, ParsesSingleJoinRule) {
  std::string err;
  const auto rule = parser.parse_rule(
      "trans: (?a <http://ex/p> ?b) (?b <http://ex/p> ?c) -> (?a <http://ex/p> ?c)",
      &err);
  ASSERT_TRUE(rule.has_value()) << err;
  EXPECT_EQ(rule->name, "trans");
  EXPECT_EQ(rule->body.size(), 2u);
  EXPECT_EQ(rule->num_vars, 3);
  EXPECT_TRUE(rule->is_single_join());
}

TEST_F(ParserTest, ParsesPrefixedNames) {
  std::string err;
  const auto rule = parser.parse_rule(
      "(?c rdfs:subClassOf ?d) (?x rdf:type ?c) -> (?x rdf:type ?d)", &err);
  ASSERT_TRUE(rule.has_value()) << err;
  EXPECT_EQ(dict.lexical(rule->body[0].p.const_id()),
            "http://www.w3.org/2000/01/rdf-schema#subClassOf");
}

TEST_F(ParserTest, ParsesLiteralConstants) {
  std::string err;
  const auto rule = parser.parse_rule(
      "(?x <http://ex/status> \"active\") -> (?x rdf:type <http://ex/Active>)",
      &err);
  ASSERT_TRUE(rule.has_value()) << err;
  EXPECT_TRUE(rule->body[0].o.is_const());
}

TEST_F(ParserTest, RejectsMalformedRules) {
  std::string err;
  EXPECT_FALSE(parser.parse_rule("(?a ?b) -> (?a ?b ?c)", &err).has_value());
  EXPECT_FALSE(
      parser.parse_rule("(?a <p> ?b) (?a <p> ?b)", &err).has_value());
  EXPECT_FALSE(parser
                   .parse_rule("(?a unknownprefix:p ?b) -> (?a <x> ?b)", &err)
                   .has_value());
  EXPECT_NE(err.find("unknown prefix"), std::string::npos);
}

TEST_F(ParserTest, RejectsUnsafeRule) {
  std::string err;
  EXPECT_FALSE(parser.parse_rule("(?a <p> ?b) -> (?a <p> ?c)", &err)
                   .has_value());
}

TEST_F(ParserTest, StreamParseWithPrefixDirective) {
  std::istringstream in(
      "@prefix ex: <http://ex/>\n"
      "# a comment\n"
      "r1: (?a ex:p ?b) -> (?b ex:q ?a)\n"
      "r2: (?a ex:q ?b) (?b ex:q ?c) -> (?a ex:q ?c)\n");
  std::string err;
  const auto rs = parser.parse(in, &err);
  ASSERT_TRUE(rs.has_value()) << err;
  EXPECT_EQ(rs->size(), 2u);
  EXPECT_NE(rs->find("r1"), nullptr);
}

TEST_F(ParserTest, StreamParseReportsLineNumbers) {
  std::istringstream in("r1: (?a <p> ?b) -> (?a <p> ?b)\nbroken\n");
  std::string err;
  EXPECT_FALSE(parser.parse(in, &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// pD* rule set

TEST(HorstRules, ContainsCoreRules) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  const RuleSet rs = horst_rules(vocab);
  for (const char* name : {"rdfs2", "rdfs3", "rdfs5", "rdfs7", "rdfs9",
                           "rdfs11", "rdfp3", "rdfp4", "rdfp8a", "rdfp8b",
                           "rdfp12a", "rdfp15", "rdfp16"}) {
    EXPECT_NE(rs.find(name), nullptr) << name;
  }
  for (const Rule& r : rs.rules()) {
    EXPECT_TRUE(r.well_formed()) << r.name;
  }
}

TEST(HorstRules, OptionsPruneRuleFamilies) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  HorstOptions no_sameas;
  no_sameas.include_same_as = false;
  const RuleSet rs = horst_rules(vocab, no_sameas);
  EXPECT_EQ(rs.find("rdfp7"), nullptr);
  EXPECT_EQ(rs.find("rdfp1"), nullptr);
  EXPECT_NE(rs.find("rdfs9"), nullptr);

  HorstOptions no_restr;
  no_restr.include_restrictions = false;
  EXPECT_EQ(horst_rules(vocab, no_restr).find("rdfp15"), nullptr);

  HorstOptions reflexive;
  reflexive.include_reflexivity = true;
  EXPECT_NE(horst_rules(vocab, reflexive).find("rdfs6"), nullptr);
}

// ---------------------------------------------------------------------------
// Compiler

class CompilerTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};

  rdf::TermId iri(const char* s) { return dict.intern_iri(s); }
};

TEST_F(CompilerTest, SpecializesSubclassRule) {
  rdf::TripleStore schema;
  const auto student = iri("Student"), person = iri("Person");
  schema.insert({student, vocab.rdfs_subclass_of, person});

  const CompiledRules compiled =
      compile_rules(horst_rules(vocab), schema, vocab);

  // Expect a rule (?x type Student) -> (?x type Person).
  bool found = false;
  for (const Rule& r : compiled.rules.rules()) {
    if (r.name == "rdfs9" && r.body.size() == 1 &&
        r.body[0].o.is_const() && r.body[0].o.const_id() == student &&
        r.head.o.is_const() && r.head.o.const_id() == person) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CompilerTest, SpecializesTransitivityToSingleJoin) {
  rdf::TripleStore schema;
  const auto anc = iri("ancestorOf");
  schema.insert({anc, vocab.rdf_type, vocab.owl_transitive_property});

  const CompiledRules compiled =
      compile_rules(horst_rules(vocab), schema, vocab);
  bool found = false;
  for (const Rule& r : compiled.rules.rules()) {
    if (r.name == "rdfp4") {
      EXPECT_EQ(r.body.size(), 2u);
      EXPECT_TRUE(r.is_single_join());
      EXPECT_EQ(r.body[0].p.const_id(), anc);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(CompilerTest, AllCompiledOntologyRulesAreSingleJoinExceptSameAs) {
  // The paper's claim (§II): the compiled rule set consists of single-join
  // rules (bodies of <= 2 atoms); only the sameAs machinery stays generic.
  rdf::TripleStore schema;
  const auto a = iri("A"), b = iri("B"), p = iri("p"), q = iri("q");
  schema.insert({a, vocab.rdfs_subclass_of, b});
  schema.insert({p, vocab.rdfs_subproperty_of, q});
  schema.insert({p, vocab.rdf_type, vocab.owl_transitive_property});
  schema.insert({q, vocab.rdf_type, vocab.owl_functional_property});
  schema.insert({p, vocab.rdfs_domain, a});
  schema.insert({q, vocab.rdfs_range, b});
  schema.insert({p, vocab.owl_inverse_of, q});

  const CompiledRules compiled =
      compile_rules(horst_rules(vocab), schema, vocab);
  ASSERT_GT(compiled.rules.size(), 0u);
  for (const Rule& r : compiled.rules.rules()) {
    EXPECT_LE(r.body.size(), 2u) << r.to_string(dict);
    if (r.body.size() == 2) {
      EXPECT_TRUE(r.is_single_join()) << r.to_string(dict);
    }
  }
}

TEST_F(CompilerTest, PureSchemaRulesBecomeGroundFacts) {
  rdf::TripleStore schema;
  const auto a = iri("A"), b = iri("B");
  schema.insert({a, vocab.owl_equivalent_class, b});

  const CompiledRules compiled =
      compile_rules(horst_rules(vocab), schema, vocab);
  // rdfp12a/b on (A equivalentClass B) produce ground subclass facts.
  bool sub_ab = false, sub_ba = false;
  for (const rdf::Triple& t : compiled.ground_facts) {
    if (t == rdf::Triple{a, vocab.rdfs_subclass_of, b}) sub_ab = true;
    if (t == rdf::Triple{b, vocab.rdfs_subclass_of, a}) sub_ba = true;
  }
  EXPECT_TRUE(sub_ab);
  EXPECT_TRUE(sub_ba);
}

TEST_F(CompilerTest, DeduplicatesSpecializations) {
  rdf::TripleStore schema;
  const auto a = iri("A"), b = iri("B");
  schema.insert({a, vocab.rdfs_subclass_of, b});
  const RuleSet generic = horst_rules(vocab);
  const CompiledRules once = compile_rules(generic, schema, vocab);
  // Re-inserting the same axiom cannot create more rules.
  schema.insert({a, vocab.rdfs_subclass_of, b});
  const CompiledRules twice = compile_rules(generic, schema, vocab);
  EXPECT_EQ(once.rules.size(), twice.rules.size());
}

TEST_F(CompilerTest, EmptySchemaKeepsOnlyGenericRules) {
  rdf::TripleStore schema;
  const CompiledRules compiled =
      compile_rules(horst_rules(vocab), schema, vocab);
  // Only the schema-free sameAs rules survive.
  for (const Rule& r : compiled.rules.rules()) {
    EXPECT_TRUE(r.name.starts_with("rdfp6") || r.name.starts_with("rdfp7") ||
                r.name.starts_with("rdfp11"))
        << r.name;
  }
}

// ---------------------------------------------------------------------------
// Dependency graph

TEST(DependencyGraph, MayTriggerChecksConstants) {
  const auto type = AtomTerm::constant(1);
  const auto student = AtomTerm::constant(2);
  const auto person = AtomTerm::constant(3);
  const Atom head{AtomTerm::var(0), type, student};
  EXPECT_TRUE(may_trigger(head, Atom{AtomTerm::var(0), type, student}));
  EXPECT_FALSE(may_trigger(head, Atom{AtomTerm::var(0), type, person}));
  EXPECT_TRUE(
      may_trigger(head, Atom{AtomTerm::var(0), AtomTerm::var(1), AtomTerm::var(2)}));
}

TEST(DependencyGraph, EdgesFollowProducerConsumer) {
  rdf::Dictionary dict;
  RuleParser parser(dict);
  RuleSet rs;
  rs.add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  rs.add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));
  rs.add(*parser.parse_rule("r3: (?x <s> ?y) -> (?x <s2> ?y)"));

  const DependencyGraph g = build_dependency_graph(rs);
  EXPECT_EQ(g.num_rules, 3u);
  // r1 -> r2 must exist; r1 -> r3 must not.
  bool r1_r2 = false, r1_r3 = false;
  for (const auto& e : g.edges) {
    if (e.from == 0 && e.to == 1) r1_r2 = true;
    if (e.from == 0 && e.to == 2) r1_r3 = true;
  }
  EXPECT_TRUE(r1_r2);
  EXPECT_FALSE(r1_r3);
}

TEST(DependencyGraph, StatsWeighting) {
  rdf::Dictionary dict;
  RuleParser parser(dict);
  RuleSet rs;
  rs.add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  rs.add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));

  rdf::TripleStore data;
  const auto q = dict.find_iri("q");
  ASSERT_NE(q, rdf::kAnyTerm);
  data.insert({100, q, 101});
  data.insert({102, q, 103});

  const DependencyGraph g = build_dependency_graph(rs, &data);
  for (const auto& e : g.edges) {
    if (e.from == 0 && e.to == 1) {
      EXPECT_EQ(e.weight, 3u);  // 1 + 2 tuples with predicate q
    }
  }
}

TEST(DependencyGraph, UndirectedAdjacencyMergesAndDropsSelfLoops) {
  rdf::Dictionary dict;
  RuleParser parser(dict);
  RuleSet rs;
  // trans is self-dependent (head feeds its own body): a self-loop.
  rs.add(*parser.parse_rule("t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"));
  rs.add(*parser.parse_rule("u: (?a <p> ?b) -> (?a <q> ?b)"));

  const DependencyGraph g = build_dependency_graph(rs);
  const auto adj = g.undirected_adjacency();
  ASSERT_EQ(adj.size(), 2u);
  // No self-loop on vertex 0 in the undirected view.
  for (const auto& [n, w] : adj[0]) {
    EXPECT_NE(n, 0u);
  }
  // t -> u edge exists in both directions.
  EXPECT_FALSE(adj[0].empty());
  EXPECT_FALSE(adj[1].empty());
}

}  // namespace
}  // namespace parowl::rules
