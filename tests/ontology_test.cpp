#include <gtest/gtest.h>

#include "parowl/ontology/ontology.hpp"
#include "parowl/ontology/vocabulary.hpp"

namespace parowl::ontology {
namespace {

class OntologyTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  Vocabulary vocab{dict};

  rdf::TermId iri(const char* s) { return dict.intern_iri(s); }
};

TEST_F(OntologyTest, VocabularyInternsDistinctTerms) {
  EXPECT_NE(vocab.rdf_type, vocab.rdfs_subclass_of);
  EXPECT_NE(vocab.owl_same_as, vocab.owl_inverse_of);
  // Reconstructing against the same dictionary yields the same ids.
  Vocabulary again(dict);
  EXPECT_EQ(again.rdf_type, vocab.rdf_type);
}

TEST_F(OntologyTest, SchemaPredicateDetection) {
  EXPECT_TRUE(vocab.is_schema_predicate(vocab.rdfs_subclass_of));
  EXPECT_TRUE(vocab.is_schema_predicate(vocab.owl_on_property));
  EXPECT_FALSE(vocab.is_schema_predicate(vocab.rdf_type));
  EXPECT_FALSE(vocab.is_schema_predicate(iri("http://ex/worksFor")));
}

TEST_F(OntologyTest, MetaClassDetection) {
  EXPECT_TRUE(vocab.is_meta_class(vocab.owl_transitive_property));
  EXPECT_TRUE(vocab.is_meta_class(vocab.owl_class));
  EXPECT_FALSE(vocab.is_meta_class(iri("http://ex/Person")));
}

TEST_F(OntologyTest, SchemaTripleDetection) {
  const auto person = iri("http://ex/Person");
  const auto student = iri("http://ex/Student");
  const auto knows = iri("http://ex/knows");
  // Axioms are schema.
  EXPECT_TRUE(vocab.is_schema_triple({student, vocab.rdfs_subclass_of, person}));
  EXPECT_TRUE(vocab.is_schema_triple(
      {knows, vocab.rdf_type, vocab.owl_symmetric_property}));
  // Instance assertions are not.
  EXPECT_FALSE(vocab.is_schema_triple({iri("http://ex/sam"), vocab.rdf_type, person}));
  EXPECT_FALSE(
      vocab.is_schema_triple({iri("http://ex/sam"), knows, iri("http://ex/bo")}));
}

TEST_F(OntologyTest, ExtractClassAndPropertyAxioms) {
  rdf::TripleStore store;
  const auto person = iri("P"), student = iri("S");
  const auto knows = iri("k"), ancestor = iri("anc");
  store.insert({student, vocab.rdfs_subclass_of, person});
  store.insert({knows, vocab.rdf_type, vocab.owl_symmetric_property});
  store.insert({ancestor, vocab.rdf_type, vocab.owl_transitive_property});
  store.insert({knows, vocab.rdfs_domain, person});
  store.insert({knows, vocab.rdfs_range, person});

  const Ontology onto = extract_ontology(store, vocab);
  ASSERT_EQ(onto.subclass_of.size(), 1u);
  EXPECT_EQ(onto.subclass_of[0], std::make_pair(student, person));
  EXPECT_TRUE(onto.symmetric.contains(knows));
  EXPECT_TRUE(onto.transitive.contains(ancestor));
  EXPECT_EQ(onto.domain.size(), 1u);
  EXPECT_EQ(onto.range.size(), 1u);
  EXPECT_TRUE(onto.schema_terms.contains(person));
  EXPECT_GE(onto.axiom_count(), 5u);
}

TEST_F(OntologyTest, ExtractRestrictionFacets) {
  rdf::TripleStore store;
  const auto r = iri("R"), p = iri("p"), v = iri("v"), d = iri("D");
  store.insert({r, vocab.owl_on_property, p});
  store.insert({r, vocab.owl_has_value, v});
  const auto r2 = iri("R2");
  store.insert({r2, vocab.owl_on_property, p});
  store.insert({r2, vocab.owl_some_values_from, d});

  const Ontology onto = extract_ontology(store, vocab);
  ASSERT_EQ(onto.restrictions.size(), 2u);
  const Restriction& rest = onto.restrictions[0];
  EXPECT_EQ(rest.cls, r);
  EXPECT_EQ(rest.on_property, p);
  EXPECT_EQ(rest.has_value, v);
  EXPECT_EQ(rest.some_values_from, rdf::kAnyTerm);
  EXPECT_EQ(onto.restrictions[1].some_values_from, d);
}

TEST_F(OntologyTest, SplitSchemaSeparatesInstanceData) {
  rdf::TripleStore store;
  const auto person = iri("P"), sam = iri("sam"), knows = iri("k");
  store.insert({iri("S"), vocab.rdfs_subclass_of, person});
  store.insert({sam, vocab.rdf_type, person});
  store.insert({sam, knows, iri("bo")});

  const SchemaSplit split = split_schema(store, vocab);
  EXPECT_EQ(split.schema.size(), 1u);
  EXPECT_EQ(split.instance.size(), 2u);
}

TEST_F(OntologyTest, EmptyStoreYieldsEmptyOntology) {
  rdf::TripleStore store;
  const Ontology onto = extract_ontology(store, vocab);
  EXPECT_EQ(onto.axiom_count(), 0u);
  EXPECT_TRUE(onto.schema_terms.empty());
}

}  // namespace
}  // namespace parowl::ontology
