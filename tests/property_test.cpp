#include <gtest/gtest.h>

#include <unordered_set>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/partition/multilevel.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/util/rng.hpp"

namespace parowl {
namespace {

// ---------------------------------------------------------------------------
// Property: the multilevel partitioner always yields a valid, bounded
// partition on random graphs, across seeds and k.

struct GraphCase {
  std::uint64_t seed;
  std::uint32_t n;
  int k;
  int avg_degree;
};

class PartitionProperty : public ::testing::TestWithParam<GraphCase> {};

TEST_P(PartitionProperty, ValidBalancedAssignment) {
  const GraphCase c = GetParam();
  util::Rng rng(c.seed);
  std::vector<partition::WeightedEdge> edges;
  for (std::uint32_t i = 0; i < c.n; ++i) {
    for (int d = 0; d < c.avg_degree; ++d) {
      edges.push_back({i, static_cast<std::uint32_t>(rng.below(c.n)),
                       1 + rng.below(3)});
    }
  }
  const partition::Graph g = partition::build_graph(c.n, edges);
  const partition::PartitionPlan plan = partition::partition_csr_graph(g, c.k);

  ASSERT_EQ(plan.assignment.size(), c.n);
  for (const auto part : plan.assignment) {
    ASSERT_LT(part, static_cast<std::uint32_t>(c.k));
  }
  // Edge cut reported == recomputed.
  const partition::PartitionMetrics scored =
      partition::compute_graph_metrics(g, plan.assignment, c.k);
  EXPECT_EQ(plan.metrics.edge_cut, scored.edge_cut);
  // Balance within 40% of proportional share (loose bound; random graphs).
  const double share = static_cast<double>(g.total_vwgt) / c.k;
  for (const auto w : scored.partition_weights) {
    EXPECT_LT(static_cast<double>(w), share * 1.4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PartitionProperty,
    ::testing::Values(GraphCase{1, 100, 2, 2}, GraphCase{2, 100, 4, 3},
                      GraphCase{3, 500, 2, 2}, GraphCase{4, 500, 8, 3},
                      GraphCase{5, 1000, 3, 2}, GraphCase{6, 1000, 16, 4},
                      GraphCase{7, 2000, 5, 2}, GraphCase{8, 250, 7, 5}));

// ---------------------------------------------------------------------------
// Property: Algorithm 1 invariants hold for every policy × partition count.

struct DataPartCase {
  const char* policy;
  std::uint32_t k;
};

class DataPartitionProperty : public ::testing::TestWithParam<DataPartCase> {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;

  std::unique_ptr<partition::OwnerPolicy> make_policy(const char* name) {
    if (std::string_view(name) == "graph") {
      return std::make_unique<partition::GraphOwnerPolicy>();
    }
    if (std::string_view(name) == "hash") {
      return std::make_unique<partition::HashOwnerPolicy>();
    }
    return std::make_unique<partition::DomainOwnerPolicy>(
        &partition::lubm_university_key);
  }
};

TEST_P(DataPartitionProperty, Invariants) {
  const DataPartCase c = GetParam();
  gen::LubmOptions opts;
  opts.universities = 3;
  opts.departments_per_university = 2;
  opts.faculty_per_department = 3;
  opts.students_per_faculty = 2;
  gen::generate_lubm(opts, dict, store);

  const auto policy = make_policy(c.policy);
  const partition::DataPartitioning dp =
      partition::partition_data(store, dict, vocab, *policy, c.k);
  const auto split = ontology::split_schema(store, vocab);

  // (1) Coverage: every instance triple appears somewhere.
  std::unordered_set<rdf::Triple, rdf::TripleHash> seen;
  std::size_t total = 0;
  for (const auto& part : dp.parts) {
    seen.insert(part.begin(), part.end());
    total += part.size();
  }
  EXPECT_EQ(seen.size(), split.instance.size());

  // (2) Bounded replication: a triple is present in at most 2 partitions.
  EXPECT_LE(total, 2 * split.instance.size());

  // (3) Owner-locality: the single-join correctness condition.
  std::vector<std::unordered_set<rdf::Triple, rdf::TripleHash>> by_part(c.k);
  for (std::uint32_t p = 0; p < c.k; ++p) {
    by_part[p].insert(dp.parts[p].begin(), dp.parts[p].end());
  }
  for (const rdf::Triple& t : split.instance) {
    ASSERT_TRUE(by_part[dp.owners.at(t.s)].contains(t));
    if (dict.is_resource(t.o) && dp.owners.contains(t.o)) {
      ASSERT_TRUE(by_part[dp.owners.at(t.o)].contains(t));
    }
  }

  // (4) No schema triples leak into parts.
  for (const auto& part : dp.parts) {
    for (const rdf::Triple& t : part) {
      ASSERT_FALSE(vocab.is_schema_triple(t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndK, DataPartitionProperty,
    ::testing::Values(DataPartCase{"graph", 2}, DataPartCase{"graph", 5},
                      DataPartCase{"hash", 2}, DataPartCase{"hash", 7},
                      DataPartCase{"domain", 2}, DataPartCase{"domain", 3},
                      DataPartCase{"domain", 8}),
    [](const auto& param_info) {
      return std::string(param_info.param.policy) + "_k" +
             std::to_string(param_info.param.k);
    });

// ---------------------------------------------------------------------------
// Property: parallel == serial for every (approach, policy, k) combination.

struct EquivalenceCase {
  const char* policy;  // "graph" | "hash" | "domain" | "rule"
  std::uint32_t k;
};

class EquivalenceProperty : public ::testing::TestWithParam<EquivalenceCase> {
};

TEST_P(EquivalenceProperty, ParallelMatchesSerial) {
  const EquivalenceCase c = GetParam();
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 2;
  opts.departments_per_university = 1;
  opts.faculty_per_department = 3;
  opts.students_per_faculty = 2;
  gen::generate_lubm(opts, dict, store);

  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::materialize(serial, dict, vocab, {});

  parallel::ParallelOptions popts;
  popts.partitions = c.k;
  std::unique_ptr<partition::OwnerPolicy> policy;
  if (std::string_view(c.policy) == "rule") {
    popts.approach = parallel::Approach::kRulePartition;
  } else if (std::string_view(c.policy) == "graph") {
    policy = std::make_unique<partition::GraphOwnerPolicy>();
  } else if (std::string_view(c.policy) == "hash") {
    policy = std::make_unique<partition::HashOwnerPolicy>();
  } else {
    policy = std::make_unique<partition::DomainOwnerPolicy>(
        &partition::lubm_university_key);
  }
  popts.policy = policy.get();

  const auto result =
      parallel::parallel_materialize(store, dict, vocab, popts);
  ASSERT_TRUE(result.merged.has_value());
  EXPECT_EQ(result.merged->size(), serial.size());
  for (const rdf::Triple& t : serial.triples()) {
    ASSERT_TRUE(result.merged->contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, EquivalenceProperty,
    ::testing::Values(EquivalenceCase{"graph", 2}, EquivalenceCase{"graph", 6},
                      EquivalenceCase{"hash", 3}, EquivalenceCase{"hash", 5},
                      EquivalenceCase{"domain", 2},
                      EquivalenceCase{"domain", 4},
                      EquivalenceCase{"rule", 2}, EquivalenceCase{"rule", 5}),
    [](const auto& param_info) {
      return std::string(param_info.param.policy) + "_k" +
             std::to_string(param_info.param.k);
    });

// ---------------------------------------------------------------------------
// Property: forward closure is independent of triple insertion order.

class OrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderProperty, ClosureIndependentOfInsertionOrder) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 1;
  opts.departments_per_university = 1;
  opts.faculty_per_department = 3;
  opts.students_per_faculty = 2;
  gen::generate_lubm(opts, dict, store);

  // Shuffle the triples with the parameterized seed.
  std::vector<rdf::Triple> triples = store.triples();
  util::Rng rng(GetParam());
  for (std::size_t i = triples.size(); i > 1; --i) {
    std::swap(triples[i - 1], triples[rng.below(i)]);
  }
  rdf::TripleStore shuffled;
  shuffled.insert_all(triples);

  reason::materialize(store, dict, vocab, {});
  reason::materialize(shuffled, dict, vocab, {});
  EXPECT_EQ(store.size(), shuffled.size());
  for (const rdf::Triple& t : store.triples()) {
    ASSERT_TRUE(shuffled.contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace parowl
