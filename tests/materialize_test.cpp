#include <gtest/gtest.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::reason {
namespace {

class MaterializeTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  void tiny_family_kb_into(rdf::TripleStore& target) {
    const auto anc = iri("ancestorOf");
    const auto parent = iri("parentOf");
    target.insert({anc, vocab.rdf_type, vocab.owl_transitive_property});
    target.insert({parent, vocab.rdfs_subproperty_of, anc});
    target.insert({iri("a"), parent, iri("b")});
    target.insert({iri("b"), parent, iri("c")});
    target.insert({iri("c"), parent, iri("d")});
  }
  void tiny_family_kb() { tiny_family_kb_into(store); }
};

TEST_F(MaterializeTest, ForwardStrategyComputesClosure) {
  tiny_family_kb();
  MaterializeOptions opts;
  opts.strategy = Strategy::kForward;
  const MaterializeResult result = materialize(store, dict, vocab, opts);

  const auto anc = iri("ancestorOf");
  EXPECT_TRUE(store.contains({iri("a"), anc, iri("b")}));  // subproperty
  EXPECT_TRUE(store.contains({iri("a"), anc, iri("d")}));  // transitivity
  EXPECT_GT(result.inferred, 0u);
  EXPECT_EQ(result.base_triples, 5u);
  EXPECT_EQ(result.schema_triples, 2u);
  EXPECT_GT(result.compiled_rules, 0u);
}

TEST_F(MaterializeTest, QueryDrivenMatchesForward) {
  tiny_family_kb();
  rdf::TripleStore qd_store;
  qd_store.insert_all(store.triples());

  MaterializeOptions fwd;
  fwd.strategy = Strategy::kForward;
  materialize(store, dict, vocab, fwd);

  MaterializeOptions qd;
  qd.strategy = Strategy::kQueryDriven;
  const MaterializeResult r = materialize(qd_store, dict, vocab, qd);

  EXPECT_EQ(store.size(), qd_store.size());
  for (const rdf::Triple& t : store.triples()) {
    EXPECT_TRUE(qd_store.contains(t));
  }
  EXPECT_GE(r.iterations, 1u);
}

TEST_F(MaterializeTest, CompiledAndGenericAgree) {
  tiny_family_kb();
  rdf::TripleStore generic_store;
  generic_store.insert_all(store.triples());

  MaterializeOptions compiled;
  compiled.compile = true;
  materialize(store, dict, vocab, compiled);

  MaterializeOptions generic;
  generic.compile = false;
  materialize(generic_store, dict, vocab, generic);

  // The generic run also materializes schema-level closures (e.g.
  // subPropertyOf chains stay as rules), so compare on instance triples:
  // everything derivable about a..d must match.
  for (const auto node : {"a", "b", "c", "d"}) {
    for (const auto prop : {"ancestorOf", "parentOf"}) {
      for (const auto other : {"a", "b", "c", "d"}) {
        const rdf::Triple t{iri(node), iri(prop), iri(other)};
        EXPECT_EQ(store.contains(t), generic_store.contains(t))
            << node << " " << prop << " " << other;
      }
    }
  }
}

TEST_F(MaterializeTest, SameAsPropagation) {
  const auto email = iri("email");
  const auto mbox = iri("mbox");
  // email is inverse-functional: same email => same person.
  store.insert({email, vocab.rdf_type, vocab.owl_inverse_functional_property});
  store.insert({iri("p1"), email, iri("m")});
  store.insert({iri("p2"), email, iri("m")});
  store.insert({iri("p1"), mbox, iri("box1")});

  const MaterializeResult r = materialize(store, dict, vocab, {});
  EXPECT_TRUE(store.contains({iri("p1"), vocab.owl_same_as, iri("p2")}));
  EXPECT_TRUE(store.contains({iri("p2"), vocab.owl_same_as, iri("p1")}));
  // rdfp11: p2 inherits p1's statements.
  EXPECT_TRUE(store.contains({iri("p2"), mbox, iri("box1")}));
  EXPECT_GT(r.inferred, 2u);
}

TEST_F(MaterializeTest, RestrictionsHasValue) {
  // Restriction R: onProperty p, hasValue v.  x with (x p v) gets typed R;
  // y typed R gets (y p v).
  const auto r = iri("R"), p = iri("p"), v = iri("v");
  store.insert({r, vocab.owl_on_property, p});
  store.insert({r, vocab.owl_has_value, v});
  store.insert({iri("x"), p, v});
  store.insert({iri("y"), vocab.rdf_type, r});

  materialize(store, dict, vocab, {});
  EXPECT_TRUE(store.contains({iri("x"), vocab.rdf_type, r}));
  EXPECT_TRUE(store.contains({iri("y"), p, v}));
}

TEST_F(MaterializeTest, RestrictionsSomeAndAllValuesFrom) {
  const auto r1 = iri("R1"), r2 = iri("R2"), p = iri("p"), d = iri("D");
  store.insert({r1, vocab.owl_on_property, p});
  store.insert({r1, vocab.owl_some_values_from, d});
  store.insert({r2, vocab.owl_on_property, p});
  store.insert({r2, vocab.owl_all_values_from, d});

  store.insert({iri("x"), p, iri("y")});
  store.insert({iri("y"), vocab.rdf_type, d});   // => x type R1
  store.insert({iri("z"), vocab.rdf_type, r2});
  store.insert({iri("z"), p, iri("w")});         // => w type D

  materialize(store, dict, vocab, {});
  EXPECT_TRUE(store.contains({iri("x"), vocab.rdf_type, r1}));
  EXPECT_TRUE(store.contains({iri("w"), vocab.rdf_type, d}));
}

TEST_F(MaterializeTest, EquivalentClassBothWays) {
  const auto a = iri("A"), b = iri("B");
  store.insert({a, vocab.owl_equivalent_class, b});
  store.insert({iri("x"), vocab.rdf_type, a});
  store.insert({iri("y"), vocab.rdf_type, b});

  materialize(store, dict, vocab, {});
  EXPECT_TRUE(store.contains({iri("x"), vocab.rdf_type, b}));
  EXPECT_TRUE(store.contains({iri("y"), vocab.rdf_type, a}));
}

TEST_F(MaterializeTest, InverseOfBothDirections) {
  const auto p = iri("memberOf"), q = iri("hasMember");
  store.insert({p, vocab.owl_inverse_of, q});
  store.insert({iri("kim"), p, iri("acm")});
  store.insert({iri("ieee"), q, iri("bo")});

  materialize(store, dict, vocab, {});
  EXPECT_TRUE(store.contains({iri("acm"), q, iri("kim")}));
  EXPECT_TRUE(store.contains({iri("bo"), p, iri("ieee")}));
}

TEST_F(MaterializeTest, DomainRangeTyping) {
  const auto teaches = iri("teaches");
  const auto teacher = iri("Teacher"), course = iri("Course");
  store.insert({teaches, vocab.rdfs_domain, teacher});
  store.insert({teaches, vocab.rdfs_range, course});
  store.insert({iri("kim"), teaches, iri("cs101")});

  materialize(store, dict, vocab, {});
  EXPECT_TRUE(store.contains({iri("kim"), vocab.rdf_type, teacher}));
  EXPECT_TRUE(store.contains({iri("cs101"), vocab.rdf_type, course}));
}

TEST_F(MaterializeTest, RangeDoesNotTypeLiterals) {
  const auto age = iri("age");
  store.insert({age, vocab.rdfs_range, iri("Number")});
  store.insert({iri("kim"), age, dict.intern_literal("\"42\"")});

  const MaterializeResult r = materialize(store, dict, vocab, {});
  EXPECT_EQ(r.inferred, 0u);
}

TEST_F(MaterializeTest, LubmGeneratedDataForwardVsQueryDriven) {
  gen::LubmOptions small;
  small.universities = 1;
  small.departments_per_university = 2;
  small.faculty_per_department = 4;
  small.students_per_faculty = 3;
  gen::generate_lubm(small, dict, store);

  rdf::TripleStore qd_store;
  qd_store.insert_all(store.triples());

  MaterializeOptions fwd;
  const MaterializeResult rf = materialize(store, dict, vocab, fwd);

  MaterializeOptions qd;
  qd.strategy = Strategy::kQueryDriven;
  const MaterializeResult rq = materialize(qd_store, dict, vocab, qd);

  EXPECT_GT(rf.inferred, 0u);
  EXPECT_EQ(rf.inferred, rq.inferred);
  EXPECT_EQ(store.size(), qd_store.size());
  for (const rdf::Triple& t : store.triples()) {
    ASSERT_TRUE(qd_store.contains(t));
  }
}

TEST_F(MaterializeTest, SharedTablesQueryDrivenAgrees) {
  tiny_family_kb();
  rdf::TripleStore shared_store;
  shared_store.insert_all(store.triples());

  MaterializeOptions qd;
  qd.strategy = Strategy::kQueryDriven;
  materialize(store, dict, vocab, qd);

  qd.share_tables = true;
  materialize(shared_store, dict, vocab, qd);
  EXPECT_EQ(store.size(), shared_store.size());
}

TEST_F(MaterializeTest, MaterializeIsIdempotent) {
  tiny_family_kb();
  materialize(store, dict, vocab, {});
  const std::size_t after_first = store.size();
  const MaterializeResult second = materialize(store, dict, vocab, {});
  EXPECT_EQ(second.inferred, 0u);
  EXPECT_EQ(store.size(), after_first);
}

TEST_F(MaterializeTest, IncrementalMatchesFullRematerialization) {
  tiny_family_kb();
  materialize(store, dict, vocab, {});

  // New family branch: d parentOf e — closure must extend to every
  // ancestor pair involving e.
  const std::vector<rdf::Triple> additions{
      {iri("d"), iri("parentOf"), iri("e")}};
  const IncrementalResult inc =
      materialize_incremental(store, dict, vocab, additions);
  EXPECT_FALSE(inc.schema_changed);
  EXPECT_EQ(inc.added, 1u);
  EXPECT_GT(inc.inferred, 0u);
  EXPECT_TRUE(store.contains({iri("a"), iri("ancestorOf"), iri("e")}));

  // Cross-check against full re-materialization from scratch.
  rdf::TripleStore fresh;
  tiny_family_kb_into(fresh);
  fresh.insert({iri("d"), iri("parentOf"), iri("e")});
  materialize(fresh, dict, vocab, {});
  EXPECT_EQ(store.size(), fresh.size());
  for (const rdf::Triple& t : fresh.triples()) {
    EXPECT_TRUE(store.contains(t));
  }
}

TEST_F(MaterializeTest, IncrementalRejectsSchemaChanges) {
  tiny_family_kb();
  materialize(store, dict, vocab, {});
  const std::size_t before = store.size();
  const std::vector<rdf::Triple> schema_add{
      {iri("Uncle"), vocab.rdfs_subclass_of, iri("Relative")}};
  const IncrementalResult inc =
      materialize_incremental(store, dict, vocab, schema_add);
  EXPECT_TRUE(inc.schema_changed);
  EXPECT_EQ(inc.added, 0u);
  EXPECT_EQ(store.size(), before);
}

TEST_F(MaterializeTest, IncrementalDuplicateAdditionsAreNoOps) {
  tiny_family_kb();
  materialize(store, dict, vocab, {});
  const std::size_t before = store.size();
  const std::vector<rdf::Triple> dup{
      {iri("a"), iri("parentOf"), iri("b")}};
  const IncrementalResult inc =
      materialize_incremental(store, dict, vocab, dup);
  EXPECT_EQ(inc.added, 0u);
  EXPECT_EQ(inc.inferred, 0u);
  EXPECT_EQ(store.size(), before);
}

TEST_F(MaterializeTest, QueryDrivenDeltaExtendsClosure) {
  tiny_family_kb();
  const rules::CompiledRules compiled = compile_ontology(store, vocab);
  store.insert_all(compiled.ground_facts);
  query_driven_closure(store, dict, compiled.rules);
  ASSERT_TRUE(store.contains({iri("a"), iri("ancestorOf"), iri("d")}));

  // Delta: a new parent edge hangs a node off the end of the chain.
  const std::size_t mark = store.size();
  store.insert({iri("d"), iri("parentOf"), iri("e")});
  const QueryDrivenStats stats = query_driven_closure_delta(
      store, dict, compiled.rules, mark);
  EXPECT_GT(stats.added, 0u);
  // Full chain closure reaches the new node from the far end.
  EXPECT_TRUE(store.contains({iri("a"), iri("ancestorOf"), iri("e")}));
  EXPECT_TRUE(store.contains({iri("b"), iri("ancestorOf"), iri("e")}));
}

TEST_F(MaterializeTest, QueryDrivenDeltaNoopOnEmptyDelta) {
  tiny_family_kb();
  const rules::CompiledRules compiled = compile_ontology(store, vocab);
  query_driven_closure(store, dict, compiled.rules);
  const std::size_t size = store.size();
  const QueryDrivenStats stats = query_driven_closure_delta(
      store, dict, compiled.rules, store.size());
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_EQ(stats.added, 0u);
  EXPECT_EQ(store.size(), size);
}

TEST_F(MaterializeTest, QueryDrivenDeltaMatchesFullClosure) {
  // Build two stores: one closed from scratch, one closed then extended
  // with a batch via the delta path.  They must converge to the same set.
  tiny_family_kb();
  const rules::CompiledRules compiled = compile_ontology(store, vocab);
  query_driven_closure(store, dict, compiled.rules);
  const std::size_t mark = store.size();
  store.insert({iri("e"), iri("parentOf"), iri("f")});
  store.insert({iri("d"), iri("parentOf"), iri("e")});
  query_driven_closure_delta(store, dict, compiled.rules, mark);

  rdf::TripleStore scratch;
  tiny_family_kb_into(scratch);
  scratch.insert({iri("e"), iri("parentOf"), iri("f")});
  scratch.insert({iri("d"), iri("parentOf"), iri("e")});
  query_driven_closure(scratch, dict, compiled.rules);

  EXPECT_EQ(store.size(), scratch.size());
  for (const rdf::Triple& t : scratch.triples()) {
    EXPECT_TRUE(store.contains(t));
  }
}

TEST_F(MaterializeTest, MdcPartOfChainsClose) {
  gen::MdcOptions opts;
  opts.fields = 1;
  opts.reservoirs_per_field = 1;
  opts.wells_per_reservoir = 2;
  gen::generate_mdc(opts, dict, store);

  materialize(store, dict, vocab, {});
  // completion partOf well partOf reservoir partOf field must close:
  const auto part_of = dict.find_iri(std::string(gen::kMdcNs) + "partOf");
  ASSERT_NE(part_of, rdf::kAnyTerm);
  const auto comp = dict.find_iri(
      "http://cisoft.usc.edu/data/Field0/Completion0_0_0");
  const auto field = dict.find_iri("http://cisoft.usc.edu/data/Field0");
  ASSERT_NE(comp, rdf::kAnyTerm);
  ASSERT_NE(field, rdf::kAnyTerm);
  EXPECT_TRUE(store.contains({comp, part_of, field}));
  // ... and the inverse hasPart as well.
  const auto has_part = dict.find_iri(std::string(gen::kMdcNs) + "hasPart");
  EXPECT_TRUE(store.contains({field, has_part, comp}));
}

}  // namespace
}  // namespace parowl::reason
