#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "parowl/dist/query_router.hpp"
#include "parowl/dist/service.hpp"
#include "parowl/dist/shard_catalog.hpp"
#include "parowl/gen/lubm.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/service.hpp"
#include "parowl/serve/workload.hpp"

namespace parowl {
namespace {

constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Materialized LUBM-1 universe shared by the distributed-serving tests.
struct DistFixtureData {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore store;  // materialized closure

  DistFixtureData() : vocab(std::make_unique<ontology::Vocabulary>(dict)) {
    gen::LubmOptions o;
    o.universities = 1;
    gen::generate_lubm(o, dict, store);
    reason::materialize(store, dict, *vocab, {});
  }

  /// Owner table for k partitions (hash policy: cheap and deterministic).
  [[nodiscard]] partition::OwnerTable owners_for(std::uint32_t k) const {
    const partition::HashOwnerPolicy policy;
    return partition::partition_data(store, dict, *vocab, policy, k).owners;
  }
};

dist::DistOptions dist_options(std::uint32_t replicas = 1,
                               std::size_t threads = 1) {
  dist::DistOptions o;
  o.threads = threads;
  o.queue_capacity = 256;
  o.cache_shards = 4;
  o.cache_capacity_per_shard = 64;
  o.replicas = replicas;
  return o;
}

/// Canonical row order — what DistService answers in.
query::ResultSet sorted_rows(query::ResultSet rs) {
  std::sort(rs.rows.begin(), rs.rows.end());
  return rs;
}

/// The single-store ground truth: QueryService answers, canonicalized.
std::vector<std::pair<std::string, query::ResultSet>> reference_answers(
    DistFixtureData& fx) {
  rdf::TripleStore copy = fx.store;
  serve::ServiceOptions so;
  so.threads = 1;
  serve::QueryService service(fx.dict, *fx.vocab, std::move(copy), so);
  std::vector<std::pair<std::string, query::ResultSet>> out;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    const serve::Response r = service.execute(q.sparql);
    EXPECT_EQ(r.status, serve::RequestStatus::kOk) << q.name;
    out.emplace_back(q.sparql, sorted_rows(r.results));
  }
  return out;
}

void expect_identical(const query::ResultSet& expected,
                      const query::ResultSet& actual,
                      const std::string& label) {
  EXPECT_EQ(expected.columns, actual.columns) << label;
  ASSERT_EQ(expected.rows.size(), actual.rows.size()) << label;
  EXPECT_EQ(expected.rows, actual.rows) << label;
}

// ---------------------------------------------------------------------------
// ShardCatalog: placement coverage and codec round-trip

TEST(ShardCatalog, ShardsCoverClosureAndRoundTripThroughCodec) {
  DistFixtureData fx;
  constexpr std::uint32_t k = 4;
  dist::ShardCatalog catalog(fx.store, fx.owners_for(k), k);

  const auto& owners = catalog.owners();
  std::unordered_set<rdf::Triple, rdf::TripleHash> covered;
  for (std::uint32_t p = 0; p < k; ++p) {
    std::vector<rdf::Triple> decoded;
    std::string error;
    ASSERT_TRUE(dist::ShardCatalog::decode(catalog.shard(p), decoded, &error))
        << error;
    EXPECT_EQ(decoded.size(), catalog.shard(p).triple_count);
    covered.insert(decoded.begin(), decoded.end());

    // Every triple on shard p belongs there by the placement rule.
    std::vector<std::uint32_t> dests;
    for (const rdf::Triple& t : decoded) {
      dests.clear();
      partition::append_shard_destinations(owners, t, k, dests);
      EXPECT_NE(std::find(dests.begin(), dests.end(), p), dests.end());
    }
  }
  // Union of shards == closure (no triple lost, none invented).
  EXPECT_EQ(covered.size(), fx.store.size());
  for (const rdf::Triple& t : fx.store.triples()) {
    EXPECT_TRUE(covered.contains(t));
  }

  // A triple with no owned endpoint is broadcast to every shard.
  std::vector<std::uint32_t> dests;
  partition::append_shard_destinations(
      owners, rdf::Triple{0xFFFFFF, 0xFFFFFE, 0xFFFFFD}, k, dests);
  EXPECT_EQ(dests.size(), k);

  // Damage is detected, not silently decoded.
  dist::EncodedShard corrupt = catalog.shard(0);
  corrupt.bytes[corrupt.bytes.size() / 2] ^= 0x40;
  std::vector<rdf::Triple> decoded;
  EXPECT_FALSE(dist::ShardCatalog::decode(corrupt, decoded, nullptr));
}

// ---------------------------------------------------------------------------
// QueryRouter: footprint computation

TEST(DistRouter, FootprintNarrowsToOwnedConstantEndpoint) {
  DistFixtureData fx;
  constexpr std::uint32_t k = 4;
  parallel::MemoryTransport transport(
      dist::NodeLayout{k, 1}.num_nodes());
  dist::DistService service(fx.dict, fx.store, fx.owners_for(k), k,
                            transport, dist_options());

  // Find an owned instance subject and its lexical form.
  const auto& owners = service.catalog().owners();
  const rdf::TermId type = fx.dict.find_iri(kRdfType);
  ASSERT_NE(type, rdf::kAnyTerm);
  rdf::TermId subject = rdf::kAnyTerm;
  for (const rdf::Triple& t : fx.store.triples()) {
    if (t.p == type && owners.contains(t.s)) {
      subject = t.s;
      break;
    }
  }
  ASSERT_NE(subject, rdf::kAnyTerm);

  query::SparqlParser parser(fx.dict);
  const std::string narrow = "SELECT ?c WHERE { <" +
                             fx.dict.lexical(subject) + "> a ?c }";
  const std::string wide = "SELECT ?x WHERE { ?x a ?c }";
  const auto narrow_q = parser.parse(narrow);
  const auto wide_q = parser.parse(wide);
  ASSERT_TRUE(narrow_q.has_value());
  ASSERT_TRUE(wide_q.has_value());

  dist::QueryRouter router(owners, service.layout(), service.replicas(),
                           transport);
  const auto narrow_fp = router.footprint(*narrow_q);
  ASSERT_EQ(narrow_fp.partitions.size(), 1u);
  EXPECT_EQ(narrow_fp.partitions[0], owners.at(subject));

  const auto wide_fp = router.footprint(*wide_q);
  EXPECT_EQ(wide_fp.partitions.size(), k);
}

// ---------------------------------------------------------------------------
// Acceptance: distributed answers bit-identical to single-store QueryService

TEST(DistService, BitIdenticalToSingleStoreForAllPartitionCounts) {
  DistFixtureData fx;
  const auto expected = reference_answers(fx);

  for (const std::uint32_t k : {1u, 2u, 4u, 8u}) {
    parallel::MemoryTransport transport(
        dist::NodeLayout{k, 1}.num_nodes());
    dist::DistService service(fx.dict, fx.store, fx.owners_for(k), k,
                              transport, dist_options());
    for (const auto& [sparql, want] : expected) {
      const serve::Response got = service.execute(sparql);
      ASSERT_EQ(got.status, serve::RequestStatus::kOk) << "k=" << k;
      expect_identical(want, got.results, "k=" + std::to_string(k));
    }
    const dist::DistStats stats = service.stats();
    EXPECT_EQ(stats.completed, expected.size());
    EXPECT_EQ(stats.unavailable, 0u);
    EXPECT_GT(stats.scans_sent, 0u);
    EXPECT_GT(stats.shard_bytes_shipped, 0u);
  }
}

TEST(DistService, BitIdenticalWithStreamingPartitioners) {
  // Owner tables from the streaming partitioners must serve the same
  // answers as the single store — placement only moves triples, never
  // loses them.
  DistFixtureData fx;
  const auto expected = reference_answers(fx);
  constexpr std::uint32_t k = 4;

  for (const auto kind : {partition::PartitionerKind::kHdrf,
                          partition::PartitionerKind::kFennel,
                          partition::PartitionerKind::kNe}) {
    partition::PartitionerOptions popts;
    popts.kind = kind;
    popts.split_merge_factor = kind == partition::PartitionerKind::kHdrf
                                   ? 4u
                                   : 1u;
    const partition::StreamingOwnerPolicy policy(popts);
    partition::OwnerTable owners =
        partition::partition_data(fx.store, fx.dict, *fx.vocab, policy, k)
            .owners;
    parallel::MemoryTransport transport(dist::NodeLayout{k, 1}.num_nodes());
    dist::DistService service(fx.dict, fx.store, std::move(owners), k,
                              transport, dist_options());
    for (const auto& [sparql, want] : expected) {
      const serve::Response got = service.execute(sparql);
      ASSERT_EQ(got.status, serve::RequestStatus::kOk) << policy.name();
      expect_identical(want, got.results, policy.name());
    }
  }
}

TEST(DistService, BitIdenticalUnderFaultsWithReplicaKilledMidRun) {
  DistFixtureData fx;
  const auto expected = reference_answers(fx);
  constexpr std::uint32_t k = 4;

  std::uint64_t total_retransmissions = 0;
  std::uint64_t total_failovers = 0;
  for (const std::uint64_t seed : {1ULL, 29ULL}) {
    parallel::MemoryTransport inner(dist::NodeLayout{k, 2}.num_nodes());
    parallel::FaultSpec spec;
    spec.seed = seed;
    spec.drop = 0.15;
    spec.duplicate = 0.10;
    spec.corrupt = 0.10;
    spec.delay = 0.05;
    spec.reorder = 0.20;
    parallel::FaultyTransport transport(inner, spec);

    dist::DistService service(fx.dict, fx.store, fx.owners_for(k), k,
                              transport, dist_options(/*replicas=*/2));
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (i == expected.size() / 2) {
        // Kill partition 1's primary mid-run: subsequent queries touching
        // partition 1 must fail over to its second replica.
        service.kill_replica(1, 0);
      }
      const serve::Response got = service.execute(expected[i].first);
      ASSERT_EQ(got.status, serve::RequestStatus::kOk)
          << "seed=" << seed << " i=" << i;
      expect_identical(expected[i].second, got.results,
                       "seed=" + std::to_string(seed) + " query " +
                           std::to_string(i));
    }
    const dist::DistStats stats = service.stats();
    EXPECT_EQ(stats.completed, expected.size()) << "seed=" << seed;
    EXPECT_EQ(stats.unavailable, 0u) << "seed=" << seed;
    total_retransmissions += stats.retransmissions;
    total_failovers += stats.failovers;
    EXPECT_GT(transport.injected_faults().total(), 0u) << "seed=" << seed;
  }
  // The schedules actually exercised the retry and failover paths.
  EXPECT_GT(total_retransmissions, 0u);
  EXPECT_GT(total_failovers, 0u);
}

TEST(DistService, AllReplicasDeadIsUnavailableNotHung) {
  DistFixtureData fx;
  constexpr std::uint32_t k = 2;
  parallel::MemoryTransport transport(dist::NodeLayout{k, 1}.num_nodes());
  dist::DistService service(fx.dict, fx.store, fx.owners_for(k), k,
                            transport, dist_options());
  service.kill_replica(0, 0);

  const serve::Response got =
      service.execute(gen::lubm_queries().front().sparql);
  EXPECT_EQ(got.status, serve::RequestStatus::kUnavailable);
  EXPECT_FALSE(got.error.empty());
  EXPECT_EQ(service.stats().unavailable, 1u);

  // Revive re-ships the current shard; service recovers.
  service.revive_replica(0, 0);
  const serve::Response again =
      service.execute(gen::lubm_queries().front().sparql);
  EXPECT_EQ(again.status, serve::RequestStatus::kOk);
}

// ---------------------------------------------------------------------------
// Satellite fix: cache key includes the shard version vector

TEST(DistService, ShardRefreshInvalidatesMergedResultCache) {
  DistFixtureData fx;
  constexpr std::uint32_t k = 2;
  parallel::MemoryTransport transport(dist::NodeLayout{k, 1}.num_nodes());
  dist::DistService service(fx.dict, fx.store, fx.owners_for(k), k,
                            transport, dist_options());

  const std::string q =
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#> "
      "SELECT ?x WHERE { ?x a ub:GraduateStudent }";
  const serve::Response first = service.execute(q);
  ASSERT_EQ(first.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  const serve::Response second = service.execute(q);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.results.rows, first.results.rows);

  // Refresh one shard with a brand-new graduate student.
  const rdf::TermId type = fx.dict.find_iri(kRdfType);
  const rdf::TermId grad = fx.dict.find_iri(
      std::string(gen::kUnivBenchNs) + "GraduateStudent");
  ASSERT_NE(grad, rdf::kAnyTerm);
  const rdf::TermId fresh =
      fx.dict.intern_iri("http://www.Univ9.edu/NewGradStudent");
  const std::vector<std::uint64_t> before = service.shard_versions();
  service.refresh(std::vector<rdf::Triple>{{fresh, type, grad}});
  const std::vector<std::uint64_t> after = service.shard_versions();
  EXPECT_NE(before, after);

  // Same text, new version vector: the stale merged result cannot be
  // served — the answer now includes the new student.
  const serve::Response third = service.execute(q);
  ASSERT_EQ(third.status, serve::RequestStatus::kOk);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.results.rows.size(), first.results.rows.size() + 1);
  bool found = false;
  for (const auto& row : third.results.rows) {
    found = found || (row.size() == 1 && row[0] == fresh);
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// The generic workload driver runs unchanged over the distributed tier

TEST(DistWorkload, ClosedLoopDriverCompletesOverDistService) {
  DistFixtureData fx;
  constexpr std::uint32_t k = 2;
  parallel::MemoryTransport transport(dist::NodeLayout{k, 1}.num_nodes());
  dist::DistService service(fx.dict, fx.store, fx.owners_for(k), k,
                            transport,
                            dist_options(/*replicas=*/1, /*threads=*/2));

  std::vector<std::string> queries;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    queries.push_back(q.sparql);
  }
  serve::WorkloadOptions wo;
  wo.mode = serve::WorkloadMode::kClosedLoop;
  wo.total_requests = 40;
  wo.clients = 2;
  const serve::WorkloadReport report =
      dist::run_workload(service, queries, wo);
  EXPECT_EQ(report.submitted, 40u);
  EXPECT_EQ(report.completed, 40u);
  EXPECT_EQ(report.shed, 0u);
  EXPECT_EQ(report.unavailable, 0u);
  EXPECT_GT(report.cache_hits, 0u);  // 40 draws over 14 queries must repeat
  service.drain();
}

}  // namespace
}  // namespace parowl
