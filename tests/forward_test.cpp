#include <gtest/gtest.h>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/reason/forward.hpp"
#include "parowl/rules/horst_rules.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::reason {
namespace {

class ForwardTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  rules::RuleParser parser{dict};
  rdf::TripleStore store;

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  rules::RuleSet rules(std::initializer_list<const char*> lines) {
    rules::RuleSet rs;
    for (const char* line : lines) {
      std::string err;
      auto r = parser.parse_rule(line, &err);
      EXPECT_TRUE(r.has_value()) << line << ": " << err;
      rs.add(std::move(*r));
    }
    return rs;
  }
};

TEST_F(ForwardTest, TransitiveClosureOfChain) {
  const auto p = iri("p");
  for (int i = 0; i < 5; ++i) {
    store.insert({iri("n" + std::to_string(i)), p,
                  iri("n" + std::to_string(i + 1))});
  }
  const auto rs = rules({"t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"});
  const ForwardStats stats = forward_closure(store, rs);
  // Chain of 6 nodes: closure has n*(n-1)/2 = 15 edges.
  EXPECT_EQ(store.size(), 15u);
  EXPECT_EQ(stats.derived, 10u);
  EXPECT_TRUE(store.contains({iri("n0"), p, iri("n5")}));
  EXPECT_GE(stats.iterations, 2u);
}

TEST_F(ForwardTest, SymmetricRule) {
  const auto k = iri("knows");
  store.insert({iri("a"), k, iri("b")});
  const auto rs = rules({"s: (?x <knows> ?y) -> (?y <knows> ?x)"});
  forward_closure(store, rs);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.contains({iri("b"), k, iri("a")}));
}

TEST_F(ForwardTest, JoinOnObjectPosition) {
  // grandparent: (?a par ?b)(?b par ?c) -> (?a gp ?c)
  store.insert({iri("x"), iri("par"), iri("y")});
  store.insert({iri("y"), iri("par"), iri("z")});
  const auto rs =
      rules({"gp: (?a <par> ?b) (?b <par> ?c) -> (?a <gp> ?c)"});
  forward_closure(store, rs);
  EXPECT_TRUE(store.contains({iri("x"), iri("gp"), iri("z")}));
  EXPECT_EQ(store.size(), 3u);
}

TEST_F(ForwardTest, ThreeAtomBody) {
  store.insert({iri("a"), iri("p"), iri("b")});
  store.insert({iri("b"), iri("q"), iri("c")});
  store.insert({iri("c"), iri("r"), iri("d")});
  const auto rs = rules(
      {"chain: (?w <p> ?x) (?x <q> ?y) (?y <r> ?z) -> (?w <res> ?z)"});
  forward_closure(store, rs);
  EXPECT_TRUE(store.contains({iri("a"), iri("res"), iri("d")}));
}

TEST_F(ForwardTest, VariablePredicateAtom) {
  // sameAs-style propagation with an unbound predicate.
  store.insert({iri("a"), iri("sameAs"), iri("a2")});
  store.insert({iri("a"), iri("worksAt"), iri("acme")});
  const auto rs = rules(
      {"prop: (?x <sameAs> ?y) (?x ?p ?z) -> (?y ?p ?z)"});
  forward_closure(store, rs);
  EXPECT_TRUE(store.contains({iri("a2"), iri("worksAt"), iri("acme")}));
  // The rule also fires on the sameAs triple itself.
  EXPECT_TRUE(store.contains({iri("a2"), iri("sameAs"), iri("a2")}));
}

TEST_F(ForwardTest, NoRulesMeansNoChange) {
  store.insert({1, 2, 3});
  rules::RuleSet empty;
  const ForwardStats stats = forward_closure(store, empty);
  EXPECT_EQ(stats.derived, 0u);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(ForwardTest, EmptyStoreTerminatesImmediately) {
  const auto rs = rules({"t: (?a <p> ?b) -> (?b <p> ?a)"});
  const ForwardStats stats = forward_closure(store, rs);
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_EQ(stats.derived, 0u);
}

TEST_F(ForwardTest, DeltaRunOnlyProcessesNewTriples) {
  const auto p = iri("p");
  store.insert({iri("a"), p, iri("b")});
  const auto rs = rules({"t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"});
  ForwardEngine engine(store, rs);
  engine.run(0);
  EXPECT_EQ(store.size(), 1u);

  // Add a tuple extending the chain; run from the delta only.
  const std::size_t mark = store.size();
  store.insert({iri("b"), p, iri("c")});
  engine.run(mark);
  EXPECT_TRUE(store.contains({iri("a"), p, iri("c")}));
  EXPECT_EQ(store.size(), 3u);
}

TEST_F(ForwardTest, NaiveAndSemiNaiveAgree) {
  const auto p = iri("p");
  for (int i = 0; i < 6; ++i) {
    store.insert({iri("m" + std::to_string(i)), p,
                  iri("m" + std::to_string((i + 1) % 6))});  // a cycle
  }
  const auto rs = rules({"t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"});

  rdf::TripleStore naive_store;
  naive_store.insert_all(store.triples());

  forward_closure(store, rs);  // semi-naive default
  ForwardOptions naive;
  naive.semi_naive = false;
  forward_closure(naive_store, rs, naive);

  EXPECT_EQ(store.size(), naive_store.size());
  for (const rdf::Triple& t : store.triples()) {
    EXPECT_TRUE(naive_store.contains(t));
  }
  // Cycle closure: complete digraph on 6 nodes incl. self-loops.
  EXPECT_EQ(store.size(), 36u);
}

TEST_F(ForwardTest, LiteralGuardSuppressesLiteralSubjects) {
  const auto p = iri("p");
  const auto lit = dict.intern_literal("\"five\"");
  store.insert({iri("a"), p, lit});
  // Rule would derive (lit type C) without the guard (rdfs3 pattern).
  const auto rs = rules({"r: (?x <p> ?y) -> (?y rdf:type <C>)"});

  ForwardOptions guarded;
  guarded.dict = &dict;
  const ForwardStats stats = forward_closure(store, rs, guarded);
  EXPECT_EQ(stats.derived, 0u);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(ForwardTest, WithoutGuardLiteralSubjectIsDerived) {
  const auto p = iri("p");
  const auto lit = dict.intern_literal("\"five\"");
  store.insert({iri("a"), p, lit});
  const auto rs = rules({"r: (?x <p> ?y) -> (?y rdf:type <C>)"});
  forward_closure(store, rs);  // no dict, no guard
  EXPECT_EQ(store.size(), 2u);
}

TEST_F(ForwardTest, MaxIterationsStopsEarly) {
  const auto p = iri("p");
  for (int i = 0; i < 8; ++i) {
    store.insert({iri("c" + std::to_string(i)), p,
                  iri("c" + std::to_string(i + 1))});
  }
  const auto rs = rules({"t: (?a <p> ?b) (?b <p> ?c) -> (?a <p> ?c)"});
  ForwardOptions opts;
  opts.max_iterations = 1;
  const ForwardStats stats = forward_closure(store, rs, opts);
  EXPECT_EQ(stats.iterations, 1u);
  // One semi-naive iteration over a path adds paths of length 2 and 3.
  EXPECT_LT(store.size(), 45u);
  EXPECT_GT(store.size(), 8u);
}

TEST_F(ForwardTest, FiringsPerRuleTracked) {
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto rs = rules({"r1: (?x <p> ?y) -> (?y <q> ?x)",
                         "r2: (?x <q> ?y) -> (?x <r> ?y)"});
  const ForwardStats stats = forward_closure(store, rs);
  ASSERT_EQ(stats.firings_per_rule.size(), 2u);
  EXPECT_EQ(stats.firings_per_rule[0], 1u);
  EXPECT_EQ(stats.firings_per_rule[1], 1u);
  EXPECT_EQ(stats.derived, 2u);
}

TEST_F(ForwardTest, DuplicateDerivationsInOneRoundCountOnce) {
  // Both frontier triples derive the same head in the same iteration; the
  // pending-buffer seen-set must credit the rule once, so firings stay in
  // parity with `derived` instead of being inflated by duplicates.
  store.insert({iri("a"), iri("p"), iri("b")});
  store.insert({iri("a"), iri("p"), iri("c")});
  const auto rs = rules({"r: (?x <p> ?y) -> (?x <t> ?x)"});
  const ForwardStats stats = forward_closure(store, rs);
  EXPECT_TRUE(store.contains({iri("a"), iri("t"), iri("a")}));
  EXPECT_EQ(stats.derived, 1u);
  // Both head instantiations are still attempted — only the duplicate
  // pending entry (and its store insert probe) is elided.
  EXPECT_EQ(stats.attempts, 2u);
  ASSERT_EQ(stats.firings_per_rule.size(), 1u);
  EXPECT_EQ(stats.firings_per_rule[0], 1u);
}

TEST_F(ForwardTest, DuplicateAcrossRulesCreditsFirstInFiringOrder) {
  // Two rules derive the same triple from the same frontier triple; the
  // first (rule-order) firing gets the credit and the per-rule sum equals
  // `derived` — the parity invariant the merge barrier preserves for any
  // thread count.
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto rs = rules({"r1: (?x <p> ?y) -> (?x <q> ?y)",
                         "r2: (?x <p> ?y) -> (?x <q> ?y)"});
  const ForwardStats stats = forward_closure(store, rs);
  EXPECT_EQ(stats.derived, 1u);
  EXPECT_EQ(stats.attempts, 2u);
  ASSERT_EQ(stats.firings_per_rule.size(), 2u);
  EXPECT_EQ(stats.firings_per_rule[0], 1u);
  EXPECT_EQ(stats.firings_per_rule[1], 0u);
}

TEST_F(ForwardTest, RepeatedVariableInBodyAtom) {
  // Only reflexive edges should fire.
  store.insert({iri("a"), iri("p"), iri("a")});
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto rs = rules({"r: (?x <p> ?x) -> (?x <self> ?x)"});
  forward_closure(store, rs);
  EXPECT_TRUE(store.contains({iri("a"), iri("self"), iri("a")}));
  EXPECT_EQ(store.size(), 3u);
}

TEST_F(ForwardTest, HorstSubclassAndSubpropertyInterplay) {
  ontology::Vocabulary vocab(dict);
  const auto rs = rules::horst_rules(vocab);
  const auto student = iri("Student"), person = iri("Person");
  const auto head_of = iri("headOf"), works_for = iri("worksFor");
  store.insert({student, vocab.rdfs_subclass_of, person});
  store.insert({head_of, vocab.rdfs_subproperty_of, works_for});
  store.insert({works_for, vocab.rdfs_domain, person});
  store.insert({iri("sam"), vocab.rdf_type, student});
  store.insert({iri("kim"), head_of, iri("lab")});

  ForwardOptions opts;
  opts.dict = &dict;
  forward_closure(store, rs, opts);

  EXPECT_TRUE(store.contains({iri("sam"), vocab.rdf_type, person}));
  EXPECT_TRUE(store.contains({iri("kim"), works_for, iri("lab")}));
  // Domain of worksFor types kim as a Person (via rdfs7 then rdfs2).
  EXPECT_TRUE(store.contains({iri("kim"), vocab.rdf_type, person}));
}

}  // namespace
}  // namespace parowl::reason
