#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::parallel {
namespace {

/// Fixture with a small LUBM data-set and its serial closure to compare
/// every parallel configuration against.
class ClusterTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  rdf::TripleStore serial;

  void SetUp() override {
    gen::LubmOptions opts;
    opts.universities = 2;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 4;
    opts.students_per_faculty = 3;
    gen::generate_lubm(opts, dict, store);

    serial.insert_all(store.triples());
    reason::materialize(serial, dict, vocab, {});
  }

  void expect_equivalent(const ParallelResult& result) {
    ASSERT_TRUE(result.merged.has_value());
    const rdf::TripleStore& merged = *result.merged;
    EXPECT_EQ(merged.size(), serial.size());
    for (const rdf::Triple& t : serial.triples()) {
      ASSERT_TRUE(merged.contains(t))
          << "missing inference in parallel result";
    }
    for (const rdf::Triple& t : merged.triples()) {
      ASSERT_TRUE(serial.contains(t)) << "parallel derived extra triple";
    }
  }
};

TEST_F(ClusterTest, DataPartitionGraphPolicyMatchesSerial) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_GE(result.cluster.rounds, 1u);
  ASSERT_TRUE(result.metrics.has_value());
  EXPECT_GE(result.metrics->total_nodes, 1u);
}

TEST_F(ClusterTest, DataPartitionHashPolicyMatchesSerial) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(ClusterTest, DataPartitionDomainPolicyMatchesSerial) {
  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(ClusterTest, RulePartitionMatchesSerial) {
  ParallelOptions opts;
  opts.approach = Approach::kRulePartition;
  opts.partitions = 3;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(ClusterTest, RulePartitionUnweightedMatchesSerial) {
  ParallelOptions opts;
  opts.approach = Approach::kRulePartition;
  opts.partitions = 2;
  opts.weighted_rule_graph = false;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(ClusterTest, ThreadedModeMatchesSequential) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 3;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kThreaded;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(ClusterTest, FileTransportMatchesSerial) {
  const partition::GraphOwnerPolicy policy;
  const auto spool = std::filesystem::temp_directory_path() /
                     "parowl_cluster_test_spool";
  FileTransport transport(spool, 3);
  ParallelOptions opts;
  opts.partitions = 3;
  opts.policy = &policy;
  opts.transport = &transport;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  // File transport must have actually moved bytes (unless the partitioning
  // was perfect — with 3 graph partitions over 2 universities it cannot be).
  std::uint64_t bytes = 0;
  for (std::uint32_t p = 0; p < 3; ++p) {
    bytes += transport.stats(p).bytes_sent;
  }
  EXPECT_GT(bytes, 0u);
}

TEST_F(ClusterTest, QueryDrivenWorkersMatchSerial) {
  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  opts.local_strategy = reason::Strategy::kQueryDriven;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(ClusterTest, SinglePartitionIsSerial) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 1;
  opts.policy = &policy;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  // One partition never communicates.
  EXPECT_EQ(result.cluster.rounds, 1u);
  EXPECT_NEAR(result.output_replication, 0.0, 1e-9);
}

TEST_F(ClusterTest, BreakdownAndSimulatedTimeArePopulated) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  EXPECT_EQ(result.cluster.breakdown.size(), result.cluster.rounds);
  EXPECT_GT(result.cluster.simulated_seconds, 0.0);
  EXPECT_GT(result.cluster.reason_seconds, 0.0);
  EXPECT_GE(result.cluster.sync_seconds, 0.0);
  // Round maxima decompose the simulated time.
  double sum = 0.0;
  for (const RoundBreakdown& rb : result.cluster.breakdown) {
    sum += rb.reason_max + rb.io_max + rb.aggregate_max;
  }
  EXPECT_NEAR(sum, result.cluster.simulated_seconds, 1e-9);
}

TEST_F(ClusterTest, MergedDisabledSkipsStore) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  opts.build_merged = false;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  EXPECT_FALSE(result.merged.has_value());
  EXPECT_EQ(result.inferred, serial.size() - store.size());
}

TEST_F(ClusterTest, NetworkModelChargesCommunication) {
  // Hash partitioning guarantees cross-partition traffic; under the memory
  // transport the network model must charge it.
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.build_merged = false;
  // Absurdly slow network: communication must dominate.
  opts.network.latency_seconds = 0.01;
  opts.network.bandwidth_bytes_per_sec = 1e4;
  const ParallelResult slow = parallel_materialize(store, dict, vocab, opts);

  opts.network.latency_seconds = 1e-9;
  opts.network.bandwidth_bytes_per_sec = 1e12;
  const ParallelResult fast = parallel_materialize(store, dict, vocab, opts);

  EXPECT_GT(slow.cluster.io_seconds, fast.cluster.io_seconds * 100);
  EXPECT_GT(slow.cluster.simulated_seconds,
            fast.cluster.simulated_seconds);
}

TEST_F(ClusterTest, PerWorkerReasonTotalsExposed) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 3;
  opts.policy = &policy;
  opts.build_merged = false;
  const ParallelResult r = parallel_materialize(store, dict, vocab, opts);
  ASSERT_EQ(r.cluster.reason_seconds_per_worker.size(), 3u);
  double total = 0.0;
  for (const double t : r.cluster.reason_seconds_per_worker) {
    EXPECT_GE(t, 0.0);
    total += t;
  }
  EXPECT_GT(total, 0.0);
}

// ---------------------------------------------------------------------------
// Fault tolerance: faulty runs, checkpointing, crash recovery

TEST_F(ClusterTest, FaultyRunMatchesSerialAndReportReconciles) {
  const partition::HashOwnerPolicy policy;
  FaultSpec spec;
  spec.seed = 7;
  spec.drop = 0.3;
  spec.duplicate = 0.2;
  spec.corrupt = 0.15;
  spec.reorder = 0.25;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.faults = &spec;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);

  const RunReport& rep = result.cluster.report;
  EXPECT_GT(rep.injected.total(), 0u);
  // With no delay faults, each destructive fault costs one retransmission,
  // each duplicate one id-level discard, each corruption one checksum trip.
  EXPECT_EQ(rep.retransmissions, rep.injected.drops + rep.injected.corruptions);
  EXPECT_EQ(rep.redeliveries, rep.injected.duplicates);
  EXPECT_EQ(rep.checksum_failures, rep.injected.corruptions);
  EXPECT_FALSE(rep.recovered);
}

TEST_F(ClusterTest, DelayFaultsChargeBackoffAndStillMatchSerial) {
  const partition::HashOwnerPolicy policy;
  FaultSpec spec;
  spec.seed = 11;
  spec.drop = 0.1;
  spec.delay = 0.3;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.faults = &spec;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  const RunReport& rep = result.cluster.report;
  if (rep.retransmissions > 0) {
    EXPECT_GT(rep.backoff_seconds, 0.0);
  }
}

TEST_F(ClusterTest, ThreadedFaultyRunMatchesSerial) {
  const partition::HashOwnerPolicy policy;
  FaultSpec spec;
  spec.seed = 13;
  spec.drop = 0.25;
  spec.duplicate = 0.15;
  spec.corrupt = 0.1;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.faults = &spec;
  opts.mode = ExecutionMode::kThreaded;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_GT(result.cluster.report.injected.total(), 0u);
}

TEST_F(ClusterTest, CheckpointsAreWrittenAtRoundGranularity) {
  const partition::HashOwnerPolicy policy;
  const auto ckpt_dir = std::filesystem::temp_directory_path() /
                        ("parowl_ckpt_write_" + std::to_string(::getpid()));
  ParallelOptions opts;
  opts.partitions = 3;
  opts.policy = &policy;
  opts.checkpoint.dir = ckpt_dir.string();
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_GT(result.cluster.report.checkpoints_written, 0u);
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir)) {
    files += entry.path().extension() == ".ckpt";
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_EQ(files, result.cluster.report.checkpoints_written);
  std::filesystem::remove_all(ckpt_dir);
}

TEST_F(ClusterTest, KilledWorkerRecoversFromCheckpointAndMatchesSerial) {
  const partition::HashOwnerPolicy policy;
  const auto ckpt_dir = std::filesystem::temp_directory_path() /
                        ("parowl_ckpt_crash_" + std::to_string(::getpid()));
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.checkpoint.dir = ckpt_dir.string();
  opts.fault_tolerance.crash_at_round = 1;
  opts.fault_tolerance.crash_worker = 1;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_TRUE(result.cluster.report.recovered);
  EXPECT_EQ(result.cluster.report.recovered_from_round, 0);
  EXPECT_GT(result.cluster.report.checkpoints_written, 0u);
  std::filesystem::remove_all(ckpt_dir);
}

TEST_F(ClusterTest, CrashWithoutCheckpointDirIsFatal) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  opts.fault_tolerance.crash_at_round = 1;
  opts.fault_tolerance.crash_worker = 0;
  EXPECT_THROW(parallel_materialize(store, dict, vocab, opts),
               SimulatedCrash);
}

TEST_F(ClusterTest, AsyncFaultHooksPreserveFixpoint) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  const ParallelResult clean =
      parallel_materialize(store, dict, vocab, opts);

  FaultSpec spec;
  spec.seed = 3;
  spec.drop = 0.2;
  spec.duplicate = 0.1;
  spec.corrupt = 0.1;
  spec.delay = 0.1;
  opts.faults = &spec;
  const ParallelResult faulty =
      parallel_materialize(store, dict, vocab, opts);

  // Async delivery order differs under faults, but the fixpoint is a set:
  // the merged closures must be identical (and equal to serial).
  expect_equivalent(clean);
  expect_equivalent(faulty);
  ASSERT_TRUE(faulty.async.has_value());
  EXPECT_GT(faulty.async->injected.total(), 0u);
  EXPECT_GT(faulty.async->retries, 0u);
  EXPECT_GT(faulty.async->retry_seconds, 0.0);
  ASSERT_TRUE(clean.async.has_value());
  EXPECT_EQ(clean.async->injected.total(), 0u);
}

TEST_F(ClusterTest, MdcParallelMatchesSerial) {
  rdf::TripleStore mdc;
  gen::MdcOptions mopts;
  mopts.fields = 3;
  mopts.wells_per_reservoir = 4;
  gen::generate_mdc(mopts, dict, mdc);

  rdf::TripleStore mdc_serial;
  mdc_serial.insert_all(mdc.triples());
  reason::materialize(mdc_serial, dict, vocab, {});

  const partition::DomainOwnerPolicy policy(&gen::mdc_field_key);
  ParallelOptions opts;
  opts.partitions = 3;
  opts.policy = &policy;
  const ParallelResult result = parallel_materialize(mdc, dict, vocab, opts);
  ASSERT_TRUE(result.merged.has_value());
  EXPECT_EQ(result.merged->size(), mdc_serial.size());
  for (const rdf::Triple& t : mdc_serial.triples()) {
    ASSERT_TRUE(result.merged->contains(t));
  }
}

}  // namespace
}  // namespace parowl::parallel
