#include <gtest/gtest.h>

#include <algorithm>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/uobm.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl::parallel {
namespace {

class AsyncTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  rdf::TripleStore serial;

  void SetUp() override {
    gen::LubmOptions opts;
    opts.universities = 2;
    opts.departments_per_university = 2;
    opts.faculty_per_department = 4;
    opts.students_per_faculty = 3;
    gen::generate_lubm(opts, dict, store);

    serial.insert_all(store.triples());
    reason::materialize(serial, dict, vocab, {});
  }

  void expect_equivalent(const ParallelResult& result) {
    ASSERT_TRUE(result.merged.has_value());
    EXPECT_EQ(result.merged->size(), serial.size());
    for (const rdf::Triple& t : serial.triples()) {
      ASSERT_TRUE(result.merged->contains(t));
    }
    for (const rdf::Triple& t : result.merged->triples()) {
      ASSERT_TRUE(serial.contains(t));
    }
  }
};

TEST_F(AsyncTest, DataPartitionAsyncMatchesSerial) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  ASSERT_TRUE(result.async.has_value());
  EXPECT_GT(result.async->simulated_seconds, 0.0);
  EXPECT_EQ(result.async->workers.size(), 4u);
  // Every worker activated at least once (the initial closure).
  for (const auto& w : result.async->workers) {
    EXPECT_GE(w.activations, 1u);
  }
}

TEST_F(AsyncTest, RulePartitionAsyncMatchesSerial) {
  ParallelOptions opts;
  opts.approach = Approach::kRulePartition;
  opts.partitions = 3;
  opts.mode = ExecutionMode::kAsyncSimulated;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(AsyncTest, AsyncQueryDrivenMatchesSerial) {
  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  opts.local_strategy = reason::Strategy::kQueryDriven;
  opts.mode = ExecutionMode::kAsyncSimulated;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(AsyncTest, AsyncDeliversTuplesWhenPartitionsInteract) {
  const partition::HashOwnerPolicy policy;  // heavy cross traffic
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_GT(result.async->deliveries, 0u);
  std::size_t received = 0;
  for (const auto& w : result.async->workers) {
    received += w.received_tuples;
  }
  EXPECT_GT(received, 0u);
}

TEST_F(AsyncTest, SinglePartitionNeverWaits) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 1;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_DOUBLE_EQ(result.async->wait_seconds, 0.0);
  EXPECT_EQ(result.async->deliveries, 0u);
}

TEST_F(AsyncTest, VirtualTimeInvariantsHold) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  opts.build_merged = false;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  ASSERT_TRUE(result.async.has_value());

  double max_finish = 0.0;
  for (const AsyncWorkerStats& w : result.async->workers) {
    // A worker's clock cannot finish before its own busy time.
    EXPECT_GE(w.finish_time, w.busy_seconds - 1e-12);
    max_finish = std::max(max_finish, w.finish_time);
  }
  EXPECT_DOUBLE_EQ(result.async->simulated_seconds, max_finish);
  EXPECT_GE(result.async->wait_seconds, 0.0);

  // Conservation: everything sent is eventually received.
  std::size_t sent = 0, received = 0;
  for (const AsyncWorkerStats& w : result.async->workers) {
    sent += w.sent_tuples;
    received += w.received_tuples;
  }
  EXPECT_EQ(sent, received);
}

// -- kAsync / kAsyncThreaded: the transport-backed asynchronous executor --

TEST_F(AsyncTest, AsyncClusterMatchesSerial) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsync;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  const AsyncStats& st = result.cluster.async_stats;
  EXPECT_GT(st.activations, 0u);
  EXPECT_GT(st.token_epochs, 0u);
  EXPECT_GT(st.token_passes, 0u);
  EXPECT_EQ(st.idle_seconds_per_worker.size(), 4u);
}

TEST_F(AsyncTest, AsyncClusterStealDisabledMatchesSerial) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsync;
  opts.async_exec.steal = false;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_EQ(result.cluster.async_stats.steals, 0u);
}

TEST_F(AsyncTest, AsyncClusterSmallChunksSteal) {
  // Tiny activation grain + graph partitioning (skewed backlogs) make
  // idle workers steal; the closure must be unaffected.
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsync;
  opts.async_exec.chunk = 16;
  opts.async_exec.steal_batch = 16;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  const AsyncStats& st = result.cluster.async_stats;
  EXPECT_GT(st.steals, 0u);
  EXPECT_GT(st.stolen_tuples, 0u);
}

TEST_F(AsyncTest, AsyncClusterSinglePartitionTerminates) {
  const partition::GraphOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 1;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsync;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_EQ(result.cluster.async_stats.steals, 0u);
}

TEST_F(AsyncTest, AsyncClusterQueryDrivenMatchesSerial) {
  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  opts.local_strategy = reason::Strategy::kQueryDriven;
  opts.mode = ExecutionMode::kAsync;
  expect_equivalent(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(AsyncTest, AsyncThreadedClusterMatchesSerial) {
  const partition::HashOwnerPolicy policy;
  ParallelOptions opts;
  opts.partitions = 4;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncThreaded;
  const ParallelResult result =
      parallel_materialize(store, dict, vocab, opts);
  expect_equivalent(result);
  EXPECT_GT(result.cluster.async_stats.activations, 0u);
  EXPECT_GT(result.cluster.async_stats.token_epochs, 0u);
}

TEST_F(AsyncTest, AsyncUobmMatchesSerial) {
  // Dense data-set: many in-flight batches and re-activations.
  rdf::Dictionary d2;
  ontology::Vocabulary v2(d2);
  rdf::TripleStore uobm;
  gen::UobmOptions opts;
  opts.base.universities = 2;
  opts.base.departments_per_university = 1;
  opts.hometowns = 8;
  gen::generate_uobm(opts, d2, uobm);

  rdf::TripleStore uobm_serial;
  uobm_serial.insert_all(uobm.triples());
  reason::materialize(uobm_serial, d2, v2, {});

  const partition::GraphOwnerPolicy policy;
  ParallelOptions popts;
  popts.partitions = 3;
  popts.policy = &policy;
  popts.mode = ExecutionMode::kAsyncSimulated;
  const ParallelResult result = parallel_materialize(uobm, d2, v2, popts);
  ASSERT_TRUE(result.merged.has_value());
  EXPECT_EQ(result.merged->size(), uobm_serial.size());
  for (const rdf::Triple& t : uobm_serial.triples()) {
    ASSERT_TRUE(result.merged->contains(t));
  }
}

}  // namespace
}  // namespace parowl::parallel
