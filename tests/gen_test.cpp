#include <gtest/gtest.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/gen/uobm.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/partition/owner_policy.hpp"
#include "parowl/rdf/graph_stats.hpp"

namespace parowl::gen {
namespace {

class GenTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
};

TEST_F(GenTest, LubmOntologyHasExpectedAxioms) {
  const GenStats stats = generate_lubm_ontology(dict, store);
  EXPECT_GT(stats.schema_triples, 30u);
  EXPECT_EQ(stats.instance_triples, 0u);

  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);
  EXPECT_GT(onto.subclass_of.size(), 10u);
  EXPECT_GE(onto.subproperty_of.size(), 5u);
  EXPECT_EQ(onto.transitive.size(), 1u);  // subOrganizationOf
  EXPECT_EQ(onto.inverse_of.size(), 2u);  // degreeFrom, memberOf
  EXPECT_GE(onto.domain.size() + onto.range.size(), 8u);
}

TEST_F(GenTest, LubmDeterministicForSeed) {
  LubmOptions opts;
  opts.universities = 1;
  generate_lubm(opts, dict, store);

  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  generate_lubm(opts, dict2, store2);
  EXPECT_EQ(store.size(), store2.size());
}

TEST_F(GenTest, LubmScalesLinearlyWithUniversities) {
  LubmOptions one;
  one.universities = 1;
  const GenStats s1 = generate_lubm(one, dict, store);

  rdf::Dictionary d3;
  rdf::TripleStore t3;
  LubmOptions three = one;
  three.universities = 3;
  const GenStats s3 = generate_lubm(three, d3, t3);

  EXPECT_NEAR(static_cast<double>(s3.instance_triples),
              3.0 * static_cast<double>(s1.instance_triples),
              0.2 * static_cast<double>(s3.instance_triples));
}

TEST_F(GenTest, LubmEntitiesCarryUniversityKeys) {
  LubmOptions opts;
  opts.universities = 2;
  generate_lubm(opts, dict, store);
  const auto split = ontology::split_schema(store, vocab);
  std::size_t keyed = 0, total = 0;
  for (const rdf::Triple& t : split.instance) {
    ++total;
    if (partition::lubm_university_key(dict.lexical(t.s)) >= 0) {
      ++keyed;
    }
  }
  // Every instance subject lives in some university's namespace.
  EXPECT_EQ(keyed, total);
}

TEST_F(GenTest, LubmCrossUniversityEdgesAreRare) {
  LubmOptions opts;
  opts.universities = 4;
  opts.cross_university_degree_prob = 0.1;
  generate_lubm(opts, dict, store);

  const auto split = ontology::split_schema(store, vocab);
  std::size_t cross = 0, resource_edges = 0;
  for (const rdf::Triple& t : split.instance) {
    if (!dict.is_resource(t.o)) {
      continue;
    }
    const auto ks = partition::lubm_university_key(dict.lexical(t.s));
    const auto ko = partition::lubm_university_key(dict.lexical(t.o));
    if (ks >= 0 && ko >= 0) {
      ++resource_edges;
      cross += ks != ko ? 1 : 0;
    }
  }
  ASSERT_GT(resource_edges, 0u);
  EXPECT_LT(static_cast<double>(cross) / resource_edges, 0.05);
  EXPECT_GT(cross, 0u);  // but they exist
}

TEST_F(GenTest, LubmLiteralsToggle) {
  LubmOptions with;
  with.universities = 1;
  const GenStats sw = generate_lubm(with, dict, store);

  rdf::Dictionary d2;
  rdf::TripleStore t2;
  LubmOptions without = with;
  without.include_literals = false;
  const GenStats so = generate_lubm(without, d2, t2);
  EXPECT_GT(sw.instance_triples, so.instance_triples);

  const rdf::GraphStats gs = rdf::compute_graph_stats(t2, d2);
  EXPECT_EQ(gs.literal_objects, 0u);
}

TEST_F(GenTest, UobmIsDenserThanLubm) {
  UobmOptions uopts;
  uopts.base.universities = 2;
  const GenStats ustats = generate_uobm(uopts, dict, store);

  rdf::Dictionary d2;
  rdf::TripleStore t2;
  const GenStats lstats = generate_lubm(uopts.base, d2, t2);

  EXPECT_GT(ustats.instance_triples, lstats.instance_triples);

  // UOBM must introduce cross-university resource edges well above LUBM's.
  auto cross_fraction = [](const rdf::TripleStore& s,
                           const rdf::Dictionary& d) {
    std::size_t cross = 0, edges = 0;
    for (const rdf::Triple& t : s.triples()) {
      if (!d.is_resource(t.o)) {
        continue;
      }
      const auto ks = partition::lubm_university_key(d.lexical(t.s));
      const auto ko = partition::lubm_university_key(d.lexical(t.o));
      if (ks >= 0 && ko >= 0) {
        ++edges;
        cross += ks != ko ? 1 : 0;
      }
    }
    return edges == 0 ? 0.0 : static_cast<double>(cross) / edges;
  };
  EXPECT_GT(cross_fraction(store, dict), 3 * cross_fraction(t2, d2));
}

TEST_F(GenTest, UobmSchemaDeclaresNewProperties) {
  UobmOptions uopts;
  uopts.base.universities = 1;
  generate_uobm(uopts, dict, store);
  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);
  const auto hometown =
      dict.find_iri(std::string(kUnivBenchNs) + "hasSameHomeTownWith");
  const auto has_friend = dict.find_iri(std::string(kUnivBenchNs) + "hasFriend");
  ASSERT_NE(hometown, rdf::kAnyTerm);
  EXPECT_TRUE(onto.transitive.contains(hometown));
  EXPECT_TRUE(onto.symmetric.contains(hometown));
  EXPECT_TRUE(onto.symmetric.contains(has_friend));
}

TEST_F(GenTest, MdcOntologyStructure) {
  const GenStats stats = generate_mdc_ontology(dict, store);
  EXPECT_GT(stats.schema_triples, 20u);
  const ontology::Ontology onto = ontology::extract_ontology(store, vocab);
  const auto part_of = dict.find_iri(std::string(kMdcNs) + "partOf");
  ASSERT_NE(part_of, rdf::kAnyTerm);
  EXPECT_TRUE(onto.transitive.contains(part_of));
  EXPECT_EQ(onto.inverse_of.size(), 1u);
}

TEST_F(GenTest, MdcPartOfChainsAreDeep) {
  MdcOptions opts;
  opts.fields = 1;
  generate_mdc(opts, dict, store);
  // Completion -> Well -> Reservoir -> Field must exist as base edges.
  const auto part_of = dict.find_iri(std::string(kMdcNs) + "partOf");
  const auto comp =
      dict.find_iri("http://cisoft.usc.edu/data/Field0/Completion0_0_0");
  const auto well =
      dict.find_iri("http://cisoft.usc.edu/data/Field0/Well0_0");
  ASSERT_NE(comp, rdf::kAnyTerm);
  EXPECT_TRUE(store.contains({comp, part_of, well}));
}

TEST_F(GenTest, MdcFieldsAreLocal) {
  MdcOptions opts;
  opts.fields = 4;
  opts.cross_field_pipeline_prob = 0.05;
  generate_mdc(opts, dict, store);
  std::size_t cross = 0, edges = 0;
  for (const rdf::Triple& t : store.triples()) {
    if (!dict.is_resource(t.o)) {
      continue;
    }
    const auto ks = mdc_field_key(dict.lexical(t.s));
    const auto ko = mdc_field_key(dict.lexical(t.o));
    if (ks >= 0 && ko >= 0) {
      ++edges;
      cross += ks != ko ? 1 : 0;
    }
  }
  ASSERT_GT(edges, 0u);
  EXPECT_LT(static_cast<double>(cross) / edges, 0.05);
}

TEST_F(GenTest, MdcScalesWithFields) {
  MdcOptions one;
  one.fields = 1;
  const GenStats s1 = generate_mdc(one, dict, store);
  rdf::Dictionary d2;
  rdf::TripleStore t2;
  MdcOptions two = one;
  two.fields = 2;
  const GenStats s2 = generate_mdc(two, d2, t2);
  EXPECT_GT(s2.instance_triples, static_cast<std::size_t>(
                                     1.8 * static_cast<double>(s1.instance_triples)));
}

}  // namespace
}  // namespace parowl::gen
