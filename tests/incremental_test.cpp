#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parowl/reason/maintain.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/service.hpp"

namespace parowl::reason {
namespace {

/// Sorted copy of a store's log — the oracle comparison domain.  Survivor
/// positions differ from a from-scratch run (they keep their original log
/// slots), so maintained-vs-rematerialized equality is on sorted sequences.
std::vector<rdf::Triple> sorted_triples(const rdf::TripleStore& store) {
  std::vector<rdf::Triple> out = store.triples();
  std::sort(out.begin(), out.end());
  return out;
}

constexpr MaintainStrategy kBothStrategies[] = {MaintainStrategy::kDRed,
                                                MaintainStrategy::kFbf};

const char* name_of(MaintainStrategy s) {
  return s == MaintainStrategy::kDRed ? "dred" : "fbf";
}

/// The transitive-ancestor KB every targeted deletion case runs on:
///   anc transitive, parent subPropertyOf anc,
///   a -parent-> b -parent-> c -parent-> d,
/// plus `a anc b` asserted *redundantly* (also derivable from a parent b) —
/// the probe for alternate-derivation survival.
class IncrementalMaintain
    : public ::testing::TestWithParam<MaintainStrategy> {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;          // materialized closure under maintenance
  std::vector<rdf::Triple> base;   // asserted triples (schema + instance)

  rdf::TermId anc, parent, a, b, c, d;

  void SetUp() override {
    anc = iri("ancestorOf");
    parent = iri("parentOf");
    a = iri("a");
    b = iri("b");
    c = iri("c");
    d = iri("d");
    store.insert({anc, vocab.rdf_type, vocab.owl_transitive_property});
    store.insert({parent, vocab.rdfs_subproperty_of, anc});
    store.insert({a, parent, b});
    store.insert({b, parent, c});
    store.insert({c, parent, d});
    store.insert({a, anc, b});  // redundant assertion: also derivable
    base = store.triples();
    materialize(store, dict, vocab, {});
  }

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  MaintainResult maintain(std::vector<rdf::Triple> additions,
                          std::vector<rdf::Triple> deletions) {
    MaintainOptions opts;
    opts.strategy = GetParam();
    const Maintainer maintainer(dict, vocab, opts);
    return maintainer.apply(store, base, additions, deletions);
  }

  /// From-scratch closure of the *current* base — the maintenance oracle.
  std::vector<rdf::Triple> oracle() {
    rdf::TripleStore fresh;
    fresh.insert_all(base);
    materialize(fresh, dict, vocab, {});
    return sorted_triples(fresh);
  }
};

TEST_P(IncrementalMaintain, AlternateDerivationSurvivesBaseDeletion) {
  const std::vector<rdf::Triple> before = sorted_triples(store);
  const MaintainResult r = maintain({}, {{a, anc, b}});

  EXPECT_EQ(r.base_deleted, 1u);
  // `a anc b` is still entailed via `a parent b` + subPropertyOf: the
  // closure must not change at all.
  EXPECT_TRUE(store.contains({a, anc, b}));
  EXPECT_EQ(r.removed, 0u);
  EXPECT_EQ(sorted_triples(store), before);
  EXPECT_EQ(sorted_triples(store), oracle());
  if (GetParam() == MaintainStrategy::kFbf) {
    // FBF proves the seed alive instead of condemning the cone.
    EXPECT_GE(r.kept_alive, 1u);
  }
}

TEST_P(IncrementalMaintain, SoleSupportDeletionCascades) {
  const MaintainResult r = maintain({}, {{c, parent, d}});

  EXPECT_EQ(r.base_deleted, 1u);
  // Everything reaching d depended solely on c parent d.
  EXPECT_FALSE(store.contains({c, parent, d}));
  EXPECT_FALSE(store.contains({c, anc, d}));
  EXPECT_FALSE(store.contains({b, anc, d}));
  EXPECT_FALSE(store.contains({a, anc, d}));
  // The rest of the chain is untouched.
  EXPECT_TRUE(store.contains({a, anc, c}));
  EXPECT_TRUE(store.contains({b, anc, c}));
  EXPECT_EQ(r.removed, 4u);
  EXPECT_EQ(r.removed_triples.size(), 4u);
  EXPECT_EQ(sorted_triples(store), oracle());
}

TEST_P(IncrementalMaintain, DeleteThenReaddInOneBatchIsIdentity) {
  const std::vector<rdf::Triple> before = sorted_triples(store);
  const std::vector<rdf::Triple> base_before = base;
  const MaintainResult r = maintain({{c, parent, d}}, {{c, parent, d}});

  // Batch-atomic: the triple is in both lists, so it stays.
  EXPECT_EQ(r.base_deleted, 0u);
  EXPECT_EQ(r.base_added, 0u);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_EQ(sorted_triples(store), before);
  EXPECT_EQ(base, base_before);
}

TEST_P(IncrementalMaintain, DeletingAbsentTripleIsNoOp) {
  const std::vector<rdf::Triple> before = sorted_triples(store);
  const MaintainResult r = maintain({}, {{d, parent, a}});

  EXPECT_EQ(r.base_deleted, 0u);
  EXPECT_EQ(r.overdeleted, 0u);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_EQ(sorted_triples(store), before);
}

TEST_P(IncrementalMaintain, EmptyBatchIsNoOp) {
  const std::vector<rdf::Triple> before = sorted_triples(store);
  const std::vector<rdf::Triple> base_before = base;
  const MaintainResult r = maintain({}, {});

  EXPECT_EQ(r.base_deleted, 0u);
  EXPECT_EQ(r.base_added, 0u);
  EXPECT_EQ(r.removed, 0u);
  EXPECT_EQ(r.inferred, 0u);
  EXPECT_EQ(sorted_triples(store), before);
  EXPECT_EQ(base, base_before);
}

TEST_P(IncrementalMaintain, MixedBatchMatchesOracle) {
  // Retract the middle link and graft a new one through e in the same
  // batch: both passes (overdelete + additions closure) run together.
  const auto e = iri("e");
  const MaintainResult r =
      maintain({{b, parent, e}, {e, parent, c}}, {{b, parent, c}});

  EXPECT_EQ(r.base_deleted, 1u);
  EXPECT_EQ(r.base_added, 2u);
  EXPECT_FALSE(store.contains({b, parent, c}));
  EXPECT_TRUE(store.contains({b, anc, c}));   // now via e
  EXPECT_TRUE(store.contains({a, anc, d}));   // the long path is restored
  EXPECT_EQ(sorted_triples(store), oracle());
}

TEST_P(IncrementalMaintain, SchemaTripleInBatchRejectsWhole) {
  const std::vector<rdf::Triple> before = sorted_triples(store);
  const std::vector<rdf::Triple> base_before = base;
  const MaintainResult r =
      maintain({}, {{parent, vocab.rdfs_subproperty_of, anc}});

  EXPECT_TRUE(r.schema_changed);
  EXPECT_EQ(sorted_triples(store), before);
  EXPECT_EQ(base, base_before);
}

INSTANTIATE_TEST_SUITE_P(Strategies, IncrementalMaintain,
                         ::testing::ValuesIn(kBothStrategies),
                         [](const auto& param_info) {
                           return std::string(name_of(param_info.param));
                         });

// ---------------------------------------------------------------------------
// Serve layer: deletion-aware cache invalidation + RCU atomicity.

constexpr const char* kNs = "http://inc.test/";

/// Namespaced variant of the ancestor KB for the serving-layer tests (the
/// SPARQL parser resolves prefixed names against a real namespace).
struct ServeKb {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  std::vector<rdf::Triple> base;
  rdf::TermId anc, parent, a, b, c, d;

  ServeKb() {
    anc = iri("ancestorOf");
    parent = iri("parentOf");
    a = iri("a");
    b = iri("b");
    c = iri("c");
    d = iri("d");
    store.insert({anc, vocab.rdf_type, vocab.owl_transitive_property});
    store.insert({parent, vocab.rdfs_subproperty_of, anc});
    store.insert({a, parent, b});
    store.insert({b, parent, c});
    store.insert({c, parent, d});
    base = store.triples();
    materialize(store, dict, vocab, {});
  }

  rdf::TermId iri(const std::string& local) {
    return dict.intern_iri(kNs + local);
  }

  serve::ServiceOptions options(MaintainStrategy strategy) const {
    serve::ServiceOptions o;
    o.threads = 2;
    o.queue_capacity = 128;
    o.maintain_strategy = strategy;
    o.prefixes = {{"inc", kNs}};
    return o;
  }
};

class IncrementalServe : public ::testing::TestWithParam<MaintainStrategy> {};

// Regression: a deletion-only batch appends nothing to the log, so footprint
// invalidation keyed only on new triples would leave the cached answer —
// which still *contains* the deleted triples — alive.  The outcome's
// delta_predicates must cover removed triples too.
TEST_P(IncrementalServe, CacheRetiresAnswersContainingDeletedTriples) {
  ServeKb kb;
  rdf::TripleStore closure = kb.store;
  serve::QueryService service(kb.dict, kb.vocab, std::move(closure),
                              kb.options(GetParam()), kb.base);
  const std::string q = "SELECT ?x ?y WHERE { ?x inc:ancestorOf ?y }";

  const serve::Response first = service.execute(q);
  ASSERT_EQ(first.status, serve::RequestStatus::kOk);
  EXPECT_EQ(first.results.size(), 6u);  // 3 direct + 3 transitive
  EXPECT_TRUE(service.execute(q).cache_hit);

  const std::vector<rdf::Triple> dels = {{kb.c, kb.parent, kb.d}};
  const serve::UpdateOutcome outcome = service.apply_update({}, dels);
  ASSERT_EQ(outcome.version, 2u);
  EXPECT_EQ(outcome.maintain.base_deleted, 1u);
  EXPECT_GE(outcome.invalidated, 1u);
  // The removed triples' predicates are part of the delta footprint.
  EXPECT_TRUE(std::binary_search(outcome.delta_predicates.begin(),
                                 outcome.delta_predicates.end(), kb.anc));

  const serve::Response after = service.execute(q);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.results.size(), 3u);  // d is no longer reachable
  EXPECT_EQ(after.snapshot_version, 2u);
}

TEST_P(IncrementalServe, NoOpBatchPublishesNothing) {
  ServeKb kb;
  rdf::TripleStore closure = kb.store;
  serve::QueryService service(kb.dict, kb.vocab, std::move(closure),
                              kb.options(GetParam()), kb.base);

  const std::vector<rdf::Triple> absent = {{kb.d, kb.parent, kb.a}};
  const serve::UpdateOutcome outcome = service.apply_update({}, absent);
  EXPECT_EQ(outcome.version, 0u);
  EXPECT_EQ(service.snapshot()->version, 1u);
  EXPECT_EQ(outcome.invalidated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, IncrementalServe,
                         ::testing::ValuesIn(kBothStrategies),
                         [](const auto& param_info) {
                           return std::string(name_of(param_info.param));
                         });

// Closed-loop atomicity drill: a writer applies mixed add/delete batches
// while reader threads query through the executor.  Every response must see
// a row count that some *published* version legitimately had (no
// half-maintained snapshot), and each reader's observed versions must be
// non-decreasing (RCU monotonicity).
TEST(IncrementalServeLoop, RcuVersionsMonotoneAndBatchAtomic) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  const auto student = dict.intern_iri(std::string(kNs) + "Student");
  const auto person = dict.intern_iri(std::string(kNs) + "Person");
  store.insert({student, vocab.rdfs_subclass_of, person});
  std::vector<rdf::Triple> initial;
  for (int i = 0; i < 5; ++i) {
    initial.push_back({dict.intern_iri(std::string(kNs) + "s" +
                                       std::to_string(i)),
                       vocab.rdf_type, student});
  }
  store.insert_all(initial);
  std::vector<rdf::Triple> base = store.triples();
  materialize(store, dict, vocab, {});

  serve::ServiceOptions sopts;
  sopts.threads = 2;
  sopts.queue_capacity = 256;
  sopts.prefixes = {{"inc", kNs}};
  serve::QueryService service(dict, vocab, std::move(store), sopts, base);

  // expected[version] = number of live students in that snapshot; recorded
  // *before* the version is published, so readers can always look it up.
  std::mutex mu;
  std::map<std::uint64_t, std::size_t> expected;
  {
    const std::scoped_lock lock(mu);
    expected[1] = initial.size();
  }
  const std::string q = "SELECT ?x WHERE { ?x a inc:Person }";

  std::atomic<bool> failed{false};
  const auto check = [&](const serve::Response& r) {
    if (r.status != serve::RequestStatus::kOk) {
      return;  // shed under load is legal; wrong rows are not
    }
    std::size_t want = 0;
    {
      const std::scoped_lock lock(mu);
      const auto it = expected.find(r.snapshot_version);
      if (it == expected.end()) {
        failed = true;
        ADD_FAILURE() << "response for unpublished version "
                      << r.snapshot_version;
        return;
      }
      want = it->second;
    }
    if (r.results.size() != want) {
      failed = true;
      ADD_FAILURE() << "version " << r.snapshot_version << " answered "
                    << r.results.size() << " rows, expected " << want;
    }
  };

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop) {
        const serve::Response r = service.execute(q);
        EXPECT_GE(r.snapshot_version, last);  // RCU: no going back
        last = r.snapshot_version;
        check(r);
      }
    });
  }

  // The writer: 16 mixed batches, each adding 3 students and retracting
  // the oldest live one — expected count grows by 2 per published version.
  std::vector<rdf::Triple> live = initial;
  std::size_t next_id = 100;
  std::uint64_t version = 1;
  for (int batch = 0; batch < 16; ++batch) {
    std::vector<rdf::Triple> adds;
    service.with_dict_exclusive([&](rdf::Dictionary& d) {
      for (int i = 0; i < 3; ++i) {
        adds.push_back({d.intern_iri(std::string(kNs) + "s" +
                                     std::to_string(next_id++)),
                        vocab.rdf_type, student});
      }
      return 0;
    });
    const std::vector<rdf::Triple> dels = {live.front()};
    live.erase(live.begin());
    live.insert(live.end(), adds.begin(), adds.end());
    {
      const std::scoped_lock lock(mu);
      expected[version + 1] = live.size();
    }
    const serve::UpdateOutcome outcome = service.apply_update(adds, dels);
    ASSERT_EQ(outcome.version, version + 1);
    version = outcome.version;
    // Interleave executor-path queries with the writes.
    service.submit(q, check);
  }
  service.drain();
  stop = true;
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_FALSE(failed);
  EXPECT_EQ(service.snapshot()->version, 17u);
  EXPECT_EQ(service.snapshot()->store.size(),
            1 + live.size() * 2);  // schema + (type Student, type Person)
}

}  // namespace
}  // namespace parowl::reason
