#include <gtest/gtest.h>

#include <algorithm>

#include "parowl/reason/backward.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::reason {
namespace {

class BackwardTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  rules::RuleParser parser{dict};
  rdf::TripleStore store;

  rdf::TermId iri(const std::string& s) { return dict.intern_iri(s); }

  rules::RuleSet rules(std::initializer_list<const char*> lines) {
    rules::RuleSet rs;
    for (const char* line : lines) {
      std::string err;
      auto r = parser.parse_rule(line, &err);
      EXPECT_TRUE(r.has_value()) << line << ": " << err;
      rs.add(std::move(*r));
    }
    return rs;
  }

  std::vector<rdf::Triple> ask(const rules::RuleSet& rs,
                               const rdf::TriplePattern& goal) {
    BackwardEngine engine(store, rs, BackwardOptions{.dict = &dict});
    std::vector<rdf::Triple> out;
    engine.query(goal, out);
    return out;
  }
};

TEST_F(BackwardTest, BaseFactsAreAnswered) {
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto answers =
      ask(rules::RuleSet{}, {iri("a"), rdf::kAnyTerm, rdf::kAnyTerm});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], (rdf::Triple{iri("a"), iri("p"), iri("b")}));
}

TEST_F(BackwardTest, OneStepDerivation) {
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto rs = rules({"r: (?x <p> ?y) -> (?x <q> ?y)"});
  const auto answers = ask(rs, {iri("a"), iri("q"), rdf::kAnyTerm});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].o, iri("b"));
}

TEST_F(BackwardTest, ChainedDerivation) {
  store.insert({iri("sam"), iri("type"), iri("Student")});
  const auto rs = rules(
      {"r1: (?x <type> <Student>) -> (?x <type> <Person>)",
       "r2: (?x <type> <Person>) -> (?x <type> <Agent>)"});
  const auto answers = ask(rs, {iri("sam"), iri("type"), iri("Agent")});
  EXPECT_EQ(answers.size(), 1u);
}

TEST_F(BackwardTest, RecursiveTransitiveProperty) {
  const auto p = iri("p");
  store.insert({iri("a"), p, iri("b")});
  store.insert({iri("b"), p, iri("c")});
  store.insert({iri("c"), p, iri("d")});
  const auto rs = rules({"t: (?x <p> ?y) (?y <p> ?z) -> (?x <p> ?z)"});
  const auto answers = ask(rs, {iri("a"), p, rdf::kAnyTerm});
  // One tabled session reaches b, c and d from a.
  std::vector<rdf::TermId> objects;
  for (const auto& t : answers) {
    objects.push_back(t.o);
  }
  EXPECT_NE(std::ranges::find(objects, iri("d")), objects.end());
  EXPECT_EQ(answers.size(), 3u);
}

TEST_F(BackwardTest, GoalConstantsFlowIntoBody) {
  store.insert({iri("a"), iri("p"), iri("b")});
  store.insert({iri("c"), iri("p"), iri("d")});
  const auto rs = rules({"r: (?x <p> ?y) -> (?y <inv> ?x)"});
  const auto answers = ask(rs, {iri("b"), iri("inv"), rdf::kAnyTerm});
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].o, iri("a"));
}

TEST_F(BackwardTest, FullyUnboundGoalEnumeratesEverything) {
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto rs = rules({"r: (?x <p> ?y) -> (?y <p2> ?x)"});
  const auto answers =
      ask(rs, {rdf::kAnyTerm, rdf::kAnyTerm, rdf::kAnyTerm});
  EXPECT_EQ(answers.size(), 2u);  // base fact + derived
}

TEST_F(BackwardTest, NoDuplicateAnswers) {
  store.insert({iri("a"), iri("p"), iri("b")});
  store.insert({iri("a"), iri("q"), iri("b")});
  const auto rs = rules({"r1: (?x <p> ?y) -> (?x <r> ?y)",
                         "r2: (?x <q> ?y) -> (?x <r> ?y)"});
  const auto answers = ask(rs, {iri("a"), iri("r"), rdf::kAnyTerm});
  EXPECT_EQ(answers.size(), 1u);  // derived twice, reported once
}

TEST_F(BackwardTest, LiteralGuardInBackwardChaining) {
  const auto lit = dict.intern_literal("\"v\"");
  store.insert({iri("a"), iri("p"), lit});
  const auto rs = rules({"r: (?x <p> ?y) -> (?y <type> <C>)"});
  const auto answers = ask(rs, {rdf::kAnyTerm, iri("type"), rdf::kAnyTerm});
  EXPECT_TRUE(answers.empty());
}

TEST_F(BackwardTest, StatsCountSubgoals) {
  store.insert({iri("a"), iri("p"), iri("b")});
  const auto rs = rules({"r: (?x <p> ?y) -> (?x <q> ?y)"});
  BackwardEngine engine(store, rs, BackwardOptions{.dict = &dict});
  std::vector<rdf::Triple> out;
  engine.query({iri("a"), iri("q"), rdf::kAnyTerm}, out);
  EXPECT_GE(engine.stats().subgoals, 1u);
  EXPECT_GE(engine.stats().resolutions, 1u);
  EXPECT_GE(engine.stats().store_probes, 1u);
}

TEST_F(BackwardTest, TablingMemoizesRepeatedSubgoals) {
  const auto p = iri("p");
  for (int i = 0; i < 10; ++i) {
    store.insert({iri("x" + std::to_string(i)), p,
                  iri("x" + std::to_string(i + 1))});
  }
  const auto rs = rules({"t: (?x <p> ?y) (?y <p> ?z) -> (?x <p> ?z)"});
  BackwardEngine engine(store, rs, BackwardOptions{.dict = &dict});
  std::vector<rdf::Triple> out1, out2;
  engine.query({iri("x0"), p, rdf::kAnyTerm}, out1);
  const std::size_t subgoals_after_first = engine.stats().subgoals;
  engine.query({iri("x0"), p, rdf::kAnyTerm}, out2);
  // Second identical query answers straight from the table.
  EXPECT_EQ(engine.stats().subgoals, subgoals_after_first);
  EXPECT_EQ(out1.size(), out2.size());
}

}  // namespace
}  // namespace parowl::reason
