#include <gtest/gtest.h>

#include <stdexcept>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/pipeline.hpp"

namespace parowl::parallel {
namespace {

class PipelineValidationTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;
  partition::GraphOwnerPolicy policy;

  void SetUp() override {
    gen::LubmOptions opts;
    opts.universities = 1;
    opts.departments_per_university = 1;
    opts.faculty_per_department = 2;
    gen::generate_lubm(opts, dict, store);
  }
};

TEST_F(PipelineValidationTest, ZeroPartitionsThrows) {
  ParallelOptions opts;
  opts.partitions = 0;
  opts.policy = &policy;
  EXPECT_THROW(parallel_materialize(store, dict, vocab, opts),
               std::invalid_argument);
}

TEST_F(PipelineValidationTest, MissingPolicyThrows) {
  ParallelOptions opts;
  opts.policy = nullptr;  // required for the data approach
  EXPECT_THROW(parallel_materialize(store, dict, vocab, opts),
               std::invalid_argument);

  opts.approach = Approach::kHybrid;
  EXPECT_THROW(parallel_materialize(store, dict, vocab, opts),
               std::invalid_argument);
}

TEST_F(PipelineValidationTest, RulePartitionNeedsNoPolicy) {
  ParallelOptions opts;
  opts.approach = Approach::kRulePartition;
  opts.partitions = 2;
  opts.policy = nullptr;
  opts.build_merged = false;
  EXPECT_NO_THROW(parallel_materialize(store, dict, vocab, opts));
}

TEST_F(PipelineValidationTest, HybridZeroRulePartsThrows) {
  ParallelOptions opts;
  opts.approach = Approach::kHybrid;
  opts.policy = &policy;
  opts.rule_partitions = 0;
  EXPECT_THROW(parallel_materialize(store, dict, vocab, opts),
               std::invalid_argument);
}

TEST_F(PipelineValidationTest, AsyncWithExternalTransportThrows) {
  MemoryTransport transport(2);
  ParallelOptions opts;
  opts.partitions = 2;
  opts.policy = &policy;
  opts.mode = ExecutionMode::kAsyncSimulated;
  opts.transport = &transport;
  EXPECT_THROW(parallel_materialize(store, dict, vocab, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace parowl::parallel
