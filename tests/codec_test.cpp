#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "parowl/rdf/codec.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::rdf {
namespace {

// ---------------------------------------------------------------------------
// Varints and zigzag

TEST(Varint, RoundTripsRepresentativeValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  300,
                                  16383,
                                  16384,
                                  0xFFFFFFFFULL,
                                  0x100000000ULL,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::string buf;
    codec::put_varint(buf, v);
    EXPECT_LE(buf.size(), 10u);
    std::string_view in = buf;
    std::uint64_t got = 0;
    ASSERT_TRUE(codec::get_varint(in, got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(Varint, RejectsTruncationAtEveryPrefix) {
  std::string buf;
  codec::put_varint(buf, std::numeric_limits<std::uint64_t>::max());
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    std::uint64_t v = 0;
    EXPECT_FALSE(codec::get_varint(in, v)) << cut;
  }
}

TEST(Varint, RejectsNonCanonicalOverflow) {
  // Ten continuation-heavy bytes whose last byte would overflow 64 bits.
  std::string buf(9, static_cast<char>(0xFF));
  buf.push_back(static_cast<char>(0x02));
  std::string_view in = buf;
  std::uint64_t v = 0;
  EXPECT_FALSE(codec::get_varint(in, v));
}

TEST(Varint, StreamVariantMatches) {
  std::string buf;
  codec::put_varint(buf, 0xDEADBEEFULL);
  codec::put_varint(buf, 7);
  std::istringstream in(buf);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  ASSERT_TRUE(codec::get_varint(in, a));
  ASSERT_TRUE(codec::get_varint(in, b));
  EXPECT_EQ(a, 0xDEADBEEFULL);
  EXPECT_EQ(b, 7u);
  EXPECT_FALSE(codec::get_varint(in, a));  // exhausted
}

TEST(Zigzag, RoundTripsAndOrdersByMagnitude) {
  const std::int64_t values[] = {0, -1, 1, -2, 2, 1000, -1000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(codec::zigzag_decode(codec::zigzag_encode(v)), v);
  }
  // Small magnitudes encode small: the property delta coding relies on.
  EXPECT_LT(codec::zigzag_encode(-1), codec::zigzag_encode(100));
}

// ---------------------------------------------------------------------------
// Triple blocks

std::vector<Triple> sample_triples(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Triple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<TermId>(1 + rng.below(5000)),
                   static_cast<TermId>(1 + rng.below(40)),
                   static_cast<TermId>(1 + rng.below(5000))});
  }
  return out;
}

TEST(TripleBlock, RoundTripsEmptySingleAndLarge) {
  for (const std::size_t n : {0u, 1u, 2u, 777u}) {
    const std::vector<Triple> ts = sample_triples(n, 13 + n);
    std::string buf;
    codec::encode_block(ts, buf);
    std::string_view in = buf;
    std::vector<Triple> got;
    std::string error;
    ASSERT_TRUE(codec::decode_block(in, got, &error)) << n << ": " << error;
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(got, ts);  // order-preserving, not just set-equal
  }
}

TEST(TripleBlock, StreamVariantRoundTrips) {
  const std::vector<Triple> ts = sample_triples(100, 77);
  std::string buf;
  codec::encode_block(ts, buf);
  std::istringstream in(buf);
  std::vector<Triple> got;
  ASSERT_TRUE(codec::read_block(in, got));
  EXPECT_EQ(got, ts);
}

TEST(TripleBlock, TruncationAtEveryPrefixFails) {
  const std::vector<Triple> ts = sample_triples(20, 5);
  std::string buf;
  codec::encode_block(ts, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    std::vector<Triple> got;
    std::string error;
    EXPECT_FALSE(codec::decode_block(in, got, &error))
        << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(got.empty());  // failed decode leaves no partial output
    EXPECT_FALSE(error.empty());
  }
}

TEST(TripleBlock, EverySingleBitFlipFails) {
  const std::vector<Triple> ts = sample_triples(15, 99);
  std::string buf;
  codec::encode_block(ts, buf);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = buf;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      std::string_view in = mutated;
      std::vector<Triple> got;
      // Either the decode fails outright, or (flips inside varint slack or
      // count/len fields that happen to re-parse) the payload no longer
      // matches the checksum.  Decoding the original sequence is the one
      // forbidden outcome.
      if (codec::decode_block(in, got) && in.empty()) {
        EXPECT_NE(got, ts) << "bit " << bit << " of byte " << i
                           << " decoded to the original sequence";
      }
    }
  }
}

TEST(TripleBlock, DeltaCodingCompressesSortedRuns) {
  // Consecutive subjects, one predicate: the common shape of a sorted
  // store.  Deltas are tiny, so bytes/triple should approach 3.
  std::vector<Triple> ts;
  for (TermId i = 1; i <= 1000; ++i) {
    ts.push_back({1000 + i, 7, 2000 + i});
  }
  std::string buf;
  codec::encode_block(ts, buf);
  EXPECT_LT(buf.size(), ts.size() * 4 + 32);
  EXPECT_LT(buf.size(), ts.size() * sizeof(Triple) / 2);  // vs raw structs
}

TEST(TripleBlock, WriteReadBlocksSpansManyBlocks) {
  const std::vector<Triple> ts = sample_triples(1000, 123);
  std::ostringstream out;
  const std::size_t bytes = codec::write_blocks(out, ts, 64);
  EXPECT_EQ(bytes, out.str().size());

  std::istringstream in(out.str());
  std::vector<Triple> got;
  std::string error;
  ASSERT_TRUE(codec::read_blocks(
      in, ts.size(), [&got](const Triple& t) { got.push_back(t); }, &error))
      << error;
  EXPECT_EQ(got, ts);
}

TEST(TripleBlock, ReadBlocksRejectsCountMismatch) {
  const std::vector<Triple> ts = sample_triples(10, 3);
  std::ostringstream out;
  codec::write_blocks(out, ts);

  // Declaring fewer triples than the block holds must fail (overrun)...
  {
    std::istringstream in(out.str());
    std::string error;
    EXPECT_FALSE(codec::read_blocks(in, 5, [](const Triple&) {}, &error));
    EXPECT_EQ(error, "triple block overruns declared count");
  }
  // ...and declaring more must fail on stream exhaustion.
  {
    std::istringstream in(out.str());
    std::string error;
    EXPECT_FALSE(codec::read_blocks(in, 11, [](const Triple&) {}, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(TripleBlock, EncodedSizeMatchesWriteBlocks) {
  const std::vector<Triple> ts = sample_triples(500, 8);
  std::ostringstream out;
  EXPECT_EQ(codec::write_blocks(out, ts), codec::encoded_size(ts));
}

// ---------------------------------------------------------------------------
// Term tables

Dictionary sample_dictionary() {
  Dictionary dict;
  dict.intern_iri("http://example.org/university0/department3/student17");
  dict.intern_iri("http://example.org/university0/department3/student18");
  dict.intern_iri("http://example.org/university0/professor2");
  dict.intern_blank("b0");
  dict.intern_literal("\"a literal with spaces\"");
  dict.intern_literal("\"a literal with spices\"");
  dict.intern_iri("urn:completely-different");
  return dict;
}

TEST(TermTable, RoundTripsWithKindsAndSharedPrefixes) {
  const Dictionary dict = sample_dictionary();
  std::ostringstream out;
  const std::size_t bytes = codec::write_terms(out, dict);
  EXPECT_EQ(bytes, out.str().size());

  std::istringstream in(out.str());
  Dictionary got;
  std::string error;
  ASSERT_TRUE(codec::read_terms(in, dict.size(), got, &error)) << error;
  ASSERT_EQ(got.size(), dict.size());
  for (TermId id = 1; id <= dict.size(); ++id) {
    EXPECT_EQ(got.lexical(id), dict.lexical(id));
    EXPECT_EQ(got.kind(id), dict.kind(id));
  }
}

TEST(TermTable, FrontCodingBeatsPlainConcatenation) {
  Dictionary dict;
  std::size_t raw = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string iri =
        "http://example.org/a/very/long/namespace/entity" +
        std::to_string(i);
    dict.intern_iri(iri);
    raw += iri.size();
  }
  std::ostringstream out;
  const std::size_t coded = codec::write_terms(out, dict);
  EXPECT_LT(coded, raw / 2);
}

TEST(TermTable, EverySingleByteFlipFails) {
  const Dictionary dict = sample_dictionary();
  std::ostringstream out;
  codec::write_terms(out, dict);
  const std::string bytes = out.str();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
    std::istringstream in(mutated);
    Dictionary got;
    EXPECT_FALSE(codec::read_terms(in, dict.size(), got))
        << "flip at byte " << i << " loaded";
  }
}

TEST(TermTable, TruncationFailsCleanly) {
  const Dictionary dict = sample_dictionary();
  std::ostringstream out;
  codec::write_terms(out, dict);
  const std::string bytes = out.str();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut));
    Dictionary got;
    std::string error;
    EXPECT_FALSE(codec::read_terms(in, dict.size(), got, &error)) << cut;
    EXPECT_FALSE(error.empty());
  }
}

}  // namespace
}  // namespace parowl::rdf
