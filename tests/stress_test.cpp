#include <gtest/gtest.h>

#include <filesystem>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/partition/multilevel.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/util/rng.hpp"

namespace parowl {
namespace {

// Heavier-but-bounded cases guarding scalability regressions.  Each stays
// in the low single-digit seconds.

TEST(Stress, StoreHandlesHalfAMillionTriples) {
  util::Rng rng(1);
  rdf::TripleStore store;
  for (int i = 0; i < 500000; ++i) {
    store.insert({static_cast<rdf::TermId>(1 + rng.below(60000)),
                  static_cast<rdf::TermId>(1 + rng.below(40)),
                  static_cast<rdf::TermId>(1 + rng.below(60000))});
  }
  EXPECT_GT(store.size(), 400000u);  // some duplicates expected
  // Every access path answers.
  std::size_t n = 0;
  store.match({rdf::kAnyTerm, 7, rdf::kAnyTerm},
              [&n](const rdf::Triple&) { ++n; });
  EXPECT_GT(n, 0u);
}

TEST(Stress, PartitionerHandles50kVertices) {
  util::Rng rng(2);
  const std::uint32_t n = 50000;
  std::vector<partition::WeightedEdge> edges;
  edges.reserve(n * 3);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      edges.push_back({i, static_cast<std::uint32_t>(rng.below(n)), 1});
    }
  }
  const partition::Graph g = partition::build_graph(n, edges);
  const partition::PartitionPlan plan = partition::partition_csr_graph(g, 16);
  const double share = static_cast<double>(n) / 16;
  for (const auto w : plan.metrics.partition_weights) {
    EXPECT_LT(static_cast<double>(w), share * 1.35);
  }
}

TEST(Stress, ForwardClosureOnLargerLubm) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 20;
  gen::generate_lubm(opts, dict, store);
  ASSERT_GT(store.size(), 40000u);

  const auto result = reason::materialize(store, dict, vocab, {});
  EXPECT_GT(result.inferred, 20000u);
  EXPECT_LT(result.reason_seconds, 5.0);
}

TEST(Stress, ParallelSixteenWorkersOnLargerLubm) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 16;
  gen::generate_lubm(opts, dict, store);

  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::materialize(serial, dict, vocab, {});

  const partition::GraphOwnerPolicy policy;
  parallel::ParallelOptions popts;
  popts.partitions = 16;
  popts.policy = &policy;
  popts.build_merged = false;
  const auto r = parallel::parallel_materialize(store, dict, vocab, popts);
  EXPECT_EQ(r.inferred, serial.size() - store.size());
}

TEST(Stress, QueryOverLargeMaterializedStore) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 10;
  gen::generate_lubm(opts, dict, store);
  reason::materialize(store, dict, vocab, {});

  query::SparqlParser parser(dict);
  parser.add_prefix("ub", gen::kUnivBenchNs);
  const auto q = parser.parse(
      "SELECT ?x ?d ?u WHERE { ?x a ub:Faculty . ?x ub:memberOf ?d . "
      "?d ub:subOrganizationOf ?u . ?u a ub:University }");
  ASSERT_TRUE(q.has_value());
  const auto results = query::evaluate(store, *q);
  // Every faculty member resolves through the closure chain.
  EXPECT_GT(results.size(), 400u);
}

TEST(Stress, ThreadedRulePartitionOnFileTransport) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 2;
  gen::generate_lubm(opts, dict, store);

  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::materialize(serial, dict, vocab, {});

  const auto spool =
      std::filesystem::temp_directory_path() / "parowl_stress_spool";
  parallel::FileTransport transport(spool, 3);
  parallel::ParallelOptions popts;
  popts.approach = parallel::Approach::kRulePartition;
  popts.partitions = 3;
  popts.mode = parallel::ExecutionMode::kThreaded;
  popts.transport = &transport;
  const auto r = parallel::parallel_materialize(store, dict, vocab, popts);
  ASSERT_TRUE(r.merged.has_value());
  EXPECT_EQ(r.merged->size(), serial.size());
}

}  // namespace
}  // namespace parowl
