// Equality rewriting correctness: a closure materialized in representative
// space, expanded through the class map, must be indistinguishable from the
// naive closure — same triples, same query answers (with multiplicities),
// bit-identical across thread counts — on both an equality-free dataset
// (LUBM) and the clique-heavy hard mode (gen::generate_sameas).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/sameas.hpp"
#include "parowl/query/equality_expand.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/reason/maintain.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl {
namespace {

struct EqFixture {
  rdf::Dictionary dict;
  std::unique_ptr<ontology::Vocabulary> vocab;
  rdf::TripleStore base;

  explicit EqFixture(std::string_view dataset)
      : vocab(std::make_unique<ontology::Vocabulary>(dict)) {
    if (dataset == "lubm") {
      gen::LubmOptions o;
      o.universities = 1;
      gen::generate_lubm(o, dict, base);
    } else {
      gen::SameAsOptions o;
      o.individuals = 60;
      o.max_clique_size = 5;
      gen::generate_sameas(o, dict, base);
    }
  }
};

struct NaiveRun {
  rdf::TripleStore store;
  reason::MaterializeResult result;
};

NaiveRun naive_closure(const EqFixture& f, unsigned threads = 1) {
  NaiveRun r;
  r.store = f.base;
  reason::MaterializeOptions opts;
  opts.threads = threads;
  r.result = reason::materialize(r.store, f.dict, *f.vocab, opts);
  return r;
}

struct RewriteRun {
  rdf::TripleStore store;
  reason::EqualityManager eq;
  reason::MaterializeResult result;
};

RewriteRun rewrite_closure(const EqFixture& f, unsigned threads = 1) {
  RewriteRun r;
  r.store = f.base;
  reason::MaterializeOptions opts;
  opts.threads = threads;
  opts.equality_mode = reason::EqualityMode::kRewrite;
  opts.equality = &r.eq;
  r.result = reason::materialize(r.store, f.dict, *f.vocab, opts);
  return r;
}

std::vector<rdf::Triple> sorted(std::vector<rdf::Triple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<std::vector<rdf::TermId>> sorted_rows(query::ResultSet rs) {
  std::sort(rs.rows.begin(), rs.rows.end());
  return std::move(rs.rows);
}

query::SelectQuery parse(rdf::Dictionary& dict, const std::string& text) {
  query::SparqlParser parser(dict);
  parser.add_prefix("id", gen::kSameAsNs);
  std::string error;
  auto q = parser.parse(text, &error);
  EXPECT_TRUE(q.has_value()) << error << "\n" << text;
  return *q;
}

void expect_maps_equal(const rdf::EqualityClassMap& a,
                       const rdf::EqualityClassMap& b, const char* label) {
  EXPECT_EQ(a.members, b.members) << label;
  EXPECT_EQ(a.literals, b.literals) << label;
  EXPECT_EQ(a.self_terms, b.self_terms) << label;
  EXPECT_EQ(a.raw_edges, b.raw_edges) << label;
}

// ---------------------------------------------------------------------------
// Closure equivalence

TEST(SameAsEquivalence, ExpandedClosureMatchesNaiveOnCliqueData) {
  EqFixture f("cliques");
  const NaiveRun naive = naive_closure(f);
  const RewriteRun rewrite = rewrite_closure(f);

  EXPECT_GT(rewrite.result.eq_merges, 0u);
  EXPECT_EQ(rewrite.result.eq_conflicts, 0u);
  // The whole point: representative space is strictly smaller than the
  // naive closure with its sameAs cliques and duplicated payload.
  EXPECT_LT(rewrite.store.size(), naive.store.size());

  const std::vector<rdf::Triple> expanded = reason::expand_closure(
      rewrite.store, rewrite.eq, f.vocab->owl_same_as);
  EXPECT_EQ(expanded, sorted(naive.store.triples()));
}

TEST(SameAsEquivalence, ExpandedClosureMatchesNaiveOnLubm) {
  // LUBM asserts no equality at all: the rewrite must be a no-op that still
  // produces the identical closure (and an empty class map).
  EqFixture f("lubm");
  const NaiveRun naive = naive_closure(f);
  const RewriteRun rewrite = rewrite_closure(f);

  EXPECT_EQ(rewrite.result.eq_merges, 0u);
  EXPECT_TRUE(rewrite.eq.empty());
  const std::vector<rdf::Triple> expanded = reason::expand_closure(
      rewrite.store, rewrite.eq, f.vocab->owl_same_as);
  EXPECT_EQ(expanded, sorted(naive.store.triples()));
}

TEST(SameAsEquivalence, RewriteBitIdenticalAcrossThreadCounts) {
  // Union-by-min representatives are merge-order independent, and the
  // barrier merge intercepts in shard order — so the rewritten store log
  // AND the class map must be bit-identical for every thread count.
  EqFixture f("cliques");
  const RewriteRun ref = rewrite_closure(f, 1);
  const rdf::EqualityClassMap ref_map = ref.eq.export_map();
  for (const unsigned threads : {2u, 4u, 8u}) {
    const RewriteRun r = rewrite_closure(f, threads);
    EXPECT_EQ(ref.store.triples(), r.store.triples())
        << threads << " threads (insertion-log order)";
    expect_maps_equal(ref_map, r.eq.export_map(), "threaded map");
    EXPECT_EQ(ref.result.eq_merges, r.result.eq_merges);
  }
}

// ---------------------------------------------------------------------------
// Query-level equivalence

TEST(SameAsEquivalence, QueryAnswersMatchNaiveWithMultiplicities) {
  EqFixture f("cliques");
  const NaiveRun naive = naive_closure(f);
  const RewriteRun rewrite = rewrite_closure(f);

  const std::vector<std::string> queries = {
      "SELECT ?x ?y WHERE { ?x id:relatesTo0 ?y }",
      "SELECT DISTINCT ?x WHERE { ?x id:relatesTo0 ?y }",
      "SELECT ?y WHERE { id:Entity0_alias1 id:relatesTo0 ?y }",
      "SELECT ?x ?z WHERE { ?x id:relatesTo0 ?y . ?y id:relatesTo1 ?z }",
      "SELECT ?x ?n WHERE { ?x id:displayName ?n }",
      "SELECT DISTINCT ?x ?y WHERE { ?x id:profileDoc ?y }",
  };
  for (const std::string& text : queries) {
    const query::SelectQuery q = parse(f.dict, text);
    const query::ResultSet naive_rows = query::evaluate(naive.store, q);
    const query::EqualityEvalResult eq_rows = query::evaluate_with_equality(
        rewrite.store, q, rewrite.eq, f.vocab->owl_same_as);
    ASSERT_FALSE(eq_rows.unsupported) << text << ": " << eq_rows.message;
    EXPECT_EQ(sorted_rows(naive_rows), sorted_rows(eq_rows.results)) << text;
  }
}

TEST(SameAsEquivalence, LimitAppliesAfterExpansion) {
  EqFixture f("cliques");
  const NaiveRun naive = naive_closure(f);
  const RewriteRun rewrite = rewrite_closure(f);

  query::SelectQuery q =
      parse(f.dict, "SELECT ?x ?y WHERE { ?x id:relatesTo0 ?y }");
  const std::size_t full =
      query::evaluate_with_equality(rewrite.store, q, rewrite.eq,
                                    f.vocab->owl_same_as)
          .results.size();
  ASSERT_GT(full, 10u);
  q.limit = 10;
  const query::EqualityEvalResult limited = query::evaluate_with_equality(
      rewrite.store, q, rewrite.eq, f.vocab->owl_same_as);
  EXPECT_EQ(limited.results.size(), 10u);
  // Every limited row is a genuine naive answer.
  q.limit.reset();
  const auto all = sorted_rows(query::evaluate(naive.store, q));
  for (const auto& row : limited.results.rows) {
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), row));
  }
}

TEST(SameAsEquivalence, UnsupportedShapesAreRejectedNotWrong) {
  EqFixture f("cliques");
  const RewriteRun rewrite = rewrite_closure(f);

  // A sameAs atom: the rewritten store holds no sameAs triples.
  {
    const query::SelectQuery q = parse(
        f.dict,
        "SELECT ?x ?y WHERE { ?x <http://www.w3.org/2002/07/owl#sameAs> "
        "?y }");
    const auto r = query::evaluate_with_equality(rewrite.store, q, rewrite.eq,
                                                 f.vocab->owl_same_as);
    EXPECT_TRUE(r.unsupported);
    EXPECT_FALSE(r.message.empty());
  }
  // A constant object that is an attached literal partner: canonical
  // triples carry the representative, not the literal.
  {
    const query::SelectQuery q = parse(
        f.dict, "SELECT ?x WHERE { ?x id:profileDoc \"doc://entity-0\" }");
    const auto r = query::evaluate_with_equality(rewrite.store, q, rewrite.eq,
                                                 f.vocab->owl_same_as);
    EXPECT_TRUE(r.unsupported);
  }
}

// ---------------------------------------------------------------------------
// Lazy endpoint index (the rewrite removes the only wildcard-pivot rules)

TEST(SameAsEquivalence, EndpointIndexNeverBuiltUnderRewrite) {
  EqFixture f("cliques");
  const RewriteRun rewrite = rewrite_closure(f);
  EXPECT_EQ(rewrite.result.endpoint_index_builds, 0u);

  const NaiveRun naive = naive_closure(f);
  EXPECT_GT(naive.result.endpoint_index_builds, 0u)
      << "naive sameAs propagation should probe unbound-predicate pivots";
}

// ---------------------------------------------------------------------------
// Snapshot v3 round trip

TEST(SameAsEquivalence, SnapshotV3RoundTripsClassMap) {
  EqFixture f("cliques");
  const RewriteRun rewrite = rewrite_closure(f);
  const rdf::EqualityClassMap map = rewrite.eq.export_map();
  ASSERT_FALSE(map.empty());

  std::stringstream buf;
  rdf::save_snapshot(buf, f.dict, rewrite.store, &map);
  ASSERT_TRUE(buf.good());

  rdf::Dictionary dict2;
  rdf::TripleStore store2;
  rdf::EqualityClassMap map2;
  std::string error;
  ASSERT_TRUE(rdf::load_snapshot(buf, dict2, store2, map2, &error)) << error;
  EXPECT_EQ(store2.triples(), rewrite.store.triples());
  expect_maps_equal(map, map2, "roundtrip");

  // The reloaded map must answer queries exactly like the original.
  const reason::EqualityManager eq2 =
      reason::EqualityManager::import_map(map2);
  const NaiveRun naive = naive_closure(f);
  const query::SelectQuery q =
      parse(f.dict, "SELECT ?x ?y WHERE { ?x id:relatesTo1 ?y }");
  const auto r = query::evaluate_with_equality(
      store2, q, eq2, ontology::Vocabulary(dict2).owl_same_as);
  ASSERT_FALSE(r.unsupported);
  EXPECT_EQ(sorted_rows(query::evaluate(naive.store, q)),
            sorted_rows(r.results));
}

// ---------------------------------------------------------------------------
// Incremental maintenance under rewrite

TEST(SameAsEquivalence, IncrementalMergeMatchesNaiveRematerialization) {
  EqFixture f("cliques");
  RewriteRun rewrite = rewrite_closure(f);

  // Bridge two previously separate cliques with one asserted sameAs edge.
  const rdf::TermId a =
      f.dict.intern_iri(std::string(gen::kSameAsNs) + "Entity0_alias0");
  const rdf::TermId b =
      f.dict.intern_iri(std::string(gen::kSameAsNs) + "Entity1_alias0");
  const rdf::Triple bridge{a, f.vocab->owl_same_as, b};
  const reason::IncrementalResult inc = reason::materialize_incremental(
      rewrite.store, f.dict, *f.vocab, {&bridge, 1}, {}, 1,
      reason::EqualityMode::kRewrite, &rewrite.eq);
  EXPECT_FALSE(inc.schema_changed);
  EXPECT_GT(inc.eq_merges, 0u);
  EXPECT_GT(inc.eq_rebuilds, 0u);

  // Ground truth: naive closure over base + bridge.
  EqFixture g("cliques");
  rdf::TripleStore naive_store = g.base;
  naive_store.insert(
      {g.dict.intern_iri(std::string(gen::kSameAsNs) + "Entity0_alias0"),
       g.vocab->owl_same_as,
       g.dict.intern_iri(std::string(gen::kSameAsNs) + "Entity1_alias0")});
  reason::materialize(naive_store, g.dict, *g.vocab, {});

  // Same dictionary seeding order, so TermIds line up across fixtures.
  const std::vector<rdf::Triple> expanded = reason::expand_closure(
      rewrite.store, rewrite.eq, f.vocab->owl_same_as);
  EXPECT_EQ(expanded, sorted(naive_store.triples()));
}

TEST(SameAsEquivalence, MaintainerRejectsDeletionsTouchingTheMap) {
  EqFixture f("cliques");
  RewriteRun rewrite = rewrite_closure(f);
  std::vector<rdf::Triple> base = f.base.triples();
  const std::vector<rdf::Triple> log_before = rewrite.store.triples();

  reason::MaintainOptions mopts;
  mopts.equality_mode = reason::EqualityMode::kRewrite;
  mopts.equality = &rewrite.eq;
  const reason::Maintainer maintainer(f.dict, *f.vocab, mopts);

  // (a) deleting an asserted sameAs edge would shrink a clique.
  const auto same_as_edge =
      std::find_if(base.begin(), base.end(), [&](const rdf::Triple& t) {
        return t.p == f.vocab->owl_same_as;
      });
  ASSERT_NE(same_as_edge, base.end());
  {
    const reason::MaintainResult r =
        maintainer.apply(rewrite.store, base, {}, {&*same_as_edge, 1});
    EXPECT_TRUE(r.equality_rejected);
    EXPECT_EQ(rewrite.store.triples(), log_before) << "store must be intact";
  }

  // (b) deleting a payload fact whose endpoint sits in a class: the
  // rederivation cone cannot be trusted in representative space.
  const auto tracked_payload =
      std::find_if(base.begin(), base.end(), [&](const rdf::Triple& t) {
        return t.p != f.vocab->owl_same_as &&
               (rewrite.eq.tracked(t.s) || rewrite.eq.tracked(t.o));
      });
  ASSERT_NE(tracked_payload, base.end());
  {
    const reason::MaintainResult r =
        maintainer.apply(rewrite.store, base, {}, {&*tracked_payload, 1});
    EXPECT_TRUE(r.equality_rejected);
    EXPECT_EQ(rewrite.store.triples(), log_before) << "store must be intact";
  }
}

TEST(SameAsEquivalence, MaintainerStillDeletesOnEqualityFreeData) {
  // The rejection must be surgical: a rewrite-mode store with an *empty*
  // class map (LUBM) maintains deletions exactly like naive mode.
  EqFixture f("lubm");
  RewriteRun rewrite = rewrite_closure(f);
  ASSERT_TRUE(rewrite.eq.empty());
  std::vector<rdf::Triple> base = f.base.triples();

  reason::MaintainOptions mopts;
  mopts.equality_mode = reason::EqualityMode::kRewrite;
  mopts.equality = &rewrite.eq;
  const reason::Maintainer maintainer(f.dict, *f.vocab, mopts);

  // Any instance triple will do; schema triples are rejected elsewhere.
  const ontology::Vocabulary& v = *f.vocab;
  const auto instance =
      std::find_if(base.begin(), base.end(),
                   [&](const rdf::Triple& t) { return !v.is_schema_triple(t); });
  ASSERT_NE(instance, base.end());
  const reason::MaintainResult r =
      maintainer.apply(rewrite.store, base, {}, {&*instance, 1});
  EXPECT_FALSE(r.equality_rejected);
  EXPECT_FALSE(r.schema_changed);
  EXPECT_GT(r.base_deleted, 0u);
}

}  // namespace
}  // namespace parowl
