#include <gtest/gtest.h>

#include <sstream>

#include "parowl/gen/lubm.hpp"
#include "parowl/gen/uobm.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/reason/materialize.hpp"

namespace parowl {
namespace {

/// End-to-end flows across module boundaries.
class IntegrationTest : public ::testing::Test {
 protected:
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
};

TEST_F(IntegrationTest, NtriplesRoundTripThroughMaterialization) {
  // Generate → serialize → re-parse → materialize → identical inferences.
  rdf::TripleStore original;
  gen::LubmOptions opts;
  opts.universities = 1;
  opts.departments_per_university = 1;
  opts.faculty_per_department = 3;
  gen::generate_lubm(opts, dict, original);

  std::ostringstream out;
  rdf::write_ntriples(out, original, dict);

  rdf::Dictionary dict2;
  ontology::Vocabulary vocab2(dict2);
  rdf::TripleStore parsed;
  std::istringstream in(out.str());
  const rdf::ParseStats ps = rdf::parse_ntriples(in, dict2, parsed);
  EXPECT_EQ(ps.bad_lines, 0u);
  EXPECT_EQ(parsed.size(), original.size());

  const auto r1 = reason::materialize(original, dict, vocab, {});
  const auto r2 = reason::materialize(parsed, dict2, vocab2, {});
  EXPECT_EQ(r1.inferred, r2.inferred);
}

TEST_F(IntegrationTest, UobmParallelMatchesSerial) {
  rdf::TripleStore store;
  gen::UobmOptions opts;
  opts.base.universities = 2;
  opts.base.departments_per_university = 1;
  opts.base.faculty_per_department = 3;
  opts.base.students_per_faculty = 2;
  opts.hometowns = 8;
  gen::generate_uobm(opts, dict, store);

  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::materialize(serial, dict, vocab, {});

  const partition::GraphOwnerPolicy policy;
  parallel::ParallelOptions popts;
  popts.partitions = 3;
  popts.policy = &policy;
  const auto result = parallel::parallel_materialize(store, dict, vocab, popts);

  ASSERT_TRUE(result.merged.has_value());
  EXPECT_EQ(result.merged->size(), serial.size());
  for (const rdf::Triple& t : serial.triples()) {
    ASSERT_TRUE(result.merged->contains(t));
  }
}

TEST_F(IntegrationTest, UobmRequiresMoreRoundsThanLubm) {
  // UOBM's cross-partition chains force communication rounds; LUBM's
  // near-disjoint universities under the domain policy converge fast.
  rdf::TripleStore lubm_store;
  gen::LubmOptions lopts;
  lopts.universities = 4;
  gen::generate_lubm(lopts, dict, lubm_store);

  rdf::TripleStore uobm_store;
  gen::UobmOptions uopts;
  uopts.base = lopts;
  uopts.hometowns = 8;
  gen::generate_uobm(uopts, dict, uobm_store);

  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  parallel::ParallelOptions popts;
  popts.partitions = 4;
  popts.policy = &policy;
  popts.build_merged = false;

  const auto lubm_result =
      parallel::parallel_materialize(lubm_store, dict, vocab, popts);
  const auto uobm_result =
      parallel::parallel_materialize(uobm_store, dict, vocab, popts);
  EXPECT_GE(uobm_result.cluster.rounds, lubm_result.cluster.rounds);
  // And its replication is higher.
  ASSERT_TRUE(lubm_result.metrics && uobm_result.metrics);
  EXPECT_GT(uobm_result.metrics->input_replication,
            lubm_result.metrics->input_replication);
}

TEST_F(IntegrationTest, SuperLinearWorkReductionOnLubm) {
  // The paper's core observation: partitioning reduces *total* query-driven
  // reasoning work super-linearly on locality-friendly data-sets.  Compare
  // the backward engine's subgoal counts: serial vs the sum over 2
  // partitions — the latter must be smaller.
  rdf::TripleStore store;
  gen::LubmOptions opts;
  opts.universities = 2;
  opts.departments_per_university = 2;
  opts.faculty_per_department = 3;
  opts.students_per_faculty = 2;
  gen::generate_lubm(opts, dict, store);

  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::MaterializeOptions mopts;
  mopts.strategy = reason::Strategy::kQueryDriven;
  const auto serial_result = reason::materialize(serial, dict, vocab, mopts);

  const partition::DomainOwnerPolicy policy(&partition::lubm_university_key);
  parallel::ParallelOptions popts;
  popts.partitions = 2;
  popts.policy = &policy;
  popts.local_strategy = reason::Strategy::kQueryDriven;
  popts.build_merged = false;
  const auto par = parallel::parallel_materialize(store, dict, vocab, popts);

  // Equivalent output.
  EXPECT_EQ(par.inferred, serial_result.inferred);
  // The slowest partition is well under the serial time (super-linear
  // mechanics); with clean timing this shows as simulated speedup > 1.
  EXPECT_LT(par.cluster.simulated_seconds, serial_result.reason_seconds);
}

TEST_F(IntegrationTest, RulePartitionOnUobm) {
  rdf::TripleStore store;
  gen::UobmOptions opts;
  opts.base.universities = 1;
  opts.base.departments_per_university = 2;
  opts.hometowns = 8;
  gen::generate_uobm(opts, dict, store);

  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  reason::materialize(serial, dict, vocab, {});

  parallel::ParallelOptions popts;
  popts.approach = parallel::Approach::kRulePartition;
  popts.partitions = 4;
  const auto result =
      parallel::parallel_materialize(store, dict, vocab, popts);
  ASSERT_TRUE(result.merged.has_value());
  EXPECT_EQ(result.merged->size(), serial.size());
}

}  // namespace
}  // namespace parowl
