// The parallel ingest pipeline's contract: for any thread count, the
// resulting Dictionary, TripleStore, and ParseStats are bit-identical to
// the serial parser's.  These tests sweep threads over N-Triples and
// Turtle inputs — including the adversarial Turtle shapes the statement
// scanner must not mis-split on — and compare byte-for-byte via snapshots.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "parowl/gen/lubm.hpp"
#include "parowl/rdf/chunked_reader.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/turtle.hpp"

namespace parowl::rdf {
namespace {

constexpr unsigned kThreadSweep[] = {1, 2, 3, 4, 8};

std::string snapshot_bytes(const Dictionary& dict, const TripleStore& store) {
  std::ostringstream out;
  save_snapshot(out, dict, store);
  return out.str();
}

void expect_stats_equal(const ParseStats& got, const ParseStats& want,
                        const std::string& label) {
  EXPECT_EQ(got.triples, want.triples) << label;
  EXPECT_EQ(got.duplicates, want.duplicates) << label;
  EXPECT_EQ(got.bad_lines, want.bad_lines) << label;
  EXPECT_EQ(got.first_error, want.first_error) << label;
  EXPECT_EQ(got.first_error_line, want.first_error_line) << label;
  EXPECT_EQ(got.first_error_offset, want.first_error_offset) << label;
}

/// Sweep `ingest` over kThreadSweep and compare everything against the
/// serial golden parse.
template <typename SerialFn, typename IngestFn>
void sweep(const std::string& text, SerialFn serial, IngestFn ingest,
           const char* what) {
  Dictionary golden_dict;
  TripleStore golden_store;
  const ParseStats golden_stats = serial(text, golden_dict, golden_store);
  const std::string golden_bytes = snapshot_bytes(golden_dict, golden_store);

  for (const unsigned threads : kThreadSweep) {
    const std::string label =
        std::string(what) + " threads=" + std::to_string(threads);
    Dictionary dict;
    TripleStore store;
    IngestOptions opts;
    opts.threads = threads;
    const IngestStats stats = ingest(text, dict, store, opts);
    expect_stats_equal(stats.parse, golden_stats, label);
    EXPECT_EQ(dict.size(), golden_dict.size()) << label;
    EXPECT_EQ(store.size(), golden_store.size()) << label;
    // Byte-identical: same term ids in the same order, same insertion log.
    EXPECT_EQ(snapshot_bytes(dict, store), golden_bytes) << label;
  }
}

void sweep_ntriples(const std::string& text, const char* what) {
  sweep(
      text,
      [](const std::string& t, Dictionary& d, TripleStore& s) {
        std::istringstream in(t);
        return parse_ntriples(in, d, s);
      },
      [](const std::string& t, Dictionary& d, TripleStore& s,
         const IngestOptions& o) { return ingest_ntriples(t, d, s, o); },
      what);
}

void sweep_turtle(const std::string& text, const char* what) {
  sweep(
      text,
      [](const std::string& t, Dictionary& d, TripleStore& s) {
        return parse_turtle_text(t, d, s);
      },
      [](const std::string& t, Dictionary& d, TripleStore& s,
         const IngestOptions& o) { return ingest_turtle(t, d, s, o); },
      what);
}

// ---------------------------------------------------------------------------
// N-Triples

std::string lubm_ntriples(unsigned universities) {
  Dictionary dict;
  TripleStore store;
  gen::LubmOptions opts;
  opts.universities = universities;
  gen::generate_lubm(opts, dict, store);
  std::ostringstream out;
  write_ntriples(out, store, dict);
  return out.str();
}

TEST(IngestEquivalence, NtriplesLubm1BitIdenticalAcrossThreads) {
  sweep_ntriples(lubm_ntriples(1), "lubm1.nt");
}

TEST(IngestEquivalence, NtriplesWithDuplicatesCommentsAndErrors) {
  std::string text;
  text += "<http://x/a> <http://x/p> <http://x/b> .\n";
  text += "# comment\n";
  text += "\n";
  for (int i = 0; i < 200; ++i) {
    text += "<http://x/s" + std::to_string(i % 50) + "> <http://x/p> " +
            "<http://x/o" + std::to_string(i % 25) + "> .\n";
  }
  text += "this line is garbage\n";
  text += "<http://x/a> <http://x/p> \"lit with . dot\" .\n";
  text += "also garbage\n";
  sweep_ntriples(text, "mixed.nt");
}

TEST(IngestEquivalence, NtriplesCrlfLineEndings) {
  std::string text;
  for (int i = 0; i < 64; ++i) {
    text += "<http://x/s" + std::to_string(i) +
            "> <http://x/p> \"v\" .\r\n";
  }
  sweep_ntriples(text, "crlf.nt");

  // CRLF satellite: the serial parser itself must accept \r\n lines.
  Dictionary dict;
  TripleStore store;
  std::istringstream in(text);
  const ParseStats stats = parse_ntriples(in, dict, store);
  EXPECT_EQ(stats.triples, 64u);
  EXPECT_EQ(stats.bad_lines, 0u);
}

TEST(IngestEquivalence, NtriplesNoTrailingNewline) {
  sweep_ntriples("<http://x/a> <http://x/p> <http://x/b> .\n"
                 "<http://x/c> <http://x/p> <http://x/d> .",
                 "nonewline.nt");
}

TEST(IngestEquivalence, NtriplesEmptyAndTiny) {
  sweep_ntriples("", "empty.nt");
  sweep_ntriples("\n\n\n", "blank.nt");
  sweep_ntriples("<http://x/a> <http://x/p> <http://x/b> .\n", "one.nt");
}

TEST(IngestEquivalence, ChunkBoundariesCoverTextAndAlignToNewlines) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "line" + std::to_string(i) + "\n";
  }
  for (const unsigned chunks : {1u, 2u, 7u, 64u}) {
    const std::vector<std::size_t> bounds =
        chunk_newline_boundaries(text, chunks);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), text.size());
    for (std::size_t i = 1; i + 1 < bounds.size(); ++i) {
      EXPECT_GT(bounds[i], bounds[i - 1]);
      EXPECT_EQ(text[bounds[i] - 1], '\n') << "boundary " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Turtle — the scanner must not split inside literals, IRIs, comments,
// decimals, or prefixed-name dots, and chunk-local prefix environments
// must reproduce the serial parser's directive handling.

std::string tricky_turtle() {
  std::string text;
  text += "@prefix ex: <http://example.org/> .\n";
  text += "@prefix ex2: <http://example.org/2#> .\n";
  text += "# a comment with a dot . and <junk>\n";
  for (int i = 0; i < 60; ++i) {
    const std::string n = std::to_string(i);
    text += "ex:s" + n + " ex:p ex:o" + n + " ;\n";
    text += "    ex:q \"literal with . dot and ; semicolon\" ,\n";
    text += "        \"second \\\" escaped . value\" .\n";
    text += "ex:s" + n + " ex:weight 3.25 .\n";          // decimal dot
    text += "ex:s" + n + " ex:count 42 .\n";
    text += "ex2:a" + n + " ex:link <http://x.example/o." + n + "> .\n";
  }
  // Mid-file redefinition: chunks after this line must see the new binding.
  text += "@prefix ex: <http://example.org/other#> .\n";
  for (int i = 0; i < 60; ++i) {
    const std::string n = std::to_string(i);
    text += "ex:t" + n + " ex:p \"after redefinition\"@en .\n";
    text += "ex:t" + n + " a ex2:Thing .\n";
  }
  // SPARQL-style directive without a trailing dot, then more triples.
  text += "PREFIX ex3: <http://example.org/3#>\n";
  text += "ex3:x ex3:y ex3:z .\n";
  // A malformed statement the parser must recover from identically.
  text += "ex3:broken ex3:q ( 1 2 3 ) .\n";
  text += "ex3:after ex3:q ex3:ok .\n";
  return text;
}

TEST(IngestEquivalence, TurtleTrickyDocBitIdenticalAcrossThreads) {
  sweep_turtle(tricky_turtle(), "tricky.ttl");
}

TEST(IngestEquivalence, TurtleMultilineLiteralsWithNewlines) {
  std::string text = "@prefix ex: <http://example.org/> .\n";
  for (int i = 0; i < 40; ++i) {
    // Escaped newlines inside literals shift the scanner's line counter;
    // fragment diagnostics and splits must still line up.
    text += "ex:s" + std::to_string(i) +
            " ex:p \"line one\\nline two . not a boundary\" .\n";
  }
  sweep_turtle(text, "multiline.ttl");
}

TEST(IngestEquivalence, TurtleMalformedRunsRecoverIdentically) {
  std::string text = "@prefix ex: <http://example.org/> .\n";
  for (int i = 0; i < 30; ++i) {
    text += "ex:good" + std::to_string(i) + " ex:p ex:o .\n";
    if (i % 7 == 3) {
      text += "ex:bad" + std::to_string(i) + " ex:q ( collection ) .\n";
    }
    if (i % 11 == 5) {
      text += "@prefix broken\n";
    }
  }
  sweep_turtle(text, "malformed.ttl");
}

TEST(IngestEquivalence, TurtleEmptyAndDirectiveOnly) {
  sweep_turtle("", "empty.ttl");
  sweep_turtle("@prefix ex: <http://example.org/> .\n", "directive.ttl");
}

TEST(IngestEquivalence, TurtleSpanScannerFindsOnlyTopLevelDots) {
  const std::string text =
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p \"dot . inside\" .\n"
      "ex:b ex:w 1.5 .\n"
      "# comment . dot\n"
      "ex:c ex:p <http://e/x.y> .\n";
  const TurtleSpans spans = scan_turtle_spans(text);
  // Exactly four top-level statement ends: the directive + three triples.
  ASSERT_EQ(spans.ends.size(), 4u);
  for (const std::size_t end : spans.ends) {
    ASSERT_GT(end, 0u);
    EXPECT_EQ(text[end - 1], '.');
  }
  EXPECT_EQ(spans.ends.back(), text.size() - 1);  // final '.' before \n
}

// ---------------------------------------------------------------------------
// ingest_file: extension routing + stats

class IngestFileTest : public ::testing::Test {
 protected:
  std::string write_temp(const char* name, const std::string& text) {
    const std::string path =
        (std::filesystem::temp_directory_path() / name).string();
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
  }
  void TearDown() override {
    for (const std::string& p : cleanup_) {
      std::filesystem::remove(p);
    }
  }
  std::vector<std::string> cleanup_;
};

TEST_F(IngestFileTest, RoutesByExtensionAndReportsBytes) {
  const std::string nt = "<http://x/a> <http://x/p> <http://x/b> .\n";
  const std::string ttl =
      "@prefix ex: <http://x/> .\nex:a ex:p ex:b .\n";
  const std::string nt_path = write_temp("parowl_ingest_test.nt", nt);
  const std::string ttl_path = write_temp("parowl_ingest_test.ttl", ttl);
  cleanup_ = {nt_path, ttl_path};

  for (const unsigned threads : {1u, 4u}) {
    IngestOptions opts;
    opts.threads = threads;
    {
      Dictionary dict;
      TripleStore store;
      IngestStats stats;
      std::string error;
      ASSERT_TRUE(ingest_file(nt_path, dict, store, stats, opts, &error))
          << error;
      EXPECT_EQ(store.size(), 1u);
      EXPECT_EQ(stats.bytes, nt.size());
    }
    {
      Dictionary dict;
      TripleStore store;
      IngestStats stats;
      std::string error;
      ASSERT_TRUE(ingest_file(ttl_path, dict, store, stats, opts, &error))
          << error;
      EXPECT_EQ(store.size(), 1u);
      // The @prefix namespace IRI plus prefix-expanded ex:a ex:p ex:b.
      EXPECT_EQ(dict.size(), 4u);
    }
  }
}

TEST_F(IngestFileTest, MissingFileFailsWithError) {
  Dictionary dict;
  TripleStore store;
  IngestStats stats;
  std::string error;
  EXPECT_FALSE(ingest_file("/nonexistent/kb.nt", dict, store, stats, {},
                           &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace parowl::rdf
