// Differential maintenance-oracle suite (tier 2).
//
// The contract under test: after any seeded mixed add/delete stream, the
// incrementally maintained closure holds exactly the triples a from-scratch
// materialization of the final base would produce — for both strategies
// (DRed, FBF), for every rederivation thread count, with the result cache
// on or off, and through the distributed tier's shard refresh.  Equality is
// on sorted triple sequences (survivors keep their original log positions,
// so raw log order legitimately differs from a fresh run); across *thread
// counts* the maintained log itself must be byte-identical.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "parowl/dist/service.hpp"
#include "parowl/gen/lubm.hpp"
#include "parowl/gen/lubm_queries.hpp"
#include "parowl/gen/mdc.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/rdf/flat_index.hpp"
#include "parowl/reason/maintain.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/service.hpp"

namespace parowl::reason {
namespace {

std::vector<rdf::Triple> sorted_triples(const rdf::TripleStore& store) {
  std::vector<rdf::Triple> out = store.triples();
  std::sort(out.begin(), out.end());
  return out;
}

template <typename T>
std::vector<T> sorted_copy(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

constexpr MaintainStrategy kBothStrategies[] = {MaintainStrategy::kDRed,
                                                MaintainStrategy::kFbf};

const char* name_of(MaintainStrategy s) {
  return s == MaintainStrategy::kDRed ? "dred" : "fbf";
}

/// A seeded generator of mixed batches against an evolving asserted base.
/// Deletions sample the live instance pool; additions mix brand-new typed
/// individuals with re-adds of previously deleted triples (the
/// delete-then-readd path at stream scale).
class MixedStream {
 public:
  MixedStream(rdf::Dictionary& dict, const ontology::Vocabulary& vocab,
              std::span<const rdf::Triple> base, std::uint64_t seed)
      : dict_(dict), rng_(seed) {
    for (const rdf::Triple& t : base) {
      if (!vocab.is_schema_triple(t)) {
        live_.push_back(t);
        if (t.p == vocab.rdf_type) {
          classes_.push_back(t.o);
        }
      }
    }
    type_ = vocab.rdf_type;
  }

  struct Batch {
    std::vector<rdf::Triple> adds;
    std::vector<rdf::Triple> dels;
  };

  Batch next() {
    Batch batch;
    // Retract a random slice of the live instance pool.
    const std::size_t want = std::min<std::size_t>(20, live_.size() / 4);
    std::sample(live_.begin(), live_.end(), std::back_inserter(batch.dels),
                want, rng_);
    // Fresh individuals typed with classes the KB already uses...
    for (int i = 0; i < 8; ++i) {
      const auto subject = dict_.intern_iri(
          "http://inc.test/streamed" + std::to_string(next_id_++));
      const auto cls =
          classes_[std::uniform_int_distribution<std::size_t>(
              0, classes_.size() - 1)(rng_)];
      batch.adds.push_back({subject, type_, cls});
    }
    // ...plus resurrections of earlier deletions.
    const std::size_t back = std::min<std::size_t>(4, graveyard_.size());
    std::sample(graveyard_.begin(), graveyard_.end(),
                std::back_inserter(batch.adds), back, rng_);

    // Update the pools to the post-batch state.
    rdf::TripleSet del_set;
    for (const rdf::Triple& t : batch.dels) {
      del_set.insert(t);
    }
    rdf::TripleSet add_set;
    for (const rdf::Triple& t : batch.adds) {
      add_set.insert(t);
    }
    std::erase_if(live_, [&](const rdf::Triple& t) {
      return del_set.contains(t) && !add_set.contains(t);
    });
    std::erase_if(graveyard_,
                  [&](const rdf::Triple& t) { return add_set.contains(t); });
    for (const rdf::Triple& t : batch.adds) {
      if (!del_set.contains(t)) {
        live_.push_back(t);
      }
    }
    for (const rdf::Triple& t : batch.dels) {
      if (!add_set.contains(t)) {
        graveyard_.push_back(t);
      }
    }
    return batch;
  }

 private:
  rdf::Dictionary& dict_;
  std::mt19937_64 rng_;
  std::vector<rdf::Triple> live_;       // currently asserted instance triples
  std::vector<rdf::Triple> graveyard_;  // deleted, available for re-add
  std::vector<rdf::TermId> classes_;
  rdf::TermId type_;
  std::size_t next_id_ = 0;
};

struct Kb {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab{dict};
  rdf::TripleStore store;  // materialized
  std::vector<rdf::Triple> base;

  void finish() {
    base = store.triples();
    materialize(store, dict, vocab, {});
  }
};

Kb lubm_kb() {
  Kb kb;
  gen::LubmOptions o;
  o.universities = 1;
  gen::generate_lubm(o, kb.dict, kb.store);
  kb.finish();
  return kb;
}

Kb mdc_kb() {
  Kb kb;
  gen::MdcOptions o;
  o.fields = 2;
  gen::generate_mdc(o, kb.dict, kb.store);
  kb.finish();
  return kb;
}

/// From-scratch closure of `base` — the oracle every variant is pinned to.
std::vector<rdf::Triple> oracle_closure(Kb& kb,
                                        const std::vector<rdf::Triple>& base) {
  rdf::TripleStore fresh;
  fresh.insert_all(base);
  materialize(fresh, kb.dict, kb.vocab, {});
  return sorted_triples(fresh);
}

// ---------------------------------------------------------------------------
// Maintainer core: random streams, both strategies, thread sweep.

class IncrementalEquivalence
    : public ::testing::TestWithParam<MaintainStrategy> {};

void run_stream_against_oracle(Kb kb, MaintainStrategy strategy,
                               std::uint64_t seed, int rounds) {
  constexpr unsigned kThreads[] = {1, 2, 4, 8};

  // One (store, base) replica per thread count, maintained in lockstep.
  std::vector<rdf::TripleStore> stores;
  std::vector<std::vector<rdf::Triple>> bases;
  for (std::size_t i = 0; i < std::size(kThreads); ++i) {
    stores.push_back(kb.store);
    bases.push_back(kb.base);
  }

  MixedStream stream(kb.dict, kb.vocab, kb.base, seed);
  for (int round = 0; round < rounds; ++round) {
    const MixedStream::Batch batch = stream.next();
    for (std::size_t i = 0; i < std::size(kThreads); ++i) {
      MaintainOptions opts;
      opts.strategy = strategy;
      opts.threads = kThreads[i];
      const Maintainer maintainer(kb.dict, kb.vocab, opts);
      const MaintainResult r =
          maintainer.apply(stores[i], bases[i], batch.adds, batch.dels);
      ASSERT_FALSE(r.schema_changed) << "round " << round;
    }

    // Thread counts must agree bit-for-bit, log order included.
    for (std::size_t i = 1; i < std::size(kThreads); ++i) {
      ASSERT_EQ(stores[0].triples(), stores[i].triples())
          << "round " << round << ": " << kThreads[i]
          << "-thread log diverged from single-thread";
      ASSERT_EQ(bases[0], bases[i]) << "round " << round;
    }

    // And the maintained closure must equal the from-scratch one.
    ASSERT_EQ(sorted_triples(stores[0]), oracle_closure(kb, bases[0]))
        << name_of(strategy) << " diverged from oracle at round " << round;
  }
}

TEST_P(IncrementalEquivalence, LubmRandomStreamMatchesOracle) {
  run_stream_against_oracle(lubm_kb(), GetParam(), /*seed=*/42, /*rounds=*/6);
}

TEST_P(IncrementalEquivalence, LubmSecondSeedMatchesOracle) {
  run_stream_against_oracle(lubm_kb(), GetParam(), /*seed=*/1337,
                            /*rounds=*/4);
}

TEST_P(IncrementalEquivalence, MdcRandomStreamMatchesOracle) {
  run_stream_against_oracle(mdc_kb(), GetParam(), /*seed=*/7, /*rounds=*/4);
}

// DRed and FBF must agree with each other on identical streams (they both
// agree with the oracle above; this pins them against each other directly,
// including the statistics-independent store/base state).
TEST(IncrementalEquivalenceCross, StrategiesAgreeOnIdenticalStreams) {
  Kb kb = lubm_kb();
  rdf::TripleStore dred_store = kb.store;
  rdf::TripleStore fbf_store = kb.store;
  std::vector<rdf::Triple> dred_base = kb.base;
  std::vector<rdf::Triple> fbf_base = kb.base;

  MixedStream stream(kb.dict, kb.vocab, kb.base, /*seed=*/99);
  for (int round = 0; round < 5; ++round) {
    const MixedStream::Batch batch = stream.next();
    MaintainOptions dred;
    dred.strategy = MaintainStrategy::kDRed;
    MaintainOptions fbf;
    fbf.strategy = MaintainStrategy::kFbf;
    Maintainer(kb.dict, kb.vocab, dred)
        .apply(dred_store, dred_base, batch.adds, batch.dels);
    Maintainer(kb.dict, kb.vocab, fbf)
        .apply(fbf_store, fbf_base, batch.adds, batch.dels);
    ASSERT_EQ(dred_base, fbf_base) << "round " << round;
    ASSERT_EQ(sorted_triples(dred_store), sorted_triples(fbf_store))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Serve tier: the same stream through QueryService, cache on and off.

TEST(IncrementalEquivalenceServe, CacheOnAndOffConvergeToOracle) {
  Kb kb = lubm_kb();

  serve::ServiceOptions cached;
  cached.threads = 2;
  cached.cache_enabled = true;
  serve::ServiceOptions uncached;
  uncached.threads = 2;
  uncached.cache_enabled = false;

  rdf::TripleStore s1 = kb.store;
  rdf::TripleStore s2 = kb.store;
  serve::QueryService with_cache(kb.dict, kb.vocab, std::move(s1), cached,
                                 kb.base);
  serve::QueryService without_cache(kb.dict, kb.vocab, std::move(s2),
                                    uncached, kb.base);

  std::vector<std::string> queries;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    queries.push_back(q.sparql);
  }

  std::vector<rdf::Triple> shadow_base = kb.base;  // oracle bookkeeping
  MixedStream stream(kb.dict, kb.vocab, kb.base, /*seed=*/5);
  for (int round = 0; round < 4; ++round) {
    const MixedStream::Batch batch = stream.next();
    const serve::UpdateOutcome a = with_cache.apply_update(
        std::span<const rdf::Triple>(batch.adds),
        std::span<const rdf::Triple>(batch.dels));
    const serve::UpdateOutcome b = without_cache.apply_update(
        std::span<const rdf::Triple>(batch.adds),
        std::span<const rdf::Triple>(batch.dels));
    ASSERT_EQ(a.version, b.version) << "round " << round;

    // Same answers with and without the cache, every query, twice (the
    // second pass hits the cache on the cached service).
    for (const std::string& q : queries) {
      for (int pass = 0; pass < 2; ++pass) {
        const serve::Response ra = with_cache.execute(q);
        const serve::Response rb = without_cache.execute(q);
        ASSERT_EQ(ra.status, serve::RequestStatus::kOk);
        ASSERT_EQ(rb.status, serve::RequestStatus::kOk);
        ASSERT_EQ(sorted_copy(ra.results.rows).size(),
                  sorted_copy(rb.results.rows).size());
        ASSERT_EQ(sorted_copy(ra.results.rows), sorted_copy(rb.results.rows))
            << "round " << round << " query " << q;
      }
    }
  }

  // Both snapshots equal the from-scratch closure of the final base.
  const auto* final_base = with_cache.snapshot()->base.get();
  ASSERT_NE(final_base, nullptr);
  const std::vector<rdf::Triple> want = oracle_closure(kb, *final_base);
  EXPECT_EQ(sorted_triples(with_cache.snapshot()->store), want);
  EXPECT_EQ(sorted_triples(without_cache.snapshot()->store), want);
}

// ---------------------------------------------------------------------------
// Dist tier: shard refresh keeps the catalog equal to a from-scratch
// re-sharding of the maintained closure, and served answers match the
// single-store service.

TEST(IncrementalEquivalenceDist, ShardRefreshTracksMaintainedClosure) {
  Kb kb = lubm_kb();
  constexpr std::uint32_t k = 4;
  const partition::HashOwnerPolicy policy;
  partition::OwnerTable owners =
      partition::partition_data(kb.store, kb.dict, kb.vocab, policy, k)
          .owners;

  const dist::NodeLayout layout{k, /*replicas=*/1};
  parallel::MemoryTransport transport(layout.num_nodes());
  dist::DistOptions dopts;
  dopts.threads = 1;
  dopts.queue_capacity = 256;
  dist::DistService dist_service(kb.dict, kb.store, owners, k, transport,
                                 dopts);

  // The single-store reference maintained through the same stream.
  rdf::TripleStore ref_store = kb.store;
  serve::ServiceOptions sopts;
  sopts.threads = 1;
  serve::QueryService reference(kb.dict, kb.vocab, std::move(ref_store),
                                sopts, kb.base);

  std::vector<std::string> queries;
  for (const gen::LubmQuery& q : gen::lubm_queries()) {
    queries.push_back(q.sparql);
  }

  MixedStream stream(kb.dict, kb.vocab, kb.base, /*seed=*/11);
  for (int round = 0; round < 3; ++round) {
    const MixedStream::Batch batch = stream.next();
    const serve::UpdateOutcome outcome = reference.apply_update(
        std::span<const rdf::Triple>(batch.adds),
        std::span<const rdf::Triple>(batch.dels));
    if (outcome.version == 0) {
      continue;  // no-op round: nothing to ship
    }
    const serve::SnapshotPtr snap = reference.snapshot();
    const auto& log = snap->store.triples();
    const std::vector<rdf::Triple> tail(log.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                snap->delta_begin),
                                        log.end());
    const std::vector<std::uint64_t> before =
        dist_service.shard_versions();
    dist_service.refresh(tail, outcome.maintain.removed_triples);
    const std::vector<std::uint64_t> after = dist_service.shard_versions();
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t p = 0; p < after.size(); ++p) {
      ASSERT_GE(after[p], before[p]) << "shard version went backwards";
    }

    // The union of decoded shards equals the maintained closure, and each
    // shard holds exactly what a from-scratch re-sharding would place there.
    dist::ShardCatalog rebuilt(snap->store, owners, k);
    std::unordered_set<rdf::Triple, rdf::TripleHash> covered;
    for (std::uint32_t p = 0; p < k; ++p) {
      std::vector<rdf::Triple> incremental;
      std::vector<rdf::Triple> scratch;
      std::string error;
      ASSERT_TRUE(dist::ShardCatalog::decode(dist_service.catalog().shard(p),
                                             incremental, &error))
          << error;
      ASSERT_TRUE(
          dist::ShardCatalog::decode(rebuilt.shard(p), scratch, &error))
          << error;
      ASSERT_EQ(sorted_copy(incremental), sorted_copy(scratch))
          << "round " << round << " partition " << p;
      covered.insert(incremental.begin(), incremental.end());
    }
    EXPECT_EQ(covered.size(), snap->store.size()) << "round " << round;

    // Scatter/gather answers equal the single-store reference.
    for (const std::string& q : queries) {
      const serve::Response rd = dist_service.execute(q);
      const serve::Response rr = reference.execute(q);
      ASSERT_EQ(rd.status, serve::RequestStatus::kOk);
      ASSERT_EQ(rr.status, serve::RequestStatus::kOk);
      ASSERT_EQ(sorted_copy(rd.results.rows), sorted_copy(rr.results.rows))
          << "round " << round << " query " << q;
    }
  }
  dist_service.drain();
  reference.drain();
}

INSTANTIATE_TEST_SUITE_P(Strategies, IncrementalEquivalence,
                         ::testing::ValuesIn(kBothStrategies),
                         [](const auto& param_info) {
                           return std::string(name_of(param_info.param));
                         });

}  // namespace
}  // namespace parowl::reason
