#include <gtest/gtest.h>

#include "parowl/gen/lubm.hpp"
#include "parowl/partition/rule_partition.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/rules/dependency_graph.hpp"
#include "parowl/rules/horst_rules.hpp"
#include "parowl/rules/rule_parser.hpp"

namespace parowl::partition {
namespace {

TEST(RulePartition, EveryRuleAssignedExactlyOnce) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  rules::RuleSet rs;
  rs.add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  rs.add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));
  rs.add(*parser.parse_rule("r3: (?x <r> ?y) -> (?x <s> ?y)"));
  rs.add(*parser.parse_rule("r4: (?x <a> ?y) -> (?x <b> ?y)"));

  const auto graph = rules::build_dependency_graph(rs);
  const RulePartitioning rp = partition_rules(rs, graph, 2);

  ASSERT_EQ(rp.parts.size(), 2u);
  EXPECT_EQ(rp.parts[0].size() + rp.parts[1].size(), rs.size());
  ASSERT_EQ(rp.assignment.size(), rs.size());
  for (const auto part : rp.assignment) {
    EXPECT_LT(part, 2u);
  }
  EXPECT_GE(rp.partition_seconds, 0.0);
}

TEST(RulePartition, DependencyChainStaysTogether) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  rules::RuleSet rs;
  // Two independent chains: partitioning should cut zero edges.
  rs.add(*parser.parse_rule("a1: (?x <p> ?y) -> (?x <q> ?y)"));
  rs.add(*parser.parse_rule("a2: (?x <q> ?y) -> (?x <r> ?y)"));
  rs.add(*parser.parse_rule("b1: (?x <m> ?y) -> (?x <n> ?y)"));
  rs.add(*parser.parse_rule("b2: (?x <n> ?y) -> (?x <o> ?y)"));

  const auto graph = rules::build_dependency_graph(rs);
  const RulePartitioning rp = partition_rules(rs, graph, 2);
  EXPECT_EQ(rp.edge_cut, 0u);
  EXPECT_EQ(rp.assignment[0], rp.assignment[1]);
  EXPECT_EQ(rp.assignment[2], rp.assignment[3]);
  EXPECT_NE(rp.assignment[0], rp.assignment[2]);
}

TEST(RulePartition, CompiledLubmRulesSplitNonTrivially) {
  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::generate_lubm_ontology(dict, store);
  const rules::CompiledRules compiled =
      reason::compile_ontology(store, vocab);
  ASSERT_GT(compiled.rules.size(), 8u);

  const auto graph = rules::build_dependency_graph(compiled.rules);
  for (const std::uint32_t k : {2u, 4u}) {
    const RulePartitioning rp = partition_rules(compiled.rules, graph, k);
    std::size_t total = 0;
    std::size_t nonempty = 0;
    for (const auto& part : rp.parts) {
      total += part.size();
      nonempty += part.size() > 0 ? 1 : 0;
    }
    EXPECT_EQ(total, compiled.rules.size());
    EXPECT_GE(nonempty, 2u);
  }
}

TEST(RulePartition, WeightedGraphShiftsCut) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  rules::RuleSet rs;
  rs.add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  rs.add(*parser.parse_rule("r2: (?x <q> ?y) -> (?x <r> ?y)"));
  rs.add(*parser.parse_rule("r3: (?x <r> ?y) -> (?x <t> ?y)"));
  rs.add(*parser.parse_rule("r4: (?x <t> ?y) -> (?x <u> ?y)"));

  // Heavy q-traffic: the r1->r2 edge gets weight 1+1000.
  rdf::TripleStore stats;
  const auto q = dict.find_iri("q");
  for (int i = 0; i < 1000; ++i) {
    stats.insert({static_cast<rdf::TermId>(1000 + i), q,
                  static_cast<rdf::TermId>(5000 + i)});
  }
  const auto weighted = rules::build_dependency_graph(rs, &stats);
  const RulePartitioning rp = partition_rules(rs, weighted, 2);
  // The heavy edge must not be cut: r1 and r2 stay together.
  EXPECT_EQ(rp.assignment[0], rp.assignment[1]);
}

TEST(RulePartition, SinglePartitionKeepsAll) {
  rdf::Dictionary dict;
  rules::RuleParser parser(dict);
  rules::RuleSet rs;
  rs.add(*parser.parse_rule("r1: (?x <p> ?y) -> (?x <q> ?y)"));
  const auto graph = rules::build_dependency_graph(rs);
  const RulePartitioning rp = partition_rules(rs, graph, 1);
  EXPECT_EQ(rp.parts[0].size(), 1u);
  EXPECT_EQ(rp.edge_cut, 0u);
}

}  // namespace
}  // namespace parowl::partition
