// Walk-through of the rule-partitioning approach (Algorithm 2): compile the
// LUBM ontology into single-join instance rules, build the rule-dependency
// graph (optionally weighted by predicate statistics), partition it, and
// show which rules land where and what the cut implies for communication.
//
//   build/examples/rule_partition_demo [partitions]

#include <iostream>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/partition/rule_partition.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/rules/dependency_graph.hpp"
#include "parowl/util/table.hpp"

int main(int argc, char** argv) {
  using namespace parowl;

  const unsigned partitions =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3;

  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions gopts;
  gopts.universities = 2;
  gen::generate_lubm(gopts, dict, store);

  // 1. Compile the ontology into instance rules.
  const rules::CompiledRules compiled =
      reason::compile_ontology(store, vocab);
  std::cout << "compiled " << compiled.rules.size()
            << " instance rules (" << compiled.specializations
            << " schema specializations)\n";
  std::size_t single_join = 0;
  for (const auto& r : compiled.rules.rules()) {
    single_join += (r.body.size() < 2 || r.is_single_join()) ? 1 : 0;
  }
  std::cout << single_join << "/" << compiled.rules.size()
            << " rules are single-join or simpler (the paper's key "
               "observation, SecII)\n\n";

  // 2. Dependency graph, weighted by predicate frequencies in the data.
  const rules::DependencyGraph dep =
      rules::build_dependency_graph(compiled.rules, &store);
  std::cout << "rule-dependency graph: " << dep.num_rules << " rules, "
            << dep.edges.size() << " directed dependencies\n";

  // 3. Partition it.
  const partition::RulePartitioning rp =
      partition::partition_rules(compiled.rules, dep, partitions);
  std::cout << "edge cut (expected tuple traffic weight): " << rp.edge_cut
            << "\n\n";
  for (unsigned p = 0; p < partitions; ++p) {
    std::cout << "partition " << p << " (" << rp.parts[p].size()
              << " rules):\n";
    std::size_t shown = 0;
    for (const auto& r : rp.parts[p].rules()) {
      std::cout << "  " << r.to_string(dict) << "\n";
      if (++shown == 5 && rp.parts[p].size() > 6) {
        std::cout << "  ... (" << rp.parts[p].size() - shown << " more)\n";
        break;
      }
    }
  }

  // 4. Run the parallel reasoner with this rule partitioning and verify it
  //    matches the serial closure.
  rdf::TripleStore serial;
  serial.insert_all(store.triples());
  const auto serial_result = reason::materialize(serial, dict, vocab, {});

  parallel::ParallelOptions opts;
  opts.approach = parallel::Approach::kRulePartition;
  opts.partitions = partitions;
  const auto par = parallel::parallel_materialize(store, dict, vocab, opts);

  std::cout << "\nserial inferred:   " << serial_result.inferred
            << "\nparallel inferred: " << par.inferred << " ("
            << par.cluster.rounds << " rounds)\n"
            << (par.inferred == serial_result.inferred
                    ? "results identical.\n"
                    : "MISMATCH!\n");
  return 0;
}
