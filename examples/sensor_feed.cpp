// Streaming-updates scenario: an oilfield KB is materialized once, then a
// feed of new sensor measurements arrives in small batches.  Each batch is
// absorbed with materialize_incremental (closing only over the delta), the
// KB is queried live, and the final state is checkpointed as a binary
// snapshot that reloads without re-reasoning — the materialized-KB
// lifecycle the paper's introduction motivates.
//
//   build/examples/sensor_feed [fields] [batches]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "parowl/gen/mdc.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/util/timer.hpp"

int main(int argc, char** argv) {
  using namespace parowl;

  const unsigned fields =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2;
  const unsigned batches =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 5;

  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore kb;
  gen::MdcOptions gopts;
  gopts.fields = fields;
  gen::generate_mdc(gopts, dict, kb);

  util::Stopwatch load_watch;
  const auto initial = reason::materialize(kb, dict, vocab, {});
  std::cout << "initial materialization: " << initial.inferred
            << " inferred triples in "
            << util::format_seconds(load_watch.elapsed_seconds()) << "\n";

  // Vocabulary handles for the feed.
  const auto type =
      dict.find_iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  const auto c_meas = dict.find_iri(std::string(gen::kMdcNs) + "Measurement");
  const auto measured_by =
      dict.find_iri(std::string(gen::kMdcNs) + "measuredBy");
  const auto sensor = dict.find_iri(
      "http://cisoft.usc.edu/data/Field0/Sensor0_0_0");
  if (sensor == rdf::kAnyTerm) {
    std::cerr << "expected sensor not present\n";
    return 1;
  }

  const auto c_completion =
      dict.find_iri(std::string(gen::kMdcNs) + "Completion");
  const auto part_of = dict.find_iri(std::string(gen::kMdcNs) + "partOf");
  const auto well = dict.find_iri("http://cisoft.usc.edu/data/Field0/Well0_0");

  // The feed: each batch adds new measurements on an existing sensor plus a
  // freshly drilled completion on an existing well — the completion's
  // transitive partOf chain (well -> reservoir -> field) and the hasPart
  // inverses are derived incrementally.
  for (unsigned b = 0; b < batches; ++b) {
    std::vector<rdf::Triple> batch;
    for (unsigned m = 0; m < 50; ++m) {
      const auto meas = dict.intern_iri(
          "http://cisoft.usc.edu/data/Field0/LiveMeasurement" +
          std::to_string(b) + "_" + std::to_string(m));
      batch.push_back({meas, type, c_meas});
      batch.push_back({meas, measured_by, sensor});
    }
    const auto completion = dict.intern_iri(
        "http://cisoft.usc.edu/data/Field0/LiveCompletion" +
        std::to_string(b));
    batch.push_back({completion, type, c_completion});
    batch.push_back({completion, part_of, well});
    util::Stopwatch batch_watch;
    const auto inc =
        reason::materialize_incremental(kb, dict, vocab, batch);
    std::cout << "batch " << b << ": +" << inc.added << " facts, +"
              << inc.inferred << " inferences in "
              << util::format_seconds(batch_watch.elapsed_seconds()) << "\n";
  }

  // Live query against the maintained closure.
  query::SparqlParser parser(dict);
  parser.add_prefix("mdc", gen::kMdcNs);
  const auto q = parser.parse(
      "SELECT ?m WHERE { ?m mdc:measuredBy "
      "<http://cisoft.usc.edu/data/Field0/Sensor0_0_0> }");
  if (!q) {
    return 1;
  }
  const auto results = query::evaluate(kb, *q);
  std::cout << "sensor Sensor0_0_0 now carries " << results.size()
            << " measurements\n";

  // Checkpoint and prove the snapshot reloads bit-identical.
  const auto snap_path = std::filesystem::temp_directory_path() /
                         "parowl_sensor_feed.snap";
  {
    std::ofstream out(snap_path, std::ios::binary);
    rdf::save_snapshot(out, dict, kb);
  }
  rdf::Dictionary dict2;
  rdf::TripleStore kb2;
  {
    std::ifstream in(snap_path, std::ios::binary);
    std::string error;
    if (!rdf::load_snapshot(in, dict2, kb2, &error)) {
      std::cerr << "snapshot reload failed: " << error << "\n";
      return 1;
    }
  }
  std::cout << "snapshot " << snap_path.string() << " reloads "
            << kb2.size() << "/" << kb.size()
            << " triples with no re-reasoning\n";
  std::filesystem::remove(snap_path);
  return 0;
}
