// Quickstart: load an OWL knowledge base from N-Triples, materialize its
// OWL-Horst closure, and query the result.
//
//   build/examples/quickstart [file.nt]
//
// Without an argument, a small built-in family ontology is used.

#include <fstream>
#include <iostream>
#include <sstream>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/reason/materialize.hpp"

namespace {

// A tiny KB: a class hierarchy, a transitive property with an inverse, and
// a few facts to infer over.
constexpr const char* kBuiltinKb = R"(
<http://ex/Student> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/Person> .
<http://ex/ancestorOf> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2002/07/owl#TransitiveProperty> .
<http://ex/parentOf> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://ex/ancestorOf> .
<http://ex/ancestorOf> <http://www.w3.org/2002/07/owl#inverseOf> <http://ex/descendantOf> .
<http://ex/parentOf> <http://www.w3.org/2000/01/rdf-schema#domain> <http://ex/Person> .
<http://ex/ada> <http://ex/parentOf> <http://ex/ben> .
<http://ex/ben> <http://ex/parentOf> <http://ex/cyd> .
<http://ex/cyd> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/Student> .
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace parowl;

  // 1. Load the data.
  rdf::Dictionary dict;
  rdf::TripleStore store;
  rdf::ParseStats parse_stats;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    parse_stats = rdf::parse_ntriples(in, dict, store);
  } else {
    std::istringstream in(kBuiltinKb);
    parse_stats = rdf::parse_ntriples(in, dict, store);
  }
  std::cout << "loaded " << store.size() << " triples ("
            << parse_stats.bad_lines << " bad lines)\n";

  // 2. Materialize: compile the ontology found in the store into
  //    single-join rules and compute the closure.
  ontology::Vocabulary vocab(dict);
  const reason::MaterializeResult result =
      reason::materialize(store, dict, vocab, {});
  std::cout << "compiled " << result.compiled_rules
            << " instance rules from the ontology\n"
            << "inferred " << result.inferred << " new triples in "
            << result.iterations << " iterations\n\n";

  // 3. Query: everything known about each subject mentioned on the CLI, or
  //    about "ada" in the builtin KB.
  const std::string subject_iri =
      argc > 2 ? argv[2] : "http://ex/ada";
  const rdf::TermId subject = dict.find_iri(subject_iri);
  if (subject == rdf::kAnyTerm) {
    std::cout << subject_iri << " is not in the knowledge base\n";
    return 0;
  }
  std::cout << "all statements about <" << subject_iri << ">:\n";
  store.match({subject, rdf::kAnyTerm, rdf::kAnyTerm},
              [&](const rdf::Triple& t) {
                std::cout << "  " << rdf::to_ntriples(t, dict) << "\n";
              });

  // 4. SPARQL over the materialized store: the built-in KB derives that
  //    cyd is a Person (subclass) and that ada is cyd's ancestor
  //    (subproperty + transitivity), so this join answers only after
  //    reasoning.
  if (argc <= 1) {
    query::SparqlParser parser(dict);
    parser.add_prefix("ex", "http://ex/");
    std::string error;
    const auto q = parser.parse(
        "SELECT ?who ?desc WHERE { ?who ex:ancestorOf ?desc . "
        "?desc a ex:Person }",
        &error);
    if (!q) {
      std::cerr << "query error: " << error << "\n";
      return 1;
    }
    const query::ResultSet results = query::evaluate(store, *q);
    std::cout << "\nSPARQL: ancestors of Persons\n"
              << query::to_text(results, dict);
  }
  return 0;
}
