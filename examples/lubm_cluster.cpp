// End-to-end parallel materialization of a LUBM-style knowledge base:
// generate the data, partition it with each of the three owner policies,
// run the round-based parallel reasoner (Algorithm 3), and compare the
// policies' quality metrics and simulated speedups.
//
//   build/examples/lubm_cluster [universities] [partitions]

#include <iostream>

#include "parowl/gen/lubm.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/util/table.hpp"

int main(int argc, char** argv) {
  using namespace parowl;

  const unsigned universities =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const unsigned partitions =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::LubmOptions gopts;
  gopts.universities = universities;
  const gen::GenStats gstats = gen::generate_lubm(gopts, dict, store);
  std::cout << "generated LUBM-" << universities << ": "
            << gstats.instance_triples << " instance + "
            << gstats.schema_triples << " schema triples\n\n";

  // Serial baseline (one partition).
  const partition::GraphOwnerPolicy graph_policy;
  parallel::ParallelOptions serial_opts;
  serial_opts.partitions = 1;
  serial_opts.policy = &graph_policy;
  serial_opts.build_merged = false;
  const auto serial =
      parallel::parallel_materialize(store, dict, vocab, serial_opts);
  std::cout << "serial: " << serial.inferred << " inferred triples in "
            << util::fmt_double(serial.cluster.simulated_seconds, 3)
            << " s\n\n";

  const partition::DomainOwnerPolicy domain_policy(
      &partition::lubm_university_key);
  const partition::HashOwnerPolicy hash_policy;
  const partition::OwnerPolicy* policies[] = {&graph_policy, &domain_policy,
                                              &hash_policy};

  util::Table table({"policy", "inferred", "rounds", "IR", "OR",
                     "parallel(s)", "speedup"});
  for (const partition::OwnerPolicy* policy : policies) {
    parallel::ParallelOptions opts;
    opts.partitions = partitions;
    opts.policy = policy;
    opts.build_merged = false;
    const auto r = parallel::parallel_materialize(store, dict, vocab, opts);
    table.add_row(
        {policy->name(), std::to_string(r.inferred),
         std::to_string(r.cluster.rounds),
         util::fmt_double(r.metrics ? r.metrics->input_replication : 0, 3),
         util::fmt_double(r.output_replication, 3),
         util::fmt_double(r.cluster.simulated_seconds, 3),
         util::fmt_double(r.cluster.simulated_seconds > 0
                              ? serial.cluster.simulated_seconds /
                                    r.cluster.simulated_seconds
                              : 1.0,
                          2)});
    if (r.inferred != serial.inferred) {
      std::cerr << "WARNING: " << policy->name()
                << " diverged from the serial result!\n";
    }
  }
  table.print(std::cout);
  std::cout << "\nAll policies derive the same closure; they differ in "
               "replication and balance.\n";
  return 0;
}
