// Domain-specific scenario: a smart-oilfield knowledge base (the MDC-style
// workload motivated by the paper's CiSoft/Chevron setting).  Shows how a
// downstream user brings
//   * their own ontology (generated here),
//   * custom application rules on top of OWL-Horst (via the rule parser),
//   * and a domain-specific partitioner keyed on their IRI scheme
// to the parallel reasoner.
//
//   build/examples/oilfield [fields] [partitions]

#include <iostream>
#include <sstream>

#include "parowl/gen/mdc.hpp"
#include "parowl/parallel/pipeline.hpp"
#include "parowl/reason/forward.hpp"
#include "parowl/rules/rule_parser.hpp"
#include "parowl/util/table.hpp"

int main(int argc, char** argv) {
  using namespace parowl;

  const unsigned fields =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned partitions =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 4;

  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore store;
  gen::MdcOptions gopts;
  gopts.fields = fields;
  const gen::GenStats gstats = gen::generate_mdc(gopts, dict, store);
  std::cout << "generated oilfield KB: " << gstats.instance_triples
            << " instance triples across " << fields << " fields\n";

  // Parallel OWL-Horst materialization with the field-locality partitioner.
  const partition::DomainOwnerPolicy policy(&gen::mdc_field_key, "Field");
  parallel::ParallelOptions opts;
  opts.partitions = partitions;
  opts.policy = &policy;
  const auto result = parallel::parallel_materialize(store, dict, vocab, opts);
  std::cout << "OWL-Horst closure: " << result.inferred
            << " inferred triples, "
            << result.cluster.rounds << " communication rounds, IR = "
            << util::fmt_double(
                   result.metrics ? result.metrics->input_replication : 0, 3)
            << "\n\n";

  // Application rules on top of the materialized KB: flag every well that
  // hosts a pressure sensor, and propagate an "inFieldOf" shortcut.
  rules::RuleParser parser(dict);
  parser.add_prefix("mdc", gen::kMdcNs);
  std::istringstream rule_text(R"(
monitored: (?s rdf:type mdc:PressureSensor) (?s mdc:attachedTo ?w) -> (?w rdf:type mdc:MonitoredAsset)
infield: (?a mdc:partOf ?f) (?f rdf:type mdc:Field) -> (?a mdc:inFieldOf ?f)
)");
  std::string error;
  const auto app_rules = parser.parse(rule_text, &error);
  if (!app_rules) {
    std::cerr << "rule parse error: " << error << "\n";
    return 1;
  }

  rdf::TripleStore materialized = std::move(*result.merged);
  reason::ForwardOptions fopts;
  fopts.dict = &dict;
  const reason::ForwardStats app_stats =
      reason::forward_closure(materialized, *app_rules, fopts);
  std::cout << "application rules derived " << app_stats.derived
            << " additional triples\n";

  // Report: monitored wells per field.
  const auto monitored = dict.find_iri(std::string(gen::kMdcNs) +
                                       "MonitoredAsset");
  const auto rdf_type = dict.find_iri(
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  std::vector<std::size_t> per_field(fields, 0);
  materialized.match(
      {rdf::kAnyTerm, rdf_type, monitored}, [&](const rdf::Triple& t) {
        const auto key = gen::mdc_field_key(dict.lexical(t.s));
        if (key >= 0 && static_cast<unsigned>(key) < fields) {
          ++per_field[static_cast<std::size_t>(key)];
        }
      });

  util::Table table({"field", "monitored assets"});
  for (unsigned f = 0; f < fields; ++f) {
    table.add_row({"Field" + std::to_string(f),
                   std::to_string(per_field[f])});
  }
  table.print(std::cout);
  return 0;
}
