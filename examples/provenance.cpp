// Provenance scenario: materialize a knowledge base, then audit *why* each
// inferred statement holds — the proof trees bottom out at asserted facts.
// Useful when a downstream consumer (or a regulator) challenges a derived
// conclusion.
//
//   build/examples/provenance [universities]

#include <iostream>

#include "parowl/gen/lubm.hpp"
#include "parowl/reason/explain.hpp"
#include "parowl/reason/materialize.hpp"

int main(int argc, char** argv) {
  using namespace parowl;

  const unsigned universities =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;

  rdf::Dictionary dict;
  ontology::Vocabulary vocab(dict);
  rdf::TripleStore base;
  gen::LubmOptions gopts;
  gopts.universities = universities;
  gen::generate_lubm(gopts, dict, base);

  // Materialize with the compiled single-join rules, keeping base and
  // closure separate so proofs know what was asserted.
  const rules::CompiledRules compiled =
      reason::compile_ontology(base, vocab);
  rdf::TripleStore materialized;
  materialized.insert_all(base.triples());
  materialized.insert_all(compiled.ground_facts);
  base.insert_all(compiled.ground_facts);  // schema closure counts as given
  reason::ForwardOptions fopts;
  fopts.dict = &dict;
  reason::ForwardEngine(materialized, compiled.rules, fopts).run(0);
  std::cout << "materialized " << materialized.size() << " triples ("
            << materialized.size() - base.size() << " inferred)\n\n";

  const reason::Explainer explainer(materialized, base, compiled.rules);

  // Audit a handful of derived statements of different kinds.
  struct Probe {
    const char* label;
    std::string s, p, o;
  };
  const std::string ns = gen::kUnivBenchNs;
  const Probe probes[] = {
      {"subclass + domain typing",
       "http://www.Department0.Univ0.edu/FullProfessor0",
       "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", ns + "Person"},
      {"subproperty chain (headOf < worksFor < memberOf)",
       "http://www.Department0.Univ0.edu/FullProfessor0", ns + "memberOf",
       "http://www.Univ0.edu/Department0"},
      {"transitive subOrganizationOf",
       "http://www.Department0.Univ0.edu/ResearchGroup0",
       ns + "subOrganizationOf", "http://www.Univ0.edu"},
      {"inverse property (degreeFrom -> hasAlumnus)", "http://www.Univ0.edu",
       ns + "hasAlumnus",
       "http://www.Department0.Univ0.edu/FullProfessor0"},
  };

  for (const Probe& probe : probes) {
    const rdf::TermId s = dict.find_iri(probe.s);
    const rdf::TermId p = dict.find_iri(probe.p);
    const rdf::TermId o = dict.find_iri(probe.o);
    std::cout << "--- " << probe.label << "\n";
    if (s == rdf::kAnyTerm || p == rdf::kAnyTerm || o == rdf::kAnyTerm) {
      std::cout << "  (probe terms not present at this scale)\n\n";
      continue;
    }
    const auto proof = explainer.explain({s, p, o});
    if (!proof) {
      std::cout << "  not entailed\n\n";
      continue;
    }
    std::cout << explainer.to_text(*proof, dict) << "\n";
  }
  return 0;
}
