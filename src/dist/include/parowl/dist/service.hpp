#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "parowl/dist/query_router.hpp"
#include "parowl/dist/replica.hpp"
#include "parowl/dist/shard_catalog.hpp"
#include "parowl/obs/options.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/reason/equality.hpp"
#include "parowl/serve/executor.hpp"
#include "parowl/serve/result_cache.hpp"
#include "parowl/serve/service.hpp"
#include "parowl/serve/stats.hpp"
#include "parowl/serve/workload.hpp"

namespace parowl::dist {

struct DistOptions {
  std::size_t threads = 2;
  std::size_t queue_capacity = 64;
  std::size_t cache_shards = 8;
  std::size_t cache_capacity_per_shard = 128;
  bool cache_enabled = true;

  /// Per-request deadline applied at admission; <= 0 means none (same
  /// semantics as serve::ServiceOptions).
  double default_deadline_seconds = 0.0;

  /// Namespace prefixes pre-registered with the SPARQL parser.
  std::vector<std::pair<std::string, std::string>> prefixes;

  /// Replicas per partition.
  std::uint32_t replicas = 1;

  RouterOptions router;

  /// Frozen equality class map when the closure was materialized under
  /// sameAs rewriting (null = naive).  Queries are then rewritten into
  /// representative space before routing and the merged rows are expanded
  /// through the map before caching/answering.  `same_as` must be the
  /// owl:sameAs TermId (for the rewrite-mode shape checks).
  std::shared_ptr<const reason::EqualityManager> equality;
  rdf::TermId same_as = rdf::kAnyTerm;

  obs::ObsOptions obs;
};

/// One consistent view of the distributed service's counters.
struct DistStats {
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t unavailable = 0;  // kUnavailable: a partition never answered
  std::uint64_t unsupported = 0;  // shape not answerable under rewriting

  std::uint32_t partitions = 0;
  std::uint32_t replicas = 0;
  std::uint64_t scans_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t failovers = 0;
  std::uint64_t gathered_triples = 0;
  std::uint64_t shard_bytes_shipped = 0;  // codec bytes decoded by replicas

  serve::CacheCounters cache;
  serve::LatencyHistogram latency;

  [[nodiscard]] std::uint64_t total_requests() const {
    return completed + shed + deadline_exceeded + parse_errors + unavailable +
           unsupported;
  }

  void print(std::ostream& os) const;
};

[[nodiscard]] obs::FieldList fields(const DistStats& s);

/// Distributed drop-in for serve::QueryService: same submit/execute/drain
/// surface, same Response type, same admission control (bounded executor,
/// shed-at-admission, deadlines) — but a query miss is answered by the
/// QueryRouter's scatter/gather over the replica fleet instead of a local
/// snapshot.
///
/// Result cache: entries are keyed on the normalized query text *plus the
/// per-partition shard version vector*, so a shard refresh moves every
/// affected query to a fresh key and stale merged results can never be
/// served (the single-store service gets the same guarantee from its
/// snapshot-version floor; a merged result has no single version, hence
/// the vector key).  `Response.snapshot_version` reports the max shard
/// version.
class DistService {
 public:
  using Response = serve::Response;

  /// `closure` must already be materialized.  `owners` is the partition
  /// owner table the closure was (or would be) partitioned with; `dict`
  /// outlives the service.  `transport` carries the scan traffic and must
  /// have at least NodeLayout{partitions, replicas}.num_nodes() nodes.
  DistService(rdf::Dictionary& dict, const rdf::TripleStore& closure,
              partition::OwnerTable owners, std::uint32_t partitions,
              parallel::Transport& transport, DistOptions options = {});

  ~DistService();

  DistService(const DistService&) = delete;
  DistService& operator=(const DistService&) = delete;

  /// Asynchronous path: admit `query_text`; `done` runs exactly once,
  /// inline when shed.  Returns false iff shed.
  bool submit(std::string query_text,
              std::function<void(const Response&)> done);

  /// Synchronous path: route + merge on the caller's thread.
  Response execute(const std::string& query_text);

  /// Append raw triples to the shards they belong on, bump those shards'
  /// versions, and re-ship them to live replicas.  Subsequent queries use
  /// the new version vector as their cache key — the invalidation path.
  void refresh(std::span<const rdf::Triple> additions);

  /// Mixed refresh after an incremental maintenance batch: retire
  /// `deletions` (the triples the maintainer removed from the closure) from
  /// their shards, append `additions`, and re-ship only the touched
  /// partitions.  Untouched shards keep their bytes and versions, so the
  /// re-encode/re-sync cost scales with the batch's placement footprint,
  /// not the catalog size.
  void refresh(std::span<const rdf::Triple> additions,
               std::span<const rdf::Triple> deletions);

  /// Block until the request queue is drained.
  void drain();

  /// Render a result set to aligned text (takes the shared dict lock).
  [[nodiscard]] std::string render(const query::ResultSet& results) const;

  [[nodiscard]] DistStats stats() const;
  [[nodiscard]] std::vector<std::uint64_t> shard_versions() const;
  [[nodiscard]] const DistOptions& options() const { return options_; }
  [[nodiscard]] const NodeLayout& layout() const { return layout_; }
  [[nodiscard]] ShardCatalog& catalog() { return catalog_; }
  [[nodiscard]] ReplicaSet& replicas() { return replicas_; }
  [[nodiscard]] serve::Executor& executor() { return *executor_; }

  /// Kill / revive replica r of partition p (fault drills; revive re-syncs
  /// the current shard).
  void kill_replica(std::uint32_t p, std::uint32_t r);
  void revive_replica(std::uint32_t p, std::uint32_t r);

 private:
  Response execute_locked(const std::string& query_text);
  void count(const Response& response);
  [[nodiscard]] std::string cache_key(const std::string& normalized) const;

  DistOptions options_;
  rdf::Dictionary& dict_;
  mutable std::shared_mutex dict_mutex_;
  NodeLayout layout_;
  ShardCatalog catalog_;
  ReplicaSet replicas_;
  QueryRouter router_;
  serve::ResultCache cache_;
  query::SparqlParser parser_;  // guarded by dict_mutex_ (exclusive)
  std::unique_ptr<serve::Executor> executor_;

  /// Guards catalog_ mutation (refresh) against concurrent version reads;
  /// scans themselves are safe via the replicas' RCU stores.
  mutable std::shared_mutex catalog_mutex_;

  std::atomic<std::uint32_t> request_ids_{1};  // wire round ids
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> unavailable_{0};
  std::atomic<std::uint64_t> unsupported_{0};
  std::atomic<std::uint64_t> scans_sent_{0};
  std::atomic<std::uint64_t> retransmissions_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> gathered_triples_{0};
  std::atomic<std::uint64_t> request_seq_{0};  // obs sampling stride counter
  serve::LatencyHistogram latency_;
};

/// Drive a DistService with the serve-layer workload driver (open or closed
/// loop) — the generic submit-interface overload of serve::run_workload.
serve::WorkloadReport run_workload(DistService& service,
                                   std::span<const std::string> queries,
                                   const serve::WorkloadOptions& options);

}  // namespace parowl::dist
