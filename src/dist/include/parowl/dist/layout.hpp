#pragma once

#include <cstdint>

namespace parowl::dist {

/// Base of the virtual obs trace-track range for serving-tier nodes
/// (kDistTrackBase + node).  The materialization plane's workers use
/// 100 + worker id; 200+ keeps the two planes on separate Perfetto rows.
inline constexpr std::uint32_t kDistTrackBase = 200;

/// Node-id geometry of the serving cluster, overlaid on the parallel
/// layer's Transport (whose node-id space is just 0..num_nodes-1):
///
///   node 0                        — the router (query front end)
///   node 1 + p * replicas + r     — replica r of partition p
///
/// The same Transport implementations (memory / file / faulty) carry both
/// the materialization plane's derivation batches and the serving plane's
/// scan requests; only the node-id interpretation differs.
struct NodeLayout {
  std::uint32_t partitions = 1;
  std::uint32_t replicas = 1;

  static constexpr std::uint32_t kRouterNode = 0;

  [[nodiscard]] std::uint32_t num_nodes() const {
    return 1 + partitions * replicas;
  }
  [[nodiscard]] std::uint32_t replica_node(std::uint32_t partition,
                                           std::uint32_t replica) const {
    return 1 + partition * replicas + replica;
  }
  [[nodiscard]] std::uint32_t partition_of(std::uint32_t node) const {
    return (node - 1) / replicas;
  }
  [[nodiscard]] std::uint32_t replica_of(std::uint32_t node) const {
    return (node - 1) % replicas;
  }
};

}  // namespace parowl::dist
