#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "parowl/dist/layout.hpp"
#include "parowl/dist/shard_catalog.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::dist {

/// One worker replica serving scan requests against its partition's shard.
///
/// The shard is held as a shared_ptr<const TripleStore>: `serve` pins the
/// current store with one pointer copy and evaluates lock-free, while
/// `install` publishes a freshly decoded store by swapping the pointer —
/// the same RCU shape as the serve layer's KbSnapshot, so a shard refresh
/// never blocks in-flight scans.
///
/// Wire protocol (parallel::Batch over any Transport):
///   request   from = router (node 0), round = request id, seq = partition,
///             tuples = scan patterns (rdf::kAnyTerm = wildcard)
///   response  from = this replica's node, to = router, round = request id,
///             tuples = the sorted, deduplicated union of local matches,
///             attempt mirroring the request's attempt (so a FaultyTransport
///             schedule bounded by max_faulty_attempts also bounds the
///             response path).
///
/// Requests are deduplicated by batch id for accounting (note_redelivery)
/// but *re-answered* idempotently: the first response may have been lost,
/// and the matches are a pure function of (shard version, patterns).
class ShardReplica {
 public:
  ShardReplica(std::uint32_t node, std::uint32_t partition,
               std::uint32_t replica);

  /// Decode `shard` and publish it as this replica's store.  Returns false
  /// (keeping the previous store) on decode failure.
  bool install(const EncodedShard& shard, std::string* error = nullptr);

  /// Drain and answer every request for (`node`, `request`) currently in
  /// `transport`.  A dead replica drains and discards — the network level
  /// equivalent of packets to a down host — and answers nothing.  Returns
  /// the number of scan requests answered.
  std::size_t serve(parallel::Transport& transport, std::uint32_t request);

  void kill() { alive_.store(false, std::memory_order_relaxed); }
  void revive() { alive_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool alive() const {
    return alive_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t node() const { return node_; }
  [[nodiscard]] std::uint32_t partition() const { return partition_; }
  [[nodiscard]] std::uint32_t replica_index() const { return replica_; }
  [[nodiscard]] std::uint64_t shard_version() const {
    return shard_version_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t scans_answered() const {
    return scans_answered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_installed() const {
    return bytes_installed_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::shared_ptr<const rdf::TripleStore> store() const;

  const std::uint32_t node_;
  const std::uint32_t partition_;
  const std::uint32_t replica_;
  std::atomic<bool> alive_{true};
  std::atomic<std::uint64_t> shard_version_{0};
  std::atomic<std::uint64_t> scans_answered_{0};
  std::atomic<std::uint64_t> bytes_installed_{0};

  mutable std::mutex mutex_;  // guards store_ swap and seen_
  std::shared_ptr<const rdf::TripleStore> store_;
  std::unordered_set<std::uint64_t> seen_;  // request batch ids (accounting)
};

/// The full replica fleet of one serving cluster: `replicas` copies of each
/// of the catalog's partitions, laid out by NodeLayout over a shared
/// Transport.  Construction performs the initial sync (ship + decode every
/// shard to every replica); `sync_partition` re-ships one partition after a
/// catalog refresh.
class ReplicaSet {
 public:
  ReplicaSet(const ShardCatalog& catalog, NodeLayout layout,
             parallel::Transport& transport);

  /// Install partition p's current catalog shard on all its replicas
  /// (skipping dead ones — they re-sync on revive).
  void sync_partition(const ShardCatalog& catalog, std::uint32_t p);

  /// Pump one node's inbox for `request` (the in-process stand-in for the
  /// replica's own server loop).  Returns scans answered.
  std::size_t serve(std::uint32_t node, std::uint32_t request);

  [[nodiscard]] ShardReplica& replica(std::uint32_t p, std::uint32_t r) {
    return *replicas_[layout_.replica_node(p, r) - 1];
  }
  [[nodiscard]] const NodeLayout& layout() const { return layout_; }

  /// Kill/revive by (partition, replica); revive re-installs the current
  /// shard so a resurrected replica never serves a stale snapshot.
  void kill(std::uint32_t p, std::uint32_t r);
  void revive(const ShardCatalog& catalog, std::uint32_t p, std::uint32_t r);

  /// Total codec bytes decoded across all installs (the shipping volume).
  [[nodiscard]] std::uint64_t bytes_shipped() const;

 private:
  NodeLayout layout_;
  parallel::Transport& transport_;
  std::vector<std::unique_ptr<ShardReplica>> replicas_;  // index = node - 1
};

}  // namespace parowl::dist
