#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "parowl/partition/owner_policy.hpp"
#include "parowl/rdf/term.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::dist {

/// One partition's closure shard, already serialized for shipping.
struct EncodedShard {
  std::uint32_t partition = 0;
  /// Monotonic per-partition snapshot version; starts at 1 and bumps on
  /// every refresh.  The vector of these across partitions is the cache key
  /// component that makes a shard refresh invalidate merged results.
  std::uint64_t version = 0;
  std::uint64_t triple_count = 0;
  /// "PSD1" header + codec triple blocks (rdf/codec.hpp) — the same wire
  /// format snapshots and file-transport envelopes use.
  std::string bytes;
};

/// Builds and versions the per-partition closure shards the serving tier
/// ships to replicas.
///
/// Placement follows partition::append_shard_destinations: a closure triple
/// lands on the shard of its subject's owner and its object's owner, and a
/// triple with no owned endpoint (schema axioms, literal-valued statements)
/// is replicated to every shard.  That rule makes each shard self-contained
/// for pattern matching: any pattern with an owned constant endpoint is
/// answerable entirely by that endpoint's shard, and the union of per-shard
/// matches of a pattern equals its matches against the full closure — the
/// invariant the QueryRouter's scatter/gather correctness rests on.
///
/// Shards are stored *encoded* (codec blocks under a small "PSD1" header),
/// so shipping a shard to a replica is a byte copy plus a decode on the
/// receiving side — the measured cost is real serialization, as with the
/// file transport.
class ShardCatalog {
 public:
  /// Slice `closure` (the full materialized store, log order preserved)
  /// into `num_partitions` encoded shards using `owners`.
  ShardCatalog(const rdf::TripleStore& closure,
               partition::OwnerTable owners, std::uint32_t num_partitions);

  [[nodiscard]] std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const EncodedShard& shard(std::uint32_t p) const {
    return shards_[p];
  }
  [[nodiscard]] const partition::OwnerTable& owners() const {
    return owners_;
  }

  /// Per-partition snapshot versions, indexed by partition.
  [[nodiscard]] std::vector<std::uint64_t> versions() const;

  /// Append `additions` to the shards they belong on (placement rule above)
  /// and bump those shards' versions.  Returns the partitions touched,
  /// sorted.  Additions are raw triples — the serving tier's shard refresh
  /// path, not an incremental closure (ROADMAP: live updates across shards).
  std::vector<std::uint32_t> refresh(std::span<const rdf::Triple> additions);

  /// Mixed refresh after an incremental maintenance batch: remove
  /// `deletions` (the triples the maintainer actually retired from the
  /// closure) from the shards they were placed on, then append `additions`
  /// (the new log tail).  Only touched partitions re-encode and bump their
  /// versions; untouched shards keep their bytes and version.  Returns the
  /// touched partitions, sorted.
  std::vector<std::uint32_t> refresh(std::span<const rdf::Triple> additions,
                                     std::span<const rdf::Triple> deletions);

  /// Total encoded bytes across shards (what one full sync ships per
  /// replica set member).
  [[nodiscard]] std::uint64_t encoded_bytes() const;

  /// Decode an EncodedShard's bytes back into triples (log order).  Returns
  /// false and sets *error on header mismatch or block corruption.
  static bool decode(const EncodedShard& shard,
                     std::vector<rdf::Triple>& out, std::string* error);

 private:
  void encode_shard(std::uint32_t p,
                    std::span<const rdf::Triple> triples);

  partition::OwnerTable owners_;
  std::vector<EncodedShard> shards_;
  /// Decoded triple lists kept alongside the encoded form so refresh can
  /// re-encode without a decode round-trip.
  std::vector<std::vector<rdf::Triple>> plain_;
};

}  // namespace parowl::dist
