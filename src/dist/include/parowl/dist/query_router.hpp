#pragma once

#include <cstdint>
#include <vector>

#include "parowl/dist/layout.hpp"
#include "parowl/dist/replica.hpp"
#include "parowl/obs/report.hpp"
#include "parowl/parallel/transport.hpp"
#include "parowl/partition/owner_policy.hpp"
#include "parowl/query/bgp.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::dist {

/// Naming note — this codebase has *two* routers, one per plane:
///   * parallel::Router (parallel/router.hpp) ships freshly *derived
///     tuples* between materialization workers — Algorithm 3 step 4,
///     write-path, runs during closure computation.
///   * dist::QueryRouter (this class) ships *scan requests* from the query
///     front end to shard replicas — read-path, runs at serve time, after
///     the closure is done.
/// See docs/architecture.md "Distributed serving" for the side-by-side.

/// Tuning knobs of the fan-out/retry/failover loop.
struct RouterOptions {
  /// Total transmissions per partition before the query gives up
  /// (kUnavailable).  With FaultSpec.max_faulty_attempts = 3 the default
  /// survives any schedule plus one dead replica.
  std::uint32_t max_attempts = 8;
  /// Unanswered transmissions to one replica before advancing to the next
  /// (failover).  Retrying the same replica once first distinguishes a
  /// lost envelope from a dead host.
  std::uint32_t attempts_per_replica = 2;
};

/// Counters of one routed request.
struct RouteStats {
  std::uint32_t partitions_touched = 0;
  std::uint32_t scans_sent = 0;        // first transmissions + retries
  std::uint32_t retransmissions = 0;   // scans_sent beyond the first per partition
  std::uint32_t failovers = 0;         // replica advances
  std::uint32_t checksum_failures = 0; // corrupt responses discarded
  std::uint32_t redeliveries = 0;      // duplicate responses discarded
  std::uint64_t gathered_triples = 0;  // after cross-partition dedup
  double route_seconds = 0.0;          // footprint computation
  double fanout_seconds = 0.0;         // scatter + replica pump + gather
  double merge_seconds = 0.0;          // central join over the gathered store
};

[[nodiscard]] obs::FieldList fields(const RouteStats& s);

/// Scatter/gather evaluation of one BGP query over the shard fleet.
///
/// Correctness shape: the router does NOT evaluate the whole BGP per
/// partition — a join chain's witness triples need not be colocated on any
/// single shard.  Instead it scatters per-*atom* scan patterns: each atom's
/// matches are gathered from every partition the atom's footprint touches
/// (pattern_footprint: one partition when an endpoint constant is owned,
/// all of them otherwise), the union is deduplicated into a gathered store,
/// and the join runs centrally.  Because each shard holds every triple its
/// owned endpoints appear in, the gathered set equals the atom's matches
/// against the full closure, so the central join sees exactly the triples
/// the single-store evaluation would — answers are bit-identical (modulo
/// the canonical row order the merge imposes).
///
/// Fault tolerance reuses the parallel plane's envelope protocol: requests
/// and responses are checksummed Batches; lost or corrupt legs are
/// retransmitted with a bumped attempt counter, and after
/// `attempts_per_replica` silent tries the router fails over to the
/// partition's next replica.  Replicas re-answer duplicate requests
/// idempotently, so at-least-once delivery composes into exactly-once
/// gathering (responses are deduplicated per partition).
class QueryRouter {
 public:
  QueryRouter(const partition::OwnerTable& owners, NodeLayout layout,
              ReplicaSet& replicas, parallel::Transport& transport,
              RouterOptions options = {});

  /// The query's partition footprint: `patterns[p]` holds the scan patterns
  /// partition p must answer (deduplicated); `partitions` lists the p with
  /// any pattern, sorted.
  struct Footprint {
    std::vector<std::uint32_t> partitions;
    std::vector<std::vector<rdf::Triple>> patterns;  // indexed by partition
  };
  [[nodiscard]] Footprint footprint(const query::SelectQuery& query) const;

  enum class Outcome {
    kOk,
    kUnavailable,  // a partition answered on no replica within max_attempts
  };

  /// Evaluate `query` distributed; `request` must be unique per call (it is
  /// the wire round id).  On kOk, `*out` holds the merged results in
  /// canonical row order (sorted lexicographically by TermId).  `*stats` is
  /// always filled.
  Outcome run(const query::SelectQuery& query, std::uint32_t request,
              query::ResultSet* out, RouteStats* stats);

  [[nodiscard]] const RouterOptions& options() const { return options_; }

 private:
  const partition::OwnerTable& owners_;
  NodeLayout layout_;
  ReplicaSet& replicas_;
  parallel::Transport& transport_;
  RouterOptions options_;
};

}  // namespace parowl::dist
