#include "parowl/dist/replica.hpp"

#include <algorithm>
#include <optional>

#include "parowl/obs/trace.hpp"

namespace parowl::dist {

ShardReplica::ShardReplica(std::uint32_t node, std::uint32_t partition,
                           std::uint32_t replica)
    : node_(node), partition_(partition), replica_(replica) {}

bool ShardReplica::install(const EncodedShard& shard, std::string* error) {
  std::vector<rdf::Triple> decoded;
  if (!ShardCatalog::decode(shard, decoded, error)) {
    return false;
  }
  auto store = std::make_shared<rdf::TripleStore>();
  store->insert_all(decoded);
  {
    const std::scoped_lock lock(mutex_);
    store_ = std::move(store);
  }
  shard_version_.store(shard.version, std::memory_order_relaxed);
  bytes_installed_.fetch_add(shard.bytes.size(), std::memory_order_relaxed);
  return true;
}

std::shared_ptr<const rdf::TripleStore> ShardReplica::store() const {
  const std::scoped_lock lock(mutex_);
  return store_;
}

std::size_t ShardReplica::serve(parallel::Transport& transport,
                                std::uint32_t request) {
  std::vector<parallel::Batch> inbox =
      transport.receive_batches(node_, request);
  if (!alive()) {
    // A dead host's packets vanish: drain so nothing is answered late on
    // revive, answer nothing, let the router's retry/failover take over.
    return 0;
  }
  std::size_t answered = 0;
  for (parallel::Batch& req : inbox) {
    if (req.round != request) {
      // A FaultyTransport can release an older request's delayed envelope
      // into this poll; that request's router is gone — drop it.
      continue;
    }
    if (!req.intact ||
        parallel::batch_checksum(req.tuples) != req.checksum) {
      transport.note_checksum_failure(node_);
      continue;  // the router retransmits
    }
    {
      const std::scoped_lock lock(mutex_);
      if (!seen_.insert(req.id()).second) {
        // Duplicate request: record it, but re-answer — the previous
        // response may be the leg the fault schedule destroyed, and the
        // answer is a pure function of (shard version, patterns).
        transport.note_redelivery(node_);
      }
    }
    const std::shared_ptr<const rdf::TripleStore> snap = store();

    std::optional<obs::Span> span;
    if (obs::Tracer::global().enabled()) {
      span.emplace("dist.scan",
                   std::initializer_list<obs::TraceArg>{
                       {"partition", partition_},
                       {"replica", replica_},
                       {"patterns", req.tuples.size()}},
                   kDistTrackBase + node_);
    }
    std::vector<rdf::Triple> matches;
    if (snap) {
      for (const rdf::Triple& pattern : req.tuples) {
        snap->match_each(rdf::TriplePattern{pattern.s, pattern.p, pattern.o},
                         [&](const rdf::Triple& t) { matches.push_back(t); });
      }
    }
    // Canonical response payload: sorted and deduplicated, so the same
    // (shard version, patterns) pair always yields byte-identical batches —
    // retransmitted responses carry the same checksum.
    std::sort(matches.begin(), matches.end());
    matches.erase(std::unique(matches.begin(), matches.end()), matches.end());
    if (span) {
      span->arg({"matches", matches.size()});
    }

    parallel::Batch resp;
    resp.from = node_;
    resp.to = NodeLayout::kRouterNode;
    resp.round = request;
    resp.seq = req.seq;
    resp.attempt = req.attempt;
    resp.checksum = parallel::batch_checksum(matches);
    resp.tuples = std::move(matches);
    transport.send_batch(std::move(resp));
    ++answered;
  }
  scans_answered_.fetch_add(answered, std::memory_order_relaxed);
  return answered;
}

ReplicaSet::ReplicaSet(const ShardCatalog& catalog, NodeLayout layout,
                       parallel::Transport& transport)
    : layout_(layout), transport_(transport) {
  replicas_.reserve(layout_.partitions * layout_.replicas);
  obs::Tracer& tracer = obs::Tracer::global();
  for (std::uint32_t p = 0; p < layout_.partitions; ++p) {
    for (std::uint32_t r = 0; r < layout_.replicas; ++r) {
      const std::uint32_t node = layout_.replica_node(p, r);
      replicas_.push_back(std::make_unique<ShardReplica>(node, p, r));
      tracer.name_track(kDistTrackBase + node,
                        "dist replica p" + std::to_string(p) + "/r" +
                            std::to_string(r));
    }
  }
  tracer.name_track(kDistTrackBase + NodeLayout::kRouterNode, "dist router");
  for (std::uint32_t p = 0; p < layout_.partitions; ++p) {
    sync_partition(catalog, p);
  }
}

void ReplicaSet::sync_partition(const ShardCatalog& catalog, std::uint32_t p) {
  for (std::uint32_t r = 0; r < layout_.replicas; ++r) {
    ShardReplica& rep = replica(p, r);
    if (rep.alive()) {
      rep.install(catalog.shard(p));
    }
  }
}

std::size_t ReplicaSet::serve(std::uint32_t node, std::uint32_t request) {
  return replicas_[node - 1]->serve(transport_, request);
}

void ReplicaSet::kill(std::uint32_t p, std::uint32_t r) {
  replica(p, r).kill();
}

void ReplicaSet::revive(const ShardCatalog& catalog, std::uint32_t p,
                        std::uint32_t r) {
  ShardReplica& rep = replica(p, r);
  rep.revive();
  rep.install(catalog.shard(p));
}

std::uint64_t ReplicaSet::bytes_shipped() const {
  std::uint64_t total = 0;
  for (const auto& rep : replicas_) {
    total += rep->bytes_installed();
  }
  return total;
}

}  // namespace parowl::dist
