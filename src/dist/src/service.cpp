#include "parowl/dist/service.hpp"

#include <algorithm>
#include <optional>
#include <ostream>

#include "parowl/obs/obs.hpp"
#include "parowl/obs/trace.hpp"
#include "parowl/query/equality_expand.hpp"
#include "parowl/util/table.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::dist {

obs::FieldList fields(const DistStats& s) {
  obs::FieldList out = {
      {"requests", s.total_requests()},
      {"completed", s.completed},
      {"shed", s.shed},
      {"deadline_exceeded", s.deadline_exceeded},
      {"parse_errors", s.parse_errors},
      {"unavailable", s.unavailable},
      {"unsupported", s.unsupported},
      {"partitions", s.partitions},
      {"replicas", s.replicas},
      {"scans_sent", s.scans_sent},
      {"retransmissions", s.retransmissions},
      {"failovers", s.failovers},
      {"gathered_triples", s.gathered_triples},
      {"shard_bytes_shipped", s.shard_bytes_shipped},
      {"p50_latency_seconds", s.latency.percentile_seconds(0.50)},
      {"p95_latency_seconds", s.latency.percentile_seconds(0.95)},
      {"p99_latency_seconds", s.latency.percentile_seconds(0.99)},
  };
  for (obs::Field& f : fields(s.cache)) {
    out.push_back(std::move(f));
  }
  return out;
}

void DistStats::print(std::ostream& os) const {
  util::Table table({"metric", "value"});
  obs::print(*this, table);
  table.add_row(
      {"p50 latency", serve::fmt_latency(latency.percentile_seconds(0.50))});
  table.add_row(
      {"p95 latency", serve::fmt_latency(latency.percentile_seconds(0.95))});
  table.add_row(
      {"p99 latency", serve::fmt_latency(latency.percentile_seconds(0.99))});
  table.print(os);
}

DistService::DistService(rdf::Dictionary& dict,
                         const rdf::TripleStore& closure,
                         partition::OwnerTable owners,
                         std::uint32_t partitions,
                         parallel::Transport& transport, DistOptions options)
    : options_(std::move(options)),
      dict_(dict),
      layout_{partitions == 0 ? 1 : partitions,
              options_.replicas == 0 ? 1 : options_.replicas},
      catalog_(closure, std::move(owners), layout_.partitions),
      replicas_(catalog_, layout_, transport),
      router_(catalog_.owners(), layout_, replicas_, transport,
              options_.router),
      cache_(options_.cache_shards,
             options_.cache_enabled ? options_.cache_capacity_per_shard : 0),
      parser_(dict),
      executor_(std::make_unique<serve::Executor>(options_.threads,
                                                  options_.queue_capacity)) {
  obs::configure(options_.obs);
  for (const auto& [name, iri] : options_.prefixes) {
    parser_.add_prefix(name, iri);
  }
}

DistService::~DistService() {
  executor_.reset();  // completes pending jobs, joins workers
}

bool DistService::submit(std::string query_text,
                         std::function<void(const Response&)> done) {
  const auto admitted_at = serve::Executor::Clock::now();
  auto done_ptr = std::make_shared<std::function<void(const Response&)>>(
      std::move(done));

  serve::Executor::Job job;
  if (options_.default_deadline_seconds > 0) {
    job.deadline =
        admitted_at +
        std::chrono::duration_cast<serve::Executor::Clock::duration>(
            std::chrono::duration<double>(
                options_.default_deadline_seconds));
  }
  job.run = [this, text = std::move(query_text), done_ptr,
             admitted_at](bool expired) {
    Response response;
    if (expired) {
      response.status = serve::RequestStatus::kDeadlineExceeded;
    } else {
      response = execute_locked(text);
    }
    response.latency_seconds =
        std::chrono::duration<double>(serve::Executor::Clock::now() -
                                      admitted_at)
            .count();
    count(response);
    if (*done_ptr) {
      (*done_ptr)(response);
    }
  };

  if (!executor_->try_submit(std::move(job))) {
    Response response;
    response.status = serve::RequestStatus::kOverloaded;
    response.latency_seconds =
        std::chrono::duration<double>(serve::Executor::Clock::now() -
                                      admitted_at)
            .count();
    count(response);
    if (*done_ptr) {
      (*done_ptr)(response);
    }
    return false;
  }
  return true;
}

DistService::Response DistService::execute(const std::string& query_text) {
  util::Stopwatch watch;
  Response response = execute_locked(query_text);
  response.latency_seconds = watch.elapsed_seconds();
  count(response);
  return response;
}

std::string DistService::cache_key(const std::string& normalized) const {
  // Text + shard version vector: a refresh of any partition changes the
  // key, so stale merged results become unreachable instead of needing a
  // version floor (no single version covers a merged result).
  std::string key = normalized;
  key += '\x01';
  const std::shared_lock lock(catalog_mutex_);
  for (std::uint32_t p = 0; p < catalog_.num_partitions(); ++p) {
    key += 'v';
    key += std::to_string(catalog_.shard(p).version);
  }
  return key;
}

DistService::Response DistService::execute_locked(
    const std::string& query_text) {
  PAROWL_COUNT("dist.requests", 1);
  std::optional<obs::Span> request_span;
  if (obs::Tracer::global().enabled() &&
      request_seq_.fetch_add(1, std::memory_order_relaxed) %
              obs::sample_stride() ==
          0) {
    request_span.emplace("dist.request");
  }

  Response response;
  const std::string normalized = serve::normalize_query(query_text);
  const std::string key = cache_key(normalized);
  {
    const std::shared_lock lock(catalog_mutex_);
    const std::vector<std::uint64_t> versions = catalog_.versions();
    response.snapshot_version =
        *std::max_element(versions.begin(), versions.end());
  }

  if (auto hit = cache_.lookup(key)) {
    response.cache_hit = true;
    response.results = std::move(*hit);
    if (request_span) {
      request_span->arg({"cache", "hit"});
      request_span->arg({"rows", response.results.size()});
    }
    return response;
  }

  std::optional<query::SelectQuery> parsed;
  std::string error;
  {
    // Parsing interns query constants and mutates parser prefix state.
    const std::unique_lock lock(dict_mutex_);
    parsed = parser_.parse(query_text, &error);
  }
  if (!parsed) {
    response.status = serve::RequestStatus::kParseError;
    response.error = error;
    if (request_span) {
      request_span->arg({"status", "parse_error"});
    }
    return response;
  }

  // Rewrite mode: route the representative-space widened query (constants
  // rewritten, every variable projected, DISTINCT/LIMIT deferred) and
  // expand the merged rows afterwards — shards only hold canonical triples.
  const reason::EqualityManager* eq = options_.equality.get();
  query::SelectQuery routed;
  if (eq != nullptr) {
    std::string why;
    std::optional<query::SelectQuery> rewritten =
        query::rewrite_for_equality(*parsed, *eq, options_.same_as, &why);
    if (!rewritten) {
      response.status = serve::RequestStatus::kUnsupported;
      response.error = std::move(why);
      if (request_span) {
        request_span->arg({"status", "unsupported"});
      }
      return response;
    }
    routed = std::move(*rewritten);
  }

  const std::uint32_t request =
      request_ids_.fetch_add(1, std::memory_order_relaxed);
  RouteStats route;
  const QueryRouter::Outcome outcome =
      router_.run(eq != nullptr ? routed : *parsed, request,
                  &response.results, &route);
  scans_sent_.fetch_add(route.scans_sent, std::memory_order_relaxed);
  retransmissions_.fetch_add(route.retransmissions,
                             std::memory_order_relaxed);
  failovers_.fetch_add(route.failovers, std::memory_order_relaxed);
  gathered_triples_.fetch_add(route.gathered_triples,
                              std::memory_order_relaxed);
  if (outcome == QueryRouter::Outcome::kUnavailable) {
    response.status = serve::RequestStatus::kUnavailable;
    response.error = "no replica answered for a touched partition";
    response.results = {};
    if (request_span) {
      request_span->arg({"status", "unavailable"});
    }
    return response;
  }

  if (eq != nullptr) {
    query::EqualityEvalResult expanded =
        query::expand_equality_results(*parsed, response.results, *eq);
    response.results = std::move(expanded.results);
  }

  serve::CachedResult entry;
  entry.results = response.results;
  // Footprint fields matter only for on_update invalidation, which the
  // distributed tier replaces with version-vector keys; stamp the entry
  // with the max shard version so the floor check stays a no-op.
  entry.version = response.snapshot_version;
  cache_.insert(key, std::move(entry));
  if (request_span) {
    request_span->arg({"cache", "miss"});
    request_span->arg({"partitions", route.partitions_touched});
    request_span->arg({"rows", response.results.size()});
  }
  return response;
}

void DistService::refresh(std::span<const rdf::Triple> additions) {
  PAROWL_SPAN("dist.refresh", {{"additions", additions.size()}});
  const std::unique_lock lock(catalog_mutex_);
  const std::vector<std::uint32_t> touched = catalog_.refresh(additions);
  for (const std::uint32_t p : touched) {
    replicas_.sync_partition(catalog_, p);
  }
}

void DistService::refresh(std::span<const rdf::Triple> additions,
                          std::span<const rdf::Triple> deletions) {
  PAROWL_SPAN("dist.refresh", {{"additions", additions.size()},
                               {"deletions", deletions.size()}});
  const std::unique_lock lock(catalog_mutex_);
  const std::vector<std::uint32_t> touched =
      catalog_.refresh(additions, deletions);
  for (const std::uint32_t p : touched) {
    replicas_.sync_partition(catalog_, p);
  }
}

void DistService::drain() { executor_->wait_idle(); }

std::string DistService::render(const query::ResultSet& results) const {
  const std::shared_lock lock(dict_mutex_);
  return query::to_text(results, dict_);
}

DistStats DistService::stats() const {
  DistStats s;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.unavailable = unavailable_.load(std::memory_order_relaxed);
  s.unsupported = unsupported_.load(std::memory_order_relaxed);
  s.partitions = layout_.partitions;
  s.replicas = layout_.replicas;
  s.scans_sent = scans_sent_.load(std::memory_order_relaxed);
  s.retransmissions = retransmissions_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.gathered_triples = gathered_triples_.load(std::memory_order_relaxed);
  s.shard_bytes_shipped = replicas_.bytes_shipped();
  s.cache = cache_.counters();
  s.latency = latency_;
  obs::publish(s, "dist");
  return s;
}

std::vector<std::uint64_t> DistService::shard_versions() const {
  const std::shared_lock lock(catalog_mutex_);
  return catalog_.versions();
}

void DistService::kill_replica(std::uint32_t p, std::uint32_t r) {
  replicas_.kill(p, r);
}

void DistService::revive_replica(std::uint32_t p, std::uint32_t r) {
  const std::shared_lock lock(catalog_mutex_);
  replicas_.revive(catalog_, p, r);
}

void DistService::count(const Response& response) {
  switch (response.status) {
    case serve::RequestStatus::kOk:
      completed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case serve::RequestStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case serve::RequestStatus::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case serve::RequestStatus::kParseError:
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    case serve::RequestStatus::kUnavailable:
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      break;
    case serve::RequestStatus::kUnsupported:
      unsupported_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  latency_.record_seconds(response.latency_seconds);
}

serve::WorkloadReport run_workload(DistService& service,
                                   std::span<const std::string> queries,
                                   const serve::WorkloadOptions& options) {
  return serve::run_workload(
      [&service](const std::string& q,
                 std::function<void(const serve::Response&)> done) {
        return service.submit(q, std::move(done));
      },
      queries, options);
}

}  // namespace parowl::dist
