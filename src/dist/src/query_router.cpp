#include "parowl/dist/query_router.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "parowl/obs/trace.hpp"
#include "parowl/partition/data_partition.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::dist {

obs::FieldList fields(const RouteStats& s) {
  return {
      {"partitions_touched", s.partitions_touched},
      {"scans_sent", s.scans_sent},
      {"retransmissions", s.retransmissions},
      {"failovers", s.failovers},
      {"checksum_failures", s.checksum_failures},
      {"redeliveries", s.redeliveries},
      {"gathered_triples", s.gathered_triples},
      {"route_seconds", s.route_seconds},
      {"fanout_seconds", s.fanout_seconds},
      {"merge_seconds", s.merge_seconds},
  };
}

QueryRouter::QueryRouter(const partition::OwnerTable& owners,
                         NodeLayout layout, ReplicaSet& replicas,
                         parallel::Transport& transport,
                         RouterOptions options)
    : owners_(owners),
      layout_(layout),
      replicas_(replicas),
      transport_(transport),
      options_(options) {}

QueryRouter::Footprint QueryRouter::footprint(
    const query::SelectQuery& query) const {
  Footprint fp;
  fp.patterns.resize(layout_.partitions);
  for (const rules::Atom& atom : query.where) {
    const rdf::Triple pattern{
        atom.s.is_const() ? atom.s.const_id() : rdf::kAnyTerm,
        atom.p.is_const() ? atom.p.const_id() : rdf::kAnyTerm,
        atom.o.is_const() ? atom.o.const_id() : rdf::kAnyTerm};
    for (const std::uint32_t p : partition::pattern_footprint(
             owners_, pattern, layout_.partitions)) {
      fp.patterns[p].push_back(pattern);
    }
  }
  for (std::uint32_t p = 0; p < layout_.partitions; ++p) {
    auto& pats = fp.patterns[p];
    std::sort(pats.begin(), pats.end());
    pats.erase(std::unique(pats.begin(), pats.end()), pats.end());
    if (!pats.empty()) {
      fp.partitions.push_back(p);
    }
  }
  return fp;
}

QueryRouter::Outcome QueryRouter::run(const query::SelectQuery& query,
                                      std::uint32_t request,
                                      query::ResultSet* out,
                                      RouteStats* stats) {
  *stats = RouteStats{};
  const bool traced = obs::Tracer::global().enabled();

  util::Stopwatch route_watch;
  std::optional<obs::Span> route_span;
  if (traced) {
    route_span.emplace("dist.route",
                       std::initializer_list<obs::TraceArg>{
                           {"request", request},
                           {"atoms", query.where.size()}},
                       kDistTrackBase + NodeLayout::kRouterNode);
  }
  const Footprint fp = footprint(query);
  stats->partitions_touched =
      static_cast<std::uint32_t>(fp.partitions.size());
  stats->route_seconds = route_watch.elapsed_seconds();
  if (route_span) {
    route_span->arg({"partitions", fp.partitions.size()});
    route_span.reset();
  }

  /// Per-partition scatter state: one slot per touched partition, advanced
  /// through the retry/failover schedule until its response arrives.
  struct Pending {
    std::uint32_t partition = 0;
    const std::vector<rdf::Triple>* patterns = nullptr;
    std::uint32_t attempt = 0;
    bool done = false;
    std::vector<rdf::Triple> triples;
  };
  std::vector<Pending> pending;
  pending.reserve(fp.partitions.size());
  for (const std::uint32_t p : fp.partitions) {
    pending.push_back(Pending{p, &fp.patterns[p], 0, false, {}});
  }

  util::Stopwatch fanout_watch;
  std::optional<obs::Span> fanout_span;
  if (traced) {
    fanout_span.emplace("dist.fanout",
                        std::initializer_list<obs::TraceArg>{
                            {"request", request},
                            {"partitions", fp.partitions.size()}},
                        kDistTrackBase + NodeLayout::kRouterNode);
  }
  std::size_t remaining = pending.size();
  for (std::uint32_t iter = 0;
       remaining > 0 && iter < options_.max_attempts; ++iter) {
    // Scatter: (re)send every unanswered partition's scan to its currently
    // selected replica.  The replica index advances every
    // attempts_per_replica silent tries — the failover schedule.
    std::vector<std::uint32_t> targets;
    for (Pending& ps : pending) {
      if (ps.done) {
        continue;
      }
      const std::uint32_t replica =
          (ps.attempt / options_.attempts_per_replica) % layout_.replicas;
      if (ps.attempt > 0 &&
          ps.attempt % options_.attempts_per_replica == 0) {
        stats->failovers += 1;
      }
      parallel::Batch req;
      req.from = NodeLayout::kRouterNode;
      req.to = layout_.replica_node(ps.partition, replica);
      req.round = request;
      req.seq = ps.partition;
      req.attempt = ps.attempt;
      req.checksum = parallel::batch_checksum(*ps.patterns);
      req.tuples = *ps.patterns;
      targets.push_back(req.to);
      transport_.send_batch(std::move(req));
      stats->scans_sent += 1;
      if (ps.attempt > 0) {
        stats->retransmissions += 1;
      }
      ps.attempt += 1;
    }
    // Pump the targeted replicas — the in-process stand-in for their own
    // server loops (mirrors Cluster::deliver_round_sequential).
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    for (const std::uint32_t node : targets) {
      replicas_.serve(node, request);
    }
    // Gather: drain this request's responses at the router node.
    for (parallel::Batch& resp :
         transport_.receive_batches(NodeLayout::kRouterNode, request)) {
      if (resp.round != request) {
        continue;  // another request's delayed envelope, released late
      }
      if (!resp.intact ||
          parallel::batch_checksum(resp.tuples) != resp.checksum) {
        transport_.note_checksum_failure(NodeLayout::kRouterNode);
        stats->checksum_failures += 1;
        continue;
      }
      const std::uint32_t p = layout_.partition_of(resp.from);
      const auto it = std::find_if(
          pending.begin(), pending.end(),
          [p](const Pending& ps) { return ps.partition == p; });
      if (it == pending.end()) {
        continue;
      }
      if (it->done) {
        transport_.note_redelivery(NodeLayout::kRouterNode);
        stats->redeliveries += 1;
        continue;
      }
      it->done = true;
      it->triples = std::move(resp.tuples);
      remaining -= 1;
    }
  }
  stats->fanout_seconds = fanout_watch.elapsed_seconds();
  if (fanout_span) {
    fanout_span->arg({"retransmissions", stats->retransmissions});
    fanout_span->arg({"failovers", stats->failovers});
    fanout_span.reset();
  }
  if (remaining > 0) {
    return Outcome::kUnavailable;
  }

  // Merge: dedup the gathered per-atom matches into one store and join
  // centrally.  The gathered set is exactly the union of each atom's
  // matches against the full closure (shard self-containment), so the join
  // enumerates the same solutions as single-store evaluation; sorting the
  // rows fixes the one remaining degree of freedom (enumeration order).
  // Note LIMIT: the cutoff applies during enumeration over the gathered
  // store, so with LIMIT the answer is a deterministic canonical subset.
  util::Stopwatch merge_watch;
  std::optional<obs::Span> merge_span;
  if (traced) {
    merge_span.emplace("dist.merge",
                       std::initializer_list<obs::TraceArg>{
                           {"request", request}},
                       kDistTrackBase + NodeLayout::kRouterNode);
  }
  std::vector<rdf::Triple> gathered;
  for (Pending& ps : pending) {
    gathered.insert(gathered.end(), ps.triples.begin(), ps.triples.end());
  }
  std::sort(gathered.begin(), gathered.end());
  gathered.erase(std::unique(gathered.begin(), gathered.end()),
                 gathered.end());
  stats->gathered_triples = gathered.size();

  rdf::TripleStore store;
  store.insert_all(gathered);
  *out = query::evaluate(store, query);
  std::sort(out->rows.begin(), out->rows.end());
  stats->merge_seconds = merge_watch.elapsed_seconds();
  if (merge_span) {
    merge_span->arg({"gathered", gathered.size()});
    merge_span->arg({"rows", out->rows.size()});
  }
  return Outcome::kOk;
}

}  // namespace parowl::dist
