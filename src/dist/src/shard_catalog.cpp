#include "parowl/dist/shard_catalog.hpp"

#include <algorithm>

#include "parowl/partition/data_partition.hpp"
#include "parowl/rdf/codec.hpp"
#include "parowl/rdf/flat_index.hpp"

namespace parowl::dist {
namespace {

constexpr char kMagic[4] = {'P', 'S', 'D', '1'};

}  // namespace

ShardCatalog::ShardCatalog(const rdf::TripleStore& closure,
                           partition::OwnerTable owners,
                           std::uint32_t num_partitions)
    : owners_(std::move(owners)) {
  shards_.resize(num_partitions);
  plain_.resize(num_partitions);

  // Slice in log order so each shard round-trips bit-identically through
  // the order-preserving codec.
  std::vector<std::uint32_t> dests;
  for (const rdf::Triple& t : closure.triples()) {
    dests.clear();
    partition::append_shard_destinations(owners_, t, num_partitions, dests);
    for (const std::uint32_t p : dests) {
      plain_[p].push_back(t);
    }
  }
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    shards_[p].partition = p;
    shards_[p].version = 1;
    encode_shard(p, plain_[p]);
  }
}

std::vector<std::uint64_t> ShardCatalog::versions() const {
  std::vector<std::uint64_t> out(shards_.size());
  for (std::size_t p = 0; p < shards_.size(); ++p) {
    out[p] = shards_[p].version;
  }
  return out;
}

std::vector<std::uint32_t> ShardCatalog::refresh(
    std::span<const rdf::Triple> additions) {
  const auto k = static_cast<std::uint32_t>(shards_.size());
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> dests;
  for (const rdf::Triple& t : additions) {
    dests.clear();
    partition::append_shard_destinations(owners_, t, k, dests);
    for (const std::uint32_t p : dests) {
      plain_[p].push_back(t);
      touched.push_back(p);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint32_t p : touched) {
    shards_[p].version += 1;
    encode_shard(p, plain_[p]);
  }
  return touched;
}

std::vector<std::uint32_t> ShardCatalog::refresh(
    std::span<const rdf::Triple> additions,
    std::span<const rdf::Triple> deletions) {
  if (deletions.empty()) {
    return refresh(additions);
  }
  const auto k = static_cast<std::uint32_t>(shards_.size());
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> dests;

  // Retire first, append second — so a triple deleted and re-added in one
  // batch survives.  Per-partition sets keep the erase pass O(shard size).
  std::vector<rdf::TripleSet> retire(k);
  std::vector<std::vector<rdf::Triple>> appends(k);
  for (const rdf::Triple& t : deletions) {
    dests.clear();
    partition::append_shard_destinations(owners_, t, k, dests);
    for (const std::uint32_t p : dests) {
      retire[p].insert(t);
      touched.push_back(p);
    }
  }
  for (const rdf::Triple& t : additions) {
    dests.clear();
    partition::append_shard_destinations(owners_, t, k, dests);
    for (const std::uint32_t p : dests) {
      appends[p].push_back(t);
      touched.push_back(p);
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::uint32_t p : touched) {
    auto& list = plain_[p];
    if (!retire[p].empty()) {
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const rdf::Triple& t) {
                                  return retire[p].contains(t);
                                }),
                 list.end());
    }
    // Appends are deduplicated against the surviving shard contents: a
    // rederived triple shows up in the maintained log's new tail but never
    // left the shard (it is not among the removals), so a blind append
    // would double it.
    rdf::TripleSet present;
    for (const rdf::Triple& t : list) {
      present.insert(t);
    }
    for (const rdf::Triple& t : appends[p]) {
      if (present.insert(t)) {
        list.push_back(t);
      }
    }
    shards_[p].version += 1;
    encode_shard(p, plain_[p]);
  }
  return touched;
}

std::uint64_t ShardCatalog::encoded_bytes() const {
  std::uint64_t total = 0;
  for (const EncodedShard& s : shards_) {
    total += s.bytes.size();
  }
  return total;
}

void ShardCatalog::encode_shard(std::uint32_t p,
                                std::span<const rdf::Triple> triples) {
  EncodedShard& shard = shards_[p];
  shard.triple_count = triples.size();
  shard.bytes.clear();
  shard.bytes.append(kMagic, sizeof(kMagic));
  rdf::codec::put_varint(shard.bytes, shard.partition);
  rdf::codec::put_varint(shard.bytes, shard.version);
  rdf::codec::put_varint(shard.bytes, shard.triple_count);
  for (std::size_t begin = 0; begin < triples.size();
       begin += rdf::codec::kBlockTriples) {
    const std::size_t n =
        std::min(rdf::codec::kBlockTriples, triples.size() - begin);
    rdf::codec::encode_block(triples.subspan(begin, n), shard.bytes);
  }
}

bool ShardCatalog::decode(const EncodedShard& shard,
                          std::vector<rdf::Triple>& out, std::string* error) {
  std::string_view in = shard.bytes;
  if (in.size() < sizeof(kMagic) ||
      in.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    if (error) {
      *error = "shard: bad magic";
    }
    return false;
  }
  in.remove_prefix(sizeof(kMagic));
  std::uint64_t partition = 0;
  std::uint64_t version = 0;
  std::uint64_t count = 0;
  if (!rdf::codec::get_varint(in, partition) ||
      !rdf::codec::get_varint(in, version) ||
      !rdf::codec::get_varint(in, count)) {
    if (error) {
      *error = "shard: truncated header";
    }
    return false;
  }
  if (partition != shard.partition || version != shard.version) {
    if (error) {
      *error = "shard: header/catalog mismatch";
    }
    return false;
  }
  out.clear();
  out.reserve(count);
  while (out.size() < count) {
    if (!rdf::codec::decode_block(in, out, error)) {
      return false;
    }
  }
  if (out.size() != count) {
    if (error) {
      *error = "shard: triple count mismatch";
    }
    return false;
  }
  return true;
}

}  // namespace parowl::dist
