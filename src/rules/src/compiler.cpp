#include "parowl/rules/compiler.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace parowl::rules {
namespace {

/// True iff `atom` can only ever match schema triples: its predicate is a
/// constant schema predicate, or it is (?x rdf:type <MetaClass>).
bool is_schema_atom(const Atom& atom, const ontology::Vocabulary& vocab) {
  if (!atom.p.is_const()) {
    return false;
  }
  const rdf::TermId p = atom.p.const_id();
  if (vocab.is_schema_predicate(p)) {
    return true;
  }
  if (p == vocab.rdf_type && atom.o.is_const() &&
      vocab.is_meta_class(atom.o.const_id())) {
    return true;
  }
  return false;
}

/// Apply a binding to an atom term.
AtomTerm substitute(const AtomTerm& t, const Binding& binding) {
  if (t.is_const()) {
    return t;
  }
  const rdf::TermId bound = binding[static_cast<std::size_t>(t.var_index())];
  return bound == rdf::kAnyTerm ? t : AtomTerm::constant(bound);
}

Atom substitute(const Atom& a, const Binding& binding) {
  return Atom{substitute(a.s, binding), substitute(a.p, binding),
              substitute(a.o, binding)};
}

/// Enumerate all bindings of `atoms[i..]` against `store`, extending
/// `binding`, invoking `emit` for each complete assignment.
void enumerate(const std::vector<Atom>& atoms, std::size_t i,
               const rdf::TripleStore& store, Binding& binding,
               const std::function<void(const Binding&)>& emit) {
  if (i == atoms.size()) {
    emit(binding);
    return;
  }
  const Atom a = substitute(atoms[i], binding);
  rdf::TriplePattern pat;
  pat.s = a.s.is_const() ? a.s.const_id() : rdf::kAnyTerm;
  pat.p = a.p.is_const() ? a.p.const_id() : rdf::kAnyTerm;
  pat.o = a.o.is_const() ? a.o.const_id() : rdf::kAnyTerm;
  store.match(pat, [&](const rdf::Triple& t) {
    // Bind the free positions; positions sharing a variable within this
    // atom must agree.
    Binding next = binding;
    auto bind = [&next](const AtomTerm& at, rdf::TermId value) {
      if (at.is_var()) {
        const auto idx = static_cast<std::size_t>(at.var_index());
        if (next[idx] != rdf::kAnyTerm && next[idx] != value) {
          return false;
        }
        next[idx] = value;
      }
      return true;
    };
    if (bind(a.s, t.s) && bind(a.p, t.p) && bind(a.o, t.o)) {
      enumerate(atoms, i + 1, store, next, emit);
    }
  });
}

/// Canonically renumber the variables of a rule (first-occurrence order) so
/// structurally equal specializations deduplicate.
Rule renumber(Rule rule) {
  std::map<int, int> remap;
  auto relabel = [&remap](AtomTerm t) {
    if (t.is_const()) {
      return t;
    }
    const auto [it, fresh] =
        remap.try_emplace(t.var_index(), static_cast<int>(remap.size()));
    return AtomTerm::var(it->second);
  };
  for (Atom& a : rule.body) {
    a.s = relabel(a.s);
    a.p = relabel(a.p);
    a.o = relabel(a.o);
  }
  rule.head.s = relabel(rule.head.s);
  rule.head.p = relabel(rule.head.p);
  rule.head.o = relabel(rule.head.o);
  rule.num_vars = static_cast<int>(remap.size());
  return rule;
}

/// Structural key for deduplication (ignores the name).
using RuleKey = std::pair<std::vector<Atom>, Atom>;

}  // namespace

CompiledRules compile_rules(const RuleSet& generic,
                            const rdf::TripleStore& schema_store,
                            const ontology::Vocabulary& vocab) {
  CompiledRules out;
  std::set<RuleKey> seen;

  auto add_rule = [&](Rule rule) {
    rule = renumber(std::move(rule));
    if (!seen.emplace(rule.body, rule.head).second) {
      return;
    }
    out.rules.add(std::move(rule));
  };

  for (const Rule& rule : generic.rules()) {
    std::vector<Atom> schema_atoms;
    std::vector<Atom> instance_atoms;
    for (const Atom& a : rule.body) {
      (is_schema_atom(a, vocab) ? schema_atoms : instance_atoms).push_back(a);
    }

    if (schema_atoms.empty()) {
      add_rule(rule);
      continue;
    }

    Binding binding{};
    std::size_t local = 0;
    enumerate(schema_atoms, 0, schema_store, binding,
              [&](const Binding& b) {
                ++local;
                Rule spec;
                spec.name = rule.name;
                for (const Atom& a : instance_atoms) {
                  spec.body.push_back(substitute(a, b));
                }
                spec.head = substitute(rule.head, b);
                spec.num_vars = rule.num_vars;
                if (spec.body.empty()) {
                  // Pure schema derivation: the head must now be ground.
                  if (spec.head.is_ground()) {
                    out.ground_facts.push_back(
                        rdf::Triple{spec.head.s.const_id(),
                                    spec.head.p.const_id(),
                                    spec.head.o.const_id()});
                  }
                  return;
                }
                // Drop degenerate specializations that conclude what they
                // premise (e.g. rdfs7 on p subPropertyOf p).
                if (spec.body.size() == 1 && spec.body[0] == spec.head) {
                  return;
                }
                add_rule(std::move(spec));
              });
    out.specializations += local;
  }
  return out;
}

}  // namespace parowl::rules
