#include "parowl/rules/rule_parser.hpp"

#include <istream>

#include "parowl/util/strings.hpp"

namespace parowl::rules {
namespace {

struct Cursor {
  std::string_view rest;
  void skip_ws() {
    while (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
      rest.remove_prefix(1);
    }
  }
  bool eat(char c) {
    skip_ws();
    if (!rest.empty() && rest.front() == c) {
      rest.remove_prefix(1);
      return true;
    }
    return false;
  }
  bool eat(std::string_view tok) {
    skip_ws();
    if (rest.starts_with(tok)) {
      rest.remove_prefix(tok.size());
      return true;
    }
    return false;
  }
};

bool is_term_char(char c) {
  return c != ' ' && c != '\t' && c != ')' && c != '(' && c != '\0';
}

}  // namespace

RuleParser::RuleParser(rdf::Dictionary& dict) : dict_(dict) {
  // Ubiquitous namespaces are always available.
  add_prefix("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
  add_prefix("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
  add_prefix("owl", "http://www.w3.org/2002/07/owl#");
}

void RuleParser::add_prefix(std::string name, std::string iri) {
  prefixes_[std::move(name)] = std::move(iri);
}

std::optional<Rule> RuleParser::parse_rule(std::string_view line,
                                           std::string* error) {
  const auto trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    if (error) error->clear();
    return std::nullopt;
  }

  std::unordered_map<std::string, int> var_index;
  auto fail = [&](std::string_view msg) -> std::optional<Rule> {
    if (error) *error = std::string(msg);
    return std::nullopt;
  };

  Cursor cur{trimmed};

  // Optional "name:" label (must not look like a prefixed term in parens).
  std::string name = "rule";
  {
    const auto colon = cur.rest.find(':');
    const auto paren = cur.rest.find('(');
    if (colon != std::string_view::npos &&
        (paren == std::string_view::npos || colon < paren)) {
      name = std::string(util::trim(cur.rest.substr(0, colon)));
      cur.rest.remove_prefix(colon + 1);
    }
  }

  auto parse_term = [&](Cursor& c, AtomTerm& out, std::string& err) -> bool {
    c.skip_ws();
    if (c.rest.empty()) {
      err = "unexpected end of atom";
      return false;
    }
    if (c.rest.front() == '?') {
      std::size_t end = 1;
      while (end < c.rest.size() && is_term_char(c.rest[end])) {
        ++end;
      }
      const std::string vname(c.rest.substr(1, end - 1));
      if (vname.empty()) {
        err = "empty variable name";
        return false;
      }
      c.rest.remove_prefix(end);
      const auto [it, fresh] =
          var_index.try_emplace(vname, static_cast<int>(var_index.size()));
      if (fresh && it->second >= kMaxRuleVars) {
        err = "too many variables in rule";
        return false;
      }
      out = AtomTerm::var(it->second);
      return true;
    }
    if (c.rest.front() == '<') {
      const auto end = c.rest.find('>');
      if (end == std::string_view::npos) {
        err = "unterminated IRI";
        return false;
      }
      out = AtomTerm::constant(dict_.intern_iri(c.rest.substr(1, end - 1)));
      c.rest.remove_prefix(end + 1);
      return true;
    }
    if (c.rest.front() == '"') {
      std::size_t end = 1;
      while (end < c.rest.size() && c.rest[end] != '"') {
        ++end;
      }
      if (end >= c.rest.size()) {
        err = "unterminated literal";
        return false;
      }
      out = AtomTerm::constant(
          dict_.intern_literal(c.rest.substr(0, end + 1)));
      c.rest.remove_prefix(end + 1);
      return true;
    }
    // prefix:local
    std::size_t end = 0;
    while (end < c.rest.size() && is_term_char(c.rest[end])) {
      ++end;
    }
    const auto token = c.rest.substr(0, end);
    const auto colon = token.find(':');
    if (colon == std::string_view::npos) {
      err = "expected prefixed name, got '" + std::string(token) + "'";
      return false;
    }
    const std::string prefix(token.substr(0, colon));
    const auto pit = prefixes_.find(prefix);
    if (pit == prefixes_.end()) {
      err = "unknown prefix '" + prefix + "'";
      return false;
    }
    out = AtomTerm::constant(
        dict_.intern_iri(pit->second + std::string(token.substr(colon + 1))));
    c.rest.remove_prefix(end);
    return true;
  };

  auto parse_atom = [&](Cursor& c, Atom& atom, std::string& err) -> bool {
    if (!c.eat('(')) {
      err = "expected '('";
      return false;
    }
    if (!parse_term(c, atom.s, err) || !parse_term(c, atom.p, err) ||
        !parse_term(c, atom.o, err)) {
      return false;
    }
    if (!c.eat(')')) {
      err = "expected ')'";
      return false;
    }
    return true;
  };

  Rule rule;
  rule.name = std::move(name);
  std::string err;

  // Body atoms until "->".
  for (;;) {
    cur.skip_ws();
    if (cur.rest.starts_with("->")) {
      break;
    }
    if (cur.rest.empty()) {
      return fail("missing '->'");
    }
    Atom atom;
    if (!parse_atom(cur, atom, err)) {
      return fail(err);
    }
    rule.body.push_back(atom);
  }
  cur.eat("->");
  if (!parse_atom(cur, rule.head, err)) {
    return fail(err);
  }
  cur.skip_ws();
  if (!cur.rest.empty()) {
    return fail("trailing characters after head atom");
  }
  rule.num_vars = static_cast<int>(var_index.size());
  if (!rule.well_formed()) {
    return fail("rule is not well-formed (empty body or unsafe head)");
  }
  return rule;
}

std::optional<RuleSet> RuleParser::parse(std::istream& in,
                                         std::string* error) {
  RuleSet out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    if (trimmed.starts_with("@prefix")) {
      // @prefix name: <iri>
      auto rest = util::trim(trimmed.substr(7));
      const auto colon = rest.find(':');
      if (colon == std::string_view::npos) {
        if (error) {
          *error = "line " + std::to_string(line_no) + ": bad @prefix";
        }
        return std::nullopt;
      }
      const std::string pname(util::trim(rest.substr(0, colon)));
      rest = util::trim(rest.substr(colon + 1));
      if (rest.size() < 2 || rest.front() != '<' || rest.back() != '>') {
        if (error) {
          *error = "line " + std::to_string(line_no) + ": bad @prefix IRI";
        }
        return std::nullopt;
      }
      add_prefix(pname, std::string(rest.substr(1, rest.size() - 2)));
      continue;
    }
    std::string err;
    auto rule = parse_rule(line, &err);
    if (!rule) {
      if (error) {
        *error = "line " + std::to_string(line_no) + ": " + err;
      }
      return std::nullopt;
    }
    out.add(std::move(*rule));
  }
  return out;
}

}  // namespace parowl::rules
