#include "parowl/rules/rule.hpp"

#include <algorithm>

namespace parowl::rules {

std::vector<int> Atom::variables() const {
  std::vector<int> vars;
  for (const AtomTerm& t : {s, p, o}) {
    if (t.is_var()) {
      vars.push_back(t.var_index());
    }
  }
  return vars;
}

bool Rule::well_formed() const {
  if (body.empty()) {
    return false;
  }
  std::vector<bool> bound(static_cast<std::size_t>(kMaxRuleVars), false);
  int max_var = -1;
  for (const Atom& a : body) {
    for (int v : a.variables()) {
      if (v < 0 || v >= kMaxRuleVars) {
        return false;
      }
      bound[static_cast<std::size_t>(v)] = true;
      max_var = std::max(max_var, v);
    }
  }
  for (int v : head.variables()) {
    if (v < 0 || v >= kMaxRuleVars ||
        !bound[static_cast<std::size_t>(v)]) {
      return false;  // head variable not range-restricted
    }
    max_var = std::max(max_var, v);
  }
  return num_vars >= max_var + 1;
}

bool Rule::is_single_join() const {
  if (body.size() != 2) {
    return false;
  }
  const auto v0 = body[0].variables();
  const auto v1 = body[1].variables();
  return std::ranges::any_of(v0, [&](int v) {
    return std::ranges::find(v1, v) != v1.end();
  });
}

std::string short_term(rdf::TermId id, const rdf::Dictionary& dict) {
  const std::string& lex = dict.lexical(id);
  const auto hash = lex.rfind('#');
  if (hash != std::string::npos && hash + 1 < lex.size()) {
    return lex.substr(hash + 1);
  }
  const auto slash = lex.rfind('/');
  if (slash != std::string::npos && slash + 1 < lex.size()) {
    return lex.substr(slash + 1);
  }
  return lex;
}

namespace {
std::string render(const AtomTerm& t, const rdf::Dictionary& dict) {
  if (t.is_var()) {
    return "?" + std::string(1, static_cast<char>('a' + t.var_index()));
  }
  return short_term(t.const_id(), dict);
}

std::string render(const Atom& a, const rdf::Dictionary& dict) {
  return "(" + render(a.s, dict) + " " + render(a.p, dict) + " " +
         render(a.o, dict) + ")";
}
}  // namespace

std::string Rule::to_string(const rdf::Dictionary& dict) const {
  std::string out = "[" + name + ": ";
  for (const Atom& a : body) {
    out += render(a, dict) + " ";
  }
  out += "-> " + render(head, dict) + "]";
  return out;
}

bool bind_atom(const Atom& atom, const rdf::Triple& t, Binding& binding) {
  auto bind = [&binding](const AtomTerm& at, rdf::TermId value) {
    if (at.is_const()) {
      return at.const_id() == value;
    }
    auto& slot = binding[static_cast<std::size_t>(at.var_index())];
    if (slot != rdf::kAnyTerm && slot != value) {
      return false;
    }
    slot = value;
    return true;
  };
  return bind(atom.s, t.s) && bind(atom.p, t.p) && bind(atom.o, t.o);
}

rdf::TriplePattern to_pattern(const Atom& atom, const Binding& binding) {
  auto resolve = [&binding](const AtomTerm& at) {
    if (at.is_const()) {
      return at.const_id();
    }
    return binding[static_cast<std::size_t>(at.var_index())];
  };
  return rdf::TriplePattern{resolve(atom.s), resolve(atom.p),
                            resolve(atom.o)};
}

const Rule* RuleSet::find(std::string_view name) const {
  for (const Rule& r : rules_) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace parowl::rules
