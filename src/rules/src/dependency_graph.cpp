#include "parowl/rules/dependency_graph.hpp"

#include <algorithm>
#include <map>

namespace parowl::rules {

bool may_trigger(const Atom& head, const Atom& body_atom) {
  auto compatible = [](const AtomTerm& a, const AtomTerm& b) {
    // Variables live in different rule scopes, so a variable unifies with
    // anything; two constants must be equal.
    if (a.is_var() || b.is_var()) {
      return true;
    }
    return a.const_id() == b.const_id();
  };
  return compatible(head.s, body_atom.s) && compatible(head.p, body_atom.p) &&
         compatible(head.o, body_atom.o);
}

DependencyGraph build_dependency_graph(const RuleSet& rules,
                                       const rdf::TripleStore* stats) {
  DependencyGraph g;
  g.num_rules = rules.size();
  for (std::size_t producer = 0; producer < rules.size(); ++producer) {
    const Atom& head = rules[producer].head;
    // Weight: expected volume of tuples flowing along this edge — the
    // frequency of the producing predicate in the sample data-set.
    std::uint64_t weight = 1;
    if (stats != nullptr && head.p.is_const()) {
      weight = 1 + stats->with_predicate(head.p.const_id()).size();
    }
    for (std::size_t consumer = 0; consumer < rules.size(); ++consumer) {
      for (const Atom& body_atom : rules[consumer].body) {
        if (may_trigger(head, body_atom)) {
          g.edges.push_back(
              DependencyGraph::Edge{producer, consumer, weight});
          break;  // one edge per (producer, consumer) pair
        }
      }
    }
  }
  return g;
}

std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>>
DependencyGraph::undirected_adjacency() const {
  // Merge parallel/reverse edges, dropping self-loops.
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> merged;
  for (const Edge& e : edges) {
    if (e.from == e.to) {
      continue;
    }
    const auto key = std::minmax(e.from, e.to);
    merged[{key.first, key.second}] += e.weight;
  }
  std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>> adj(
      num_rules);
  for (const auto& [key, w] : merged) {
    adj[key.first].emplace_back(key.second, w);
    adj[key.second].emplace_back(key.first, w);
  }
  return adj;
}

}  // namespace parowl::rules
