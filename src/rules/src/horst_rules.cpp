#include "parowl/rules/horst_rules.hpp"

namespace parowl::rules {
namespace {

AtomTerm C(rdf::TermId id) { return AtomTerm::constant(id); }
AtomTerm V(int index) { return AtomTerm::var(index); }

Rule make(std::string name, std::vector<Atom> body, Atom head, int num_vars) {
  Rule r;
  r.name = std::move(name);
  r.body = std::move(body);
  r.head = head;
  r.num_vars = num_vars;
  return r;
}

}  // namespace

RuleSet horst_rules(const ontology::Vocabulary& vocab,
                    const HorstOptions& options) {
  RuleSet rs;
  const auto type = C(vocab.rdf_type);
  const auto sub_class = C(vocab.rdfs_subclass_of);
  const auto sub_prop = C(vocab.rdfs_subproperty_of);
  const auto domain = C(vocab.rdfs_domain);
  const auto range = C(vocab.rdfs_range);
  const auto same_as = C(vocab.owl_same_as);
  const auto inverse_of = C(vocab.owl_inverse_of);
  const auto eq_class = C(vocab.owl_equivalent_class);
  const auto eq_prop = C(vocab.owl_equivalent_property);
  const auto on_prop = C(vocab.owl_on_property);
  const auto has_value = C(vocab.owl_has_value);
  const auto some_from = C(vocab.owl_some_values_from);
  const auto all_from = C(vocab.owl_all_values_from);

  // --- RDFS core -----------------------------------------------------------
  // rdfs2: (?p domain ?c) (?x ?p ?y) -> (?x type ?c)
  rs.add(make("rdfs2", {{V(0), domain, V(1)}, {V(2), V(0), V(3)}},
              {V(2), type, V(1)}, 4));
  // rdfs3: (?p range ?c) (?x ?p ?y) -> (?y type ?c)
  rs.add(make("rdfs3", {{V(0), range, V(1)}, {V(2), V(0), V(3)}},
              {V(3), type, V(1)}, 4));
  // rdfs5: subPropertyOf transitivity.
  rs.add(make("rdfs5", {{V(0), sub_prop, V(1)}, {V(1), sub_prop, V(2)}},
              {V(0), sub_prop, V(2)}, 3));
  // rdfs7: (?p subPropertyOf ?q) (?x ?p ?y) -> (?x ?q ?y)
  rs.add(make("rdfs7", {{V(0), sub_prop, V(1)}, {V(2), V(0), V(3)}},
              {V(2), V(1), V(3)}, 4));
  // rdfs9: (?c subClassOf ?d) (?x type ?c) -> (?x type ?d)
  rs.add(make("rdfs9", {{V(0), sub_class, V(1)}, {V(2), type, V(0)}},
              {V(2), type, V(1)}, 3));
  // rdfs11: subClassOf transitivity.
  rs.add(make("rdfs11", {{V(0), sub_class, V(1)}, {V(1), sub_class, V(2)}},
              {V(0), sub_class, V(2)}, 3));

  // --- OWL property characteristics (pD*) ----------------------------------
  if (options.include_same_as) {
    // rdfp1 (functional): (?p type Functional) (?x ?p ?y) (?x ?p ?z)
    //                     -> (?y sameAs ?z)
    rs.add(make("rdfp1",
                {{V(0), type, C(vocab.owl_functional_property)},
                 {V(1), V(0), V(2)},
                 {V(1), V(0), V(3)}},
                {V(2), same_as, V(3)}, 4));
    // rdfp2 (inverse functional): (?p type InvFunctional) (?x ?p ?y)
    //                             (?z ?p ?y) -> (?x sameAs ?z)
    rs.add(make("rdfp2",
                {{V(0), type, C(vocab.owl_inverse_functional_property)},
                 {V(1), V(0), V(2)},
                 {V(3), V(0), V(2)}},
                {V(1), same_as, V(3)}, 4));
  }
  // rdfp3 (symmetric): (?p type Symmetric) (?x ?p ?y) -> (?y ?p ?x)
  rs.add(make("rdfp3",
              {{V(0), type, C(vocab.owl_symmetric_property)},
               {V(1), V(0), V(2)}},
              {V(2), V(0), V(1)}, 3));
  // rdfp4 (transitive): (?p type Transitive) (?x ?p ?y) (?y ?p ?z)
  //                     -> (?x ?p ?z)
  rs.add(make("rdfp4",
              {{V(0), type, C(vocab.owl_transitive_property)},
               {V(1), V(0), V(2)},
               {V(2), V(0), V(3)}},
              {V(1), V(0), V(3)}, 4));

  if (options.include_same_as && options.include_same_as_propagation) {
    // rdfp6: sameAs symmetry; rdfp7: sameAs transitivity.
    rs.add(make("rdfp6", {{V(0), same_as, V(1)}}, {V(1), same_as, V(0)}, 2));
    rs.add(make("rdfp7", {{V(0), same_as, V(1)}, {V(1), same_as, V(2)}},
                {V(0), same_as, V(2)}, 3));
    // rdfp11: sameAs propagation into statements.  This is the paper's "all
    // but one" exception: it keeps three body atoms even after compilation.
    rs.add(make("rdfp11a", {{V(0), same_as, V(1)}, {V(0), V(2), V(3)}},
                {V(1), V(2), V(3)}, 4));
    rs.add(make("rdfp11b", {{V(0), same_as, V(1)}, {V(2), V(3), V(0)}},
                {V(2), V(3), V(1)}, 4));
  }

  // rdfp8a/b: inverseOf.
  rs.add(make("rdfp8a", {{V(0), inverse_of, V(1)}, {V(2), V(0), V(3)}},
              {V(3), V(1), V(2)}, 4));
  rs.add(make("rdfp8b", {{V(0), inverse_of, V(1)}, {V(2), V(1), V(3)}},
              {V(3), V(0), V(2)}, 4));

  // rdfp12a/b/c: equivalentClass <-> subClassOf.
  rs.add(make("rdfp12a", {{V(0), eq_class, V(1)}}, {V(0), sub_class, V(1)},
              2));
  rs.add(make("rdfp12b", {{V(0), eq_class, V(1)}}, {V(1), sub_class, V(0)},
              2));
  rs.add(make("rdfp12c", {{V(0), sub_class, V(1)}, {V(1), sub_class, V(0)}},
              {V(0), eq_class, V(1)}, 2));
  // rdfp13a/b/c: equivalentProperty <-> subPropertyOf.
  rs.add(make("rdfp13a", {{V(0), eq_prop, V(1)}}, {V(0), sub_prop, V(1)}, 2));
  rs.add(make("rdfp13b", {{V(0), eq_prop, V(1)}}, {V(1), sub_prop, V(0)}, 2));
  rs.add(make("rdfp13c", {{V(0), sub_prop, V(1)}, {V(1), sub_prop, V(0)}},
              {V(0), eq_prop, V(1)}, 2));

  if (options.include_restrictions) {
    // rdfp14a: (?c hasValue ?v) (?c onProperty ?p) (?x ?p ?v) -> (?x type ?c)
    rs.add(make("rdfp14a",
                {{V(0), has_value, V(1)},
                 {V(0), on_prop, V(2)},
                 {V(3), V(2), V(1)}},
                {V(3), type, V(0)}, 4));
    // rdfp14b: (?c hasValue ?v) (?c onProperty ?p) (?x type ?c) -> (?x ?p ?v)
    rs.add(make("rdfp14b",
                {{V(0), has_value, V(1)},
                 {V(0), on_prop, V(2)},
                 {V(3), type, V(0)}},
                {V(3), V(2), V(1)}, 4));
    // rdfp15: (?c someValuesFrom ?d) (?c onProperty ?p) (?x ?p ?y)
    //         (?y type ?d) -> (?x type ?c)
    rs.add(make("rdfp15",
                {{V(0), some_from, V(1)},
                 {V(0), on_prop, V(2)},
                 {V(3), V(2), V(4)},
                 {V(4), type, V(1)}},
                {V(3), type, V(0)}, 5));
    // rdfp16: (?c allValuesFrom ?d) (?c onProperty ?p) (?x type ?c)
    //         (?x ?p ?y) -> (?y type ?d)
    rs.add(make("rdfp16",
                {{V(0), all_from, V(1)},
                 {V(0), on_prop, V(2)},
                 {V(3), type, V(0)},
                 {V(3), V(2), V(4)}},
                {V(4), type, V(1)}, 5));
  }

  if (options.include_reflexivity) {
    // rdfs6/rdfs10-style reflexivity: every class/property relates to
    // itself.  Off by default (adds noise triples).
    rs.add(make("rdfs6",
                {{V(0), type, C(vocab.rdf_property)}},
                {V(0), sub_prop, V(0)}, 1));
    rs.add(make("rdfs10",
                {{V(0), type, C(vocab.owl_class)}},
                {V(0), sub_class, V(0)}, 1));
  }

  return rs;
}

}  // namespace parowl::rules
