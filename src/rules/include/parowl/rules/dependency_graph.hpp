#pragma once

#include <cstddef>
#include <vector>

#include "parowl/rdf/triple_store.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::rules {

/// The rule-dependency graph of Algorithm 2: one vertex per rule, an edge
/// (r1, r2) whenever the head of r1 can unify with a body atom of r2 — i.e.
/// a tuple produced by r1 may trigger r2.
///
/// Edges carry weights.  Unweighted, every dependency costs 1; when a
/// sample data-set is provided, an edge is weighted by the number of triples
/// in the data-set matching the producing head's predicate — the paper's
/// "a priori knowledge about the distribution of different predicates ...
/// can be used to weigh the edges" (§III-B).
struct DependencyGraph {
  std::size_t num_rules = 0;

  struct Edge {
    std::size_t from = 0;  // producer rule index
    std::size_t to = 0;    // consumer rule index
    std::uint64_t weight = 1;
  };
  std::vector<Edge> edges;

  /// Adjacency (undirected view) as (neighbor, weight) lists, merged over
  /// parallel edges; self-loops dropped.  This is the graph handed to the
  /// partitioner.
  [[nodiscard]] std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>>
  undirected_adjacency() const;
};

/// Can a triple produced by `head` match `body_atom`?  (Patterns unify iff
/// every position with two constants agrees.)
[[nodiscard]] bool may_trigger(const Atom& head, const Atom& body_atom);

/// Build the dependency graph for `rules`.  If `stats` is non-null, edge
/// weights use predicate frequencies from that store; otherwise all edges
/// weigh 1.
[[nodiscard]] DependencyGraph build_dependency_graph(
    const RuleSet& rules, const rdf::TripleStore* stats = nullptr);

}  // namespace parowl::rules
