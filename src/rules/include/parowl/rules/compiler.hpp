#pragma once

#include <vector>

#include "parowl/ontology/ontology.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::rules {

/// Result of compiling the generic pD* rule set against a concrete
/// ontology.
struct CompiledRules {
  /// Specialized instance rules.  For OWL-Horst ontologies these are the
  /// paper's single-join rules: bodies of one or two atoms, all schema
  /// premises folded into constants.
  RuleSet rules;

  /// Ground triples produced when every atom of a rule body matched schema
  /// triples (pure schema derivations, e.g. subClassOf transitivity).  The
  /// caller adds these to the schema closure.
  std::vector<rdf::Triple> ground_facts;

  /// Number of (rule, schema-binding) specializations performed.
  std::size_t specializations = 0;
};

/// Compile `generic` (typically `horst_rules(...)`) against the schema in
/// `schema_store`.
///
/// Body atoms that can only match schema triples — constant schema
/// predicates (rdfs:subClassOf, rdfs:domain, owl:onProperty, ...) or
/// `(?x rdf:type <MetaClass>)` — are enumerated against `schema_store` and
/// folded into constants; the remaining instance atoms form the compiled
/// rule.  For best results pass a *saturated* schema store (run the forward
/// engine on the schema triples first) so that, e.g., inherited
/// transitivity declarations are visible to the compiler.
///
/// Rules with no schema atoms (the sameAs machinery) pass through
/// unchanged.  Duplicate specializations are removed.
[[nodiscard]] CompiledRules compile_rules(
    const RuleSet& generic, const rdf::TripleStore& schema_store,
    const ontology::Vocabulary& vocab);

}  // namespace parowl::rules
