#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::rules {

/// A position in an atom: either a constant term id or a rule-local
/// variable index.  Encoded in one 32-bit word: constants are stored as the
/// (positive) TermId; variable v is stored as -(v+1).
class AtomTerm {
 public:
  AtomTerm() : enc_(0) {}

  static AtomTerm constant(rdf::TermId id) {
    return AtomTerm(static_cast<std::int64_t>(id));
  }
  static AtomTerm var(int index) {
    return AtomTerm(-static_cast<std::int64_t>(index) - 1);
  }

  [[nodiscard]] bool is_var() const { return enc_ < 0; }
  [[nodiscard]] bool is_const() const { return enc_ >= 0; }
  [[nodiscard]] int var_index() const { return static_cast<int>(-enc_ - 1); }
  [[nodiscard]] rdf::TermId const_id() const {
    return static_cast<rdf::TermId>(enc_);
  }

  friend bool operator==(const AtomTerm&, const AtomTerm&) = default;
  friend auto operator<=>(const AtomTerm&, const AtomTerm&) = default;

 private:
  explicit AtomTerm(std::int64_t enc) : enc_(enc) {}
  std::int64_t enc_;
};

/// A triple pattern with variables — one sub-goal in a rule body, or a rule
/// head.
struct Atom {
  AtomTerm s, p, o;

  friend bool operator==(const Atom&, const Atom&) = default;
  friend auto operator<=>(const Atom&, const Atom&) = default;

  /// Variable indexes used by this atom, in position order (may repeat).
  [[nodiscard]] std::vector<int> variables() const;

  /// True iff the atom has no variables.
  [[nodiscard]] bool is_ground() const {
    return s.is_const() && p.is_const() && o.is_const();
  }
};

/// Maximum number of distinct variables in any rule or query pattern we
/// handle.  pD* rules use at most 6; the bound is raised to 16 so the
/// SPARQL-subset query engine (which reuses Atom/Binding) has headroom.
inline constexpr int kMaxRuleVars = 16;

/// A partial assignment of rule variables to term ids (0 = unbound).
using Binding = std::array<rdf::TermId, kMaxRuleVars>;

/// One datalog rule: head <- body[0] AND body[1] AND ...
///
/// The paper's key observation (§II) is that the rules compiled from an
/// OWL-Horst ontology are *single-join*: bodies of exactly two atoms sharing
/// one variable.  The generic representation here supports any body size —
/// needed for the uncompiled pD* rules and the one exception (the sameAs
/// propagation rule) — and `is_single_join()` identifies the special class.
struct Rule {
  std::string name;
  std::vector<Atom> body;
  Atom head;
  int num_vars = 0;

  /// Every head variable must appear in the body (range restriction) and
  /// num_vars must cover all variable indexes.  Returns false otherwise.
  [[nodiscard]] bool well_formed() const;

  /// True iff the body has exactly two atoms sharing >= 1 variable.
  [[nodiscard]] bool is_single_join() const;

  /// Human-readable form, e.g. "[trans: (?a P ?b) (?b P ?c) -> (?a P ?c)]".
  [[nodiscard]] std::string to_string(const rdf::Dictionary& dict) const;

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// An ordered collection of rules with name lookup.
class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  void add(Rule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const Rule& operator[](std::size_t i) const {
    return rules_[i];
  }

  /// First rule with the given name, or nullptr.
  [[nodiscard]] const Rule* find(std::string_view name) const;

 private:
  std::vector<Rule> rules_;
};

/// Render a short, compact lexical form for a term id (IRI local names only).
[[nodiscard]] std::string short_term(rdf::TermId id,
                                     const rdf::Dictionary& dict);

/// Match `atom` against a concrete triple, extending `binding`.  Returns
/// false on a constant mismatch or an inconsistent repeated variable; the
/// binding may be partially updated on failure (callers save/restore).
bool bind_atom(const Atom& atom, const rdf::Triple& t, Binding& binding);

/// The store pattern for `atom` under a (partial) binding: constants and
/// bound variables become concrete ids, unbound variables become wildcards.
[[nodiscard]] rdf::TriplePattern to_pattern(const Atom& atom,
                                            const Binding& binding);

}  // namespace parowl::rules
