#pragma once

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::rules {

/// Options controlling which pD* rules are generated.
struct HorstOptions {
  /// Include the owl:sameAs machinery (rdfp1/2/6/7/11 and 9/10).  LUBM-style
  /// ontologies have no functional/inverse-functional properties, so
  /// disabling this removes rules that can never fire.
  bool include_same_as = true;

  /// Include the sameAs *propagation* rules rdfp6/7/11a/11b.  Rewrite-mode
  /// closures (reason::EqualityManager) intercept every sameAs triple
  /// before it reaches the store, so these rules can never fire there —
  /// and dropping them removes the only wildcard-predicate pivots in the
  /// rule set, which both shrinks every dispatch bucket and keeps the
  /// store's lazily built endpoint index unbuilt.  rdfp1/2 (the rules that
  /// *derive* sameAs) stay on.  Ignored when include_same_as is false.
  bool include_same_as_propagation = true;

  /// Include the owl:Restriction rules rdfp14a/14b/15/16.
  bool include_restrictions = true;

  /// Include the reflexivity axioms (rdfs6/rdfs8-style ?c subClassOf ?c,
  /// ?p subPropertyOf ?p, ?x sameAs ?x).  These add one triple per term and
  /// are usually noise for materialized stores, so they default off — the
  /// same choice OWLIM and Jena's OWL-mini config make.
  bool include_reflexivity = false;
};

/// Build the generic OWL-Horst (ter Horst pD*) rule set over the RDFS+OWL
/// vocabulary.  "Generic" means the schema premises are still variables —
/// e.g. rdfs9 is (?c subClassOf ?d) (?x type ?c) -> (?x type ?d).  The
/// ontology→rule compiler (`compile_rules`) specializes these against an
/// extracted ontology to obtain the paper's single-join instance rules.
///
/// Rule names follow ter Horst's paper (rdfs2..rdfs11, rdfp1..rdfp16).
[[nodiscard]] RuleSet horst_rules(const ontology::Vocabulary& vocab,
                                  const HorstOptions& options = {});

}  // namespace parowl::rules
