#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "parowl/rules/rule.hpp"

namespace parowl::rules {

/// Parses a small text syntax for datalog rules over RDF triples:
///
///   @prefix ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
///   trans: (?a ub:subOrgOf ?b) (?b ub:subOrgOf ?c) -> (?a ub:subOrgOf ?c)
///
/// Terms: `?name` variables, `<iri>`, `prefix:local`, `"literal"`.
/// Used by tests, examples, and to let downstream users author custom rule
/// sets without touching the pD* builder.
class RuleParser {
 public:
  explicit RuleParser(rdf::Dictionary& dict);

  /// Register a namespace prefix (without the trailing colon).
  void add_prefix(std::string name, std::string iri);

  /// Parse a single rule line.  Returns nullopt and sets *error for
  /// malformed input; blank lines/comments also return nullopt with empty
  /// error.
  std::optional<Rule> parse_rule(std::string_view line,
                                 std::string* error = nullptr);

  /// Parse a whole stream: @prefix directives, comments (#...), and rules.
  /// Stops at the first malformed line and reports it via *error.
  std::optional<RuleSet> parse(std::istream& in, std::string* error = nullptr);

 private:
  rdf::Dictionary& dict_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace parowl::rules
