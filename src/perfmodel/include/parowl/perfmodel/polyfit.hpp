#pragma once

#include <span>
#include <string>
#include <vector>

namespace parowl::perfmodel {

/// A fitted polynomial model y = c0 + c1 x + ... + cd x^d.
struct PolyFit {
  std::vector<double> coefficients;  // c0..cd
  double r_squared = 0.0;

  [[nodiscard]] double eval(double x) const;
  [[nodiscard]] std::string to_string() const;
};

/// Least-squares polynomial fit of the given degree (normal equations with
/// Gaussian elimination; degrees here are tiny).  Requires x.size() ==
/// y.size() and at least degree+1 samples.
///
/// The paper regresses a *cubic* execution-time model over serial LUBM
/// reasoning times (Fig. 4) — cubic because the worst case of the rule set
/// is O(n^3) — and derives the theoretical maximum speedup from it (Fig. 3).
[[nodiscard]] PolyFit fit_polynomial(std::span<const double> x,
                                     std::span<const double> y, int degree);

/// Least-squares fit constrained through the origin (no constant term:
/// y = c1 x + ... + cd x^d).  Execution-time models should satisfy
/// T(0) = 0; an unconstrained fit's intercept otherwise dominates the
/// model at small partition sizes and skews the Fig. 3 theoretical-maximum
/// speedups.
[[nodiscard]] PolyFit fit_polynomial_through_origin(std::span<const double> x,
                                                    std::span<const double> y,
                                                    int degree);

/// Theoretical maximum speedup for a partitioning: the model-predicted
/// serial time on the whole input over the model-predicted time of the
/// largest partition (perfect balance, no replication ⇒ size = total/k).
[[nodiscard]] double model_speedup(const PolyFit& model, double total_size,
                                   double largest_partition_size);

}  // namespace parowl::perfmodel
