#include "parowl/perfmodel/polyfit.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace parowl::perfmodel {

double PolyFit::eval(double x) const {
  double y = 0.0;
  // Horner evaluation.
  for (std::size_t i = coefficients.size(); i > 0; --i) {
    y = y * x + coefficients[i - 1];
  }
  return y;
}

std::string PolyFit::to_string() const {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < coefficients.size(); ++i) {
    if (i == 0) {
      std::snprintf(buf, sizeof(buf), "%.6g", coefficients[0]);
    } else {
      std::snprintf(buf, sizeof(buf), " + %.6g x^%zu", coefficients[i], i);
    }
    out += buf;
  }
  return out;
}

namespace {

/// Shared normal-equations solver.  `lowest_power` is 0 for a full fit and
/// 1 for a through-origin fit.
PolyFit solve_fit(std::span<const double> x, std::span<const double> y,
                  int degree, int lowest_power) {
  const int d = degree + 1 - lowest_power;  // number of free coefficients

  // Normal equations: (V^T V) c = V^T y, where V is the Vandermonde matrix
  // restricted to powers [lowest_power, degree].
  std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (std::size_t s = 0; s < x.size(); ++s) {
    std::vector<double> powers(2 * (degree + 1) - 1, 1.0);
    for (int p = 1; p < 2 * (degree + 1) - 1; ++p) {
      powers[p] = powers[p - 1] * x[s];
    }
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        a[i][j] += powers[i + j + 2 * lowest_power];
      }
      b[i] += powers[i + lowest_power] * y[s];
    }
  }

  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < d; ++col) {
    int pivot = col;
    for (int row = col + 1; row < d; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) {
        pivot = row;
      }
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::fabs(diag) < 1e-30) {
      continue;  // singular column: coefficient stays 0
    }
    for (int row = 0; row < d; ++row) {
      if (row == col) {
        continue;
      }
      const double factor = a[row][col] / diag;
      for (int k = col; k < d; ++k) {
        a[row][k] -= factor * a[col][k];
      }
      b[row] -= factor * b[col];
    }
  }

  PolyFit fit;
  fit.coefficients.assign(static_cast<std::size_t>(degree + 1), 0.0);
  for (int i = 0; i < d; ++i) {
    fit.coefficients[static_cast<std::size_t>(i + lowest_power)] =
        std::fabs(a[i][i]) < 1e-30 ? 0.0 : b[i] / a[i][i];
  }

  // Coefficient of determination.
  double mean = 0.0;
  for (const double v : y) {
    mean += v;
  }
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t s = 0; s < x.size(); ++s) {
    const double r = y[s] - fit.eval(x[s]);
    ss_res += r * r;
    const double t = y[s] - mean;
    ss_tot += t * t;
  }
  fit.r_squared = ss_tot <= 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace

PolyFit fit_polynomial(std::span<const double> x, std::span<const double> y,
                       int degree) {
  assert(x.size() == y.size());
  assert(static_cast<int>(x.size()) >= degree + 1);
  return solve_fit(x, y, degree, /*lowest_power=*/0);
}

PolyFit fit_polynomial_through_origin(std::span<const double> x,
                                      std::span<const double> y, int degree) {
  assert(x.size() == y.size());
  assert(static_cast<int>(x.size()) >= degree);
  return solve_fit(x, y, degree, /*lowest_power=*/1);
}

double model_speedup(const PolyFit& model, double total_size,
                     double largest_partition_size) {
  const double serial = model.eval(total_size);
  const double slowest = model.eval(largest_partition_size);
  return slowest <= 0.0 ? 0.0 : serial / slowest;
}

}  // namespace parowl::perfmodel
