#pragma once

#include <string>
#include <vector>

namespace parowl::gen {

/// One query of the LUBM workload.
struct LubmQuery {
  std::string name;    // "Q1".."Q14"
  std::string sparql;  // SPARQL-subset text (see query::SparqlParser)
  bool needs_inference;  // answerable only after materialization
};

/// The LUBM benchmark's standard query mix, adapted to this repository's
/// generator vocabulary and SPARQL subset (BGP + DISTINCT/LIMIT; no
/// OPTIONAL/FILTER, which the original Q4/Q8/Q12 complements drop here).
/// Queries marked needs_inference exercise the OWL-Horst closure: subclass
/// and subproperty hierarchies (Faculty, memberOf), transitive
/// subOrganizationOf, and inverse degreeFrom — the reasoning the paper
/// materializes ahead of query time.
[[nodiscard]] std::vector<LubmQuery> lubm_queries();

}  // namespace parowl::gen
