#pragma once

#include <cstdint>

#include "parowl/gen/lubm.hpp"

namespace parowl::gen {

/// Namespace of the oilfield ontology.
inline constexpr const char* kMdcNs =
    "http://cisoft.usc.edu/onto/oilfield.owl#";

/// Parameters of the MDC-style generator.
///
/// The paper's MDC data-set is proprietary (CiSoft/Chevron smart-oilfield
/// data) and is reported to behave like LUBM: strong locality (entities of
/// one field rarely reference another) and worst-case reasoner behaviour
/// (deep transitive part-of chains).  This generator reproduces those two
/// properties with a synthetic production-asset model:
///   field ⊃ reservoirs ⊃ wells ⊃ completions (transitive partOf chains),
///   sensors attached to wells producing measurement literals,
///   pipeline connectedTo (symmetric) + feedsInto (transitive) nets,
///   rare cross-field export pipelines.
struct MdcOptions {
  std::uint32_t fields = 1;
  std::uint32_t reservoirs_per_field = 3;
  std::uint32_t wells_per_reservoir = 10;
  std::uint32_t completions_per_well = 2;
  std::uint32_t sensors_per_well = 2;
  std::uint32_t measurements_per_sensor = 2;

  /// Probability a well's export pipeline feeds a *different* field's
  /// gathering station (the rare cross-field edges).
  double cross_field_pipeline_prob = 0.05;

  bool include_literals = true;
  std::uint64_t seed = 7;
};

/// Emit the oilfield ontology (schema only).
GenStats generate_mdc_ontology(rdf::Dictionary& dict, rdf::TripleStore& store);

/// Emit ontology + instance data for `options.fields` oil fields.
GenStats generate_mdc(const MdcOptions& options, rdf::Dictionary& dict,
                      rdf::TripleStore& store);

/// Locality-key extractor for MDC IRIs ("...Field<N>..." -> N); pairs with
/// partition::DomainOwnerPolicy.
[[nodiscard]] std::int64_t mdc_field_key(std::string_view iri);

}  // namespace parowl::gen
