#pragma once

#include <cstdint>

#include "parowl/gen/lubm.hpp"

namespace parowl::gen {

/// Namespace of the identity-resolution ontology.
inline constexpr const char* kSameAsNs =
    "http://parowl.dev/onto/identity.owl#";

/// Parameters of the clique-heavy owl:sameAs workload generator.
///
/// The hard mode for equality reasoning: many entities that denote the same
/// individual under several aliases.  Each logical individual is emitted as
/// a clique of alias IRIs that the pD* rules must merge — mostly through
/// inverse-functional key collisions (every alias carries the individual's
/// registryKey literal, so rdfp2 derives the sameAs edges), optionally
/// through directly asserted sameAs chains.  Every alias also carries
/// payload triples, so the naive closure pays the full clique-size^2 sameAs
/// clique *and* the member-by-member duplication of every payload fact
/// (rdfp11a/11b), while the rewrite collapses each clique onto one
/// representative.
struct SameAsOptions {
  /// Logical individuals, each expanded into one alias clique.
  std::uint32_t individuals = 200;

  /// Alias clique size is drawn per individual from
  /// [min_clique_size, max_clique_size]; `clique_size_shape` skews the draw
  /// (1 = uniform, > 1 biases small cliques, < 1 biases large ones).
  std::uint32_t min_clique_size = 2;
  std::uint32_t max_clique_size = 6;
  double clique_size_shape = 1.0;

  /// Fraction of individuals whose aliases are linked by an asserted
  /// sameAs chain *instead of* a shared inverse-functional key — exercises
  /// the engine's asserted-edge interception next to the rdfp2 derivations.
  double asserted_chain_fraction = 0.25;

  /// Outbound payload triples per alias (alias --relatesTo_k--> some other
  /// individual's alias); inbound references are implied by symmetry of the
  /// drawing.  Payload predicates rotate over `payload_predicates`.
  std::uint32_t payload_per_alias = 3;
  std::uint32_t payload_predicates = 4;

  /// Emit a displayName literal per alias (same value across one clique),
  /// attached via an owl:FunctionalProperty so rdfp1 also fires.
  bool include_literals = true;

  std::uint64_t seed = 1234;
};

/// Emit the identity ontology (schema only): the inverse-functional
/// registryKey, the functional displayName, and the payload predicates.
GenStats generate_sameas_ontology(const SameAsOptions& options,
                                  rdf::Dictionary& dict,
                                  rdf::TripleStore& store);

/// Emit ontology + the alias-clique instance data.
GenStats generate_sameas(const SameAsOptions& options, rdf::Dictionary& dict,
                         rdf::TripleStore& store);

}  // namespace parowl::gen
