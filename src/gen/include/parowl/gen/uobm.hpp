#pragma once

#include "parowl/gen/lubm.hpp"

namespace parowl::gen {

/// Parameters of the UOBM-style generator.  UOBM ("University Ontology
/// Benchmark") extends LUBM with the properties that make the data graph
/// dense and *cross-university connected* — which is exactly why the paper
/// observes sub-linear speedups on UOBM: locality-based partitions cut many
/// more edges, so replication (IR) and communication grow.
struct UobmOptions {
  LubmOptions base;

  /// Friendship edges per person; a sizable fraction cross universities.
  std::uint32_t friends_per_person = 2;
  double cross_university_friend_prob = 0.35;

  /// People are clustered into hometowns *independent of university*;
  /// hasSameHomeTownWith is symmetric and transitive, linking people across
  /// the whole data-set.
  std::uint32_t hometowns = 16;
  std::uint32_t same_hometown_links_per_person = 1;

  /// Cross-organization membership (person isMemberOf a random department
  /// anywhere).
  double cross_membership_prob = 0.1;
};

/// Emit ontology + instance data with UOBM-style dense cross-links.
GenStats generate_uobm(const UobmOptions& options, rdf::Dictionary& dict,
                       rdf::TripleStore& store);

}  // namespace parowl::gen
