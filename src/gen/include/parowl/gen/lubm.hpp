#pragma once

#include <cstdint>
#include <string>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::gen {

/// Namespace of the Univ-Bench-style ontology emitted by the generator.
inline constexpr const char* kUnivBenchNs =
    "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

/// Parameters of the LUBM-style generator.  The defaults produce roughly
/// 10k triples per university ("mini" LUBM), which keeps full benchmark
/// sweeps tractable on one machine; the instance model and — crucially —
/// the intra-university locality match the original Univ-Bench generator.
struct LubmOptions {
  std::uint32_t universities = 1;
  std::uint32_t departments_per_university = 4;

  // Faculty per department, split ~30/35/35% into full/associate/assistant
  // professors; each teaches courses, writes publications, advises.
  std::uint32_t faculty_per_department = 12;
  std::uint32_t courses_per_faculty = 2;
  std::uint32_t publications_per_faculty = 3;

  // Students per faculty member (LUBM's dominant population).
  std::uint32_t students_per_faculty = 6;
  double graduate_fraction = 0.25;
  std::uint32_t courses_per_student = 2;

  // Probability that a degree edge points at a *different* university —
  // the rare cross-university links of Univ-Bench.
  double cross_university_degree_prob = 0.1;

  // Size skew across universities: university u's department count scales
  // by (1 + size_skew * u / (universities-1)), so the last university is
  // (1 + size_skew)x the first.  0 = uniform (the Univ-Bench default);
  // positive values create the imbalanced workloads the dynamic
  // load-balancing extension targets.
  double size_skew = 0.0;

  // Emit datatype-property triples (names, emails) with literal objects.
  bool include_literals = true;

  std::uint64_t seed = 42;
};

/// Statistics of a generated data-set.
struct GenStats {
  std::size_t schema_triples = 0;
  std::size_t instance_triples = 0;
  std::size_t entities = 0;
};

/// Emit the Univ-Bench-style ontology (schema triples only) into `store`.
GenStats generate_lubm_ontology(rdf::Dictionary& dict,
                                rdf::TripleStore& store);

/// Emit ontology + instance data for `options.universities` universities.
GenStats generate_lubm(const LubmOptions& options, rdf::Dictionary& dict,
                       rdf::TripleStore& store);

}  // namespace parowl::gen
