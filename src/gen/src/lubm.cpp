#include "parowl/gen/lubm.hpp"

#include <algorithm>
#include <string>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::gen {
namespace {

using ontology::iri::kRdfType;

/// Small helper that interns Univ-Bench terms and asserts triples.
struct Emitter {
  rdf::Dictionary& dict;
  rdf::TripleStore& store;
  rdf::TermId rdf_type;
  GenStats stats;

  Emitter(rdf::Dictionary& d, rdf::TripleStore& s)
      : dict(d), store(s), rdf_type(d.intern_iri(kRdfType)) {}

  rdf::TermId ub(const char* local) {
    return dict.intern_iri(std::string(kUnivBenchNs) + local);
  }
  rdf::TermId iri(const std::string& full) { return dict.intern_iri(full); }
  rdf::TermId lit(const std::string& value) {
    return dict.intern_literal("\"" + value + "\"");
  }

  void schema(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    stats.schema_triples += store.insert({s, p, o}) ? 1 : 0;
  }
  void instance(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    stats.instance_triples += store.insert({s, p, o}) ? 1 : 0;
  }
  void type(rdf::TermId s, rdf::TermId cls) { instance(s, rdf_type, cls); }
};

}  // namespace

GenStats generate_lubm_ontology(rdf::Dictionary& dict,
                                rdf::TripleStore& store) {
  Emitter e(dict, store);
  ontology::Vocabulary v(dict);

  // --- classes & hierarchy --------------------------------------------------
  const auto organization = e.ub("Organization");
  const auto university = e.ub("University");
  const auto department = e.ub("Department");
  const auto research_group = e.ub("ResearchGroup");
  const auto person = e.ub("Person");
  const auto employee = e.ub("Employee");
  const auto faculty = e.ub("Faculty");
  const auto professor = e.ub("Professor");
  const auto full_prof = e.ub("FullProfessor");
  const auto assoc_prof = e.ub("AssociateProfessor");
  const auto assist_prof = e.ub("AssistantProfessor");
  const auto lecturer = e.ub("Lecturer");
  const auto chair = e.ub("Chair");
  const auto student = e.ub("Student");
  const auto undergrad = e.ub("UndergraduateStudent");
  const auto grad = e.ub("GraduateStudent");
  const auto course = e.ub("Course");
  const auto grad_course = e.ub("GraduateCourse");
  const auto publication = e.ub("Publication");
  const auto article = e.ub("Article");

  auto subclass = [&](rdf::TermId sub, rdf::TermId sup) {
    e.schema(sub, v.rdfs_subclass_of, sup);
  };
  for (const auto cls :
       {organization, university, department, research_group, person,
        employee, faculty, professor, full_prof, assoc_prof, assist_prof,
        lecturer, chair, student, undergrad, grad, course, grad_course,
        publication, article}) {
    e.schema(cls, v.rdf_type, v.owl_class);
  }
  subclass(university, organization);
  subclass(department, organization);
  subclass(research_group, organization);
  subclass(employee, person);
  subclass(faculty, employee);
  subclass(professor, faculty);
  subclass(full_prof, professor);
  subclass(assoc_prof, professor);
  subclass(assist_prof, professor);
  subclass(lecturer, faculty);
  subclass(chair, professor);
  subclass(student, person);
  subclass(undergrad, student);
  subclass(grad, student);
  subclass(grad_course, course);
  subclass(article, publication);

  // --- properties -----------------------------------------------------------
  const auto member_of = e.ub("memberOf");
  const auto works_for = e.ub("worksFor");
  const auto head_of = e.ub("headOf");
  const auto sub_org = e.ub("subOrganizationOf");
  const auto degree_from = e.ub("degreeFrom");
  const auto ug_degree_from = e.ub("undergraduateDegreeFrom");
  const auto ms_degree_from = e.ub("mastersDegreeFrom");
  const auto phd_degree_from = e.ub("doctoralDegreeFrom");
  const auto has_alumnus = e.ub("hasAlumnus");
  const auto has_member = e.ub("member");
  const auto teacher_of = e.ub("teacherOf");
  const auto takes_course = e.ub("takesCourse");
  const auto advisor = e.ub("advisor");
  const auto pub_author = e.ub("publicationAuthor");

  for (const auto prop :
       {member_of, works_for, head_of, sub_org, degree_from, ug_degree_from,
        ms_degree_from, phd_degree_from, has_alumnus, has_member, teacher_of,
        takes_course, advisor, pub_author}) {
    e.schema(prop, v.rdf_type, v.owl_object_property);
  }

  // Property hierarchy: headOf < worksFor < memberOf (Univ-Bench).
  e.schema(head_of, v.rdfs_subproperty_of, works_for);
  e.schema(works_for, v.rdfs_subproperty_of, member_of);
  e.schema(ug_degree_from, v.rdfs_subproperty_of, degree_from);
  e.schema(ms_degree_from, v.rdfs_subproperty_of, degree_from);
  e.schema(phd_degree_from, v.rdfs_subproperty_of, degree_from);

  // Characteristics and inverses.
  e.schema(sub_org, v.rdf_type, v.owl_transitive_property);
  e.schema(degree_from, v.owl_inverse_of, has_alumnus);
  e.schema(member_of, v.owl_inverse_of, has_member);

  // Domains and ranges (the OWL-Horst typing rules feed on these).
  e.schema(works_for, v.rdfs_domain, employee);
  e.schema(member_of, v.rdfs_range, organization);
  e.schema(sub_org, v.rdfs_domain, organization);
  e.schema(sub_org, v.rdfs_range, organization);
  e.schema(teacher_of, v.rdfs_domain, faculty);
  e.schema(teacher_of, v.rdfs_range, course);
  e.schema(takes_course, v.rdfs_domain, student);
  e.schema(advisor, v.rdfs_domain, student);
  e.schema(advisor, v.rdfs_range, professor);
  e.schema(pub_author, v.rdfs_domain, publication);
  e.schema(degree_from, v.rdfs_range, university);
  e.schema(head_of, v.rdfs_domain, chair);

  return e.stats;
}

GenStats generate_lubm(const LubmOptions& options, rdf::Dictionary& dict,
                       rdf::TripleStore& store) {
  GenStats stats = generate_lubm_ontology(dict, store);
  Emitter e(dict, store);
  util::Rng rng(options.seed);

  // Interned vocabulary handles (cheap re-lookups).
  const auto c_university = e.ub("University");
  const auto c_department = e.ub("Department");
  const auto c_research_group = e.ub("ResearchGroup");
  const auto c_full = e.ub("FullProfessor");
  const auto c_assoc = e.ub("AssociateProfessor");
  const auto c_assist = e.ub("AssistantProfessor");
  const auto c_undergrad = e.ub("UndergraduateStudent");
  const auto c_grad = e.ub("GraduateStudent");
  const auto c_course = e.ub("Course");
  const auto c_grad_course = e.ub("GraduateCourse");
  const auto c_article = e.ub("Article");

  const auto p_head_of = e.ub("headOf");
  const auto p_works_for = e.ub("worksFor");
  const auto p_member_of = e.ub("memberOf");
  const auto p_sub_org = e.ub("subOrganizationOf");
  const auto p_teacher_of = e.ub("teacherOf");
  const auto p_takes = e.ub("takesCourse");
  const auto p_advisor = e.ub("advisor");
  const auto p_pub_author = e.ub("publicationAuthor");
  const auto p_ug_degree = e.ub("undergraduateDegreeFrom");
  const auto p_phd_degree = e.ub("doctoralDegreeFrom");
  const auto p_name = e.ub("name");
  const auto p_email = e.ub("emailAddress");

  const auto num_univ = options.universities;
  auto univ_iri = [&](std::uint32_t u) {
    return e.iri("http://www.Univ" + std::to_string(u) + ".edu");
  };

  // Pick a degree-granting university: usually one's own, occasionally a
  // random other one (the cross-university edges).
  auto degree_univ = [&](std::uint32_t own) {
    if (num_univ > 1 && rng.chance(options.cross_university_degree_prob)) {
      std::uint32_t other = static_cast<std::uint32_t>(rng.below(num_univ));
      if (other == own) {
        other = (other + 1) % num_univ;
      }
      return univ_iri(other);
    }
    return univ_iri(own);
  };

  for (std::uint32_t u = 0; u < num_univ; ++u) {
    const auto univ = univ_iri(u);
    e.type(univ, c_university);
    ++stats.entities;
    const std::string univ_auth = "Univ" + std::to_string(u) + ".edu";

    // Apply the size skew to this university's department count.
    std::uint32_t departments = options.departments_per_university;
    if (options.size_skew > 0.0 && num_univ > 1) {
      const double factor =
          1.0 + options.size_skew * u / static_cast<double>(num_univ - 1);
      departments = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<double>(departments) * factor + 0.5));
    }

    for (std::uint32_t d = 0; d < departments; ++d) {
      const std::string dept_ns =
          "http://www.Department" + std::to_string(d) + "." + univ_auth + "/";
      const auto dept =
          e.iri("http://www.Univ" + std::to_string(u) + ".edu/Department" +
                std::to_string(d));
      e.type(dept, c_department);
      e.instance(dept, p_sub_org, univ);
      ++stats.entities;

      // A couple of research groups give subOrganizationOf a 2-step chain
      // for the transitivity rule to extend.
      const std::uint32_t groups = 2;
      std::vector<rdf::TermId> group_ids;
      for (std::uint32_t g = 0; g < groups; ++g) {
        const auto grp = e.iri(dept_ns + "ResearchGroup" + std::to_string(g));
        e.type(grp, c_research_group);
        e.instance(grp, p_sub_org, dept);
        group_ids.push_back(grp);
        ++stats.entities;
      }

      // Faculty.
      std::vector<rdf::TermId> dept_faculty;
      std::vector<rdf::TermId> dept_courses;
      for (std::uint32_t f = 0; f < options.faculty_per_department; ++f) {
        const rdf::TermId cls = (f % 10 < 3)   ? c_full
                                : (f % 10 < 6) ? c_assoc
                                               : c_assist;
        const char* label = (cls == c_full)    ? "FullProfessor"
                            : (cls == c_assoc) ? "AssociateProfessor"
                                               : "AssistantProfessor";
        const auto prof = e.iri(dept_ns + label + std::to_string(f));
        e.type(prof, cls);
        e.instance(prof, p_works_for, dept);
        e.instance(prof, p_phd_degree, degree_univ(u));
        dept_faculty.push_back(prof);
        ++stats.entities;

        for (std::uint32_t c = 0; c < options.courses_per_faculty; ++c) {
          const auto crs = e.iri(dept_ns + "Course" + std::to_string(f) +
                                 "_" + std::to_string(c));
          e.type(crs, c % 2 == 0 ? c_course : c_grad_course);
          e.instance(prof, p_teacher_of, crs);
          dept_courses.push_back(crs);
          ++stats.entities;
        }
        for (std::uint32_t pub = 0; pub < options.publications_per_faculty;
             ++pub) {
          const auto art = e.iri(dept_ns + "Publication" +
                                 std::to_string(f) + "_" +
                                 std::to_string(pub));
          e.type(art, c_article);
          e.instance(art, p_pub_author, prof);
          ++stats.entities;
        }
        if (options.include_literals) {
          e.instance(prof, p_name, e.lit(std::string(label) + " " +
                                         std::to_string(f)));
          e.instance(prof, p_email,
                     e.lit("prof" + std::to_string(f) + "@" + univ_auth));
        }
      }
      // The first full professor chairs the department.
      if (!dept_faculty.empty()) {
        e.instance(dept_faculty.front(), p_head_of, dept);
      }

      // Students.
      const std::uint32_t num_students =
          options.faculty_per_department * options.students_per_faculty;
      for (std::uint32_t s = 0; s < num_students; ++s) {
        const bool is_grad = rng.uniform() < options.graduate_fraction;
        const auto stu = e.iri(dept_ns +
                               (is_grad ? "GraduateStudent" : "UndergraduateStudent") +
                               std::to_string(s));
        e.type(stu, is_grad ? c_grad : c_undergrad);
        e.instance(stu, p_member_of, dept);
        ++stats.entities;

        if (is_grad) {
          // Graduate students hold an undergraduate degree, sometimes from
          // another university.
          e.instance(stu, p_ug_degree, degree_univ(u));
          if (!dept_faculty.empty()) {
            e.instance(stu, p_advisor,
                       dept_faculty[rng.below(dept_faculty.size())]);
          }
        }
        for (std::uint32_t c = 0;
             c < options.courses_per_student && !dept_courses.empty(); ++c) {
          e.instance(stu, p_takes,
                     dept_courses[rng.below(dept_courses.size())]);
        }
        if (options.include_literals) {
          e.instance(stu, p_name, e.lit("Student " + std::to_string(s)));
        }
      }
    }
  }

  stats.schema_triples += e.stats.schema_triples;
  stats.instance_triples += e.stats.instance_triples;
  return stats;
}

}  // namespace gen
