#include "parowl/gen/lubm_queries.hpp"

#include "parowl/gen/lubm.hpp"

namespace parowl::gen {

std::vector<LubmQuery> lubm_queries() {
  const std::string prefix =
      std::string("PREFIX ub: <") + kUnivBenchNs + ">\n";
  auto q = [&prefix](const char* name, const char* body,
                     bool needs_inference) {
    return LubmQuery{name, prefix + body, needs_inference};
  };
  return {
      // Q1: graduate students taking a given-style course (pure lookup).
      q("Q1",
        "SELECT ?x WHERE { ?x a ub:GraduateStudent . "
        "?x ub:takesCourse ?c . ?c a ub:GraduateCourse }",
        false),
      // Q2: graduate students with an undergraduate degree from the
      // university their department belongs to (triangle join; the
      // subOrganizationOf edge is asserted directly for departments).
      q("Q2",
        "SELECT ?x ?d ?u WHERE { ?x a ub:GraduateStudent . "
        "?x ub:memberOf ?d . ?d ub:subOrganizationOf ?u . "
        "?x ub:undergraduateDegreeFrom ?u }",
        false),
      // Q3: publications of a known professor — instances are typed as
      // Article, so the Publication superclass needs subclass closure.
      q("Q3",
        "SELECT ?p WHERE { ?p a ub:Publication . "
        "?p ub:publicationAuthor "
        "<http://www.Department0.Univ0.edu/FullProfessor0> }",
        true),
      // Q4: professors working for a department, with names — Professor is
      // a superclass, so instances (Full/Associate/Assistant) appear only
      // after subclass closure.
      q("Q4",
        "SELECT DISTINCT ?x ?n WHERE { ?x a ub:Professor . "
        "?x ub:worksFor <http://www.Univ0.edu/Department0> . "
        "?x ub:name ?n }",
        true),
      // Q5: members of a department — memberOf is inferred from worksFor
      // (subPropertyOf) for faculty.
      q("Q5",
        "SELECT DISTINCT ?x WHERE { ?x a ub:Person . "
        "?x ub:memberOf <http://www.Univ0.edu/Department0> }",
        true),
      // Q6: all students (subclass closure over Under/Graduate).
      q("Q6", "SELECT ?x WHERE { ?x a ub:Student }", true),
      // Q7: courses taught by a professor's students' teachers — simplified
      // to students of courses taught by a known professor.
      q("Q7",
        "SELECT DISTINCT ?y WHERE { "
        "<http://www.Department0.Univ0.edu/FullProfessor0> ub:teacherOf ?c . "
        "?y ub:takesCourse ?c }",
        false),
      // Q8: students with an email who are members of any department of a
      // university (memberOf closure + subOrganizationOf).
      q("Q8",
        "SELECT DISTINCT ?x ?d WHERE { ?x a ub:Student . "
        "?x ub:memberOf ?d . ?d ub:subOrganizationOf "
        "<http://www.Univ0.edu> }",
        true),
      // Q9: student / faculty / course triangle via advisor.
      q("Q9",
        "SELECT ?x ?y WHERE { ?x a ub:Student . ?y a ub:Faculty . "
        "?x ub:advisor ?y }",
        true),
      // Q10: students taking any course of a known professor (as Q7 but
      // typed via the Student superclass).
      q("Q10",
        "SELECT ?x WHERE { ?x a ub:Student . ?x ub:takesCourse ?c . "
        "<http://www.Department0.Univ0.edu/FullProfessor0> ub:teacherOf ?c }",
        true),
      // Q11: research groups of a university — two-hop transitive
      // subOrganizationOf, inference-only.
      q("Q11",
        "SELECT ?g WHERE { ?g a ub:ResearchGroup . "
        "?g ub:subOrganizationOf <http://www.Univ0.edu> }",
        true),
      // Q12: chairs (headOf) of departments of a university.
      q("Q12",
        "SELECT DISTINCT ?x ?d WHERE { ?x ub:headOf ?d . "
        "?d a ub:Department . ?d ub:subOrganizationOf "
        "<http://www.Univ0.edu> }",
        false),
      // Q13: alumni of a university — hasAlumnus is the inverse of
      // degreeFrom and exists only after inference.
      q("Q13",
        "SELECT ?x WHERE { <http://www.Univ0.edu> ub:hasAlumnus ?x }",
        true),
      // Q14: all undergraduate students (baseline scan).
      q("Q14", "SELECT ?x WHERE { ?x a ub:UndergraduateStudent }", false),
  };
}

}  // namespace parowl::gen
