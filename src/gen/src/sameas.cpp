#include "parowl/gen/sameas.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::gen {
namespace {

std::string alias_iri(std::uint32_t individual, std::uint32_t alias) {
  return std::string(kSameAsNs) + "Entity" + std::to_string(individual) +
         "_alias" + std::to_string(alias);
}

}  // namespace

GenStats generate_sameas_ontology(const SameAsOptions& options,
                                  rdf::Dictionary& dict,
                                  rdf::TripleStore& store) {
  GenStats stats;
  ontology::Vocabulary v(dict);
  const auto schema = [&](rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    stats.schema_triples += store.insert({s, p, o}) ? 1 : 0;
  };
  const auto ns = [&](const char* local) {
    return dict.intern_iri(std::string(kSameAsNs) + local);
  };

  // The identity machinery: every alias of one individual carries the same
  // registryKey literal, so rdfp2 derives the clique's sameAs edges.  The
  // functional profileDoc points at an IRI from one alias and at a literal
  // from another, so rdfp1 also derives resource-to-literal equalities
  // (the attach-literal path of the rewrite).
  schema(ns("registryKey"), v.rdf_type, v.owl_inverse_functional_property);
  schema(ns("profileDoc"), v.rdf_type, v.owl_functional_property);
  schema(ns("displayName"), v.rdf_type, v.owl_datatype_property);
  for (std::uint32_t p = 0; p < options.payload_predicates; ++p) {
    schema(ns(("relatesTo" + std::to_string(p)).c_str()), v.rdf_type,
           v.owl_object_property);
  }
  schema(ns("Entity"), v.rdf_type, v.owl_class);
  return stats;
}

GenStats generate_sameas(const SameAsOptions& options, rdf::Dictionary& dict,
                         rdf::TripleStore& store) {
  GenStats stats = generate_sameas_ontology(options, dict, store);
  ontology::Vocabulary v(dict);
  util::Rng rng(options.seed);

  const auto ns = [&](const std::string& local) {
    return dict.intern_iri(std::string(kSameAsNs) + local);
  };
  const auto instance = [&](rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    stats.instance_triples += store.insert({s, p, o}) ? 1 : 0;
  };

  const rdf::TermId entity_cls = ns("Entity");
  const rdf::TermId registry_key = ns("registryKey");
  const rdf::TermId profile_doc = ns("profileDoc");
  const rdf::TermId display_name = ns("displayName");
  std::vector<rdf::TermId> payload;
  payload.reserve(options.payload_predicates);
  for (std::uint32_t p = 0; p < options.payload_predicates; ++p) {
    payload.push_back(ns("relatesTo" + std::to_string(p)));
  }

  const std::uint32_t min_size = std::max<std::uint32_t>(
      1, std::min(options.min_clique_size, options.max_clique_size));
  const std::uint32_t max_size =
      std::max(options.max_clique_size, min_size);

  // Draw every clique first so payload targets can point at any alias.
  std::vector<std::uint32_t> clique_size(options.individuals);
  std::vector<std::vector<rdf::TermId>> aliases(options.individuals);
  for (std::uint32_t i = 0; i < options.individuals; ++i) {
    const double u =
        std::pow(rng.uniform(), std::max(options.clique_size_shape, 1e-6));
    const auto span = static_cast<double>(max_size - min_size + 1);
    clique_size[i] =
        min_size + static_cast<std::uint32_t>(std::min(
                       span - 1.0, std::floor(u * span)));
    aliases[i].reserve(clique_size[i]);
    for (std::uint32_t a = 0; a < clique_size[i]; ++a) {
      aliases[i].push_back(dict.intern_iri(alias_iri(i, a)));
    }
    stats.entities += clique_size[i];
  }

  for (std::uint32_t i = 0; i < options.individuals; ++i) {
    const std::vector<rdf::TermId>& clique = aliases[i];
    const bool chained = rng.chance(options.asserted_chain_fraction);
    const rdf::TermId key = dict.intern_literal(
        "\"key-" + std::to_string(i) + "\"");
    for (std::uint32_t a = 0; a < clique.size(); ++a) {
      instance(clique[a], v.rdf_type, entity_cls);
      if (chained) {
        // Asserted chain: alias_a sameAs alias_{a+1}; interception (or
        // rdfp6/7 in naive mode) closes the clique.
        if (a + 1 < clique.size()) {
          instance(clique[a], v.owl_same_as, clique[a + 1]);
        }
      } else {
        // Shared inverse-functional key: rdfp2 derives the clique.
        instance(clique[a], registry_key, key);
      }
      if (options.include_literals) {
        instance(clique[a], display_name,
                 dict.intern_literal("\"Entity " + std::to_string(i) + "\""));
      }
      for (std::uint32_t k = 0; k < options.payload_per_alias; ++k) {
        const auto j = static_cast<std::uint32_t>(
            rng.below(options.individuals));
        const std::vector<rdf::TermId>& target = aliases[j];
        instance(clique[a], payload[(a + k) % payload.size()],
                 target[rng.below(target.size())]);
      }
    }
    if (options.include_literals && clique.size() >= 2) {
      // Mixed-object functional property: one alias points profileDoc at an
      // IRI, another at a literal.  Once the aliases merge, rdfp1 derives
      // (doc IRI) sameAs (doc literal) — the literal-partner case.
      instance(clique[0], profile_doc,
               ns("doc/Entity" + std::to_string(i)));
      instance(clique[1], profile_doc,
               dict.intern_literal("\"doc://entity-" + std::to_string(i) +
                                   "\""));
    }
  }
  return stats;
}

}  // namespace parowl::gen
