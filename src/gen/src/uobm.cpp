#include "parowl/gen/uobm.hpp"

#include <vector>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::gen {

GenStats generate_uobm(const UobmOptions& options, rdf::Dictionary& dict,
                       rdf::TripleStore& store) {
  // Start from the LUBM universe...
  GenStats stats = generate_lubm(options.base, dict, store);
  ontology::Vocabulary v(dict);
  util::Rng rng(options.base.seed ^ 0x05edful);

  auto ub = [&dict](const char* local) {
    return dict.intern_iri(std::string(kUnivBenchNs) + local);
  };
  const auto p_friend = ub("hasFriend");
  const auto p_hometown = ub("hasSameHomeTownWith");
  const auto p_member_of = ub("memberOf");
  const auto c_person = ub("Person");

  // ...extend the schema: hasFriend is symmetric; hasSameHomeTownWith is
  // symmetric AND transitive (UOBM's closure-heavy property).
  std::size_t schema_added = 0;
  schema_added += store.insert({p_friend, v.rdf_type, v.owl_object_property});
  schema_added +=
      store.insert({p_friend, v.rdf_type, v.owl_symmetric_property});
  schema_added += store.insert({p_friend, v.rdfs_domain, c_person});
  schema_added += store.insert({p_friend, v.rdfs_range, c_person});
  schema_added +=
      store.insert({p_hometown, v.rdf_type, v.owl_object_property});
  schema_added +=
      store.insert({p_hometown, v.rdf_type, v.owl_symmetric_property});
  schema_added +=
      store.insert({p_hometown, v.rdf_type, v.owl_transitive_property});
  stats.schema_triples += schema_added;

  // Collect every person (subjects of memberOf/worksFor instance triples)
  // tagged with their university, so cross/intra links can be steered.
  const auto p_works_for = ub("worksFor");
  std::vector<rdf::TermId> people;
  std::vector<std::uint32_t> person_univ;
  auto univ_of = [&dict](rdf::TermId id) -> std::uint32_t {
    const std::string& lex = dict.lexical(id);
    const auto pos = lex.find("Univ");
    std::uint32_t u = 0;
    for (std::size_t i = pos + 4; pos != std::string::npos && i < lex.size() &&
                                  lex[i] >= '0' && lex[i] <= '9';
         ++i) {
      u = u * 10 + static_cast<std::uint32_t>(lex[i] - '0');
    }
    return u;
  };
  for (const rdf::TermId prop : {p_member_of, p_works_for}) {
    for (const rdf::Triple& t : store.with_predicate(prop)) {
      people.push_back(t.s);
      person_univ.push_back(univ_of(t.s));
    }
  }

  // Departments (for cross memberships).
  const auto c_department = ub("Department");
  std::vector<rdf::TermId> departments;
  for (const rdf::TermId s : store.subjects(v.rdf_type, c_department)) {
    departments.push_back(s);
  }

  std::size_t added = 0;
  const std::uint32_t num_univ = options.base.universities;
  for (std::size_t i = 0; i < people.size(); ++i) {
    const rdf::TermId person = people[i];

    // Friendships — many crossing university boundaries.
    for (std::uint32_t f = 0; f < options.friends_per_person; ++f) {
      std::size_t j = rng.below(people.size());
      if (num_univ > 1 &&
          rng.chance(options.cross_university_friend_prob)) {
        // Resample until the friend is at another university (bounded
        // tries; fall back to whatever we drew).
        for (int tries = 0;
             tries < 8 && person_univ[j] == person_univ[i]; ++tries) {
          j = rng.below(people.size());
        }
      }
      if (people[j] != person) {
        added += store.insert({person, p_friend, people[j]}) ? 1 : 0;
      }
    }

    // Hometown chains: person i shares a hometown with person i+H (same
    // residue class mod `hometowns`), regardless of university.  Under
    // symmetry+transitivity each residue class welds into one long
    // cross-university component — UOBM's density in miniature.
    if (options.same_hometown_links_per_person > 0) {
      const std::size_t j = i + options.hometowns;
      if (j < people.size() && people[j] != person) {
        added += store.insert({person, p_hometown, people[j]}) ? 1 : 0;
      }
    }

    // Occasional membership in a random department anywhere.
    if (!departments.empty() && rng.chance(options.cross_membership_prob)) {
      added += store.insert({person, p_member_of,
                             departments[rng.below(departments.size())]})
                   ? 1
                   : 0;
    }
  }
  stats.instance_triples += added;
  return stats;
}

}  // namespace parowl::gen
