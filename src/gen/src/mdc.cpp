#include "parowl/gen/mdc.hpp"

#include <string>
#include <vector>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/util/rng.hpp"

namespace parowl::gen {
namespace {

struct Emitter {
  rdf::Dictionary& dict;
  rdf::TripleStore& store;
  GenStats stats{};

  rdf::TermId mdc(const char* local) {
    return dict.intern_iri(std::string(kMdcNs) + local);
  }
  rdf::TermId iri(const std::string& full) { return dict.intern_iri(full); }
  rdf::TermId lit(const std::string& value) {
    return dict.intern_literal("\"" + value + "\"");
  }
  void schema(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    stats.schema_triples += store.insert({s, p, o}) ? 1 : 0;
  }
  void instance(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    stats.instance_triples += store.insert({s, p, o}) ? 1 : 0;
  }
};

}  // namespace

GenStats generate_mdc_ontology(rdf::Dictionary& dict,
                               rdf::TripleStore& store) {
  Emitter e{dict, store};
  ontology::Vocabulary v(dict);

  const auto asset = e.mdc("Asset");
  const auto field = e.mdc("Field");
  const auto reservoir = e.mdc("Reservoir");
  const auto well = e.mdc("Well");
  const auto producer = e.mdc("ProducerWell");
  const auto injector = e.mdc("InjectorWell");
  const auto completion = e.mdc("Completion");
  const auto equipment = e.mdc("Equipment");
  const auto sensor = e.mdc("Sensor");
  const auto pressure_sensor = e.mdc("PressureSensor");
  const auto temp_sensor = e.mdc("TemperatureSensor");
  const auto measurement = e.mdc("Measurement");
  const auto pipeline = e.mdc("Pipeline");
  const auto station = e.mdc("GatheringStation");

  for (const auto cls : {asset, field, reservoir, well, producer, injector,
                         completion, equipment, sensor, pressure_sensor,
                         temp_sensor, measurement, pipeline, station}) {
    e.schema(cls, v.rdf_type, v.owl_class);
  }
  auto subclass = [&](rdf::TermId sub, rdf::TermId sup) {
    e.schema(sub, v.rdfs_subclass_of, sup);
  };
  subclass(field, asset);
  subclass(reservoir, asset);
  subclass(well, asset);
  subclass(producer, well);
  subclass(injector, well);
  subclass(completion, asset);
  subclass(sensor, equipment);
  subclass(pressure_sensor, sensor);
  subclass(temp_sensor, sensor);
  subclass(pipeline, equipment);
  subclass(station, asset);

  const auto part_of = e.mdc("partOf");
  const auto has_part = e.mdc("hasPart");
  const auto attached_to = e.mdc("attachedTo");
  const auto measured_by = e.mdc("measuredBy");
  const auto connected_to = e.mdc("connectedTo");
  const auto feeds_into = e.mdc("feedsInto");
  const auto located_in = e.mdc("locatedIn");

  for (const auto prop : {part_of, has_part, attached_to, measured_by,
                          connected_to, feeds_into, located_in}) {
    e.schema(prop, v.rdf_type, v.owl_object_property);
  }
  // partOf is the workhorse: transitive with an inverse, so deep asset
  // hierarchies close both ways.
  e.schema(part_of, v.rdf_type, v.owl_transitive_property);
  e.schema(part_of, v.owl_inverse_of, has_part);
  e.schema(connected_to, v.rdf_type, v.owl_symmetric_property);
  e.schema(feeds_into, v.rdf_type, v.owl_transitive_property);
  e.schema(located_in, v.rdfs_subproperty_of, part_of);

  e.schema(part_of, v.rdfs_domain, asset);
  e.schema(attached_to, v.rdfs_domain, equipment);
  e.schema(attached_to, v.rdfs_range, asset);
  e.schema(measured_by, v.rdfs_domain, measurement);
  e.schema(measured_by, v.rdfs_range, sensor);
  e.schema(feeds_into, v.rdfs_domain, equipment);

  return e.stats;
}

GenStats generate_mdc(const MdcOptions& options, rdf::Dictionary& dict,
                      rdf::TripleStore& store) {
  GenStats stats = generate_mdc_ontology(dict, store);
  Emitter e{dict, store};
  ontology::Vocabulary v(dict);
  util::Rng rng(options.seed);

  const auto c_field = e.mdc("Field");
  const auto c_reservoir = e.mdc("Reservoir");
  const auto c_producer = e.mdc("ProducerWell");
  const auto c_injector = e.mdc("InjectorWell");
  const auto c_completion = e.mdc("Completion");
  const auto c_pressure = e.mdc("PressureSensor");
  const auto c_temp = e.mdc("TemperatureSensor");
  const auto c_measurement = e.mdc("Measurement");
  const auto c_pipeline = e.mdc("Pipeline");
  const auto c_station = e.mdc("GatheringStation");

  const auto p_part_of = e.mdc("partOf");
  const auto p_attached = e.mdc("attachedTo");
  const auto p_measured_by = e.mdc("measuredBy");
  const auto p_connected = e.mdc("connectedTo");
  const auto p_feeds = e.mdc("feedsInto");
  const auto p_value = e.mdc("hasValue");
  const auto p_tag = e.mdc("tagName");

  auto type = [&](rdf::TermId s, rdf::TermId cls) {
    e.instance(s, v.rdf_type, cls);
    ++e.stats.entities;
  };

  // First pass: create every field and gathering station so cross-field
  // pipelines can target any of them.
  std::vector<rdf::TermId> stations(options.fields);
  std::vector<rdf::TermId> field_ids(options.fields);
  for (std::uint32_t f = 0; f < options.fields; ++f) {
    const std::string ns =
        "http://cisoft.usc.edu/data/Field" + std::to_string(f) + "/";
    const auto fld =
        e.iri("http://cisoft.usc.edu/data/Field" + std::to_string(f));
    type(fld, c_field);
    field_ids[f] = fld;
    const auto stn = e.iri(ns + "GatheringStation");
    type(stn, c_station);
    e.instance(stn, p_part_of, fld);
    stations[f] = stn;
  }

  for (std::uint32_t f = 0; f < options.fields; ++f) {
    const std::string ns =
        "http://cisoft.usc.edu/data/Field" + std::to_string(f) + "/";
    const auto stn = stations[f];
    const auto fld = field_ids[f];

    for (std::uint32_t r = 0; r < options.reservoirs_per_field; ++r) {
      const auto res = e.iri(ns + "Reservoir" + std::to_string(r));
      type(res, c_reservoir);
      e.instance(res, p_part_of, fld);

      rdf::TermId prev_pipe = rdf::kAnyTerm;
      for (std::uint32_t w = 0; w < options.wells_per_reservoir; ++w) {
        const std::string wid = std::to_string(r) + "_" + std::to_string(w);
        const auto wl = e.iri(ns + "Well" + wid);
        type(wl, w % 4 == 3 ? c_injector : c_producer);
        e.instance(wl, p_part_of, res);

        for (std::uint32_t c = 0; c < options.completions_per_well; ++c) {
          const auto comp =
              e.iri(ns + "Completion" + wid + "_" + std::to_string(c));
          type(comp, c_completion);
          // Deepens the partOf chain: completion -> well -> reservoir ->
          // field, which transitivity closes into 6 extra triples each.
          e.instance(comp, p_part_of, wl);
        }

        for (std::uint32_t s = 0; s < options.sensors_per_well; ++s) {
          const auto sen =
              e.iri(ns + "Sensor" + wid + "_" + std::to_string(s));
          type(sen, s % 2 == 0 ? c_pressure : c_temp);
          e.instance(sen, p_attached, wl);
          if (options.include_literals) {
            e.instance(sen, p_tag, e.lit("TAG-" + wid));
          }
          for (std::uint32_t m = 0; m < options.measurements_per_sensor;
               ++m) {
            const auto meas = e.iri(ns + "Measurement" + wid + "_" +
                                    std::to_string(s) + "_" +
                                    std::to_string(m));
            type(meas, c_measurement);
            e.instance(meas, p_measured_by, sen);
            if (options.include_literals) {
              e.instance(meas, p_value,
                         e.lit(std::to_string(rng.below(10000))));
            }
          }
        }

        // Flowline: well -> pipeline -> (next pipeline ...) -> station.
        const auto pipe = e.iri(ns + "Pipeline" + wid);
        type(pipe, c_pipeline);
        e.instance(pipe, p_attached, wl);
        e.instance(wl, p_feeds, pipe);
        if (prev_pipe != rdf::kAnyTerm) {
          e.instance(prev_pipe, p_connected, pipe);
        }
        // Occasionally the pipeline exports to another field's station —
        // the rare cross-field edge.
        rdf::TermId dest = stn;
        if (options.fields > 1 &&
            rng.chance(options.cross_field_pipeline_prob)) {
          std::uint32_t other =
              static_cast<std::uint32_t>(rng.below(options.fields));
          if (other == f) {
            other = (other + 1) % options.fields;
          }
          dest = stations[other];
        }
        e.instance(pipe, p_feeds, dest);
        prev_pipe = pipe;
      }
    }
  }

  stats.schema_triples += e.stats.schema_triples;
  stats.instance_triples += e.stats.instance_triples;
  stats.entities += e.stats.entities;
  return stats;
}

std::int64_t mdc_field_key(std::string_view iri) {
  const auto pos = iri.find("Field");
  if (pos == std::string_view::npos) {
    return -1;
  }
  std::size_t i = pos + 5;
  if (i >= iri.size() || iri[i] < '0' || iri[i] > '9') {
    return -1;
  }
  std::int64_t value = 0;
  while (i < iri.size() && iri[i] >= '0' && iri[i] <= '9') {
    value = value * 10 + (iri[i] - '0');
    ++i;
  }
  return value;
}

}  // namespace parowl::gen
