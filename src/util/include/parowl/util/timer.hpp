#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace parowl::util {

/// Monotonic stopwatch used throughout the runtime to attribute time to the
/// sub-tasks the paper reports (reasoning, IO, synchronization, aggregation).
///
/// The watch starts running on construction; `elapsed_*()` may be called at
/// any time, and `restart()` resets the origin.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Clock::now()) {}

  /// Reset the origin to now.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last restart, in seconds.
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in integral microseconds (useful for stable test output).
  [[nodiscard]] std::int64_t elapsed_micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

/// Accumulates time across many disjoint intervals.  Used by the parallel
/// workers to sum, per round, the time spent in each sub-task so that the
/// Fig. 2 overhead breakdown can be reconstructed exactly.
class TimeAccumulator {
 public:
  /// Add `seconds` to the running total.
  void add(double seconds) { total_ += seconds; }

  /// Run `fn` and add its wall-clock duration to the total; returns fn's
  /// result (or void).  The elapsed time is accumulated even when `fn`
  /// throws (RAII), so a failing sub-task cannot under-report its round.
  template <typename Fn>
  auto time(Fn&& fn) {
    struct Guard {
      Stopwatch sw;
      double* total;
      ~Guard() { *total += sw.elapsed_seconds(); }
    } guard{Stopwatch{}, &total_};
    return fn();
  }

  [[nodiscard]] double seconds() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  double total_ = 0.0;
};

/// Format a duration in seconds as a short human string ("1.23 s", "45 ms").
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace parowl::util
