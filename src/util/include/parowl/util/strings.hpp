#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parowl::util {

/// Split `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text,
                                                  char sep);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// FNV-1a 64-bit hash of a byte string.  Used by the streaming hash
/// partitioner so partition assignment is stable across platforms (unlike
/// std::hash<std::string>).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// 64-bit integer mix (SplitMix64 finalizer); used to hash TermIds.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x);

}  // namespace parowl::util
