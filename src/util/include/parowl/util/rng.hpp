#pragma once

#include <cstdint>
#include <limits>

namespace parowl::util {

/// Deterministic 64-bit PRNG (xoshiro256**).  The benchmark generators must
/// be reproducible across runs and platforms, so we avoid std::mt19937's
/// distribution non-portability and seed everything through SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound).  `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with probability `p` of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace parowl::util
