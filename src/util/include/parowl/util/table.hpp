#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace parowl::util {

/// Fixed-width text-table printer used by the benchmark harnesses to emit the
/// rows/series each paper table and figure reports.  Cells are strings; the
/// printer right-pads to the widest cell per column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row.  Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Number of data rows (excluding the header).
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Render as CSV (for post-processing/plotting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_int(long long v);

}  // namespace parowl::util
