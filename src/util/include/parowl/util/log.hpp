#pragma once

#include <sstream>
#include <string>

namespace parowl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line to stderr with a level prefix.  Thread-safe (single write).
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append(os, rest...);
}
}  // namespace detail

/// Variadic convenience: log_info("round ", r, " sent ", n, " tuples").
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug) {
    std::ostringstream os;
    detail::append(os, args...);
    log_line(LogLevel::kDebug, os.str());
  }
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo) {
    std::ostringstream os;
    detail::append(os, args...);
    log_line(LogLevel::kInfo, os.str());
  }
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn) {
    std::ostringstream os;
    detail::append(os, args...);
    log_line(LogLevel::kWarn, os.str());
  }
}

template <typename... Args>
void log_error(const Args&... args) {
  std::ostringstream os;
  detail::append(os, args...);
  log_line(LogLevel::kError, os.str());
}

}  // namespace parowl::util
