#include "parowl/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace parowl::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

}  // namespace parowl::util
