#include "parowl/util/timer.hpp"

#include <cmath>
#include <cstdio>

namespace parowl::util {

std::string format_seconds(double seconds) {
  char buf[64];
  if (!std::isfinite(seconds)) {
    return "inf";
  }
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace parowl::util
