#include "parowl/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace parowl::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug]";
    case LogLevel::kInfo:
      return "[info ]";
    case LogLevel::kWarn:
      return "[warn ]";
    case LogLevel::kError:
      return "[error]";
  }
  return "[?]";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) {
    return;
  }
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", prefix(level), message.c_str());
}

}  // namespace parowl::util
