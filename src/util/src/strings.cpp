#include "parowl/util/strings.hpp"

namespace parowl::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(text.back())) {
    text.remove_suffix(1);
  }
  return text;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace parowl::util
