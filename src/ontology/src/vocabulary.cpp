#include "parowl/ontology/vocabulary.hpp"

namespace parowl::ontology {

Vocabulary::Vocabulary(rdf::Dictionary& dict)
    : rdf_type(dict.intern_iri(iri::kRdfType)),
      rdf_property(dict.intern_iri(iri::kRdfProperty)),
      rdfs_subclass_of(dict.intern_iri(iri::kRdfsSubClassOf)),
      rdfs_subproperty_of(dict.intern_iri(iri::kRdfsSubPropertyOf)),
      rdfs_domain(dict.intern_iri(iri::kRdfsDomain)),
      rdfs_range(dict.intern_iri(iri::kRdfsRange)),
      rdfs_class(dict.intern_iri(iri::kRdfsClass)),
      owl_class(dict.intern_iri(iri::kOwlClass)),
      owl_thing(dict.intern_iri(iri::kOwlThing)),
      owl_object_property(dict.intern_iri(iri::kOwlObjectProperty)),
      owl_datatype_property(dict.intern_iri(iri::kOwlDatatypeProperty)),
      owl_transitive_property(dict.intern_iri(iri::kOwlTransitiveProperty)),
      owl_symmetric_property(dict.intern_iri(iri::kOwlSymmetricProperty)),
      owl_functional_property(dict.intern_iri(iri::kOwlFunctionalProperty)),
      owl_inverse_functional_property(
          dict.intern_iri(iri::kOwlInverseFunctionalProperty)),
      owl_inverse_of(dict.intern_iri(iri::kOwlInverseOf)),
      owl_equivalent_class(dict.intern_iri(iri::kOwlEquivalentClass)),
      owl_equivalent_property(dict.intern_iri(iri::kOwlEquivalentProperty)),
      owl_same_as(dict.intern_iri(iri::kOwlSameAs)),
      owl_restriction(dict.intern_iri(iri::kOwlRestriction)),
      owl_on_property(dict.intern_iri(iri::kOwlOnProperty)),
      owl_has_value(dict.intern_iri(iri::kOwlHasValue)),
      owl_some_values_from(dict.intern_iri(iri::kOwlSomeValuesFrom)),
      owl_all_values_from(dict.intern_iri(iri::kOwlAllValuesFrom)) {}

bool Vocabulary::is_schema_predicate(rdf::TermId p) const {
  return p == rdfs_subclass_of || p == rdfs_subproperty_of ||
         p == rdfs_domain || p == rdfs_range || p == owl_inverse_of ||
         p == owl_equivalent_class || p == owl_equivalent_property ||
         p == owl_on_property || p == owl_has_value ||
         p == owl_some_values_from || p == owl_all_values_from;
}

bool Vocabulary::is_meta_class(rdf::TermId cls) const {
  return cls == rdfs_class || cls == owl_class || cls == rdf_property ||
         cls == owl_object_property || cls == owl_datatype_property ||
         cls == owl_transitive_property || cls == owl_symmetric_property ||
         cls == owl_functional_property ||
         cls == owl_inverse_functional_property || cls == owl_restriction;
}

bool Vocabulary::is_schema_triple(const rdf::Triple& t) const {
  if (is_schema_predicate(t.p)) {
    return true;
  }
  return t.p == rdf_type && is_meta_class(t.o);
}

}  // namespace parowl::ontology
