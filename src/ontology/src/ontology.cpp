#include "parowl/ontology/ontology.hpp"

#include <unordered_map>

namespace parowl::ontology {

std::size_t Ontology::axiom_count() const {
  return subclass_of.size() + subproperty_of.size() + domain.size() +
         range.size() + inverse_of.size() + equivalent_class.size() +
         equivalent_property.size() + transitive.size() + symmetric.size() +
         functional.size() + inverse_functional.size() + restrictions.size();
}

Ontology extract_ontology(const rdf::TripleStore& store,
                          const Vocabulary& vocab) {
  Ontology onto;
  // Restrictions accumulate facets across several triples about one class
  // node, so index them while scanning.
  std::unordered_map<rdf::TermId, std::size_t> restriction_index;
  auto restriction_for = [&](rdf::TermId cls) -> Restriction& {
    auto [it, fresh] =
        restriction_index.try_emplace(cls, onto.restrictions.size());
    if (fresh) {
      onto.restrictions.push_back(Restriction{.cls = cls});
    }
    return onto.restrictions[it->second];
  };

  auto note = [&](rdf::TermId a, rdf::TermId b) {
    onto.schema_terms.insert(a);
    onto.schema_terms.insert(b);
  };

  for (const rdf::Triple& t : store.triples()) {
    if (t.p == vocab.rdfs_subclass_of) {
      onto.subclass_of.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.rdfs_subproperty_of) {
      onto.subproperty_of.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.rdfs_domain) {
      onto.domain.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.rdfs_range) {
      onto.range.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.owl_inverse_of) {
      onto.inverse_of.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.owl_equivalent_class) {
      onto.equivalent_class.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.owl_equivalent_property) {
      onto.equivalent_property.emplace_back(t.s, t.o);
      note(t.s, t.o);
    } else if (t.p == vocab.owl_on_property) {
      restriction_for(t.s).on_property = t.o;
      note(t.s, t.o);
    } else if (t.p == vocab.owl_has_value) {
      restriction_for(t.s).has_value = t.o;
      note(t.s, t.o);
    } else if (t.p == vocab.owl_some_values_from) {
      restriction_for(t.s).some_values_from = t.o;
      note(t.s, t.o);
    } else if (t.p == vocab.owl_all_values_from) {
      restriction_for(t.s).all_values_from = t.o;
      note(t.s, t.o);
    } else if (t.p == vocab.rdf_type) {
      if (t.o == vocab.owl_transitive_property) {
        onto.transitive.insert(t.s);
        onto.schema_terms.insert(t.s);
      } else if (t.o == vocab.owl_symmetric_property) {
        onto.symmetric.insert(t.s);
        onto.schema_terms.insert(t.s);
      } else if (t.o == vocab.owl_functional_property) {
        onto.functional.insert(t.s);
        onto.schema_terms.insert(t.s);
      } else if (t.o == vocab.owl_inverse_functional_property) {
        onto.inverse_functional.insert(t.s);
        onto.schema_terms.insert(t.s);
      } else if (vocab.is_meta_class(t.o)) {
        onto.schema_terms.insert(t.s);
      }
    }
  }
  return onto;
}

SchemaSplit split_schema(const rdf::TripleStore& store,
                         const Vocabulary& vocab) {
  SchemaSplit split;
  for (const rdf::Triple& t : store.triples()) {
    if (vocab.is_schema_triple(t)) {
      split.schema.push_back(t);
    } else {
      split.instance.push_back(t);
    }
  }
  return split;
}

}  // namespace parowl::ontology
