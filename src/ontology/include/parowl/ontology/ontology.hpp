#pragma once

#include <unordered_set>
#include <utility>
#include <vector>

#include "parowl/ontology/vocabulary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::ontology {

/// An owl:Restriction class definition (the pD* subset: hasValue,
/// someValuesFrom, allValuesFrom, each paired with onProperty).
struct Restriction {
  rdf::TermId cls = rdf::kAnyTerm;          // the restriction class node
  rdf::TermId on_property = rdf::kAnyTerm;  // owl:onProperty target
  rdf::TermId has_value = rdf::kAnyTerm;
  rdf::TermId some_values_from = rdf::kAnyTerm;
  rdf::TermId all_values_from = rdf::kAnyTerm;
};

/// Structured view of an ontology's schema-level axioms, extracted from a
/// triple store.  This is the input the ontology→rule compiler specializes
/// the generic OWL-Horst rule set with (producing the paper's single-join
/// instance rules).
struct Ontology {
  // Direct axioms (pairs are (subject, object) of the axiom triple).
  std::vector<std::pair<rdf::TermId, rdf::TermId>> subclass_of;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> subproperty_of;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> domain;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> range;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> inverse_of;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> equivalent_class;
  std::vector<std::pair<rdf::TermId, rdf::TermId>> equivalent_property;

  // Property characteristics.
  std::unordered_set<rdf::TermId> transitive;
  std::unordered_set<rdf::TermId> symmetric;
  std::unordered_set<rdf::TermId> functional;
  std::unordered_set<rdf::TermId> inverse_functional;

  std::vector<Restriction> restrictions;

  // Every term mentioned by a schema axiom (classes and properties).
  std::unordered_set<rdf::TermId> schema_terms;

  /// Number of schema axioms of all kinds.
  [[nodiscard]] std::size_t axiom_count() const;
};

/// Extract the ontology from all schema triples in `store`.
[[nodiscard]] Ontology extract_ontology(const rdf::TripleStore& store,
                                        const Vocabulary& vocab);

/// Split `store` into schema triples and instance triples (Algorithm 1
/// step 1 strips schema triples before building the data graph; the schema
/// is replicated to every partition instead).
struct SchemaSplit {
  std::vector<rdf::Triple> schema;
  std::vector<rdf::Triple> instance;
};
[[nodiscard]] SchemaSplit split_schema(const rdf::TripleStore& store,
                                       const Vocabulary& vocab);

}  // namespace parowl::ontology
