#pragma once

#include <string_view>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::ontology {

/// Well-known IRI strings (RDF, RDFS, OWL namespaces).
namespace iri {
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfProperty =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
inline constexpr std::string_view kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr std::string_view kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr std::string_view kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr std::string_view kRdfsClass =
    "http://www.w3.org/2000/01/rdf-schema#Class";
inline constexpr std::string_view kOwlClass =
    "http://www.w3.org/2002/07/owl#Class";
inline constexpr std::string_view kOwlThing =
    "http://www.w3.org/2002/07/owl#Thing";
inline constexpr std::string_view kOwlObjectProperty =
    "http://www.w3.org/2002/07/owl#ObjectProperty";
inline constexpr std::string_view kOwlDatatypeProperty =
    "http://www.w3.org/2002/07/owl#DatatypeProperty";
inline constexpr std::string_view kOwlTransitiveProperty =
    "http://www.w3.org/2002/07/owl#TransitiveProperty";
inline constexpr std::string_view kOwlSymmetricProperty =
    "http://www.w3.org/2002/07/owl#SymmetricProperty";
inline constexpr std::string_view kOwlFunctionalProperty =
    "http://www.w3.org/2002/07/owl#FunctionalProperty";
inline constexpr std::string_view kOwlInverseFunctionalProperty =
    "http://www.w3.org/2002/07/owl#InverseFunctionalProperty";
inline constexpr std::string_view kOwlInverseOf =
    "http://www.w3.org/2002/07/owl#inverseOf";
inline constexpr std::string_view kOwlEquivalentClass =
    "http://www.w3.org/2002/07/owl#equivalentClass";
inline constexpr std::string_view kOwlEquivalentProperty =
    "http://www.w3.org/2002/07/owl#equivalentProperty";
inline constexpr std::string_view kOwlSameAs =
    "http://www.w3.org/2002/07/owl#sameAs";
inline constexpr std::string_view kOwlRestriction =
    "http://www.w3.org/2002/07/owl#Restriction";
inline constexpr std::string_view kOwlOnProperty =
    "http://www.w3.org/2002/07/owl#onProperty";
inline constexpr std::string_view kOwlHasValue =
    "http://www.w3.org/2002/07/owl#hasValue";
inline constexpr std::string_view kOwlSomeValuesFrom =
    "http://www.w3.org/2002/07/owl#someValuesFrom";
inline constexpr std::string_view kOwlAllValuesFrom =
    "http://www.w3.org/2002/07/owl#allValuesFrom";
}  // namespace iri

/// Interned ids of the RDF/RDFS/OWL vocabulary against one dictionary.
///
/// Construct once per dictionary; all modules that need vocabulary terms
/// (rule builder, schema extraction, partitioners) take a `const Vocabulary&`.
struct Vocabulary {
  explicit Vocabulary(rdf::Dictionary& dict);

  rdf::TermId rdf_type;
  rdf::TermId rdf_property;
  rdf::TermId rdfs_subclass_of;
  rdf::TermId rdfs_subproperty_of;
  rdf::TermId rdfs_domain;
  rdf::TermId rdfs_range;
  rdf::TermId rdfs_class;
  rdf::TermId owl_class;
  rdf::TermId owl_thing;
  rdf::TermId owl_object_property;
  rdf::TermId owl_datatype_property;
  rdf::TermId owl_transitive_property;
  rdf::TermId owl_symmetric_property;
  rdf::TermId owl_functional_property;
  rdf::TermId owl_inverse_functional_property;
  rdf::TermId owl_inverse_of;
  rdf::TermId owl_equivalent_class;
  rdf::TermId owl_equivalent_property;
  rdf::TermId owl_same_as;
  rdf::TermId owl_restriction;
  rdf::TermId owl_on_property;
  rdf::TermId owl_has_value;
  rdf::TermId owl_some_values_from;
  rdf::TermId owl_all_values_from;

  /// True iff `p` is a schema-defining predicate (subClassOf, domain, ...).
  [[nodiscard]] bool is_schema_predicate(rdf::TermId p) const;

  /// True iff `cls` is a metaclass whose rdf:type assertions are schema
  /// (owl:Class, owl:TransitiveProperty, ...).
  [[nodiscard]] bool is_meta_class(rdf::TermId cls) const;

  /// True iff the triple is part of the ontology/schema rather than
  /// instance data (Algorithm 1 strips these before partitioning).
  [[nodiscard]] bool is_schema_triple(const rdf::Triple& t) const;
};

}  // namespace parowl::ontology
