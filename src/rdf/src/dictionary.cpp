#include "parowl/rdf/dictionary.hpp"

#include <cassert>

#include "parowl/util/strings.hpp"

namespace parowl::rdf {

std::size_t Dictionary::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(util::fnv1a64(k.lexical) ^
                                  util::mix64(static_cast<std::uint64_t>(k.kind)));
}

Dictionary::Dictionary() = default;

TermId Dictionary::intern(std::string_view lexical, TermKind kind) {
  if (const auto it = index_.find(Key{lexical, kind}); it != index_.end()) {
    return it->second;
  }
  entries_.push_back(Entry{std::string(lexical), kind});
  const auto id = static_cast<TermId>(entries_.size());  // ids start at 1
  index_.emplace(Key{entries_.back().lexical, kind}, id);
  return id;
}

void Dictionary::reserve(std::size_t expected_terms) {
  index_.reserve(entries_.size() + expected_terms);
}

void Dictionary::intern_batch(const Dictionary& other,
                              std::vector<TermId>& remap) {
  remap.assign(other.size() + 1, kAnyTerm);
  reserve(other.size());
  for (TermId id = 1; id <= other.size(); ++id) {
    remap[id] = intern(other.lexical(id), other.kind(id));
  }
}

TermId Dictionary::find(std::string_view lexical, TermKind kind) const {
  const auto it = index_.find(Key{lexical, kind});
  return it == index_.end() ? kAnyTerm : it->second;
}

const std::string& Dictionary::lexical(TermId id) const {
  assert(id >= 1 && id <= entries_.size());
  return entries_[id - 1].lexical;
}

TermKind Dictionary::kind(TermId id) const {
  assert(id >= 1 && id <= entries_.size());
  return entries_[id - 1].kind;
}

}  // namespace parowl::rdf
