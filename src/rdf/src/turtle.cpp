#include "parowl/rdf/turtle.hpp"

#include <cctype>
#include <istream>
#include <sstream>
#include <unordered_map>

namespace parowl::rdf {
namespace {

constexpr std::string_view kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

/// Character-level parser over a document (or a fragment of one, when
/// seeded with the environment and global position of the fragment start).
class TurtleParser {
 public:
  TurtleParser(std::string_view text, Dictionary& dict, TripleStore& store,
               TurtleEnv env = {}, std::size_t line_base = 0,
               std::size_t byte_base = 0)
      : text_(text),
        line_base_(line_base),
        byte_base_(byte_base),
        dict_(dict),
        store_(store),
        prefixes_(std::move(env.prefixes)),
        base_(std::move(env.base)) {}

  ParseStats run() {
    while (skip_ws(), !eof()) {
      if (!statement()) {
        ++stats_.bad_lines;
        if (stats_.first_error.empty()) {
          const std::size_t line = line_base_ + line_of(error_pos_);
          const std::size_t byte = byte_base_ + error_pos_;
          stats_.first_error = format_parse_error(
              line, byte, error_.empty() ? "malformed statement" : error_);
          stats_.first_error_line = line;
          stats_.first_error_offset = byte;
        }
        recover();
      }
    }
    return stats_;
  }

  /// Prefix/base state after run() — the environment a fragment starting
  /// right after this text would inherit in a serial parse.
  [[nodiscard]] TurtleEnv env() && {
    return TurtleEnv{std::move(prefixes_), std::move(base_)};
  }

 private:
  // ---------------------------------------------------------------- lexing
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return eof() ? '\0' : text_[pos_]; }
  char take() { return eof() ? '\0' : text_[pos_++]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (!eof() && take() != '\n') {
        }
      } else {
        break;
      }
    }
  }

  bool match_char(char c) {
    skip_ws();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Case-insensitive keyword match (whole word).
  bool match_keyword(std::string_view word) {
    skip_ws();
    if (pos_ + word.size() > text_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    const std::size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_' || text_[after] == ':')) {
      return false;  // longer identifier or a prefixed name, not the keyword
    }
    pos_ = after;
    return true;
  }

  bool fail(std::string message) {
    error_ = std::move(message);
    // Anchor the diagnostic to the last meaningful character: skip_ws may
    // have moved past the offending line's newline (e.g. a directive
    // truncated at end of input would otherwise report the next line).
    std::size_t pos = pos_ < text_.size() ? pos_ : text_.size();
    while (pos > 0 &&
           std::isspace(static_cast<unsigned char>(text_[pos - 1]))) {
      --pos;
    }
    error_pos_ = pos;
    return false;
  }

  /// 1-based line number of byte offset `pos` (for error messages).
  [[nodiscard]] std::size_t line_of(std::size_t pos) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
      }
    }
    return line;
  }

  /// Skip to just past the next '.' (statement recovery).
  void recover() {
    while (!eof() && take() != '.') {
    }
  }

  // --------------------------------------------------------------- grammar
  bool statement() {
    skip_ws();
    if (match_keyword("@prefix") || match_keyword("PREFIX")) {
      return prefix_directive();
    }
    if (match_keyword("@base") || match_keyword("BASE")) {
      return base_directive();
    }
    return triples();
  }

  bool prefix_directive() {
    skip_ws();
    // pname ':'
    std::string name;
    while (!eof() && peek() != ':') {
      const char c = take();
      if (std::isspace(static_cast<unsigned char>(c))) {
        return fail("whitespace in prefix name");
      }
      name += c;
    }
    if (!match_char(':')) {
      return fail("expected ':' in @prefix");
    }
    TermId iri_id = kAnyTerm;
    if (!iri_ref(iri_id)) {
      return false;
    }
    prefixes_[name] = dict_.lexical(iri_id);
    match_char('.');  // '.' required for @prefix, absent for PREFIX
    return true;
  }

  bool base_directive() {
    TermId iri_id = kAnyTerm;
    if (!iri_ref(iri_id)) {
      return false;
    }
    base_ = dict_.lexical(iri_id);
    match_char('.');
    return true;
  }

  bool triples() {
    TermId subject = kAnyTerm;
    if (!term(subject, /*object_position=*/false)) {
      return false;
    }
    if (!predicate_object_list(subject)) {
      return false;
    }
    if (!match_char('.')) {
      return fail("expected '.' after triples");
    }
    return true;
  }

  bool predicate_object_list(TermId subject) {
    for (;;) {
      TermId predicate = kAnyTerm;
      skip_ws();
      if (match_keyword("a")) {
        predicate = dict_.intern_iri(kRdfTypeIri);
      } else if (!term(predicate, /*object_position=*/false)) {
        return false;
      }
      // Object list.
      for (;;) {
        TermId object = kAnyTerm;
        if (!term(object, /*object_position=*/true)) {
          return false;
        }
        ++stats_.triples;
        if (!store_.insert({subject, predicate, object})) {
          ++stats_.duplicates;
        }
        if (!match_char(',')) {
          break;
        }
      }
      if (!match_char(';')) {
        return true;
      }
      // A trailing ';' before '.' is legal Turtle.
      skip_ws();
      if (peek() == '.') {
        return true;
      }
    }
  }

  // ----------------------------------------------------------------- terms
  bool iri_ref(TermId& out) {
    skip_ws();
    if (peek() != '<') {
      return fail("expected <IRI>");
    }
    ++pos_;
    std::string iri;
    while (!eof() && peek() != '>') {
      iri += take();
    }
    if (!match_char('>')) {
      return fail("unterminated IRI");
    }
    // Resolve relative IRIs against @base (simple concatenation semantics:
    // enough for the sliced ontologies this subset targets).
    if (!base_.empty() && iri.find("://") == std::string::npos) {
      iri = base_ + iri;
    }
    out = dict_.intern_iri(iri);
    return true;
  }

  bool term(TermId& out, bool object_position) {
    skip_ws();
    const char c = peek();
    if (c == '<') {
      return iri_ref(out);
    }
    if (c == '_') {
      ++pos_;
      if (take() != ':') {
        return fail("malformed blank node");
      }
      std::string label;
      while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_' || peek() == '-')) {
        label += take();
      }
      if (label.empty()) {
        return fail("empty blank node label");
      }
      out = dict_.intern_blank(label);
      return true;
    }
    if (c == '"') {
      if (!object_position) {
        return fail("literal outside object position");
      }
      return literal(out);
    }
    if (c == '(' || c == '[') {
      return fail("collections/anonymous blank nodes are not supported");
    }
    if (object_position &&
        (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
         c == '+')) {
      return numeric_literal(out);
    }
    if (object_position && match_keyword("true")) {
      out = dict_.intern_literal(std::string("\"true\"^^<") +
                                 std::string(kXsdBoolean) + ">");
      return true;
    }
    if (object_position && match_keyword("false")) {
      out = dict_.intern_literal(std::string("\"false\"^^<") +
                                 std::string(kXsdBoolean) + ">");
      return true;
    }
    return prefixed_name(out);
  }

  bool literal(TermId& out) {
    std::string decorated;
    decorated += take();  // opening quote
    while (!eof() && peek() != '"') {
      const char c = take();
      decorated += c;
      if (c == '\\' && !eof()) {
        decorated += take();
      }
    }
    if (eof()) {
      return fail("unterminated literal");
    }
    decorated += take();  // closing quote
    // Optional @lang or ^^datatype.
    if (peek() == '@') {
      while (!eof() && !std::isspace(static_cast<unsigned char>(peek())) &&
             peek() != ';' && peek() != ',' && peek() != '.') {
        decorated += take();
      }
    } else if (peek() == '^') {
      ++pos_;
      if (take() != '^') {
        return fail("malformed datatype suffix");
      }
      TermId dt = kAnyTerm;
      skip_ws();
      if (peek() == '<') {
        if (!iri_ref(dt)) {
          return false;
        }
      } else if (!prefixed_name(dt)) {
        return false;
      }
      decorated += "^^<" + dict_.lexical(dt) + ">";
    }
    out = dict_.intern_literal(decorated);
    return true;
  }

  bool numeric_literal(TermId& out) {
    std::string digits;
    bool decimal = false;
    if (peek() == '-' || peek() == '+') {
      digits += take();
    }
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.')) {
      // A '.' followed by a non-digit is the statement terminator.
      if (peek() == '.') {
        if (pos_ + 1 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          break;
        }
        decimal = true;
      }
      digits += take();
    }
    if (digits.empty() || digits == "-" || digits == "+") {
      return fail("malformed number");
    }
    const std::string_view type = decimal ? kXsdDecimal : kXsdInteger;
    out = dict_.intern_literal("\"" + digits + "\"^^<" + std::string(type) +
                               ">");
    return true;
  }

  bool prefixed_name(TermId& out) {
    skip_ws();
    std::string prefix;
    while (!eof() && peek() != ':' &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_' || peek() == '-')) {
      prefix += take();
    }
    if (!match_char(':')) {
      return fail("expected prefixed name");
    }
    std::string local;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_' || peek() == '-' || peek() == '%')) {
      local += take();
    }
    const auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return fail("unknown prefix '" + prefix + "'");
    }
    out = dict_.intern_iri(it->second + local);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t error_pos_ = 0;
  std::size_t line_base_ = 0;
  std::size_t byte_base_ = 0;
  Dictionary& dict_;
  TripleStore& store_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
  std::string error_;
  ParseStats stats_;
};

}  // namespace

ParseStats parse_turtle(std::istream& in, Dictionary& dict,
                        TripleStore& store) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_turtle_text(buffer.str(), dict, store);
}

ParseStats parse_turtle_text(std::string_view text, Dictionary& dict,
                             TripleStore& store) {
  dict.reserve(Dictionary::estimate_terms(text.size()));
  return TurtleParser(text, dict, store).run();
}

ParseStats parse_turtle_fragment(std::string_view fragment, Dictionary& dict,
                                 TripleStore& store, const TurtleEnv& env,
                                 std::size_t line_base,
                                 std::size_t byte_base) {
  return TurtleParser(fragment, dict, store, env, line_base, byte_base).run();
}

TurtleSpans scan_turtle_spans(std::string_view text) {
  TurtleSpans spans;
  enum class State { kNormal, kComment, kLiteral, kIri };
  State state = State::kNormal;
  std::size_t newlines = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') ++newlines;
    switch (state) {
      case State::kComment:
        if (c == '\n') state = State::kNormal;
        break;
      case State::kLiteral:
        if (c == '\\') {
          // Escaped character: skip it (it may be an escaped quote).
          ++i;
          if (i < text.size() && text[i] == '\n') ++newlines;
        } else if (c == '"') {
          state = State::kNormal;
        }
        break;
      case State::kIri:
        if (c == '>') state = State::kNormal;
        break;
      case State::kNormal:
        if (c == '#') {
          state = State::kComment;
        } else if (c == '"') {
          state = State::kLiteral;
        } else if (c == '<') {
          state = State::kIri;
        } else if (c == '.') {
          // A '.' followed by a digit may be the fraction point of a
          // decimal literal, which the parser consumes mid-statement.
          // Skipping it only merges two spans — always safe.
          const bool digit_next =
              i + 1 < text.size() &&
              std::isdigit(static_cast<unsigned char>(text[i + 1]));
          if (!digit_next) {
            spans.ends.push_back(i + 1);
            spans.newlines.push_back(newlines);
          }
        }
        break;
    }
  }
  return spans;
}

bool turtle_span_declares(std::string_view span) {
  // Find the first token start (the parser's skip_ws also eats comments).
  std::size_t i = 0;
  while (i < span.size()) {
    const char c = span[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (c == '#') {
      while (i < span.size() && span[i] != '\n') ++i;
    } else {
      break;
    }
  }
  const std::string_view rest = span.substr(i);
  const auto starts_keyword = [&rest](std::string_view word) {
    if (rest.size() < word.size()) return false;
    for (std::size_t k = 0; k < word.size(); ++k) {
      if (std::tolower(static_cast<unsigned char>(rest[k])) !=
          std::tolower(static_cast<unsigned char>(word[k]))) {
        return false;
      }
    }
    // Same word-boundary rule as the parser's match_keyword: a longer
    // identifier or prefixed name is not the keyword.
    if (rest.size() > word.size()) {
      const char after = rest[word.size()];
      if (std::isalnum(static_cast<unsigned char>(after)) || after == '_' ||
          after == ':') {
        return false;
      }
    }
    return true;
  };
  return starts_keyword("@prefix") || starts_keyword("PREFIX") ||
         starts_keyword("@base") || starts_keyword("BASE");
}

TurtleEnv scan_turtle_env(std::string_view span, const TurtleEnv& env) {
  // Run the real parser against scratch tables: directive keyword matching,
  // relative-IRI resolution, and failure/recovery semantics are then exactly
  // those of a serial pass over the same bytes.
  Dictionary scratch_dict;
  TripleStore scratch_store;
  TurtleParser parser(span, scratch_dict, scratch_store, env);
  parser.run();
  return std::move(parser).env();
}

}  // namespace parowl::rdf
