#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

namespace {
const std::vector<TermId> kEmptyIds;
const std::vector<Triple> kEmptyTriples;
}  // namespace

TripleStore::TripleStore() = default;

bool TripleStore::insert(const Triple& t) {
  if (!set_.insert(t).second) {
    return false;
  }
  log_.push_back(t);
  auto [it, fresh] = by_predicate_.try_emplace(t.p);
  if (fresh) {
    predicates_.push_back(t.p);
  }
  PredicateIndex& idx = it->second;
  idx.triples.push_back(t);
  idx.objects_by_subject[t.s].push_back(t.o);
  idx.subjects_by_object[t.o].push_back(t.s);
  const auto log_index = static_cast<std::uint32_t>(log_.size() - 1);
  by_subject_[t.s].push_back(log_index);
  by_object_[t.o].push_back(log_index);
  return true;
}

void TripleStore::for_subject(
    TermId s, const std::function<void(const Triple&)>& fn) const {
  const auto it = by_subject_.find(s);
  if (it == by_subject_.end()) {
    return;
  }
  for (std::uint32_t i : it->second) {
    fn(log_[i]);
  }
}

void TripleStore::for_object(
    TermId o, const std::function<void(const Triple&)>& fn) const {
  const auto it = by_object_.find(o);
  if (it == by_object_.end()) {
    return;
  }
  for (std::uint32_t i : it->second) {
    fn(log_[i]);
  }
}

std::size_t TripleStore::insert_all(std::span<const Triple> ts) {
  std::size_t added = 0;
  for (const Triple& t : ts) {
    added += insert(t) ? 1 : 0;
  }
  return added;
}

bool TripleStore::contains(const Triple& t) const { return set_.contains(t); }

std::span<const Triple> TripleStore::with_predicate(TermId p) const {
  const auto it = by_predicate_.find(p);
  return it == by_predicate_.end() ? std::span<const Triple>(kEmptyTriples)
                                   : std::span<const Triple>(it->second.triples);
}

std::span<const TermId> TripleStore::objects(TermId p, TermId s) const {
  const auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) {
    return kEmptyIds;
  }
  const auto jt = it->second.objects_by_subject.find(s);
  return jt == it->second.objects_by_subject.end()
             ? std::span<const TermId>(kEmptyIds)
             : std::span<const TermId>(jt->second);
}

std::span<const TermId> TripleStore::subjects(TermId p, TermId o) const {
  const auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) {
    return kEmptyIds;
  }
  const auto jt = it->second.subjects_by_object.find(o);
  return jt == it->second.subjects_by_object.end()
             ? std::span<const TermId>(kEmptyIds)
             : std::span<const TermId>(jt->second);
}

void TripleStore::match(const TriplePattern& pattern,
                        const std::function<void(const Triple&)>& fn) const {
  const bool sb = pattern.s != kAnyTerm;
  const bool pb = pattern.p != kAnyTerm;
  const bool ob = pattern.o != kAnyTerm;

  if (sb && pb && ob) {
    const Triple t{pattern.s, pattern.p, pattern.o};
    if (contains(t)) {
      fn(t);
    }
    return;
  }
  if (pb && sb) {
    for (TermId o : objects(pattern.p, pattern.s)) {
      fn(Triple{pattern.s, pattern.p, o});
    }
    return;
  }
  if (pb && ob) {
    for (TermId s : subjects(pattern.p, pattern.o)) {
      fn(Triple{s, pattern.p, pattern.o});
    }
    return;
  }
  if (pb) {
    for (const Triple& t : with_predicate(pattern.p)) {
      fn(t);
    }
    return;
  }
  // Predicate unbound: use the subject/object log indexes when possible.
  if (sb) {
    for_subject(pattern.s, [&](const Triple& t) {
      if (!ob || t.o == pattern.o) {
        fn(t);
      }
    });
    return;
  }
  if (ob) {
    for_object(pattern.o, fn);
    return;
  }
  // Fully unbound: scan the log.
  for (const Triple& t : log_) {
    fn(t);
  }
}

std::size_t TripleStore::count(const TriplePattern& pattern) const {
  std::size_t n = 0;
  match(pattern, [&n](const Triple&) { ++n; });
  return n;
}

void TripleStore::clear() {
  log_.clear();
  set_.clear();
  by_predicate_.clear();
  predicates_.clear();
  by_subject_.clear();
  by_object_.clear();
}

}  // namespace parowl::rdf
