#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

TripleStore::TripleStore() = default;

// Copy/move are user-provided only because the lazy endpoint index carries
// an atomic watermark and a mutex.  Copying locks the source so a snapshot
// clone (serve::Updater's copy-on-update) is safe against concurrent
// readers lazily building the source's endpoint postings.
TripleStore::TripleStore(const TripleStore& other) { *this = other; }

TripleStore& TripleStore::operator=(const TripleStore& other) {
  if (this == &other) {
    return *this;
  }
  std::scoped_lock lock(other.endpoint_mu_);
  log_ = other.log_;
  set_ = other.set_;
  predicate_slot_ = other.predicate_slot_;
  predicate_arena_ = other.predicate_arena_;
  predicates_ = other.predicates_;
  subject_slot_ = other.subject_slot_;
  object_slot_ = other.object_slot_;
  subject_postings_ = other.subject_postings_;
  object_postings_ = other.object_postings_;
  endpoint_built_.store(other.endpoint_built_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  endpoint_builds_.store(
      other.endpoint_builds_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

TripleStore::TripleStore(TripleStore&& other) noexcept {
  *this = std::move(other);
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  log_ = std::move(other.log_);
  set_ = std::move(other.set_);
  predicate_slot_ = std::move(other.predicate_slot_);
  predicate_arena_ = std::move(other.predicate_arena_);
  predicates_ = std::move(other.predicates_);
  subject_slot_ = std::move(other.subject_slot_);
  object_slot_ = std::move(other.object_slot_);
  subject_postings_ = std::move(other.subject_postings_);
  object_postings_ = std::move(other.object_postings_);
  endpoint_built_.store(other.endpoint_built_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  endpoint_builds_.store(
      other.endpoint_builds_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  other.clear();
  return *this;
}

void TripleStore::build_endpoint_tail() const {
  std::scoped_lock lock(endpoint_mu_);
  std::size_t i = endpoint_built_.load(std::memory_order_relaxed);
  if (i < log_.size()) {
    endpoint_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  for (; i < log_.size(); ++i) {
    const Triple& t = log_[i];
    const auto log_index = static_cast<std::uint32_t>(i);
    list_for(subject_slot_, subject_postings_, t.s).push_back(log_index);
    list_for(object_slot_, object_postings_, t.o).push_back(log_index);
  }
  endpoint_built_.store(i, std::memory_order_release);
}

void TripleStore::for_subject(
    TermId s, const std::function<void(const Triple&)>& fn) const {
  for_subject_each(s, [&fn](const Triple& t) { fn(t); });
}

void TripleStore::for_object(
    TermId o, const std::function<void(const Triple&)>& fn) const {
  for_object_each(o, [&fn](const Triple& t) { fn(t); });
}

std::size_t TripleStore::insert_all(std::span<const Triple> ts) {
  std::size_t added = 0;
  for (const Triple& t : ts) {
    added += insert(t) ? 1 : 0;
  }
  return added;
}

void TripleStore::match(const TriplePattern& pattern,
                        const std::function<void(const Triple&)>& fn) const {
  match_each(pattern, [&fn](const Triple& t) { fn(t); });
}

std::size_t TripleStore::count(const TriplePattern& pattern) const {
  std::size_t n = 0;
  match_each(pattern, [&n](const Triple&) { ++n; });
  return n;
}

void TripleStore::clear() {
  log_.clear();
  set_.clear();
  predicate_slot_.clear();
  predicate_arena_.clear();
  predicates_.clear();
  subject_slot_.clear();
  object_slot_.clear();
  subject_postings_.clear();
  object_postings_.clear();
  endpoint_built_.store(0, std::memory_order_relaxed);
}

}  // namespace parowl::rdf
