#include "parowl/rdf/graph_stats.hpp"

#include <algorithm>
#include <unordered_map>

namespace parowl::rdf {

std::unordered_set<TermId> resource_nodes(const TripleStore& store,
                                          const Dictionary& dict) {
  std::unordered_set<TermId> nodes;
  nodes.reserve(store.size());
  for (const Triple& t : store.triples()) {
    nodes.insert(t.s);
    if (dict.is_resource(t.o)) {
      nodes.insert(t.o);
    }
  }
  return nodes;
}

GraphStats compute_graph_stats(const TripleStore& store,
                               const Dictionary& dict) {
  GraphStats gs;
  gs.triples = store.size();
  gs.predicates = store.predicates().size();

  std::unordered_map<TermId, std::size_t> degree;
  degree.reserve(store.size());
  for (const Triple& t : store.triples()) {
    if (dict.is_resource(t.o)) {
      ++degree[t.s];
      ++degree[t.o];
    } else {
      ++gs.literal_objects;
      degree.try_emplace(t.s);  // subject is still a vertex
    }
  }
  gs.nodes = degree.size();
  std::size_t total = 0;
  for (const auto& [node, d] : degree) {
    total += d;
    gs.max_degree = std::max(gs.max_degree, d);
  }
  gs.avg_degree = gs.nodes == 0 ? 0.0
                                : static_cast<double>(total) /
                                      static_cast<double>(gs.nodes);
  return gs;
}

}  // namespace parowl::rdf
