#include "parowl/rdf/chunked_reader.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "parowl/obs/obs.hpp"
#include "parowl/rdf/turtle.hpp"
#include "parowl/util/strings.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::rdf {
namespace {

/// Everything one parse worker produces.  Thread-local tables use local
/// TermIds; stats/diagnostics are local to the chunk until the merge rebases
/// them (N-Triples) — the Turtle fragment parser formats globally itself.
struct ChunkResult {
  Dictionary dict;
  TripleStore store;
  ParseStats stats;
  std::size_t lines = 0;  // lines scanned (N-Triples; for error rebasing)
};

unsigned resolve_threads(unsigned requested) {
  if (requested == 0) {
    requested = std::thread::hardware_concurrency();
  }
  return std::max(1u, requested);
}

/// Parse one newline-delimited region with exactly the semantics of the
/// getline loop in parse_ntriples.  Diagnostics record chunk-local
/// line/offset in first_error_line/first_error_offset; the message text is
/// kept raw in first_error for the merge to format.
void parse_ntriples_chunk(std::string_view chunk, ChunkResult& out) {
  out.dict.reserve(Dictionary::estimate_terms(chunk.size()));
  std::string error;
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    const std::size_t nl = chunk.find('\n', pos);
    const std::size_t end = nl == std::string_view::npos ? chunk.size() : nl;
    const std::string_view line = chunk.substr(pos, end - pos);
    const std::size_t line_start = pos;
    pos = nl == std::string_view::npos ? chunk.size() : nl + 1;
    ++out.lines;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    error.clear();
    if (const auto t = parse_ntriples_line(line, out.dict, &error)) {
      ++out.stats.triples;
      if (!out.store.insert(*t)) {
        ++out.stats.duplicates;
      }
    } else {
      ++out.stats.bad_lines;
      if (out.stats.first_error_line == 0) {
        out.stats.first_error = error;  // raw message; formatted at merge
        out.stats.first_error_line = out.lines;
        out.stats.first_error_offset = line_start;
      }
    }
  }
}

/// Run `fn(i)` for i in [0, n) on `threads` workers (inline when 1).
template <typename Fn>
void run_parallel(std::size_t n, unsigned threads, Fn&& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool.emplace_back([&fn, i] { fn(i); });
  }
  for (auto& t : pool) t.join();
}

/// Merge thread-local tables into the global ones, chunk order first —
/// this is what makes global ids equal the serial first-occurrence order.
/// Returns extra duplicates discovered across chunk boundaries.  After each
/// chunk's triples land in the store, the freshly appended slice of the
/// insertion log is handed to `sink` (when set) so streaming consumers see
/// the exact serial-order delta regardless of thread count.
std::size_t merge_chunks(std::vector<ChunkResult>& chunks, Dictionary& dict,
                         TripleStore& store,
                         const IngestOptions& options) {
  std::size_t total_terms = 0;
  for (const ChunkResult& c : chunks) total_terms += c.dict.size();
  dict.reserve(total_terms);
  std::size_t cross_duplicates = 0;
  std::vector<TermId> remap;
  for (ChunkResult& c : chunks) {
    dict.intern_batch(c.dict, remap);
    const std::size_t before = store.size();
    for (const Triple& t : c.store.triples()) {
      if (!store.insert({remap[t.s], remap[t.p], remap[t.o]})) {
        ++cross_duplicates;
      }
    }
    if (options.chunk_sink && store.size() > before) {
      options.chunk_sink(std::span<const Triple>(store.triples())
                             .subspan(before, store.size() - before));
    }
  }
  return cross_duplicates;
}

/// Serial-path variant: the whole appended range [before, size()) is one
/// chunk-sink delta.
void flush_serial_sink(const TripleStore& store, std::size_t before,
                       const IngestOptions& options) {
  if (options.chunk_sink && store.size() > before) {
    options.chunk_sink(std::span<const Triple>(store.triples())
                           .subspan(before, store.size() - before));
  }
}

void sum_stats(const std::vector<ChunkResult>& chunks, ParseStats& out) {
  for (const ChunkResult& c : chunks) {
    out.triples += c.stats.triples;
    out.duplicates += c.stats.duplicates;
    out.bad_lines += c.stats.bad_lines;
  }
}

}  // namespace

std::vector<std::size_t> chunk_newline_boundaries(std::string_view text,
                                                  unsigned chunks) {
  std::vector<std::size_t> bounds;
  bounds.push_back(0);
  if (chunks > 1 && !text.empty()) {
    const std::size_t target = text.size() / chunks;
    for (unsigned i = 1; i < chunks; ++i) {
      std::size_t want = std::max(bounds.back(), i * target);
      const std::size_t nl = text.find('\n', want);
      if (nl == std::string_view::npos) break;
      const std::size_t boundary = nl + 1;
      if (boundary > bounds.back() && boundary < text.size()) {
        bounds.push_back(boundary);
      }
    }
  }
  bounds.push_back(text.size());
  return bounds;
}

IngestStats ingest_ntriples(std::string_view text, Dictionary& dict,
                            TripleStore& store,
                            const IngestOptions& options) {
  IngestStats stats;
  stats.bytes = text.size();
  obs::configure(options.obs);
  obs::Span ingest_span("rdf.ingest",
                        {{"format", "ntriples"}, {"bytes", text.size()}});
  const unsigned threads = resolve_threads(options.threads);
  util::Stopwatch sw;
  if (threads == 1) {
    // Serial fast path: no thread-local tables, no merge — identical to
    // parse_ntriples by construction (same per-line loop).
    PAROWL_SPAN("rdf.parse", {{"chunks", 1}});
    const std::size_t before = store.size();
    std::istringstream in{std::string(text)};
    stats.parse = parse_ntriples(in, dict, store);
    flush_serial_sink(store, before, options);
    stats.parse_seconds = sw.elapsed_seconds();
    return stats;
  }

  std::vector<std::size_t> bounds;
  {
    PAROWL_SPAN("rdf.scan", {});
    bounds = chunk_newline_boundaries(text, threads);
  }
  stats.scan_seconds = sw.elapsed_seconds();
  const std::size_t n = bounds.size() - 1;
  std::vector<ChunkResult> chunks(n);
  sw.restart();
  {
    PAROWL_SPAN("rdf.parse", {{"chunks", n}});
    run_parallel(n, threads, [&](std::size_t i) {
      obs::Span chunk_span("rdf.parse.chunk",
                           {{"chunk", i},
                            {"bytes", bounds[i + 1] - bounds[i]}});
      parse_ntriples_chunk(text.substr(bounds[i], bounds[i + 1] - bounds[i]),
                           chunks[i]);
    });
  }
  stats.parse_seconds = sw.elapsed_seconds();
  stats.threads_used = static_cast<unsigned>(std::min<std::size_t>(threads, n));

  sw.restart();
  PAROWL_SPAN("rdf.merge", {{"chunks", n}});
  sum_stats(chunks, stats.parse);
  stats.parse.duplicates += merge_chunks(chunks, dict, store, options);
  // First malformed line, rebased to document-global line/byte numbers.
  std::size_t lines_before = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (chunks[i].stats.first_error_line != 0) {
      const std::size_t line = lines_before + chunks[i].stats.first_error_line;
      const std::size_t byte = bounds[i] + chunks[i].stats.first_error_offset;
      stats.parse.first_error =
          format_parse_error(line, byte, chunks[i].stats.first_error);
      stats.parse.first_error_line = line;
      stats.parse.first_error_offset = byte;
      break;
    }
    lines_before += chunks[i].lines;
  }
  stats.merge_seconds = sw.elapsed_seconds();
  return stats;
}

IngestStats ingest_turtle(std::string_view text, Dictionary& dict,
                          TripleStore& store, const IngestOptions& options) {
  IngestStats stats;
  stats.bytes = text.size();
  obs::configure(options.obs);
  obs::Span ingest_span("rdf.ingest",
                        {{"format", "turtle"}, {"bytes", text.size()}});
  const unsigned threads = resolve_threads(options.threads);
  util::Stopwatch sw;
  if (threads == 1) {
    PAROWL_SPAN("rdf.parse", {{"chunks", 1}});
    const std::size_t before = store.size();
    stats.parse = parse_turtle_text(text, dict, store);
    flush_serial_sink(store, before, options);
    stats.parse_seconds = sw.elapsed_seconds();
    return stats;
  }

  // Stage 1: conservative statement scan, chunk assembly, and the serial
  // environment pre-pass that gives every chunk the prefix/base state a
  // serial parse would have at its start.
  obs::Span scan_span("rdf.scan", {});
  const TurtleSpans spans = scan_turtle_spans(text);
  std::vector<std::size_t> bounds{0};
  std::vector<std::size_t> newline_base{0};
  if (!spans.ends.empty()) {
    const std::size_t target = std::max<std::size_t>(1, text.size() / threads);
    for (std::size_t j = 0; j + 1 < spans.ends.size(); ++j) {
      // Cut after span j when the current chunk is big enough.
      if (spans.ends[j] - bounds.back() >= target &&
          bounds.size() < static_cast<std::size_t>(threads)) {
        bounds.push_back(spans.ends[j]);
        newline_base.push_back(spans.newlines[j]);
      }
    }
  }
  bounds.push_back(text.size());

  const std::size_t n = bounds.size() - 1;
  std::vector<TurtleEnv> envs(n);
  {
    TurtleEnv env;
    std::size_t span_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      envs[i] = env;
      if (i + 1 == n) break;  // no successor needs the final environment
      // Advance the environment over every span inside chunk i.
      while (span_idx < spans.ends.size() &&
             spans.ends[span_idx] <= bounds[i + 1]) {
        const std::size_t begin =
            span_idx == 0 ? 0 : spans.ends[span_idx - 1];
        const std::string_view span =
            text.substr(begin, spans.ends[span_idx] - begin);
        if (turtle_span_declares(span)) {
          env = scan_turtle_env(span, env);
        }
        ++span_idx;
      }
    }
  }
  scan_span.close();
  stats.scan_seconds = sw.elapsed_seconds();

  // Stage 2: parallel fragment parsing into thread-local tables.
  std::vector<ChunkResult> chunks(n);
  sw.restart();
  {
    PAROWL_SPAN("rdf.parse", {{"chunks", n}});
    run_parallel(n, threads, [&](std::size_t i) {
      obs::Span chunk_span("rdf.parse.chunk",
                           {{"chunk", i},
                            {"bytes", bounds[i + 1] - bounds[i]}});
      chunks[i].dict.reserve(
          Dictionary::estimate_terms(bounds[i + 1] - bounds[i]));
      chunks[i].stats = parse_turtle_fragment(
          text.substr(bounds[i], bounds[i + 1] - bounds[i]), chunks[i].dict,
          chunks[i].store, envs[i], newline_base[i], bounds[i]);
    });
  }
  stats.parse_seconds = sw.elapsed_seconds();
  stats.threads_used = static_cast<unsigned>(std::min<std::size_t>(threads, n));

  // Stage 3: ordered merge.  Fragment diagnostics are already global.
  sw.restart();
  PAROWL_SPAN("rdf.merge", {{"chunks", n}});
  sum_stats(chunks, stats.parse);
  stats.parse.duplicates += merge_chunks(chunks, dict, store, options);
  for (const ChunkResult& c : chunks) {
    if (!c.stats.first_error.empty()) {
      stats.parse.first_error = c.stats.first_error;
      stats.parse.first_error_line = c.stats.first_error_line;
      stats.parse.first_error_offset = c.stats.first_error_offset;
      break;
    }
  }
  stats.merge_seconds = sw.elapsed_seconds();
  return stats;
}

bool ingest_file(const std::string& path, Dictionary& dict,
                 TripleStore& store, IngestStats& stats,
                 const IngestOptions& options, std::string* error) {
  obs::configure(options.obs);
  obs::Span read_span("rdf.read", {{"path", path}});
  util::Stopwatch sw;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string text;
  in.seekg(0, std::ios::end);
  const auto size = in.tellg();
  if (size > 0) {
    text.resize(static_cast<std::size_t>(size));
    in.seekg(0);
    if (!in.read(text.data(), size)) {
      if (error != nullptr) *error = "cannot read " + path;
      return false;
    }
  }
  const double read_seconds = sw.elapsed_seconds();
  read_span.close();
  const bool turtle = path.size() >= 4 && path.ends_with(".ttl");
  stats = turtle ? ingest_turtle(text, dict, store, options)
                 : ingest_ntriples(text, dict, store, options);
  stats.read_seconds = read_seconds;
  obs::publish(stats, "rdf.ingest");
  PAROWL_COUNT("rdf.triples_ingested", stats.parse.triples);
  return true;
}

obs::FieldList fields(const IngestStats& s) {
  obs::FieldList out = fields(s.parse);
  out.emplace_back("bytes", s.bytes);
  out.emplace_back("threads_used", s.threads_used);
  out.emplace_back("read_seconds", s.read_seconds);
  out.emplace_back("scan_seconds", s.scan_seconds);
  out.emplace_back("parse_seconds", s.parse_seconds);
  out.emplace_back("merge_seconds", s.merge_seconds);
  return out;
}

}  // namespace parowl::rdf
