#include "parowl/rdf/codec.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "parowl/util/strings.hpp"

namespace parowl::rdf::codec {

namespace {

constexpr std::uint8_t kBlockMagic = 0xB7;
constexpr std::uint64_t kSequenceSeed = 0x70617277626C6B31ULL;  // "parwblk1"
constexpr std::uint64_t kTermSeed = 0x7061727774726D31ULL;      // "parwtrm1"

bool fail(std::string* error, const char* msg) {
  if (error != nullptr) *error = msg;
  return false;
}

std::uint64_t triple_word(const Triple& t) {
  return util::mix64((static_cast<std::uint64_t>(t.s) << 32) ^
                     (static_cast<std::uint64_t>(t.p) << 16) ^ t.o);
}

/// Decode the delta payload of a block in place.  Kept separate so the
/// string_view and istream entry points share one implementation.
bool decode_payload(std::string_view payload, std::uint64_t count,
                    std::uint64_t checksum, std::vector<Triple>& out,
                    std::string* error) {
  Triple prev{};
  std::uint64_t digest = kSequenceSeed;
  const std::size_t base = out.size();
  out.reserve(base + count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Triple t;
    TermId* fields[3] = {&t.s, &t.p, &t.o};
    const TermId prevs[3] = {prev.s, prev.p, prev.o};
    for (int f = 0; f < 3; ++f) {
      std::uint64_t raw = 0;
      if (!get_varint(payload, raw)) {
        return fail(error, "truncated triple block payload");
      }
      const std::int64_t value =
          static_cast<std::int64_t>(prevs[f]) + zigzag_decode(raw);
      if (value < 0 || value > 0xFFFFFFFFLL) {
        return fail(error, "triple id out of range in block");
      }
      *fields[f] = static_cast<TermId>(value);
    }
    digest = util::mix64(digest ^ triple_word(t));
    out.push_back(t);
    prev = t;
  }
  if (!payload.empty()) {
    out.resize(base);
    return fail(error, "trailing bytes in triple block payload");
  }
  if (digest != checksum) {
    out.resize(base);
    return fail(error, "triple block checksum mismatch");
  }
  return true;
}

}  // namespace

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(std::string_view& in, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (in.empty()) return false;
    const auto byte = static_cast<std::uint8_t>(in.front());
    in.remove_prefix(1);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical 10th bytes that would overflow 64 bits.
      return shift < 63 || byte <= 1;
    }
  }
  return false;  // unterminated after 10 bytes
}

bool get_varint(std::istream& in, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) return false;
    const auto byte = static_cast<std::uint8_t>(c);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return shift < 63 || byte <= 1;
    }
  }
  return false;
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

bool get_u64le(std::string_view& in, std::uint64_t& v) {
  if (in.size() < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  in.remove_prefix(8);
  return true;
}

bool get_u64le(std::istream& in, std::uint64_t& v) {
  char buf[8];
  if (!in.read(buf, 8)) return false;
  std::string_view view(buf, 8);
  return get_u64le(view, v);
}

std::uint64_t sequence_digest(std::span<const Triple> ts) {
  std::uint64_t digest = kSequenceSeed;
  for (const Triple& t : ts) digest = util::mix64(digest ^ triple_word(t));
  return digest;
}

void encode_block(std::span<const Triple> ts, std::string& out) {
  std::string payload;
  payload.reserve(ts.size() * 6 + 8);
  Triple prev{};
  for (const Triple& t : ts) {
    put_varint(payload, zigzag_encode(static_cast<std::int64_t>(t.s) -
                                      static_cast<std::int64_t>(prev.s)));
    put_varint(payload, zigzag_encode(static_cast<std::int64_t>(t.p) -
                                      static_cast<std::int64_t>(prev.p)));
    put_varint(payload, zigzag_encode(static_cast<std::int64_t>(t.o) -
                                      static_cast<std::int64_t>(prev.o)));
    prev = t;
  }
  out.push_back(static_cast<char>(kBlockMagic));
  put_varint(out, ts.size());
  put_varint(out, payload.size());
  out += payload;
  put_u64le(out, sequence_digest(ts));
}

bool decode_block(std::string_view& in, std::vector<Triple>& out,
                  std::string* error) {
  if (in.empty()) return fail(error, "truncated triple block");
  if (static_cast<std::uint8_t>(in.front()) != kBlockMagic) {
    return fail(error, "bad triple block magic");
  }
  in.remove_prefix(1);
  std::uint64_t count = 0;
  std::uint64_t payload_len = 0;
  if (!get_varint(in, count) || !get_varint(in, payload_len)) {
    return fail(error, "truncated triple block header");
  }
  // Each triple needs at least 3 payload bytes; a cheap sanity bound that
  // stops hostile headers from reserving absurd vectors.
  if (count > payload_len && count != 0) {
    return fail(error, "triple block count/payload mismatch");
  }
  if (in.size() < payload_len + 8) {
    return fail(error, "truncated triple block");
  }
  const std::string_view payload = in.substr(0, payload_len);
  in.remove_prefix(payload_len);
  std::uint64_t checksum = 0;
  get_u64le(in, checksum);
  return decode_payload(payload, count, checksum, out, error);
}

bool read_block(std::istream& in, std::vector<Triple>& out,
                std::string* error) {
  const int magic = in.get();
  if (magic == std::char_traits<char>::eof()) {
    return fail(error, "truncated triple block");
  }
  if (static_cast<std::uint8_t>(magic) != kBlockMagic) {
    return fail(error, "bad triple block magic");
  }
  std::uint64_t count = 0;
  std::uint64_t payload_len = 0;
  if (!get_varint(in, count) || !get_varint(in, payload_len)) {
    return fail(error, "truncated triple block header");
  }
  if (count > payload_len && count != 0) {
    return fail(error, "triple block count/payload mismatch");
  }
  std::string payload;
  // Read in bounded slabs so a corrupt length cannot force one huge
  // allocation before the stream runs dry.
  std::uint64_t remaining = payload_len;
  while (remaining > 0) {
    const std::size_t slab =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 1 << 16));
    const std::size_t old = payload.size();
    payload.resize(old + slab);
    if (!in.read(payload.data() + old, static_cast<std::streamsize>(slab))) {
      return fail(error, "truncated triple block");
    }
    remaining -= slab;
  }
  std::uint64_t checksum = 0;
  if (!get_u64le(in, checksum)) return fail(error, "truncated triple block");
  return decode_payload(payload, count, checksum, out, error);
}

std::size_t write_blocks(std::ostream& out, std::span<const Triple> ts,
                         std::size_t block_triples) {
  if (block_triples == 0) block_triples = kBlockTriples;
  std::size_t bytes = 0;
  std::string buf;
  std::size_t off = 0;
  // An empty log still writes one (empty) block so readers always see at
  // least one checksummed unit.
  do {
    const std::size_t n = std::min(block_triples, ts.size() - off);
    buf.clear();
    encode_block(ts.subspan(off, n), buf);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    bytes += buf.size();
    off += n;
  } while (off < ts.size());
  return bytes;
}

bool read_blocks(std::istream& in, std::uint64_t expected,
                 const std::function<void(const Triple&)>& sink,
                 std::string* error) {
  std::uint64_t seen = 0;
  std::vector<Triple> block;
  bool first = true;
  while (seen < expected || first) {
    first = false;
    block.clear();
    if (!read_block(in, block, error)) return false;
    if (seen + block.size() > expected) {
      return fail(error, "triple block overruns declared count");
    }
    for (const Triple& t : block) sink(t);
    seen += block.size();
    if (block.empty() && seen < expected) {
      return fail(error, "empty triple block before declared count");
    }
  }
  return true;
}

std::size_t encoded_size(std::span<const Triple> ts) {
  std::ostringstream sink;
  return write_blocks(sink, ts);
}

std::size_t write_terms(std::ostream& out, const Dictionary& dict) {
  std::string buf;
  std::uint64_t digest = kTermSeed;
  std::string_view prev;
  std::size_t bytes = 0;
  for (TermId id = 1; id <= dict.size(); ++id) {
    const std::string& lex = dict.lexical(id);
    const TermKind kind = dict.kind(id);
    std::size_t shared = 0;
    const std::size_t limit = std::min(prev.size(), lex.size());
    while (shared < limit && prev[shared] == lex[shared]) ++shared;
    buf.clear();
    buf.push_back(static_cast<char>(kind));
    put_varint(buf, shared);
    put_varint(buf, lex.size() - shared);
    buf.append(lex, shared, lex.size() - shared);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    bytes += buf.size();
    digest = util::mix64(digest ^ util::fnv1a64(lex) ^
                         util::mix64(static_cast<std::uint64_t>(kind)));
    prev = lex;  // deque-backed storage: the reference stays valid
  }
  buf.clear();
  put_u64le(buf, digest);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  return bytes + buf.size();
}

bool read_terms(std::istream& in, std::uint64_t count, Dictionary& dict,
                std::string* error) {
  std::uint64_t digest = kTermSeed;
  std::string prev;
  std::string cur;
  dict.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const int kind_byte = in.get();
    if (kind_byte == std::char_traits<char>::eof()) {
      return fail(error, "truncated term entry");
    }
    if (kind_byte > static_cast<int>(TermKind::kLiteral)) {
      return fail(error, "invalid term kind");
    }
    const auto kind = static_cast<TermKind>(kind_byte);
    std::uint64_t shared = 0;
    std::uint64_t suffix_len = 0;
    if (!get_varint(in, shared) || !get_varint(in, suffix_len)) {
      return fail(error, "truncated term entry");
    }
    if (shared > prev.size()) {
      return fail(error, "invalid term prefix length");
    }
    cur.assign(prev, 0, static_cast<std::size_t>(shared));
    // Chunked read: never trust a length field with a single allocation.
    std::uint64_t remaining = suffix_len;
    while (remaining > 0) {
      const std::size_t slab =
          static_cast<std::size_t>(std::min<std::uint64_t>(remaining, 1 << 16));
      const std::size_t old = cur.size();
      cur.resize(old + slab);
      if (!in.read(cur.data() + old, static_cast<std::streamsize>(slab))) {
        return fail(error, "truncated term lexical");
      }
      remaining -= slab;
    }
    const TermId id = dict.intern(cur, kind);
    if (id != static_cast<TermId>(i + 1)) {
      return fail(error, "duplicate term in snapshot");
    }
    digest = util::mix64(digest ^ util::fnv1a64(cur) ^
                         util::mix64(static_cast<std::uint64_t>(kind)));
    std::swap(prev, cur);
  }
  std::uint64_t stored = 0;
  if (!get_u64le(in, stored)) return fail(error, "truncated term table");
  if (stored != digest) return fail(error, "term table checksum mismatch");
  return true;
}

}  // namespace parowl::rdf::codec
