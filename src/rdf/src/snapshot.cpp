#include "parowl/rdf/snapshot.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

namespace parowl::rdf {
namespace {

constexpr char kMagic[4] = {'P', 'A', 'R', 'O'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes{
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff),
      static_cast<char>((v >> 24) & 0xff)};
  out.write(bytes.data(), 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffULL));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  std::array<char, 4> bytes;
  if (!in.read(bytes.data(), 4)) {
    return false;
  }
  v = static_cast<std::uint8_t>(bytes[0]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3]))
       << 24);
  return true;
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  std::uint32_t lo = 0, hi = 0;
  if (!get_u32(in, lo) || !get_u32(in, hi)) {
    return false;
  }
  v = lo | (static_cast<std::uint64_t>(hi) << 32);
  return true;
}

bool set_error(std::string* error, std::string_view message) {
  if (error) {
    *error = std::string(message);
  }
  return false;
}

/// Read exactly `length` bytes into `out`, growing it chunk by chunk so a
/// corrupted length field (e.g. 4 GB in a truncated file) fails on the
/// stream instead of attempting one giant allocation up front.
bool read_lexical(std::istream& in, std::uint32_t length, std::string& out) {
  constexpr std::uint32_t kChunk = 1 << 16;
  out.clear();
  while (length > 0) {
    const std::uint32_t take = length < kChunk ? length : kChunk;
    const std::size_t old_size = out.size();
    out.resize(old_size + take);
    if (!in.read(out.data() + old_size,
                 static_cast<std::streamsize>(take))) {
      return false;
    }
    length -= take;
  }
  return true;
}

}  // namespace

SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store) {
  SnapshotStats stats;
  out.write(kMagic, 4);
  put_u32(out, kVersion);

  put_u64(out, dict.size());
  for (TermId id = 1; id <= dict.size(); ++id) {
    const std::string& lexical = dict.lexical(id);
    const char kind = static_cast<char>(dict.kind(id));
    out.write(&kind, 1);
    put_u32(out, static_cast<std::uint32_t>(lexical.size()));
    out.write(lexical.data(), static_cast<std::streamsize>(lexical.size()));
    ++stats.terms;
  }

  put_u64(out, store.size());
  for (const Triple& t : store.triples()) {
    put_u32(out, t.s);
    put_u32(out, t.p);
    put_u32(out, t.o);
    ++stats.triples;
  }
  return stats;
}

bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   std::string* error) {
  if (dict.size() != 0 || !store.empty()) {
    return set_error(error, "dictionary/store must be empty");
  }
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return set_error(error, "bad magic");
  }
  std::uint32_t version = 0;
  if (!get_u32(in, version) || version != kVersion) {
    return set_error(error, "unsupported snapshot version");
  }

  std::uint64_t terms = 0;
  if (!get_u64(in, terms)) {
    return set_error(error, "truncated term table");
  }
  std::string lexical;
  for (std::uint64_t i = 0; i < terms; ++i) {
    char kind_byte = 0;
    std::uint32_t length = 0;
    if (!in.read(&kind_byte, 1) || !get_u32(in, length)) {
      return set_error(error, "truncated term entry");
    }
    if (kind_byte < 0 || kind_byte > 2) {
      return set_error(error, "invalid term kind");
    }
    if (!read_lexical(in, length, lexical)) {
      return set_error(error, "truncated term lexical");
    }
    const TermId id =
        dict.intern(lexical, static_cast<TermKind>(kind_byte));
    if (id != i + 1) {
      return set_error(error, "duplicate term in snapshot");
    }
  }

  std::uint64_t triples = 0;
  if (!get_u64(in, triples)) {
    return set_error(error, "truncated triple count");
  }
  for (std::uint64_t i = 0; i < triples; ++i) {
    Triple t;
    if (!get_u32(in, t.s) || !get_u32(in, t.p) || !get_u32(in, t.o)) {
      return set_error(error, "truncated triple record");
    }
    if (t.s == kAnyTerm || t.s > terms || t.p == kAnyTerm || t.p > terms ||
        t.o == kAnyTerm || t.o > terms) {
      return set_error(error, "triple references unknown term");
    }
    store.insert(t);
  }
  return true;
}

}  // namespace parowl::rdf
