#include "parowl/rdf/snapshot.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

#include "parowl/rdf/codec.hpp"

namespace parowl::rdf {
namespace {

constexpr char kMagic[4] = {'P', 'A', 'R', 'O'};
constexpr std::uint32_t kVersion = 2;

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes{
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff),
      static_cast<char>((v >> 24) & 0xff)};
  out.write(bytes.data(), 4);
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  std::array<char, 4> bytes;
  if (!in.read(bytes.data(), 4)) {
    return false;
  }
  v = static_cast<std::uint8_t>(bytes[0]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3]))
       << 24);
  return true;
}

bool set_error(std::string* error, std::string_view message) {
  if (error) {
    *error = std::string(message);
  }
  return false;
}

void put_varint(std::ostream& out, std::uint64_t v) {
  std::string buf;
  codec::put_varint(buf, v);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

}  // namespace

SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store) {
  SnapshotStats stats;
  out.write(kMagic, 4);
  put_u32(out, kVersion);
  stats.bytes = 8;

  std::string head;
  codec::put_varint(head, dict.size());
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  stats.bytes += head.size();
  stats.bytes += codec::write_terms(out, dict);
  stats.terms = dict.size();

  put_varint(out, store.size());
  head.clear();
  codec::put_varint(head, store.size());
  stats.bytes += head.size();
  stats.bytes += codec::write_blocks(out, store.triples());
  stats.triples = store.size();
  return stats;
}

bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   std::string* error) {
  if (dict.size() != 0 || !store.empty()) {
    return set_error(error, "dictionary/store must be empty");
  }
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return set_error(error, "bad magic");
  }
  std::uint32_t version = 0;
  if (!get_u32(in, version) || version != kVersion) {
    return set_error(error, "unsupported snapshot version");
  }

  std::uint64_t terms = 0;
  if (!codec::get_varint(in, terms)) {
    return set_error(error, "truncated term table");
  }
  std::string codec_error;
  if (!codec::read_terms(in, terms, dict, &codec_error)) {
    return set_error(error, codec_error);
  }

  std::uint64_t triples = 0;
  if (!codec::get_varint(in, triples)) {
    return set_error(error, "truncated triple count");
  }
  bool in_range = true;
  const auto sink = [&store, &in_range, terms](const Triple& t) {
    if (t.s == kAnyTerm || t.s > terms || t.p == kAnyTerm || t.p > terms ||
        t.o == kAnyTerm || t.o > terms) {
      in_range = false;
      return;
    }
    store.insert(t);
  };
  if (!codec::read_blocks(in, triples, sink, &codec_error)) {
    return set_error(error, codec_error);
  }
  if (!in_range) {
    return set_error(error, "triple references unknown term");
  }
  // A shrunken triple count would otherwise silently drop trailing blocks.
  if (in.peek() != std::char_traits<char>::eof()) {
    return set_error(error, "trailing bytes after snapshot");
  }
  return true;
}

obs::FieldList fields(const SnapshotStats& s) {
  return {
      {"terms", s.terms},
      {"triples", s.triples},
      {"bytes", s.bytes},
  };
}

}  // namespace parowl::rdf
