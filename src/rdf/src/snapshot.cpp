#include "parowl/rdf/snapshot.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <ostream>

#include "parowl/rdf/codec.hpp"

namespace parowl::rdf {
namespace {

constexpr char kMagic[4] = {'P', 'A', 'R', 'O'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionEquality = 3;

/// SplitMix64 finalizer — same mixer the codec's block checksums use,
/// chained over every value of the equality trailer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> bytes{
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff),
      static_cast<char>((v >> 24) & 0xff)};
  out.write(bytes.data(), 4);
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  std::array<char, 4> bytes;
  if (!in.read(bytes.data(), 4)) {
    return false;
  }
  v = static_cast<std::uint8_t>(bytes[0]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3]))
       << 24);
  return true;
}

bool set_error(std::string* error, std::string_view message) {
  if (error) {
    *error = std::string(message);
  }
  return false;
}

void put_varint(std::ostream& out, std::uint64_t v) {
  std::string buf;
  codec::put_varint(buf, v);
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

/// Encode the equality trailer: four varint-counted sections, member ids
/// delta-encoded (export order is sorted by member), then the chained
/// digest over every encoded value.
std::string encode_equality(const EqualityClassMap& eq) {
  std::string buf;
  std::uint64_t digest = 0;
  const auto put = [&](std::uint64_t v) {
    codec::put_varint(buf, v);
    digest = mix64(digest ^ v);
  };
  put(eq.members.size());
  TermId prev = 0;
  for (const auto& [member, rep] : eq.members) {
    put(member - prev);
    put(rep);
    prev = member;
  }
  put(eq.literals.size());
  for (const auto& [rep, lit] : eq.literals) {
    put(rep);
    put(lit);
  }
  put(eq.self_terms.size());
  prev = 0;
  for (const TermId id : eq.self_terms) {
    put(id - prev);
    prev = id;
  }
  put(eq.raw_edges.size());
  for (const Triple& t : eq.raw_edges) {
    put(t.s);
    put(t.p);
    put(t.o);
  }
  codec::put_u64le(buf, digest);
  return buf;
}

bool decode_equality(std::istream& in, std::uint64_t terms,
                     EqualityClassMap& eq, std::string* error) {
  std::uint64_t digest = 0;
  bool ok = true;
  const auto get = [&]() -> std::uint64_t {
    std::uint64_t v = 0;
    if (!codec::get_varint(in, v)) {
      ok = false;
      return 0;
    }
    digest = mix64(digest ^ v);
    return v;
  };
  const auto valid_term = [terms](std::uint64_t id) {
    return id != kAnyTerm && id <= terms;
  };
  const std::uint64_t member_count = get();
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; ok && i < member_count; ++i) {
    const std::uint64_t member = prev + get();
    const std::uint64_t rep = get();
    if (!valid_term(member) || !valid_term(rep)) {
      return set_error(error, "equality map references unknown term");
    }
    eq.members.emplace_back(static_cast<TermId>(member),
                            static_cast<TermId>(rep));
    prev = member;
  }
  const std::uint64_t literal_count = get();
  for (std::uint64_t i = 0; ok && i < literal_count; ++i) {
    const std::uint64_t rep = get();
    const std::uint64_t lit = get();
    if (!valid_term(rep) || !valid_term(lit)) {
      return set_error(error, "equality map references unknown term");
    }
    eq.literals.emplace_back(static_cast<TermId>(rep),
                             static_cast<TermId>(lit));
  }
  const std::uint64_t self_count = get();
  prev = 0;
  for (std::uint64_t i = 0; ok && i < self_count; ++i) {
    const std::uint64_t id = prev + get();
    if (!valid_term(id)) {
      return set_error(error, "equality map references unknown term");
    }
    eq.self_terms.push_back(static_cast<TermId>(id));
    prev = id;
  }
  const std::uint64_t raw_count = get();
  for (std::uint64_t i = 0; ok && i < raw_count; ++i) {
    const std::uint64_t s = get();
    const std::uint64_t p = get();
    const std::uint64_t o = get();
    if (!valid_term(s) || !valid_term(p) || !valid_term(o)) {
      return set_error(error, "equality map references unknown term");
    }
    eq.raw_edges.push_back(Triple{static_cast<TermId>(s),
                                  static_cast<TermId>(p),
                                  static_cast<TermId>(o)});
  }
  if (!ok) {
    return set_error(error, "truncated equality map");
  }
  std::uint64_t expected = 0;
  if (!codec::get_u64le(in, expected) || expected != digest) {
    return set_error(error, "equality map digest mismatch");
  }
  return true;
}

}  // namespace

SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store,
                            const EqualityClassMap* equality) {
  const bool with_equality = equality != nullptr && !equality->empty();
  SnapshotStats stats;
  out.write(kMagic, 4);
  put_u32(out, with_equality ? kVersionEquality : kVersion);
  stats.bytes = 8;

  std::string head;
  codec::put_varint(head, dict.size());
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  stats.bytes += head.size();
  stats.bytes += codec::write_terms(out, dict);
  stats.terms = dict.size();

  put_varint(out, store.size());
  head.clear();
  codec::put_varint(head, store.size());
  stats.bytes += head.size();
  stats.bytes += codec::write_blocks(out, store.triples());
  stats.triples = store.size();

  if (with_equality) {
    const std::string trailer = encode_equality(*equality);
    out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
    stats.bytes += trailer.size();
  }
  return stats;
}

SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store) {
  return save_snapshot(out, dict, store, nullptr);
}

namespace {

bool load_snapshot_impl(std::istream& in, Dictionary& dict,
                        TripleStore& store, EqualityClassMap* equality,
                        std::string* error) {
  if (dict.size() != 0 || !store.empty()) {
    return set_error(error, "dictionary/store must be empty");
  }
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return set_error(error, "bad magic");
  }
  std::uint32_t version = 0;
  if (!get_u32(in, version) ||
      (version != kVersion && version != kVersionEquality)) {
    return set_error(error, "unsupported snapshot version");
  }
  if (version == kVersionEquality && equality == nullptr) {
    return set_error(error,
                     "snapshot carries an equality class map; load it "
                     "through an equality-aware reader");
  }

  std::uint64_t terms = 0;
  if (!codec::get_varint(in, terms)) {
    return set_error(error, "truncated term table");
  }
  std::string codec_error;
  if (!codec::read_terms(in, terms, dict, &codec_error)) {
    return set_error(error, codec_error);
  }

  std::uint64_t triples = 0;
  if (!codec::get_varint(in, triples)) {
    return set_error(error, "truncated triple count");
  }
  bool in_range = true;
  const auto sink = [&store, &in_range, terms](const Triple& t) {
    if (t.s == kAnyTerm || t.s > terms || t.p == kAnyTerm || t.p > terms ||
        t.o == kAnyTerm || t.o > terms) {
      in_range = false;
      return;
    }
    store.insert(t);
  };
  if (!codec::read_blocks(in, triples, sink, &codec_error)) {
    return set_error(error, codec_error);
  }
  if (!in_range) {
    return set_error(error, "triple references unknown term");
  }
  if (version == kVersionEquality &&
      !decode_equality(in, terms, *equality, error)) {
    return false;
  }
  // A shrunken triple count would otherwise silently drop trailing blocks.
  if (in.peek() != std::char_traits<char>::eof()) {
    return set_error(error, "trailing bytes after snapshot");
  }
  return true;
}

}  // namespace

bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   std::string* error) {
  return load_snapshot_impl(in, dict, store, nullptr, error);
}

bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   EqualityClassMap& equality, std::string* error) {
  equality = EqualityClassMap{};
  return load_snapshot_impl(in, dict, store, &equality, error);
}

obs::FieldList fields(const SnapshotStats& s) {
  return {
      {"terms", s.terms},
      {"triples", s.triples},
      {"bytes", s.bytes},
  };
}

}  // namespace parowl::rdf
