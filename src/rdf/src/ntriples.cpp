#include "parowl/rdf/ntriples.hpp"

#include <istream>
#include <ostream>

#include "parowl/util/strings.hpp"

namespace parowl::rdf {
namespace {

// '\r' counts as inline whitespace so CRLF input (and stray carriage
// returns mid-line) parses identically to LF input.
bool is_inline_ws(char c) { return c == ' ' || c == '\t' || c == '\r'; }

struct Cursor {
  std::string_view rest;

  void skip_ws() {
    while (!rest.empty() && is_inline_ws(rest.front())) {
      rest.remove_prefix(1);
    }
  }
};

/// Parse one term off the cursor.  Returns 0 on failure and sets *error.
TermId parse_term(Cursor& cur, Dictionary& dict, bool object_position,
                  std::string* error) {
  cur.skip_ws();
  if (cur.rest.empty()) {
    if (error) *error = "unexpected end of line";
    return kAnyTerm;
  }
  const char c = cur.rest.front();
  if (c == '<') {
    const auto end = cur.rest.find('>');
    if (end == std::string_view::npos) {
      if (error) *error = "unterminated IRI";
      return kAnyTerm;
    }
    const auto iri = cur.rest.substr(1, end - 1);
    cur.rest.remove_prefix(end + 1);
    return dict.intern_iri(iri);
  }
  if (c == '_') {
    if (cur.rest.size() < 3 || cur.rest[1] != ':') {
      if (error) *error = "malformed blank node";
      return kAnyTerm;
    }
    std::size_t end = 2;
    while (end < cur.rest.size() && !is_inline_ws(cur.rest[end])) {
      ++end;
    }
    const auto label = cur.rest.substr(2, end - 2);
    cur.rest.remove_prefix(end);
    return dict.intern_blank(label);
  }
  if (c == '"') {
    if (!object_position) {
      if (error) *error = "literal in subject/predicate position";
      return kAnyTerm;
    }
    // Find the closing quote, honoring backslash escapes.
    std::size_t end = 1;
    while (end < cur.rest.size()) {
      if (cur.rest[end] == '\\') {
        end += 2;
        continue;
      }
      if (cur.rest[end] == '"') {
        break;
      }
      ++end;
    }
    if (end >= cur.rest.size()) {
      if (error) *error = "unterminated literal";
      return kAnyTerm;
    }
    // Keep the full decorated literal (value + optional ^^type / @lang) as
    // the lexical form: OWL-Horst treats literals opaquely.
    std::size_t tail = end + 1;
    while (tail < cur.rest.size() && !is_inline_ws(cur.rest[tail])) {
      ++tail;
    }
    const auto lit = cur.rest.substr(0, tail);
    cur.rest.remove_prefix(tail);
    return dict.intern_literal(lit);
  }
  if (error) *error = std::string("unexpected character '") + c + "'";
  return kAnyTerm;
}

}  // namespace

std::optional<Triple> parse_ntriples_line(std::string_view line,
                                          Dictionary& dict,
                                          std::string* error) {
  const auto trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    return std::nullopt;
  }
  Cursor cur{trimmed};
  Triple t;
  t.s = parse_term(cur, dict, /*object_position=*/false, error);
  if (t.s == kAnyTerm) return std::nullopt;
  t.p = parse_term(cur, dict, /*object_position=*/false, error);
  if (t.p == kAnyTerm) return std::nullopt;
  t.o = parse_term(cur, dict, /*object_position=*/true, error);
  if (t.o == kAnyTerm) return std::nullopt;
  cur.skip_ws();
  if (cur.rest.empty() || cur.rest.front() != '.') {
    if (error) *error = "missing terminating '.'";
    return std::nullopt;
  }
  return t;
}

std::string format_parse_error(std::size_t line, std::size_t offset,
                               std::string_view message) {
  return "line " + std::to_string(line) + " (byte " + std::to_string(offset) +
         "): " + std::string(message);
}

ParseStats parse_ntriples(std::istream& in, Dictionary& dict,
                          TripleStore& store) {
  ParseStats stats;
  // Pre-size the intern index from the stream length when it is knowable
  // (files, string streams) — one big reservation instead of rehash churn.
  const auto start_pos = in.tellg();
  if (start_pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end_pos = in.tellg();
    in.seekg(start_pos);
    if (end_pos != std::istream::pos_type(-1) && end_pos > start_pos) {
      dict.reserve(Dictionary::estimate_terms(
          static_cast<std::size_t>(end_pos - start_pos)));
    }
  }
  std::string line;
  std::string error;
  std::size_t line_no = 0;
  std::size_t offset = 0;  // byte offset of the current line's first byte
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t line_start = offset;
    offset += line.size() + 1;  // +1 for the consumed '\n'
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    error.clear();
    if (const auto t = parse_ntriples_line(line, dict, &error)) {
      ++stats.triples;
      if (!store.insert(*t)) {
        ++stats.duplicates;
      }
    } else {
      ++stats.bad_lines;
      if (stats.first_error.empty()) {
        stats.first_error = format_parse_error(line_no, line_start, error);
        stats.first_error_line = line_no;
        stats.first_error_offset = line_start;
      }
    }
  }
  return stats;
}

std::string to_ntriples(const Triple& t, const Dictionary& dict) {
  auto render = [&dict](TermId id) -> std::string {
    const std::string& lex = dict.lexical(id);
    switch (dict.kind(id)) {
      case TermKind::kIri:
        return "<" + lex + ">";
      case TermKind::kBlank:
        return "_:" + lex;
      case TermKind::kLiteral:
        return lex;  // literals are stored fully decorated
    }
    return lex;
  };
  return render(t.s) + " " + render(t.p) + " " + render(t.o) + " .";
}

void write_ntriples(std::ostream& out, const TripleStore& store,
                    const Dictionary& dict) {
  for (const Triple& t : store.triples()) {
    out << to_ntriples(t, dict) << '\n';
  }
}

obs::FieldList fields(const ParseStats& s) {
  return {
      {"triples", s.triples},
      {"duplicates", s.duplicates},
      {"bad_lines", s.bad_lines},
      {"first_error", s.first_error},
  };
}

}  // namespace parowl::rdf
