#pragma once

#include <cstdint>
#include <functional>

namespace parowl::rdf {

/// Dense identifier for an interned RDF term.  Id 0 is reserved and acts as
/// the wildcard in triple patterns; real terms start at 1.
using TermId = std::uint32_t;

/// Wildcard for pattern matching ("match any term in this position").
inline constexpr TermId kAnyTerm = 0;

/// Syntactic category of a term.  OWL-Horst reasoning never needs full
/// datatype semantics, but partitioning must distinguish resources (IRIs and
/// blank nodes, which are graph vertices) from literals (which are not).
enum class TermKind : std::uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// An RDF triple over interned ids.  Plain value type: hashable, ordered,
/// trivially copyable — it is the unit of storage, communication, and
/// inference throughout the system.
struct Triple {
  TermId s = kAnyTerm;
  TermId p = kAnyTerm;
  TermId o = kAnyTerm;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

/// A triple pattern: any position may be kAnyTerm.
struct TriplePattern {
  TermId s = kAnyTerm;
  TermId p = kAnyTerm;
  TermId o = kAnyTerm;

  [[nodiscard]] bool matches(const Triple& t) const {
    return (s == kAnyTerm || s == t.s) && (p == kAnyTerm || p == t.p) &&
           (o == kAnyTerm || o == t.o);
  }
};

/// Hash functor for Triple (usable as std::unordered_* hasher).
struct TripleHash {
  std::size_t operator()(const Triple& t) const noexcept {
    // Mix the three 32-bit ids into one 64-bit word, then finalize.
    std::uint64_t h = (static_cast<std::uint64_t>(t.s) << 32) ^
                      (static_cast<std::uint64_t>(t.p) << 16) ^ t.o;
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31));
  }
};

}  // namespace parowl::rdf
