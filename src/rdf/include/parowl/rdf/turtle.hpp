#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Parser for the Turtle subset real ontology files use:
///   * @prefix / @base directives (and SPARQL-style PREFIX/BASE),
///   * prefixed names and <IRIs> (resolved against the base when relative),
///   * `a` for rdf:type,
///   * predicate lists (`;`) and object lists (`,`),
///   * quoted literals with ^^datatype / @lang, bare integers/decimals,
///     and true/false,
///   * `_:label` blank nodes and comments.
/// Not supported (rejected with a diagnostic): collections `( ... )` and
/// anonymous blank nodes `[ ... ]`.
///
/// Returns the same ParseStats as the N-Triples parser; parsing continues
/// after a malformed statement by skipping to the next '.'.
ParseStats parse_turtle(std::istream& in, Dictionary& dict,
                        TripleStore& store);

/// Convenience overload over in-memory text.
ParseStats parse_turtle_text(std::string_view text, Dictionary& dict,
                             TripleStore& store);

// ------------------------------------------------------- parallel-ingest API
// The pieces below exist so the chunked ingest pipeline (chunked_reader.hpp)
// can split a Turtle document into fragments that parse *identically* to one
// serial pass: a conservative statement scanner to find split points, an
// environment snapshot type, and a fragment parser seeded with that state.

/// Prefix/base state of the parser at some point in the document.
struct TurtleEnv {
  std::unordered_map<std::string, std::string> prefixes;
  std::string base;
};

/// Top-level statement boundaries of a Turtle document.  `ends[i]` is the
/// byte offset just past the i-th statement-terminating '.'; `newlines[i]`
/// counts '\n' in text[0, ends[i]).  The scanner tracks literals (with
/// backslash escapes), <IRIs>, and comments, and never reports a '.' that
/// the parser could consume mid-statement (in particular a '.' followed by
/// a digit, which may belong to a decimal literal) — so every reported end
/// is a position where the serial parser is exactly between statements.
struct TurtleSpans {
  std::vector<std::size_t> ends;
  std::vector<std::size_t> newlines;
};
TurtleSpans scan_turtle_spans(std::string_view text);

/// True if `span` could change the prefix/base environment, i.e. its first
/// statement is a directive.  Cheap pre-filter for scan_turtle_env.
[[nodiscard]] bool turtle_span_declares(std::string_view span);

/// Environment after serially parsing `span` starting from `env`.  Runs the
/// real parser against scratch tables so directive success/failure/recovery
/// semantics match a serial pass exactly; triples in the span are discarded.
[[nodiscard]] TurtleEnv scan_turtle_env(std::string_view span,
                                        const TurtleEnv& env);

/// Parse a document fragment with an explicit starting environment and
/// global position (line_base = '\n' count before the fragment, byte_base =
/// the fragment's byte offset) so diagnostics carry document-global
/// line/byte numbers identical to a serial parse.
ParseStats parse_turtle_fragment(std::string_view fragment, Dictionary& dict,
                                 TripleStore& store, const TurtleEnv& env,
                                 std::size_t line_base, std::size_t byte_base);

}  // namespace parowl::rdf
