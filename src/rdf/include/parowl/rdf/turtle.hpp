#pragma once

#include <iosfwd>
#include <string>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Parser for the Turtle subset real ontology files use:
///   * @prefix / @base directives (and SPARQL-style PREFIX/BASE),
///   * prefixed names and <IRIs> (resolved against the base when relative),
///   * `a` for rdf:type,
///   * predicate lists (`;`) and object lists (`,`),
///   * quoted literals with ^^datatype / @lang, bare integers/decimals,
///     and true/false,
///   * `_:label` blank nodes and comments.
/// Not supported (rejected with a diagnostic): collections `( ... )` and
/// anonymous blank nodes `[ ... ]`.
///
/// Returns the same ParseStats as the N-Triples parser; parsing continues
/// after a malformed statement by skipping to the next '.'.
ParseStats parse_turtle(std::istream& in, Dictionary& dict,
                        TripleStore& store);

/// Convenience overload over a string.
ParseStats parse_turtle_text(const std::string& text, Dictionary& dict,
                             TripleStore& store);

}  // namespace parowl::rdf
