#pragma once

// Open-addressing hash containers for the triple store's hot paths.
//
// Materialization inserts and probes triples tens of millions of times; the
// std::unordered_* node containers pay a heap allocation per key and a
// pointer chase per probe.  These replacements use linear probing over a
// power-of-two slot array (one cache line per average probe, no per-key
// allocation) and support exactly the operations datalog needs: insert and
// find — never erase, because materialization is monotone.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parowl/rdf/term.hpp"

namespace parowl::rdf {

/// Hash map from a nonzero TermId to a small value (an index into a stable
/// arena, a counter, ...).  Key 0 (kAnyTerm) marks an empty slot, so real
/// term ids — which start at 1 — are always storable.
template <typename Value>
class IdMap {
 public:
  [[nodiscard]] const Value* find(TermId key) const {
    assert(key != kAnyTerm);
    if (slots_.empty()) {
      return nullptr;
    }
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.key == key) {
        return &s.value;
      }
      if (s.key == kAnyTerm) {
        return nullptr;
      }
    }
  }

  /// Value for `key`, default-constructing it on first use.
  Value& operator[](TermId key) {
    assert(key != kAnyTerm);
    if (slots_.size() < 2 * (size_ + 1)) {
      grow();  // keeps load factor <= 1/2
    }
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) {
        return s.value;
      }
      if (s.key == kAnyTerm) {
        s.key = key;
        ++size_;
        return s.value;
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  void clear() {
    slots_.clear();
    size_ = 0;
    mask_ = 0;
  }

 private:
  struct Slot {
    TermId key = kAnyTerm;
    Value value{};
  };

  [[nodiscard]] std::size_t probe_start(TermId key) const {
    // Fibonacci hashing: dense sequential term ids spread over the table.
    return static_cast<std::size_t>(
               (static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ULL) >>
               32) &
           mask_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (Slot& s : old) {
      if (s.key == kAnyTerm) {
        continue;
      }
      for (std::size_t i = probe_start(s.key);; i = (i + 1) & mask_) {
        if (slots_[i].key == kAnyTerm) {
          slots_[i] = std::move(s);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// Append-only list of 32-bit ids with a small-size inline buffer: the
/// first kInline entries need no heap allocation.  The store's posting
/// lists ((p,s) -> objects, (p,o) -> subjects, endpoint log indices) are
/// overwhelmingly this short, so inserts skip the per-key allocation that
/// dominated the materializer's insert path.  Contiguity is preserved by
/// migrating to the spill vector on the first push past kInline, so view()
/// is always a single span; like a plain vector, a view is invalidated
/// only by a later push to the same list.
class SmallIdList {
 public:
  static constexpr std::size_t kInline = 4;

  void push_back(std::uint32_t v) {
    if (n_ < kInline) {
      inline_[n_++] = v;
      return;
    }
    if (n_ == kInline) {
      spill_.assign(inline_, inline_ + kInline);
    }
    spill_.push_back(v);
    ++n_;
  }

  [[nodiscard]] std::span<const std::uint32_t> view() const {
    return n_ <= kInline
               ? std::span<const std::uint32_t>(inline_, n_)
               : std::span<const std::uint32_t>(spill_.data(), spill_.size());
  }

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::uint32_t inline_[kInline] = {};
  std::uint32_t n_ = 0;
  std::vector<std::uint32_t> spill_;
};

/// Hash set of triples (all three ids nonzero; {0,0,0} marks an empty
/// slot).  The store's duplicate filter and the forward engine's
/// per-iteration seen-sets live here — the two hottest probe paths in the
/// whole system.
class TripleSet {
 public:
  /// Insert `t`; returns true if it was new.
  bool insert(const Triple& t) {
    assert(t.s != kAnyTerm && t.p != kAnyTerm && t.o != kAnyTerm);
    if (slots_.size() < 2 * (size_ + 1)) {
      grow();
    }
    for (std::size_t i = TripleHash{}(t)&mask_;; i = (i + 1) & mask_) {
      Triple& s = slots_[i];
      if (s == t) {
        return false;
      }
      if (s.s == kAnyTerm) {
        s = t;
        ++size_;
        return true;
      }
    }
  }

  [[nodiscard]] bool contains(const Triple& t) const {
    if (slots_.empty()) {
      return false;
    }
    for (std::size_t i = TripleHash{}(t)&mask_;; i = (i + 1) & mask_) {
      const Triple& s = slots_[i];
      if (s == t) {
        return true;
      }
      if (s.s == kAnyTerm) {
        return false;
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Drop all entries but keep the slot array — an O(capacity) memset,
  /// which is what the forward engine's per-iteration seen-sets want.
  void reset() {
    std::fill(slots_.begin(), slots_.end(), Triple{});
    size_ = 0;
  }

  void clear() {
    slots_.clear();
    size_ = 0;
    mask_ = 0;
  }

 private:
  void grow() {
    std::vector<Triple> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 32 : old.size() * 2;
    slots_.assign(cap, Triple{});
    mask_ = cap - 1;
    for (const Triple& t : old) {
      if (t.s == kAnyTerm) {
        continue;
      }
      for (std::size_t i = TripleHash{}(t)&mask_;; i = (i + 1) & mask_) {
        if (slots_[i].s == kAnyTerm) {
          slots_[i] = t;
          break;
        }
      }
    }
  }

  std::vector<Triple> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace parowl::rdf
