#pragma once

#include <iosfwd>
#include <string>

#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Binary knowledge-base snapshot: the dictionary (kinds + lexical forms)
/// followed by the triple log.  The point of a materialized KB is to
/// compute the closure once and reuse it; a snapshot reloads in O(data)
/// with no re-parsing and no re-inference.
///
/// Version 2 is built on the compact codec (codec.hpp) and is the same
/// format file transports and worker checkpoints use:
///   "PARO" magic, u32 version = 2,
///   varint term count, front-coded term table
///     (per term: u8 kind, varint shared-prefix, varint suffix len, bytes),
///   u64 term-table digest,
///   varint triple count, delta-encoded checksummed triple blocks.
/// Every byte after the magic is covered by a checksum (term digest or
/// block checksum), so corruption anywhere fails the load.  Version 1
/// (fixed-width records) is no longer readable.
struct SnapshotStats {
  std::size_t terms = 0;
  std::size_t triples = 0;
  std::size_t bytes = 0;  // encoded size of what save_snapshot wrote
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const SnapshotStats& s);

/// Write `dict` + `store` to `out`.  Returns stats; stream state signals
/// errors (check out.good()).
SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store);

/// Read a snapshot into `dict`/`store` (both must be empty).  Returns
/// false and sets *error on malformed input.
bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   std::string* error = nullptr);

}  // namespace parowl::rdf
