#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Serializable equality class map, persisted as the snapshot v3 trailer
/// alongside a rewrite-mode closure.  This is the wire form of
/// reason::EqualityManager (which lives above this layer); rdf only knows
/// how to encode/decode it with the codec primitives.
struct EqualityClassMap {
  /// (member, representative) for every tracked resource, sorted by member.
  std::vector<std::pair<TermId, TermId>> members;
  /// (representative, literal partner), sorted, deduplicated.
  std::vector<std::pair<TermId, TermId>> literals;
  /// Resources with an explicit reflexive sameAs edge, sorted.
  std::vector<TermId> self_terms;
  /// Asserted literal-subject sameAs triples, replayed verbatim at
  /// expansion (the store itself holds only canonical triples).
  std::vector<Triple> raw_edges;

  [[nodiscard]] bool empty() const {
    return members.empty() && literals.empty() && self_terms.empty() &&
           raw_edges.empty();
  }
};

/// Binary knowledge-base snapshot: the dictionary (kinds + lexical forms)
/// followed by the triple log.  The point of a materialized KB is to
/// compute the closure once and reuse it; a snapshot reloads in O(data)
/// with no re-parsing and no re-inference.
///
/// Version 2 is built on the compact codec (codec.hpp) and is the same
/// format file transports and worker checkpoints use:
///   "PARO" magic, u32 version = 2,
///   varint term count, front-coded term table
///     (per term: u8 kind, varint shared-prefix, varint suffix len, bytes),
///   u64 term-table digest,
///   varint triple count, delta-encoded checksummed triple blocks.
/// Every byte after the magic is covered by a checksum (term digest or
/// block checksum), so corruption anywhere fails the load.  Version 1
/// (fixed-width records) is no longer readable.
///
/// Version 3 appends the equality class map of a rewrite-mode closure
/// (EqualityClassMap): varint-counted sections of member/representative
/// pairs (member ids delta-encoded), literal-partner pairs, self terms,
/// and raw edges, followed by a u64 digest over the whole trailer.
/// Snapshots without a class map are always written as v2 — byte-identical
/// to previous releases — and a v3 snapshot refuses to load through the
/// map-unaware entry point (silently dropping the map would change query
/// answers).
struct SnapshotStats {
  std::size_t terms = 0;
  std::size_t triples = 0;
  std::size_t bytes = 0;  // encoded size of what save_snapshot wrote
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const SnapshotStats& s);

/// Write `dict` + `store` to `out`.  Returns stats; stream state signals
/// errors (check out.good()).
SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store);

/// Write `dict` + `store` + the equality class map.  Writes v3 when
/// `equality` is non-null and non-empty, byte-identical v2 otherwise.
SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store,
                            const EqualityClassMap* equality);

/// Read a snapshot into `dict`/`store` (both must be empty).  Returns
/// false and sets *error on malformed input.  Rejects v3 snapshots (their
/// answers are only correct expanded through the class map); use the
/// overload below for those.
bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   std::string* error = nullptr);

/// Read a v2 or v3 snapshot; on v3 the class map lands in `equality`
/// (cleared first; empty after a v2 load).
bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   EqualityClassMap& equality, std::string* error = nullptr);

}  // namespace parowl::rdf
