#pragma once

#include <iosfwd>
#include <string>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Binary knowledge-base snapshot: the dictionary (kinds + lexical forms)
/// followed by the triple log as id-encoded records.  The point of a
/// materialized KB is to compute the closure once and reuse it; a snapshot
/// reloads in O(data) with no re-parsing and no re-inference.
///
/// The format is little-endian and versioned:
///   "PARO" magic, u32 version,
///   u64 term count, then per term: u8 kind, u32 length, bytes,
///   u64 triple count, then per triple: 3 x u32 ids.
struct SnapshotStats {
  std::size_t terms = 0;
  std::size_t triples = 0;
};

/// Write `dict` + `store` to `out`.  Returns stats; stream state signals
/// errors (check out.good()).
SnapshotStats save_snapshot(std::ostream& out, const Dictionary& dict,
                            const TripleStore& store);

/// Read a snapshot into `dict`/`store` (both must be empty).  Returns
/// std::nullopt-like empty stats and sets *error on malformed input.
bool load_snapshot(std::istream& in, Dictionary& dict, TripleStore& store,
                   std::string* error = nullptr);

}  // namespace parowl::rdf
