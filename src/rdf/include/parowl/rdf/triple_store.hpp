#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "parowl/rdf/flat_index.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::rdf {

/// Append-only, duplicate-free triple store with the indexes the inference
/// engines need.
///
/// Datalog materialization is monotone: triples are only ever added, never
/// retracted, so the store keeps an insertion-ordered log (used by the
/// semi-naive engine to address deltas by index range) plus three access
/// paths:
///   * by predicate                    — with_predicate(p)
///   * by (predicate, subject) -> objects  — objects(p, s)
///   * by (predicate, object)  -> subjects — subjects(p, o)
/// which are exactly the probes a single-join rule body performs.
///
/// All indexes are open-addressing IdMaps (flat_index.hpp) pointing into
/// deque arenas: probes touch one cache line on average and inserts do no
/// per-key node allocation, while the posting lists themselves stay
/// pointer-stable — a span returned by objects()/subjects()/with_predicate()
/// is invalidated only when a triple with the same key is inserted, exactly
/// as with the node-based containers this replaced.
class TripleStore {
 public:
  TripleStore();
  TripleStore(const TripleStore& other);
  TripleStore& operator=(const TripleStore& other);
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// Insert a triple; returns true if it was new, false on duplicate.
  ///
  /// Only the predicate-keyed join indexes are updated eagerly; the
  /// subject/object endpoint postings — needed solely for unbound-predicate
  /// probes — are rebuilt on demand (ensure_endpoint_index), which keeps
  /// the materializer's insert path to three index touches.
  bool insert(const Triple& t) {
    if (!set_.insert(t)) {
      return false;
    }
    log_.push_back(t);
    std::uint32_t& pslot = predicate_slot_[t.p];
    if (pslot == 0) {
      predicate_arena_.emplace_back();
      pslot = static_cast<std::uint32_t>(predicate_arena_.size());
      predicates_.push_back(t.p);
    }
    PredicateIndex& idx = predicate_arena_[pslot - 1];
    idx.triples.push_back(t);
    list_for(idx.objects_slot, idx.obj_lists, t.s).push_back(t.o);
    list_for(idx.subjects_slot, idx.subj_lists, t.o).push_back(t.s);
    return true;
  }

  /// Insert every triple from `ts`; returns the number actually added.
  std::size_t insert_all(std::span<const Triple> ts);

  [[nodiscard]] bool contains(const Triple& t) const {
    return set_.contains(t);
  }
  [[nodiscard]] std::size_t size() const { return log_.size(); }
  [[nodiscard]] bool empty() const { return log_.empty(); }

  /// Insertion-ordered log of all triples.  The range [from, size()) is the
  /// delta added since a previous checkpoint at `from`.
  [[nodiscard]] const std::vector<Triple>& triples() const { return log_; }

  /// All triples with predicate `p` in insertion order.
  [[nodiscard]] std::span<const Triple> with_predicate(TermId p) const {
    const PredicateIndex* idx = find_predicate(p);
    return idx ? std::span<const Triple>(idx->triples)
               : std::span<const Triple>();
  }

  /// Objects o such that (s, p, o) is present.
  [[nodiscard]] std::span<const TermId> objects(TermId p, TermId s) const {
    const PredicateIndex* idx = find_predicate(p);
    if (idx == nullptr) {
      return {};
    }
    const std::uint32_t* slot = idx->objects_slot.find(s);
    return slot != nullptr ? idx->obj_lists[*slot - 1].view()
                           : std::span<const TermId>();
  }

  /// Subjects s such that (s, p, o) is present.
  [[nodiscard]] std::span<const TermId> subjects(TermId p, TermId o) const {
    const PredicateIndex* idx = find_predicate(p);
    if (idx == nullptr) {
      return {};
    }
    const std::uint32_t* slot = idx->subjects_slot.find(o);
    return slot != nullptr ? idx->subj_lists[*slot - 1].view()
                           : std::span<const TermId>();
  }

  /// Distinct predicates present, in first-seen order.
  [[nodiscard]] const std::vector<TermId>& predicates() const {
    return predicates_;
  }

  /// Invoke `fn` for every triple with subject `s` (any predicate).
  void for_subject(TermId s, const std::function<void(const Triple&)>& fn) const;

  /// Invoke `fn` for every triple with object `o` (any predicate).
  void for_object(TermId o, const std::function<void(const Triple&)>& fn) const;

  /// Invoke `fn(triple)` for every stored triple matching `pattern`,
  /// choosing the cheapest available index.
  void match(const TriplePattern& pattern,
             const std::function<void(const Triple&)>& fn) const;

  /// Devirtualized equivalents of for_subject / for_object / match: the
  /// callback is a template parameter, so the per-triple call is inlined
  /// with no std::function allocation or indirect branch.  These are the
  /// hot-path entry points for the forward engine's joins; the
  /// std::function overloads above are thin wrappers kept for callers that
  /// need type erasure (query layer, tools).
  template <typename Fn>
  void for_subject_each(TermId s, Fn&& fn) const {
    ensure_endpoint_index();
    const std::uint32_t* slot = subject_slot_.find(s);
    if (slot == nullptr) {
      return;
    }
    for (std::uint32_t i : subject_postings_[*slot - 1].view()) {
      fn(log_[i]);
    }
  }

  template <typename Fn>
  void for_object_each(TermId o, Fn&& fn) const {
    ensure_endpoint_index();
    const std::uint32_t* slot = object_slot_.find(o);
    if (slot == nullptr) {
      return;
    }
    for (std::uint32_t i : object_postings_[*slot - 1].view()) {
      fn(log_[i]);
    }
  }

  template <typename Fn>
  void match_each(const TriplePattern& pattern, Fn&& fn) const {
    const bool sb = pattern.s != kAnyTerm;
    const bool pb = pattern.p != kAnyTerm;
    const bool ob = pattern.o != kAnyTerm;

    if (sb && pb && ob) {
      const Triple t{pattern.s, pattern.p, pattern.o};
      if (contains(t)) {
        fn(t);
      }
      return;
    }
    if (pb && sb) {
      for (TermId o : objects(pattern.p, pattern.s)) {
        fn(Triple{pattern.s, pattern.p, o});
      }
      return;
    }
    if (pb && ob) {
      for (TermId s : subjects(pattern.p, pattern.o)) {
        fn(Triple{s, pattern.p, pattern.o});
      }
      return;
    }
    if (pb) {
      for (const Triple& t : with_predicate(pattern.p)) {
        fn(t);
      }
      return;
    }
    // Predicate unbound: use the subject/object log indexes when possible.
    if (sb) {
      for_subject_each(pattern.s, [&](const Triple& t) {
        if (!ob || t.o == pattern.o) {
          fn(t);
        }
      });
      return;
    }
    if (ob) {
      for_object_each(pattern.o, std::forward<Fn>(fn));
      return;
    }
    // Fully unbound: scan the log.
    for (const Triple& t : log_) {
      fn(t);
    }
  }

  /// Count matches without materializing them.
  [[nodiscard]] std::size_t count(const TriplePattern& pattern) const;

  /// Number of lazy endpoint-index (re)builds this store has performed.
  /// Monotone across clear() — the forward engine's rewrite mode rebuilds
  /// the store mid-run and asserts the delta over a whole run stays zero
  /// (nothing should probe with an unbound predicate in representative
  /// space), so clearing the log must not reset the evidence.
  [[nodiscard]] std::size_t endpoint_index_builds() const {
    return endpoint_builds_.load(std::memory_order_relaxed);
  }

  /// Remove everything (used when a worker rebuilds its base partition).
  void clear();

 private:
  struct PredicateIndex {
    std::vector<Triple> triples;  // insertion order within this predicate
    // subject -> objects and object -> subjects posting lists.  The IdMap
    // stores arena_index + 1 (0 = absent); the lists live in deques so they
    // never move when the slot table rehashes.
    IdMap<std::uint32_t> objects_slot;
    IdMap<std::uint32_t> subjects_slot;
    std::deque<SmallIdList> obj_lists;
    std::deque<SmallIdList> subj_lists;
  };

  template <typename List>
  static List& list_for(IdMap<std::uint32_t>& slots, std::deque<List>& arena,
                        TermId key) {
    std::uint32_t& slot = slots[key];
    if (slot == 0) {
      arena.emplace_back();
      slot = static_cast<std::uint32_t>(arena.size());
    }
    return arena[slot - 1];
  }

  [[nodiscard]] const PredicateIndex* find_predicate(TermId p) const {
    const std::uint32_t* slot = predicate_slot_.find(p);
    return slot != nullptr ? &predicate_arena_[*slot - 1] : nullptr;
  }

  /// Bring the subject/object endpoint postings up to date with the log.
  /// Thread-safe against concurrent readers (double-checked under
  /// endpoint_mu_); writers are exclusive by the store's usual contract.
  void ensure_endpoint_index() const {
    if (endpoint_built_.load(std::memory_order_acquire) != log_.size()) {
      build_endpoint_tail();
    }
  }
  void build_endpoint_tail() const;

  std::vector<Triple> log_;
  TripleSet set_;
  IdMap<std::uint32_t> predicate_slot_;  // predicate -> arena index + 1
  std::deque<PredicateIndex> predicate_arena_;
  std::vector<TermId> predicates_;
  // Log indices per subject / per object, for queries with an unbound
  // predicate ((s ? ?), (? ? o)).  Only two families of callers probe this
  // way: the backward engine, and the naive sameAs rules (rdfp6/7/11a/11b
  // pivot on wildcard predicates).  Under equality_mode = rewrite those
  // rules are dropped and forward closure must never touch these postings —
  // ForwardStats::endpoint_index_builds counts builds so tests can pin
  // that.  Built lazily, on first such probe, so the insert hot path never
  // pays for them; `mutable` because the rebuild happens under const
  // accessors.
  mutable IdMap<std::uint32_t> subject_slot_;
  mutable IdMap<std::uint32_t> object_slot_;
  mutable std::deque<SmallIdList> subject_postings_;
  mutable std::deque<SmallIdList> object_postings_;
  mutable std::atomic<std::size_t> endpoint_built_{0};
  mutable std::atomic<std::size_t> endpoint_builds_{0};
  mutable std::mutex endpoint_mu_;
};

}  // namespace parowl::rdf
