#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "parowl/rdf/term.hpp"

namespace parowl::rdf {

/// Append-only, duplicate-free triple store with the indexes the inference
/// engines need.
///
/// Datalog materialization is monotone: triples are only ever added, never
/// retracted, so the store keeps an insertion-ordered log (used by the
/// semi-naive engine to address deltas by index range) plus three access
/// paths:
///   * by predicate                    — with_predicate(p)
///   * by (predicate, subject) -> objects  — objects(p, s)
///   * by (predicate, object)  -> subjects — subjects(p, o)
/// which are exactly the probes a single-join rule body performs.
class TripleStore {
 public:
  TripleStore();

  /// Insert a triple; returns true if it was new, false on duplicate.
  bool insert(const Triple& t);

  /// Insert every triple from `ts`; returns the number actually added.
  std::size_t insert_all(std::span<const Triple> ts);

  [[nodiscard]] bool contains(const Triple& t) const;
  [[nodiscard]] std::size_t size() const { return log_.size(); }
  [[nodiscard]] bool empty() const { return log_.empty(); }

  /// Insertion-ordered log of all triples.  The range [from, size()) is the
  /// delta added since a previous checkpoint at `from`.
  [[nodiscard]] const std::vector<Triple>& triples() const { return log_; }

  /// All triples with predicate `p` in insertion order.
  [[nodiscard]] std::span<const Triple> with_predicate(TermId p) const;

  /// Objects o such that (s, p, o) is present.
  [[nodiscard]] std::span<const TermId> objects(TermId p, TermId s) const;

  /// Subjects s such that (s, p, o) is present.
  [[nodiscard]] std::span<const TermId> subjects(TermId p, TermId o) const;

  /// Distinct predicates present, in first-seen order.
  [[nodiscard]] const std::vector<TermId>& predicates() const {
    return predicates_;
  }

  /// Invoke `fn` for every triple with subject `s` (any predicate).
  void for_subject(TermId s, const std::function<void(const Triple&)>& fn) const;

  /// Invoke `fn` for every triple with object `o` (any predicate).
  void for_object(TermId o, const std::function<void(const Triple&)>& fn) const;

  /// Invoke `fn(triple)` for every stored triple matching `pattern`,
  /// choosing the cheapest available index.
  void match(const TriplePattern& pattern,
             const std::function<void(const Triple&)>& fn) const;

  /// Count matches without materializing them.
  [[nodiscard]] std::size_t count(const TriplePattern& pattern) const;

  /// Remove everything (used when a worker rebuilds its base partition).
  void clear();

 private:
  struct PredicateIndex {
    std::vector<Triple> triples;  // insertion order within this predicate
    std::unordered_map<TermId, std::vector<TermId>> objects_by_subject;
    std::unordered_map<TermId, std::vector<TermId>> subjects_by_object;
  };

  std::vector<Triple> log_;
  std::unordered_set<Triple, TripleHash> set_;
  std::unordered_map<TermId, PredicateIndex> by_predicate_;
  std::vector<TermId> predicates_;
  // Log indices per subject / per object, for queries with an unbound
  // predicate ((s ? ?), (? ? o)) which the backward engine and the generic
  // sameAs rules issue.
  std::unordered_map<TermId, std::vector<std::uint32_t>> by_subject_;
  std::unordered_map<TermId, std::vector<std::uint32_t>> by_object_;
};

}  // namespace parowl::rdf
