#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "parowl/rdf/term.hpp"

namespace parowl::rdf {

/// Interns RDF term lexical forms to dense TermIds and back.
///
/// The dictionary is built once (by the master, while loading/generating the
/// data-set) and then shared read-only by all partitions, so lookups after
/// the build phase are safe from any thread.  Lexical forms are stored
/// undecorated: IRIs without angle brackets, literals without quotes, blank
/// nodes without the "_:" prefix; `TermKind` carries the category.
class Dictionary {
 public:
  Dictionary();

  /// Intern `lexical` with the given kind; returns the existing id if the
  /// (lexical, kind) pair is already present.
  TermId intern(std::string_view lexical, TermKind kind);

  /// Convenience wrappers.
  TermId intern_iri(std::string_view iri) { return intern(iri, TermKind::kIri); }
  TermId intern_blank(std::string_view label) {
    return intern(label, TermKind::kBlank);
  }
  TermId intern_literal(std::string_view lit) {
    return intern(lit, TermKind::kLiteral);
  }

  /// Pre-size the intern index for roughly `expected_terms` additional
  /// terms, cutting rehash churn during bulk loads.  Never shrinks and has
  /// no observable effect on ids or iteration order.
  void reserve(std::size_t expected_terms);

  /// Estimate of term count for a serialization of `input_bytes` bytes
  /// (N-Triples/Turtle).  Deliberately generous: over-reserving buckets is
  /// cheap, rehashing mid-load is not.
  [[nodiscard]] static std::size_t estimate_terms(std::size_t input_bytes) {
    return input_bytes / 96 + 16;
  }

  /// Bulk-merge every term of `other` (in its id order) into this
  /// dictionary.  `remap` maps the other dictionary's ids to this one's:
  /// remap[id_in_other] == id_here, with remap[0] == kAnyTerm.  Used by the
  /// parallel ingest merge phase: merging thread-local dictionaries in
  /// chunk order reproduces the serial first-occurrence id assignment.
  void intern_batch(const Dictionary& other, std::vector<TermId>& remap);

  /// Look up an existing term; returns kAnyTerm (0) if absent.
  [[nodiscard]] TermId find(std::string_view lexical, TermKind kind) const;
  [[nodiscard]] TermId find_iri(std::string_view iri) const {
    return find(iri, TermKind::kIri);
  }

  /// Lexical form of an interned id.  Precondition: 1 <= id <= size().
  [[nodiscard]] const std::string& lexical(TermId id) const;

  /// Kind of an interned id.  Precondition: 1 <= id <= size().
  [[nodiscard]] TermKind kind(TermId id) const;

  /// True iff the term is an IRI or blank node (a graph vertex).
  [[nodiscard]] bool is_resource(TermId id) const {
    return kind(id) != TermKind::kLiteral;
  }

  /// Number of interned terms (ids run 1..size()).
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string lexical;
    TermKind kind;
  };

  struct Key {
    std::string_view lexical;
    TermKind kind;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  // Entries live in a deque so string_views held by the map stay valid as
  // the dictionary grows.
  std::deque<Entry> entries_;
  std::unordered_map<Key, TermId, KeyHash> index_;
};

}  // namespace parowl::rdf
