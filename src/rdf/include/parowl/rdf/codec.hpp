#pragma once

// Compact binary triple codec — the single wire/disk format of the data
// plane.  Snapshots, file-transport batch envelopes, and worker checkpoints
// all serialize triples as *blocks*:
//
//   +------+---------------+---------------------+------------------+
//   | 0xB7 | varint count  | varint payload_len  | payload ...      |
//   +------+---------------+---------------------+------------------+
//   | u64 checksum (chained SplitMix64 over the decoded sequence)   |
//   +----------------------------------------------------------------+
//
// The payload stores, per triple, the zigzag-varint *delta* of each field
// against the previous triple (s against previous s, p against p, o against
// o; the first triple deltas against 0).  Sorted blocks compress best, but
// the encoding is order-preserving, so insertion-ordered logs round-trip
// bit-identically.  The trailing checksum is order-sensitive: a decoded
// block is guaranteed to be the exact sequence that was encoded, so a bit
// flip, truncation, or splice anywhere in the block fails decode.
//
// Dictionaries are serialized as front-coded term tables (shared prefix
// length + suffix per term — IRIs share long namespace prefixes) with a
// trailing content digest covering every kind and lexical form.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/term.hpp"

namespace parowl::rdf::codec {

// ---------------------------------------------------------------- varints

/// Append `v` as a LEB128 varint (1..10 bytes).
void put_varint(std::string& out, std::uint64_t v);

/// Parse one varint off the front of `in`; false on truncation/overflow.
bool get_varint(std::string_view& in, std::uint64_t& v);

/// Read one varint from a stream; false on truncation/overflow.
bool get_varint(std::istream& in, std::uint64_t& v);

/// Append `v` as 8 little-endian bytes.
void put_u64le(std::string& out, std::uint64_t v);

/// Parse 8 little-endian bytes off the front of `in`.
bool get_u64le(std::string_view& in, std::uint64_t& v);
bool get_u64le(std::istream& in, std::uint64_t& v);

/// Zigzag mapping: small signed deltas become small unsigned varints.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// ----------------------------------------------------------- triple blocks

/// Order-sensitive digest of a triple sequence (chained SplitMix64).
[[nodiscard]] std::uint64_t sequence_digest(std::span<const Triple> ts);

/// Triples per block when writing long logs (`write_blocks`).
inline constexpr std::size_t kBlockTriples = 1 << 16;

/// Append one self-contained checksummed block encoding `ts` (order
/// preserved) to `out`.
void encode_block(std::span<const Triple> ts, std::string& out);

/// Decode one block off the front of `in`, appending to `out`.  Returns
/// false (and sets *error) on truncation, malformed varints, or checksum
/// mismatch; `in` is left unspecified on failure.
bool decode_block(std::string_view& in, std::vector<Triple>& out,
                  std::string* error = nullptr);

/// Stream variant of decode_block.
bool read_block(std::istream& in, std::vector<Triple>& out,
                std::string* error = nullptr);

/// Write `ts` as a sequence of blocks of at most `block_triples` each.
/// Returns the number of bytes written.
std::size_t write_blocks(std::ostream& out, std::span<const Triple> ts,
                         std::size_t block_triples = kBlockTriples);

/// Read blocks until exactly `expected` triples have been decoded,
/// invoking `sink(t)` for each in order.  Returns false on any block
/// failure or if a block overshoots `expected`.
bool read_blocks(std::istream& in, std::uint64_t expected,
                 const std::function<void(const Triple&)>& sink,
                 std::string* error = nullptr);

/// Convenience: encoded size of `ts` as blocks, without keeping the bytes.
[[nodiscard]] std::size_t encoded_size(std::span<const Triple> ts);

// ------------------------------------------------------------ term tables

/// Append the front-coded term table for ids [1, dict.size()] plus the
/// trailing content digest.  Returns the number of bytes written.
std::size_t write_terms(std::ostream& out, const Dictionary& dict);

/// Read `count` front-coded terms into `dict` (interning in id order) and
/// validate the trailing digest.  Returns false with *error on malformed
/// input; `dict` may hold a partial table on failure.
bool read_terms(std::istream& in, std::uint64_t count, Dictionary& dict,
                std::string* error = nullptr);

}  // namespace parowl::rdf::codec
