#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Result of a parse run: triples read and (non-fatal) malformed lines.
struct ParseStats {
  std::size_t triples = 0;
  std::size_t duplicates = 0;
  std::size_t bad_lines = 0;
  std::string first_error;  // diagnostic: "line N (byte B): message"
  std::size_t first_error_line = 0;    // 1-based line of first error (0: none)
  std::size_t first_error_offset = 0;  // byte offset where that line starts
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const ParseStats& s);

/// Render the canonical malformed-input diagnostic "line N (byte B): msg".
/// Shared by the serial parsers and the parallel ingest pipeline so both
/// paths produce byte-identical ParseStats.
std::string format_parse_error(std::size_t line, std::size_t offset,
                               std::string_view message);

/// Parse one N-Triples line ("<s> <p> <o> ." with literal/blank-node
/// objects allowed) into the dictionary.  Returns std::nullopt for blank
/// lines and comments; throws nothing — malformed lines yield nullopt and
/// set *error to a diagnostic when `error` is non-null.
std::optional<Triple> parse_ntriples_line(std::string_view line,
                                          Dictionary& dict,
                                          std::string* error = nullptr);

/// Parse a whole N-Triples stream into `store`.
ParseStats parse_ntriples(std::istream& in, Dictionary& dict,
                          TripleStore& store);

/// Serialize one triple in N-Triples syntax (including final " .").
std::string to_ntriples(const Triple& t, const Dictionary& dict);

/// Serialize every triple in `store` to `out`, one line each.
void write_ntriples(std::ostream& out, const TripleStore& store,
                    const Dictionary& dict);

}  // namespace parowl::rdf
