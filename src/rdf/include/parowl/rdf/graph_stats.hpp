#pragma once

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

/// Summary statistics of the RDF graph induced by a store.  "Nodes" are
/// resources (IRIs/blank nodes) appearing in subject or object position —
/// the vertex set the paper's partitioning metrics (bal, IR) are defined
/// over; literals are not vertices.
struct GraphStats {
  std::size_t triples = 0;
  std::size_t nodes = 0;
  std::size_t predicates = 0;
  std::size_t literal_objects = 0;
  double avg_degree = 0.0;  // resource-resource edges per node
  std::size_t max_degree = 0;
};

/// Compute graph statistics for `store`.
[[nodiscard]] GraphStats compute_graph_stats(const TripleStore& store,
                                             const Dictionary& dict);

/// The set of resource nodes (IRIs and blank nodes in S or O position).
[[nodiscard]] std::unordered_set<TermId> resource_nodes(
    const TripleStore& store, const Dictionary& dict);

}  // namespace parowl::rdf
