#pragma once

// Parallel ingest pipeline: split the input into chunks at safe statement
// boundaries, parse each chunk on its own thread into thread-local intern
// tables, then merge the thread-local dictionaries in chunk order so global
// TermIds are assigned in canonical first-occurrence-by-byte-offset order.
// The resulting Dictionary and TripleStore are bit-identical to the serial
// parser for any thread count (the same invariant the materializer and the
// cluster runtime keep for closure).
//
// Stages:
//   1. scan   — find split points: newline boundaries (N-Triples) or the
//               conservative top-level statement scanner (Turtle), plus the
//               prefix/base environment at each chunk start.
//   2. parse  — each thread parses its chunk into a local Dictionary and
//               TripleStore with the shared serial line parser, recording
//               local ParseStats and error positions.
//   3. merge  — walk chunks in order: Dictionary::intern_batch assigns
//               global ids (chunk-order concatenation of local first-intern
//               orders == serial first-occurrence order), triples are
//               remapped and inserted in chunk order (reproducing the
//               serial insertion log and duplicate counts), and diagnostics
//               are rebased to document-global line/byte positions.

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "parowl/obs/options.hpp"
#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/ntriples.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::rdf {

struct IngestOptions {
  /// Worker threads for the parse stage; 0 = hardware concurrency.
  unsigned threads = 1;

  /// Observability sinks/sampling (docs/architecture.md "Observability").
  obs::ObsOptions obs;

  /// Streaming consumer invoked during the merge stage with each newly
  /// inserted (deduplicated, globally interned) slice of the store's
  /// insertion log.  The concatenation of the slices is the store's full
  /// appended range in canonical order, independent of `threads` — the same
  /// bit-identity invariant the parser itself keeps — so streaming
  /// partitioners can consume the ingest without a second pass.  Called on
  /// the merging thread; the spans alias the store and are only valid for
  /// the duration of the call.
  std::function<void(std::span<const Triple>)> chunk_sink;
};

struct IngestStats {
  ParseStats parse;            // identical to the serial parser's stats
  std::size_t bytes = 0;       // input size
  unsigned threads_used = 1;   // parse-stage threads actually spawned
  double read_seconds = 0.0;   // file -> memory (ingest_file only)
  double scan_seconds = 0.0;   // boundary scan + env pre-pass
  double parse_seconds = 0.0;  // parallel chunk parsing (wall clock)
  double merge_seconds = 0.0;  // dictionary merge + remap + store insert
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const IngestStats& s);

/// Newline-aligned chunk boundaries for `text` (for N-Triples input):
/// `chunks + 1` offsets, first 0, last text.size(), each interior boundary
/// just past a '\n'.  Degenerate inputs may yield fewer chunks.
std::vector<std::size_t> chunk_newline_boundaries(std::string_view text,
                                                  unsigned chunks);

/// Parse N-Triples / Turtle text into `dict` + `store` with
/// `options.threads` workers.  Dictionary, store, and ParseStats are
/// bit-identical to parse_ntriples / parse_turtle_text on the same text.
IngestStats ingest_ntriples(std::string_view text, Dictionary& dict,
                            TripleStore& store,
                            const IngestOptions& options = {});
IngestStats ingest_turtle(std::string_view text, Dictionary& dict,
                          TripleStore& store,
                          const IngestOptions& options = {});

/// Read `path` into memory and ingest it (".ttl" parses as Turtle,
/// anything else as N-Triples).  Returns false on I/O failure with *error.
bool ingest_file(const std::string& path, Dictionary& dict,
                 TripleStore& store, IngestStats& stats,
                 const IngestOptions& options = {},
                 std::string* error = nullptr);

}  // namespace parowl::rdf
