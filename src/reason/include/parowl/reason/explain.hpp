#pragma once

#include <memory>
#include <string>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::reason {

/// One node of a proof tree: a triple plus how it was obtained — either an
/// asserted base fact or a rule application over premise subtrees.
struct Derivation {
  rdf::Triple triple;
  bool asserted = false;              // true: present in the base store
  std::string rule_name;              // rule that produced it (if derived)
  std::vector<std::unique_ptr<Derivation>> premises;
};

/// Options for proof search.
struct ExplainOptions {
  /// Maximum proof depth (guards against pathological rule sets).
  std::size_t max_depth = 32;
};

/// Explains triples of a *materialized* store against the base facts it was
/// materialized from: finds, for a given triple, a rule application whose
/// premises are in the store and recursively explains those premises until
/// everything bottoms out at base facts.
///
/// Because the store is a fixpoint, a minimal-depth proof always exists for
/// every derived triple; the explainer searches shallow-first (premises
/// that are base facts are preferred), so the returned tree is concise.
class Explainer {
 public:
  /// `materialized` must contain the closure; `base` the asserted leaves;
  /// `rules` the rule set the closure was computed with.  When the closure
  /// was computed with *compiled* rules (CompiledRules::rules), `base` must
  /// also include CompiledRules::ground_facts — the schema-level closure the
  /// compiler folded into constants, which the compiled rules cannot
  /// re-derive.
  Explainer(const rdf::TripleStore& materialized,
            const rdf::TripleStore& base, const rules::RuleSet& rules,
            ExplainOptions options = {});

  /// Build a proof tree for `t`; returns nullptr if the triple is not in
  /// the materialized store or no proof could be reconstructed within the
  /// depth bound.
  [[nodiscard]] std::unique_ptr<Derivation> explain(const rdf::Triple& t) const;

  /// Render a proof tree as indented text.
  [[nodiscard]] std::string to_text(const Derivation& proof,
                                    const rdf::Dictionary& dict) const;

 private:
  std::unique_ptr<Derivation> prove(const rdf::Triple& t, std::size_t depth,
                                    std::vector<rdf::Triple>& on_path) const;

  const rdf::TripleStore& materialized_;
  const rdf::TripleStore& base_;
  const rules::RuleSet& rules_;
  ExplainOptions options_;
};

}  // namespace parowl::reason
