#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::reason {

/// Options for the backward engine.
struct BackwardOptions {
  /// Literal guard, as in ForwardOptions.
  const rdf::Dictionary* dict = nullptr;
};

/// Statistics for one engine lifetime (i.e. one tabled query session).
struct BackwardStats {
  std::size_t subgoals = 0;       // distinct tabled subgoals
  std::size_t resolutions = 0;    // rule-head unifications attempted
  std::size_t store_probes = 0;   // base-store pattern matches issued
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const BackwardStats& s);

/// Goal-directed (top-down) evaluation: SLD resolution with tabling,
/// modeled on the backward half of Jena's hybrid engine, which the paper's
/// implementation materializes knowledge bases with (§V).
///
/// One engine instance is one query session: answers to subgoals are
/// memoized in a table keyed by the goal pattern.  Recursive subgoals (e.g.
/// transitive properties) receive the answers tabled so far, which makes a
/// single session sound but possibly incomplete for recursive chains — the
/// query-driven materializer (materialize.hpp) therefore sweeps to an outer
/// fixpoint, exactly the behaviour that gives Jena-style materialization its
/// super-linear cost in KB size (the mechanism behind the paper's Fig. 4
/// cubic model and the super-linear speedups of Fig. 1).
class BackwardEngine {
 public:
  BackwardEngine(const rdf::TripleStore& store, const rules::RuleSet& rules,
                 BackwardOptions options = {});

  /// All triples matching `goal` that are in the store or derivable from it
  /// in this session.  Appends to `out` (deduplicated within the goal).
  void query(const rdf::TriplePattern& goal, std::vector<rdf::Triple>& out);

  [[nodiscard]] const BackwardStats& stats() const { return stats_; }

 private:
  struct PatternHash {
    std::size_t operator()(const rdf::TriplePattern& p) const noexcept;
  };
  struct PatternEq {
    bool operator()(const rdf::TriplePattern& a,
                    const rdf::TriplePattern& b) const noexcept {
      return a.s == b.s && a.p == b.p && a.o == b.o;
    }
  };

  struct TableEntry {
    std::vector<rdf::Triple> answers;
    std::unordered_map<rdf::Triple, char, rdf::TripleHash> seen;
    bool in_progress = false;
  };

  /// Solve `goal`, filling its table entry; returns the entry.
  TableEntry& solve(const rdf::TriplePattern& goal);

  /// Resolve `goal` against one rule: unify the head, then prove body atoms
  /// left to right.
  void resolve_rule(const rules::Rule& rule, const rdf::TriplePattern& goal,
                    TableEntry& entry);

  void prove_body(const rules::Rule& rule, std::size_t atom_index,
                  rules::Binding& binding, TableEntry& entry);

  void emit(const rules::Rule& rule, const rules::Binding& binding,
            TableEntry& entry);

  const rdf::TripleStore& store_;
  const rules::RuleSet& rules_;
  BackwardOptions options_;
  BackwardStats stats_;
  std::unordered_map<rdf::TriplePattern, TableEntry, PatternHash, PatternEq>
      table_;
};

}  // namespace parowl::reason
