#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parowl/obs/options.hpp"
#include "parowl/obs/report.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/reason/forward.hpp"
#include "parowl/rules/horst_rules.hpp"

namespace parowl::reason {

/// How deletions are propagated through the materialized closure.
enum class MaintainStrategy {
  /// Delete-and-rederive: overdelete everything transitively derivable from
  /// the deleted facts, then re-prove survivors (one-step rederivation seeds
  /// + semi-naive closure).  Always correct; pays for the full overdeletion
  /// cone even when most of it survives.
  kDRed,
  /// Backward/forward: walk the same cone, but before condemning a fact run
  /// a backward proof search for an alternate well-founded derivation from
  /// the surviving base.  Facts with an independent support never propagate,
  /// so shallow (non-recursive) deletions touch far fewer facts; deeply
  /// recursive proof spaces can make the backward search the bottleneck.
  kFbf,
};

struct MaintainOptions {
  MaintainStrategy strategy = MaintainStrategy::kDRed;

  rules::HorstOptions horst;

  /// Matching-pass thread count for the rederivation closure (0 = hardware
  /// concurrency).  The maintained store is bit-identical for every value:
  /// the overdelete walk is deterministic and single-threaded, and the
  /// forward engine's sharded merge is order-preserving.
  unsigned threads = 1;

  /// Observability sinks/sampling (docs/architecture.md "Observability").
  obs::ObsOptions obs;

  /// Equality handling of the store being maintained.  Under kRewrite the
  /// caller supplies the EqualityManager holding the closure's class map;
  /// the maintainer then refuses batches that would invalidate the map (see
  /// MaintainResult::equality_rejected) and closes additions in
  /// representative space.
  EqualityMode equality_mode = EqualityMode::kNaive;
  EqualityManager* equality = nullptr;
};

/// What one mixed add/delete batch did to the closure.
struct MaintainResult {
  bool schema_changed = false;  // rejected: batch touches schema triples

  /// Rejected (whole batch, store untouched): under equality rewriting the
  /// class map is monotone — merges cannot be unwound incrementally, since
  /// every rewritten triple in the store has lost the information of which
  /// member it was originally stated about.  A batch is refused when it
  /// (a) deletes an owl:sameAs triple, (b) deletes or mixes additions of
  /// sameAs with deletions, (c) deletes a triple whose endpoint belongs to
  /// an equality class (the raw-space fact cannot be located in the
  /// rewritten store), or (d) its overdelete cone reaches an owl:sameAs
  /// derivation (the deletion undermines a merge).  Callers re-materialize
  /// from scratch instead.
  bool equality_rejected = false;

  std::size_t base_deleted = 0;  // asserted triples actually retracted
  std::size_t base_added = 0;    // asserted triples actually added

  /// DRed: facts condemned by the overdelete cone (including the deletions
  /// themselves).  FBF: facts in the cone that failed the backward check.
  std::size_t overdeleted = 0;
  /// Facts the overdelete pass visited but kept (FBF alternate-support hits;
  /// always 0 under pure DRed, which condemns first and re-proves later).
  std::size_t kept_alive = 0;
  /// Overdeleted facts reinstated by the rederivation pass (one-step seeds;
  /// DRed only — FBF never removes a derivable fact in the first place).
  std::size_t rederived = 0;
  /// Net facts that left the closure (overdeleted and not rederived).
  std::size_t removed = 0;
  /// Net new derivations from the additions + rederivation closure.
  std::size_t inferred = 0;

  std::size_t overdelete_iterations = 0;  // overdelete BFS frontier rounds
  std::size_t rederive_iterations = 0;    // forward-engine iterations

  double overdelete_seconds = 0.0;
  double rederive_seconds = 0.0;
  double total_seconds = 0.0;

  /// Index into the maintained store's log where this batch's new triples
  /// (additions + rederivations + fresh derivations) begin — the serve
  /// layer's snapshot delta.  Everything before it survived in log order.
  std::size_t first_new_index = 0;

  /// The triples that actually left the closure, in deterministic order —
  /// the serve layer retires cache entries whose answers contained any of
  /// them (footprint invalidation must cover deletions, not just additions).
  std::vector<rdf::Triple> removed_triples;
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const MaintainResult& r);

/// Incremental maintenance of a materialized OWL-Horst closure under mixed
/// add/delete batches (ROADMAP item 2; Ajileye/Motik/Horrocks give the
/// distributed recipe this is the single-store core of).
///
/// The maintainer owns no data: `apply` mutates the store and the asserted
/// base handed to it.  The contract is the oracle equality the test suite
/// pins: after `apply`, the store holds exactly the triples a from-scratch
/// `materialize` of the updated base would produce (log order differs —
/// survivors keep their original positions — so equality is on the sorted
/// triple sequence).
class Maintainer {
 public:
  /// `dict` is used for the literal guard during rederivation; `vocab`
  /// classifies schema triples.  Both must outlive the maintainer.
  Maintainer(const rdf::Dictionary& dict, const ontology::Vocabulary& vocab,
             MaintainOptions options = {});

  /// Apply one mixed batch to `store` (a materialized closure) whose
  /// asserted triples are `base` (schema + instance, insertion order).
  ///
  /// Semantics are batch-atomic: the updated base is (base \ deletions)
  /// + additions, so a triple deleted and re-added in the same batch stays.
  /// Deletions of never-present triples are no-ops.  Schema triples in
  /// either direction reject the whole batch (schema_changed) untouched —
  /// a schema change invalidates the compiled rule-base and needs a full
  /// re-materialization.
  ///
  /// On success `store` is replaced by the maintained closure: survivors in
  /// original log order, then additions, rederivations, and new derivations
  /// (see MaintainResult::first_new_index); `base` is updated in place.
  MaintainResult apply(rdf::TripleStore& store,
                       std::vector<rdf::Triple>& base,
                       std::span<const rdf::Triple> additions,
                       std::span<const rdf::Triple> deletions) const;

 private:
  const rdf::Dictionary& dict_;
  const ontology::Vocabulary& vocab_;
  MaintainOptions options_;
};

}  // namespace parowl::reason
