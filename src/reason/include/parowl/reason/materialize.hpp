#pragma once

#include <cstddef>

#include "parowl/ontology/ontology.hpp"
#include "parowl/reason/backward.hpp"
#include "parowl/reason/forward.hpp"
#include "parowl/rules/compiler.hpp"
#include "parowl/rules/horst_rules.hpp"

namespace parowl::reason {

/// How the knowledge base is materialized.
enum class Strategy {
  /// Bottom-up semi-naive forward chaining — the efficient baseline.
  kForward,
  /// Query-driven: for each resource r, issue the query (r, ?p, ?o) against
  /// the backward engine and assert its answers, sweeping to a fixpoint.
  /// This is how the paper's Jena-based implementation materializes a KB
  /// (§V) and the mechanism behind its super-linear per-partition cost.
  kQueryDriven,
};

struct MaterializeOptions {
  Strategy strategy = Strategy::kForward;
  rules::HorstOptions horst;

  /// Compile the ontology into single-join instance rules first (§II).
  /// When false the generic pD* rules run directly over the data (ablation).
  bool compile = true;

  /// Forward engine evaluation mode (ablation: naive vs semi-naive).
  bool semi_naive = true;

  /// Forward engine hot-path toggles (see ForwardOptions): predicate
  /// dispatch index, devirtualized joins, and the matching-pass thread
  /// count (0 = hardware concurrency).  The closure is identical for every
  /// combination; only speed changes.
  bool dispatch_index = true;
  bool devirtualize = true;
  unsigned threads = 1;

  /// One backward-engine table per query (mimics independent queries, the
  /// Jena behaviour); when true, tables are shared across all queries of a
  /// sweep (faster, used for the ablation bench).
  bool share_tables = false;

  /// Safety cap on query-driven outer sweeps.
  std::size_t max_sweeps = 64;

  /// Observability sinks/sampling, forwarded to the ForwardOptions the
  /// materializer builds.
  obs::ObsOptions obs;

  /// Equality handling (kForward strategy only; the query-driven path
  /// always materializes naively).  Under kRewrite the caller supplies the
  /// EqualityManager that will hold the class map: the materializer drops
  /// the sameAs propagation rules (rdfp6/7/11a/11b), wires the forward
  /// engine's interceptor, and leaves the store in representative space
  /// with `equality` frozen.  Answers must then be expanded through the
  /// class map (expand_closure, or the query layer's expansion).
  EqualityMode equality_mode = EqualityMode::kNaive;
  EqualityManager* equality = nullptr;
};

struct MaterializeResult {
  std::size_t base_triples = 0;      // store size before reasoning
  std::size_t schema_triples = 0;    // of which schema
  std::size_t inferred = 0;          // new triples added (0 if the rewrite
                                     // shrank the store below the base)
  std::size_t iterations = 0;        // forward iterations / backward sweeps
  std::size_t compiled_rules = 0;    // instance rules after compilation
  double reason_seconds = 0.0;       // pure inference wall time
  double compile_seconds = 0.0;      // schema closure + rule compilation

  // Equality-rewriting breakdown (zero under kNaive); see ForwardStats.
  std::size_t eq_merges = 0;
  std::size_t eq_conflicts = 0;
  std::size_t endpoint_index_builds = 0;
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const MaterializeResult& r);

/// Compile the ontology found in `store` and return the instance rule set
/// (schema closure is computed internally).  Exposed separately because the
/// parallel master compiles once and ships the same rule-base to every
/// worker.
[[nodiscard]] rules::CompiledRules compile_ontology(
    const rdf::TripleStore& store, const ontology::Vocabulary& vocab,
    const rules::HorstOptions& horst = {});

/// Statistics of a query-driven closure run.
struct QueryDrivenStats {
  std::size_t sweeps = 0;
  std::size_t added = 0;
};

[[nodiscard]] obs::FieldList fields(const QueryDrivenStats& s);

/// Run the query-driven (Jena-like) materialization loop on `store` with an
/// already-compiled rule set: sweep (r, ?p, ?o) queries over every resource,
/// asserting answers, until a sweep adds nothing.  Exposed so the parallel
/// workers can use the same strategy the paper's implementation does.
QueryDrivenStats query_driven_closure(rdf::TripleStore& store,
                                      const rdf::Dictionary& dict,
                                      const rules::RuleSet& rules,
                                      bool share_tables = false,
                                      std::size_t max_sweeps = 64);

/// Incremental query-driven closure: only re-query the resources affected
/// by the triples at/after `delta_begin` in the store log (their endpoints
/// plus the store-adjacent resources), expanding the affected set as sweeps
/// derive more.  Each sweep still pays the full per-query proof-space cost —
/// this models a Jena-like engine re-querying after new tuples arrive in a
/// communication round, without re-materializing untouched resources.
///
/// Completeness requires every rule to have <= 2 body atoms with the head
/// subject range-restricted (true for all rule sets `compile_ontology`
/// emits): the subject of any new derivation is then an endpoint of, or
/// store-adjacent to, a new premise.  For rule sets with longer bodies the
/// function falls back to full sweeps.
QueryDrivenStats query_driven_closure_delta(rdf::TripleStore& store,
                                            const rdf::Dictionary& dict,
                                            const rules::RuleSet& rules,
                                            std::size_t delta_begin,
                                            bool share_tables = false,
                                            std::size_t max_sweeps = 64);

/// Materialize `store` in place: compute all OWL-Horst consequences of its
/// schema + instance triples and add them.  Returns statistics.
MaterializeResult materialize(rdf::TripleStore& store,
                              const rdf::Dictionary& dict,
                              const ontology::Vocabulary& vocab,
                              const MaterializeOptions& options = {});

/// Incremental maintenance: add `additions` to an already-materialized
/// store and close only over the delta (semi-naive from the new triples).
/// This is the operation the paper's setting — materialized KBs where "the
/// frequency of data being added is much smaller than that of queries" —
/// performs between full materializations.
///
/// `additions` must be instance triples (schema changes require a full
/// re-materialization: the compiled rule-base itself would change; such
/// additions are rejected with inferred == 0 and schema_changed == true).
struct IncrementalResult {
  std::size_t added = 0;     // new base triples actually inserted
  std::size_t inferred = 0;  // new derivations
  std::size_t iterations = 0;
  bool schema_changed = false;  // rejected: contains schema triples
  double reason_seconds = 0.0;

  // Rewrite mode only: class unions this batch performed, and store
  // rebuilds they triggered.  A nonzero rebuild count means the store log
  // was reordered — callers tracking a log-order delta (the serve layer's
  // snapshots) must fall back to treating the whole store as new.
  std::size_t eq_merges = 0;
  std::size_t eq_rebuilds = 0;
};

[[nodiscard]] obs::FieldList fields(const IncrementalResult& r);
/// `threads` is the forward engine's matching-pass thread count (0 =
/// hardware concurrency); the result is identical for every value.
///
/// When the store was materialized under equality rewriting, pass the same
/// mode plus the (mutable) EqualityManager holding its class map: new
/// sameAs assertions merge into the map, the delta closes in
/// representative space, and the map is re-frozen.
IncrementalResult materialize_incremental(
    rdf::TripleStore& store, const rdf::Dictionary& dict,
    const ontology::Vocabulary& vocab,
    std::span<const rdf::Triple> additions,
    const rules::HorstOptions& horst = {}, unsigned threads = 1,
    EqualityMode equality_mode = EqualityMode::kNaive,
    EqualityManager* equality = nullptr);

}  // namespace parowl::reason
