#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parowl/obs/options.hpp"
#include "parowl/obs/report.hpp"
#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/flat_index.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/reason/equality.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::reason {

/// How the closure treats owl:sameAs.
enum class EqualityMode {
  /// Materialize equality through the pD* rules (rdfp6/7/11a/11b): an
  /// n-member clique costs O(n^2) sameAs triples and replicates every
  /// statement across all members.
  kNaive,
  /// Intercept sameAs triples into an EqualityManager, keep the store in
  /// representative space, and expand answers through the class map at
  /// query time (Motik et al., "Handling owl:sameAs via Rewriting").
  kRewrite,
};

/// Options for the forward-chaining engine.
struct ForwardOptions {
  /// Semi-naive (delta-driven) evaluation: each iteration only matches rule
  /// bodies against the triples derived in the previous iteration.  The
  /// naive alternative re-derives everything each iteration; kept for the
  /// ablation bench.
  bool semi_naive = true;

  /// When set, derived triples whose subject is a literal are discarded
  /// (OWL-Horst's literal guard, e.g. rdfs3 binding a range type to a
  /// literal object).
  const rdf::Dictionary* dict = nullptr;

  /// Safety valve for tests; the engine normally runs to fixpoint.
  std::size_t max_iterations = static_cast<std::size_t>(-1);

  /// Route each frontier triple only to the (rule, pivot) pairs whose pivot
  /// pattern can bind it, via the predicate-keyed dispatch index built at
  /// engine construction.  Off = try every pair (ablation baseline).
  bool dispatch_index = true;

  /// Use the store's templated match_each joins (fully inlined callbacks).
  /// Off = the std::function match path (ablation baseline).
  bool devirtualize = true;

  /// Worker threads for the matching pass of each iteration.  The frontier
  /// is sharded into contiguous blocks; derivations accumulate in
  /// per-shard buffers and are merged at the round barrier, so the closure
  /// — log order and all statistics included — is bit-identical for every
  /// thread count.  0 = hardware concurrency.
  unsigned threads = 1;

  /// Observability sinks/sampling (docs/architecture.md "Observability"):
  /// every layer's Options embeds this by value; drivers pass it to
  /// obs::configure at entry.
  obs::ObsOptions obs;

  /// Equality rewriting (active when mode is kRewrite AND `equality` is
  /// set AND `same_as` names the owl:sameAs term AND `dict` is set — the
  /// interceptor needs the literal test).  The engine merges intercepted
  /// sameAs triples into `equality`, keeps the store in representative
  /// space (rebuilding it through the dispatch index whenever a merge
  /// remaps existing triples), and freezes the map when the run finishes.
  /// The rule set should be built with include_same_as_propagation = false;
  /// rdfp6/7/11a/11b can never fire on a store that holds no sameAs
  /// triples, and dropping them removes every wildcard-predicate pivot.
  EqualityMode equality_mode = EqualityMode::kNaive;
  EqualityManager* equality = nullptr;
  rdf::TermId same_as = rdf::kAnyTerm;
};

/// Evaluation statistics.
struct ForwardStats {
  std::size_t iterations = 0;
  std::size_t derived = 0;   // triples newly added to the store
  std::size_t attempts = 0;  // head instantiations (incl. duplicates)
  /// Unique derivations credited per rule; duplicates of the same triple
  /// within one iteration count once (for the first deriving rule in
  /// frontier order), so the per-rule sum always equals `derived`.
  std::vector<std::size_t> firings_per_rule;

  // Equality-rewriting breakdown (all zero in naive mode).
  std::size_t eq_intercepted = 0;  // sameAs triples kept out of the store
  std::size_t eq_merges = 0;       // class unions performed
  std::size_t eq_remapped = 0;     // existing triples rewritten by a merge
  std::size_t eq_rebuilds = 0;     // store rebuilds triggered by merges
  /// Interceptions touching terms the rewrite cannot treat as plain
  /// individuals (rule constants, predicates in use, owl:sameAs itself).
  /// Nonzero means the dataset equates schema-level terms and the rewrite
  /// closure is not guaranteed equivalent to the naive one — re-run naive.
  std::size_t eq_conflicts = 0;
  /// Endpoint-index builds the store performed during this run.  The lazy
  /// subject/object index only serves wildcard-predicate probes (the naive
  /// sameAs family); rewrite-mode runs must keep this at zero.
  std::size_t endpoint_index_builds = 0;
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const ForwardStats& s);

/// Bottom-up datalog evaluation over a triple store.
///
/// The engine owns no data: it mutates the store passed to `run`, which is
/// how the parallel workers use it — each worker calls `run` once per
/// communication round with `delta_begin` pointing at the first triple
/// received in that round, so only new information is re-joined
/// (Algorithm 3, step 3).
class ForwardEngine {
 public:
  ForwardEngine(rdf::TripleStore& store, const rules::RuleSet& rules,
                ForwardOptions options = {});

  /// Run to fixpoint.  `delta_begin` is an index into store.triples():
  /// triples at or after it form the initial frontier (0 = everything).
  ForwardStats run(std::size_t delta_begin = 0);

  /// One rule-attributed derivation from a single matching pass.
  struct Derivation {
    rdf::Triple triple;
    std::uint32_t rule = 0;
  };

  /// One matching pass over frontier triples [lo, hi) against the current
  /// store, WITHOUT mutating it: derivations that are new w.r.t. the store
  /// are returned (deduplicated, in frontier order) instead of inserted.
  /// This is the work-stealing entry point — a thief evaluates a shard of
  /// a victim's frontier against the victim's store and ships the results
  /// back, so the pass must leave the victim's store untouched.
  [[nodiscard]] std::vector<Derivation> match_delta(std::size_t lo,
                                                    std::size_t hi);

 private:
  /// One body atom usable as the entry point of a rule firing.
  struct PivotRef {
    std::uint32_t rule = 0;
    std::uint32_t pivot = 0;
  };

  /// A deduplicated derivation awaiting the round barrier, tagged with the
  /// rule that produced it (for firings_per_rule at merge time).
  struct Pending {
    rdf::Triple triple;
    std::uint32_t rule = 0;
  };

  /// Per-thread accumulation state for one iteration's matching pass.
  struct Shard {
    std::vector<Pending> pending;
    rdf::TripleSet seen;
    std::size_t attempts = 0;

    void reset() {
      pending.clear();
      seen.reset();  // keeps capacity across iterations
      attempts = 0;
    }
  };

  /// Candidate pivots for one predicate, discriminated a second time on
  /// the pivot atom's object position (Rete-style alpha discrimination):
  /// a pivot like (?x rdf:type Student) only ever binds triples whose
  /// object is Student, so type triples skip every other class's rules.
  /// `generic` holds the pivots with a variable object (merged with the
  /// wildcard-predicate pivots); `by_object` holds the constant-object
  /// pivots keyed by that constant.  Both are in (rule, pivot) order, so
  /// an ordered merge visits surviving pairs exactly as a full scan would
  /// — dispatch on/off stays bit-identical.
  struct Bucket {
    std::vector<PivotRef> generic;
    rdf::IdMap<std::uint32_t> object_slot;  // object const -> index + 1
    std::vector<std::vector<PivotRef>> by_object;
  };

  /// Route one frontier triple to its candidate (rule, pivot) pairs.
  template <bool Devirt>
  void dispatch_triple(const rdf::Triple& t, Shard& shard);

  /// Match frontier triples [lo, hi) against their candidate pivots,
  /// accumulating into `shard`.  Devirt selects the store matching path.
  template <bool Devirt>
  void process_range(std::size_t lo, std::size_t hi, Shard& shard);

  /// Match one frontier triple against body atom `pivot` of `rule`; on
  /// success join the remaining atoms against the store.
  template <bool Devirt>
  void fire_rule(std::size_t rule_index, std::size_t pivot,
                 const rdf::Triple& delta_triple, Shard& shard);

  /// Recursive join over unprocessed body atoms.
  template <bool Devirt>
  void join(std::size_t rule_index, unsigned done_mask,
            rules::Binding& binding, Shard& shard);

  /// True iff this run rewrites equality (mode, manager, sameAs id, dict).
  [[nodiscard]] bool rewrite_active() const;

  /// Fold one sameAs triple (already in representative space) into the
  /// class map instead of the store.  Returns true iff the map changed —
  /// the signal that existing triples may need remapping.
  bool intercept_same_as(const rdf::Triple& t, ForwardStats& stats);

  /// Rebuild the store through the class map: unchanged survivors from
  /// [0, keep_end) keep their log order as the prefix; remapped survivors
  /// and everything at/after keep_end are reinserted (deduplicated) at the
  /// tail, and sameAs triples are dropped.  Returns the prefix length —
  /// the next frontier begin, so every remapped triple re-derives through
  /// the dispatch index.
  std::size_t rewrite_store(std::size_t keep_end, ForwardStats& stats);

  rdf::TripleStore& store_;
  const rules::RuleSet& rules_;
  ForwardOptions options_;

  // Dispatch index: predicate -> Bucket, stored as a flat IdMap of bucket
  // indexes + 1 (0 = absent); wildcard_pivots_ alone serves predicates
  // unseen at construction; all_pivots_ is the dispatch-off fallback.
  rdf::IdMap<std::uint32_t> pivot_bucket_slot_;
  std::vector<Bucket> pivot_buckets_;
  std::vector<PivotRef> wildcard_pivots_;
  std::vector<PivotRef> all_pivots_;

  /// Constant term ids appearing anywhere in the rule set (rewrite mode
  /// only).  Merging one of these — a folded schema constant, a vocabulary
  /// term — cannot be expressed by individual-level rewriting; such
  /// interceptions bump ForwardStats::eq_conflicts.
  rdf::IdMap<std::uint8_t> rule_constants_;
};

/// Convenience: run `rules` on `store` to fixpoint and return stats.
ForwardStats forward_closure(rdf::TripleStore& store,
                             const rules::RuleSet& rules,
                             ForwardOptions options = {});

}  // namespace parowl::reason
