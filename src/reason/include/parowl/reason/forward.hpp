#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "parowl/rdf/dictionary.hpp"
#include "parowl/rdf/triple_store.hpp"
#include "parowl/rules/rule.hpp"

namespace parowl::reason {

/// Options for the forward-chaining engine.
struct ForwardOptions {
  /// Semi-naive (delta-driven) evaluation: each iteration only matches rule
  /// bodies against the triples derived in the previous iteration.  The
  /// naive alternative re-derives everything each iteration; kept for the
  /// ablation bench.
  bool semi_naive = true;

  /// When set, derived triples whose subject is a literal are discarded
  /// (OWL-Horst's literal guard, e.g. rdfs3 binding a range type to a
  /// literal object).
  const rdf::Dictionary* dict = nullptr;

  /// Safety valve for tests; the engine normally runs to fixpoint.
  std::size_t max_iterations = static_cast<std::size_t>(-1);
};

/// Evaluation statistics.
struct ForwardStats {
  std::size_t iterations = 0;
  std::size_t derived = 0;       // triples newly added to the store
  std::size_t attempts = 0;      // head instantiations (incl. duplicates)
  std::vector<std::size_t> firings_per_rule;
};

/// Bottom-up datalog evaluation over a triple store.
///
/// The engine owns no data: it mutates the store passed to `run`, which is
/// how the parallel workers use it — each worker calls `run` once per
/// communication round with `delta_begin` pointing at the first triple
/// received in that round, so only new information is re-joined
/// (Algorithm 3, step 3).
class ForwardEngine {
 public:
  ForwardEngine(rdf::TripleStore& store, const rules::RuleSet& rules,
                ForwardOptions options = {});

  /// Run to fixpoint.  `delta_begin` is an index into store.triples():
  /// triples at or after it form the initial frontier (0 = everything).
  ForwardStats run(std::size_t delta_begin = 0);

 private:
  /// Match `delta_triple` against body atom `pivot` of `rule`; on success
  /// join the remaining atoms against the store and emit head bindings.
  void fire_rule(std::size_t rule_index, std::size_t pivot,
                 const rdf::Triple& delta_triple,
                 std::vector<rdf::Triple>& out, ForwardStats& stats);

  /// Recursive join over unprocessed body atoms.
  void join(std::size_t rule_index, unsigned done_mask,
            rules::Binding& binding, std::vector<rdf::Triple>& out,
            ForwardStats& stats);

  rdf::TripleStore& store_;
  const rules::RuleSet& rules_;
  ForwardOptions options_;
};

/// Convenience: run `rules` on `store` to fixpoint and return stats.
ForwardStats forward_closure(rdf::TripleStore& store,
                             const rules::RuleSet& rules,
                             ForwardOptions options = {});

}  // namespace parowl::reason
