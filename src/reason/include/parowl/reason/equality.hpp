#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parowl/obs/report.hpp"
#include "parowl/rdf/flat_index.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/rdf/triple_store.hpp"

namespace parowl::reason {

/// Union-find over equality classes of resources, plus the two asymmetric
/// side channels the pD* sameAs semantics need (literal partners and
/// explicit self edges).  This is the class map behind `equality_mode =
/// rewrite` (Motik et al., "Handling owl:sameAs via Rewriting"): the
/// forward engine intercepts every derived or asserted owl:sameAs triple,
/// merges the two classes here instead of materializing the quadratic
/// clique, and rewrites subject/object positions of the store through each
/// class's canonical representative.
///
/// Determinism: classes are merged union-by-min, so the representative of
/// a class is always its smallest member TermId — a property of the final
/// partition, independent of merge order.  Since the sharded engine feeds
/// merges in a thread-count-independent order anyway, and this makes even
/// reordered merges converge to the same map, rewrite-mode closures are
/// bit-identical for every thread count.
///
/// Literals are never unioned.  pD* propagation is asymmetric around
/// literals (rdfp6/7/11a's heads die on the literal-subject guard), so a
/// derived (a sameAs "v") attaches "v" to a's class as a directed literal
/// partner: object positions expand to it, subject positions never do, and
/// two resources that share only a literal partner stay in distinct
/// classes — exactly what the naive closure computes.
///
/// Concurrency: mutation (merge/attach/note) is single-threaded — the
/// engine only touches the map at its round barrier.  After `freeze()` the
/// map is immutable and safe for concurrent readers (query-time expansion
/// in serve/dist).
class EqualityManager {
 public:
  /// Canonical representative of `id`'s class (the smallest resource member
  /// once frozen; during merging, the current root).  Terms that never
  /// appeared in a sameAs triple — and all literals — map to themselves.
  [[nodiscard]] rdf::TermId find(rdf::TermId id) const {
    const rdf::TermId* p = parent_.find(id);
    while (p != nullptr && *p != id) {
      id = *p;
      p = parent_.find(id);
    }
    return id;
  }

  /// Rewrite subject and object through representatives.  The predicate is
  /// left untouched: pD* never propagates equality into predicate position
  /// (rdfp11a/b rewrite subjects and objects only), so canonical triples
  /// keep their original predicate and expansion never invents one.
  [[nodiscard]] rdf::Triple rewrite(const rdf::Triple& t) const {
    return {find(t.s), t.p, find(t.o)};
  }

  /// Merge the classes of two resources; returns true if they were
  /// previously distinct.  Merging a term with itself records nothing
  /// beyond tracking it (see note_self for the explicit a sameAs a edge).
  bool merge(rdf::TermId a, rdf::TermId b);

  /// Record a directed literal partner: (resource sameAs lit) was derived
  /// or asserted, so object positions of the class expand to `lit`.
  /// Returns true iff the edge was new.
  bool attach_literal(rdf::TermId resource, rdf::TermId lit);

  /// Record an explicit (a sameAs a) edge.  A singleton class only yields
  /// the reflexive pair at expansion time when one was actually derived —
  /// the naive closure has no blanket reflexivity.  Returns true iff new.
  bool note_self(rdf::TermId resource);

  /// Record an asserted literal-subject sameAs triple verbatim.  The naive
  /// closure keeps asserted triples regardless of the literal guard, so
  /// expansion must replay these; they also imply the mirrored resource
  /// edge (rdfp6) and a self edge (rdfp7), which the caller records via
  /// attach_literal + note_self.  Returns true iff new.
  bool keep_raw(const rdf::Triple& t) {
    if (!raw_set_.insert(t)) {
      return false;
    }
    raw_edges_.push_back(t);
    return true;
  }

  /// True iff `id` has appeared in any intercepted sameAs triple.
  [[nodiscard]] bool tracked(rdf::TermId id) const {
    return parent_.find(id) != nullptr;
  }

  /// True iff `lit` is attached to some class as a literal partner.  A
  /// query with such a literal as a constant object cannot be answered in
  /// representative space (the canonical triples carry the class rep, not
  /// the literal) — the query layer rejects it.
  [[nodiscard]] bool literal_partner(rdf::TermId lit) const {
    return partner_set_.find(lit) != nullptr;
  }

  [[nodiscard]] std::size_t merges() const { return merges_; }
  [[nodiscard]] bool empty() const {
    return tracked_.empty() && attach_edges_.empty() && raw_edges_.empty();
  }

  /// One frozen equality class: sorted resource members (>= 1), sorted
  /// deduplicated literal partners, and whether the reflexive sameAs pairs
  /// exist (always for classes with >= 2 resources; for singletons only
  /// with an explicit self edge).
  struct Class {
    rdf::TermId rep = rdf::kAnyTerm;
    std::vector<rdf::TermId> members;   // resources, ascending; rep first
    std::vector<rdf::TermId> literals;  // attached literal partners, ascending
    bool self = false;
  };

  /// Compact the forest and build per-class member lists.  Idempotent;
  /// callable again after further merges.  Must be called before any of
  /// the accessors below, and before publishing the map to concurrent
  /// readers.
  void freeze();

  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Frozen classes in ascending representative order.
  [[nodiscard]] std::span<const Class> classes() const { return classes_; }

  /// Frozen class of `rep` (a representative), or nullptr for untracked /
  /// non-representative ids.
  [[nodiscard]] const Class* class_of(rdf::TermId rep) const {
    const std::uint32_t* slot = class_slot_.find(rep);
    return slot != nullptr ? &classes_[*slot - 1] : nullptr;
  }

  /// Members substitutable for `rep` in SUBJECT position: the class's
  /// resource members ({rep} when untracked).
  [[nodiscard]] std::span<const rdf::TermId> subject_members(
      rdf::TermId rep) const;

  /// Members substitutable for `rep` in OBJECT position: resource members
  /// followed by attached literal partners ({rep} when untracked).  The
  /// combined list is prebuilt at freeze so this is allocation-free.
  [[nodiscard]] std::span<const rdf::TermId> object_members(
      rdf::TermId rep) const;

  /// Asserted literal-subject sameAs triples, replayed at expansion.
  [[nodiscard]] std::span<const rdf::Triple> raw_edges() const {
    return raw_edges_;
  }

  /// Serializable state (rdf/snapshot.hpp persists it as the snapshot v3
  /// trailer).  Requires freeze().
  [[nodiscard]] rdf::EqualityClassMap export_map() const;
  /// Rebuild (and freeze) a manager from persisted state.
  [[nodiscard]] static EqualityManager import_map(
      const rdf::EqualityClassMap& map);

 private:
  rdf::TermId root_compress(rdf::TermId id);
  rdf::TermId& track(rdf::TermId id);

  rdf::IdMap<rdf::TermId> parent_;
  std::vector<rdf::TermId> tracked_;  // first-touch order; sorted at freeze
  std::vector<std::pair<rdf::TermId, rdf::TermId>> attach_edges_;
  rdf::TripleSet attach_set_;  // (resource, lit, lit) — dedup of the above
  rdf::IdMap<std::uint8_t> partner_set_;  // literals attached to any class
  std::vector<rdf::TermId> self_edges_;
  rdf::IdMap<std::uint8_t> self_set_;
  std::vector<rdf::Triple> raw_edges_;
  rdf::TripleSet raw_set_;
  std::size_t merges_ = 0;

  bool frozen_ = false;
  rdf::IdMap<std::uint32_t> class_slot_;  // rep -> classes_ index + 1
  std::vector<Class> classes_;
  std::vector<std::vector<rdf::TermId>> object_lists_;  // members + literals
};

/// Expand a rewrite-mode closure back into the naive closure's triple set:
/// subject positions fan out over resource members, object positions over
/// resource members plus literal partners, and the sameAs clique triples
/// (all resource-subject ordered pairs, reflexive pairs per Class::self,
/// literal-partner edges, raw asserted edges) are regenerated.  Returns the
/// expanded set sorted ascending — the canonical form the equivalence suite
/// compares against a sorted naive closure.  `eq` must be frozen.
[[nodiscard]] std::vector<rdf::Triple> expand_closure(
    const rdf::TripleStore& store, const EqualityManager& eq,
    rdf::TermId same_as);

/// Expansion statistics (obs: reason.eq.expand).
struct ExpandStats {
  std::size_t rows_in = 0;
  std::size_t rows_out = 0;
  double seconds = 0.0;
};

[[nodiscard]] obs::FieldList fields(const ExpandStats& s);

}  // namespace parowl::reason
