#include "parowl/reason/maintain.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "parowl/obs/obs.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/rules/compiler.hpp"
#include "parowl/util/timer.hpp"

namespace parowl::reason {
namespace {

/// One body atom usable as a forward-propagation entry point, mirroring the
/// forward engine's dispatch pairs.
struct PivotRef {
  std::uint32_t rule = 0;
  std::uint32_t pivot = 0;
};

/// Predicate-keyed dispatch index over a rule set: deletions propagate the
/// same way derivations do, by routing each condemned triple only to the
/// (rule, pivot) pairs whose pivot pattern can bind it.
struct DispatchIndex {
  rdf::IdMap<std::uint32_t> slot;            // predicate -> bucket index + 1
  std::vector<std::vector<PivotRef>> buckets;
  std::vector<PivotRef> wildcard;            // variable-predicate pivots

  explicit DispatchIndex(const rules::RuleSet& rules) {
    for (std::uint32_t r = 0; r < rules.size(); ++r) {
      const std::vector<rules::Atom>& body = rules[r].body;
      for (std::uint32_t i = 0; i < body.size(); ++i) {
        if (body[i].p.is_const()) {
          std::uint32_t& s = slot[body[i].p.const_id()];
          if (s == 0) {
            buckets.emplace_back();
            s = static_cast<std::uint32_t>(buckets.size());
          }
          buckets[s - 1].push_back({r, i});
        } else {
          wildcard.push_back({r, i});
        }
      }
    }
  }

  /// Invoke `fn(PivotRef)` for every candidate pair of `t`.
  template <typename Fn>
  void dispatch(const rdf::Triple& t, Fn&& fn) const {
    if (const std::uint32_t* s = slot.find(t.p)) {
      for (const PivotRef& ref : buckets[*s - 1]) {
        fn(ref);
      }
    }
    for (const PivotRef& ref : wildcard) {
      fn(ref);
    }
  }
};

/// Recursive join of `rule`'s body atoms not in `done_mask` against `store`,
/// invoking `fn()` for every complete binding.  `fn` returns false to stop
/// the enumeration (existence checks).  Returns false iff stopped early.
template <typename Fn>
bool join_rest(const rdf::TripleStore& store, const rules::Rule& rule,
               unsigned done_mask, rules::Binding& binding, Fn&& fn) {
  const auto body_size = static_cast<unsigned>(rule.body.size());
  if (done_mask == (1u << body_size) - 1) {
    return fn();
  }
  // Pick the unprocessed atom with the most bound positions (same heuristic
  // as the forward engine's join).
  unsigned best = body_size;
  int best_bound = -1;
  for (unsigned i = 0; i < body_size; ++i) {
    if (done_mask & (1u << i)) {
      continue;
    }
    const auto pattern = rules::to_pattern(rule.body[i], binding);
    const int bound = (pattern.s != rdf::kAnyTerm) +
                      (pattern.p != rdf::kAnyTerm) +
                      (pattern.o != rdf::kAnyTerm);
    if (bound > best_bound) {
      best_bound = bound;
      best = i;
    }
  }
  assert(best < body_size);
  const auto pattern = rules::to_pattern(rule.body[best], binding);
  bool keep_going = true;
  store.match_each(pattern, [&](const rdf::Triple& t) {
    if (!keep_going) {
      return;
    }
    rules::Binding saved = binding;
    if (rules::bind_atom(rule.body[best], t, binding)) {
      keep_going =
          join_rest(store, rule, done_mask | (1u << best), binding, fn);
    }
    binding = saved;
  });
  return keep_going;
}

/// Ground `head` under a complete binding (range restriction guarantees
/// every head variable is bound).
rdf::Triple ground_head(const rules::Atom& head,
                        const rules::Binding& binding) {
  const auto pattern = rules::to_pattern(head, binding);
  assert(pattern.s != rdf::kAnyTerm && pattern.p != rdf::kAnyTerm &&
         pattern.o != rdf::kAnyTerm);
  return {pattern.s, pattern.p, pattern.o};
}

/// True iff some rule derives `t` in one step from facts in `store`.
bool one_step_derivable(const rdf::TripleStore& store,
                        const rules::RuleSet& rules, const rdf::Triple& t) {
  for (const rules::Rule& rule : rules.rules()) {
    rules::Binding binding{};
    if (!rules::bind_atom(rule.head, t, binding)) {
      continue;
    }
    const bool exhausted =
        join_rest(store, rule, 0, binding, [&] { return false; });
    if (!exhausted) {
      return true;  // enumeration stopped at the first complete binding
    }
  }
  return false;
}

/// Backward well-founded proof search for the FBF strategy: `t` is alive iff
/// it is protected (asserted / compile-time ground fact) or some rule
/// instantiation derives it from facts that are themselves alive, where the
/// proof may not use condemned facts or facts on the current proof stack
/// (a fact supported only by a cycle through itself has no well-founded
/// derivation and must die).
class AliveChecker {
 public:
  AliveChecker(const rdf::TripleStore& store, const rules::RuleSet& rules,
               const rdf::TripleSet& protected_set,
               const rdf::TripleSet& dead)
      : store_(store), rules_(rules), protected_(protected_set), dead_(dead) {}

  /// Fresh per-root memo: `true` verdicts cached within one root check are
  /// safe (the dead set is fixed for its duration) but must not leak across
  /// roots — the dead set grows between checks, so an old `true` may rest
  /// on a fact that has since died.
  bool alive(const rdf::Triple& t) {
    proven_.reset();
    stack_.clear();
    return alive_rec(t);
  }

 private:
  bool alive_rec(const rdf::Triple& t) {
    if (protected_.contains(t) || proven_.contains(t)) {
      return true;
    }
    if (dead_.contains(t)) {
      return false;
    }
    if (std::find(stack_.begin(), stack_.end(), t) != stack_.end()) {
      // In-progress: blocks cyclic self-support for this branch only.  A
      // `false` here is not cached — the same fact may still be proven
      // alive through a path that does not pass through the stack.
      return false;
    }
    stack_.push_back(t);
    bool result = false;
    for (const rules::Rule& rule : rules_.rules()) {
      rules::Binding binding{};
      if (!rules::bind_atom(rule.head, t, binding)) {
        continue;
      }
      const bool exhausted = join_rest(store_, rule, 0, binding, [&] {
        for (const rules::Atom& atom : rule.body) {
          const rdf::Triple b = ground_head(atom, binding);
          if (dead_.contains(b) || !alive_rec(b)) {
            return true;  // this instantiation fails; try the next
          }
        }
        return false;  // well-founded support found: stop enumerating
      });
      if (!exhausted) {
        result = true;
        break;
      }
    }
    stack_.pop_back();
    if (result) {
      proven_.insert(t);
    }
    return result;
  }

  const rdf::TripleStore& store_;
  const rules::RuleSet& rules_;
  const rdf::TripleSet& protected_;
  const rdf::TripleSet& dead_;
  rdf::TripleSet proven_;
  std::vector<rdf::Triple> stack_;
};

}  // namespace

Maintainer::Maintainer(const rdf::Dictionary& dict,
                       const ontology::Vocabulary& vocab,
                       MaintainOptions options)
    : dict_(dict), vocab_(vocab), options_(std::move(options)) {}

MaintainResult Maintainer::apply(rdf::TripleStore& store,
                                 std::vector<rdf::Triple>& base,
                                 std::span<const rdf::Triple> additions,
                                 std::span<const rdf::Triple> deletions) const {
  obs::configure(options_.obs);
  MaintainResult result;
  util::Stopwatch total;
  PAROWL_SPAN("maintain.apply", {{"additions", additions.size()},
                                 {"deletions", deletions.size()}});

  for (const rdf::Triple& t : additions) {
    if (vocab_.is_schema_triple(t)) {
      result.schema_changed = true;
      return result;
    }
  }
  for (const rdf::Triple& t : deletions) {
    if (vocab_.is_schema_triple(t)) {
      result.schema_changed = true;
      return result;
    }
  }

  // Equality rewriting: the class map only grows (see the header's
  // equality_rejected contract).  Deleting a sameAs edge, or any fact about
  // a merged individual, cannot be maintained incrementally — reject the
  // whole batch before touching anything.
  const bool rewrite = options_.equality_mode == EqualityMode::kRewrite &&
                       options_.equality != nullptr;
  if (rewrite) {
    for (const rdf::Triple& t : deletions) {
      if (t.p == vocab_.owl_same_as || options_.equality->tracked(t.s) ||
          options_.equality->tracked(t.o)) {
        result.equality_rejected = true;
        return result;
      }
    }
  }

  rdf::TripleSet base_set;
  for (const rdf::Triple& t : base) {
    base_set.insert(t);
  }
  rdf::TripleSet addition_set;
  for (const rdf::Triple& t : additions) {
    addition_set.insert(t);
  }

  // Effective deletions: present in the base and not re-added in the same
  // batch (batch-atomic semantics).  Deduplicated, batch order.
  std::vector<rdf::Triple> effective;
  rdf::TripleSet delete_set;
  for (const rdf::Triple& t : deletions) {
    if (base_set.contains(t) && !addition_set.contains(t) &&
        delete_set.insert(t)) {
      effective.push_back(t);
    }
  }
  result.base_deleted = effective.size();

  // Mixing sameAs additions with deletions would interleave class-map
  // merges with the overdelete cone; pure-addition batches below handle
  // them through the engine's interceptor instead.
  if (rewrite && !effective.empty()) {
    for (const rdf::Triple& t : additions) {
      if (t.p == vocab_.owl_same_as) {
        result.equality_rejected = true;
        return result;
      }
    }
  }

  if (effective.empty()) {
    // Pure-addition batch: the existing semi-naive delta path.  The base
    // still records every addition (dedup against the base, not the
    // closure: an addition that was merely derived before becomes asserted
    // and must survive a later deletion of its support).
    const IncrementalResult inc = materialize_incremental(
        store, dict_, vocab_, additions, options_.horst, options_.threads,
        options_.equality_mode, options_.equality);
    assert(!inc.schema_changed);
    for (const rdf::Triple& t : additions) {
      if (!base_set.contains(t)) {
        base_set.insert(t);
        base.push_back(t);
        ++result.base_added;
      }
    }
    result.inferred = inc.inferred;
    result.rederive_iterations = inc.iterations;
    result.rederive_seconds = inc.reason_seconds;
    // A class-map merge rebuilds the store log; the log-order delta is then
    // meaningless and the serve layer must treat everything as new.
    result.first_new_index =
        inc.eq_rebuilds > 0 ? 0 : store.size() - inc.added - inc.inferred;
    result.total_seconds = total.elapsed_seconds();
    return result;
  }

  // The compiled rule-base depends only on the schema, which is unchanged.
  rules::HorstOptions hopts = options_.horst;
  if (rewrite) {
    hopts.include_same_as_propagation = false;
  }
  const rules::CompiledRules compiled = compile_ontology(store, vocab_, hopts);
  const DispatchIndex dispatch(compiled.rules);

  // The updated base: deletions dropped in place, additions appended.
  // (A triple deleted and re-added in the same batch never reaches
  // `delete_set`, so it survives the first loop and the second loop's
  // insert dedups it.)
  rdf::TripleSet new_base_set;
  std::vector<rdf::Triple> new_base;
  new_base.reserve(base.size() + additions.size());
  for (const rdf::Triple& t : base) {
    if (!delete_set.contains(t) && new_base_set.insert(t)) {
      new_base.push_back(t);
    }
  }
  for (const rdf::Triple& t : additions) {
    if (new_base_set.insert(t)) {
      new_base.push_back(t);
      ++result.base_added;
    }
  }

  // Facts that can never leave the closure: the updated base plus the
  // compile-time ground facts (schema-derived; instance deletions cannot
  // touch their support).  The overdelete walk prunes at them — anything
  // still asserted keeps itself and everything it supports.
  rdf::TripleSet protected_set;
  for (const rdf::Triple& t : new_base) {
    protected_set.insert(t);
  }
  for (const rdf::Triple& t : compiled.ground_facts) {
    protected_set.insert(t);
  }

  // --- Overdelete pass -----------------------------------------------------
  // BFS over the derivation graph: condemned facts route through the
  // dispatch index to the (rule, pivot) pairs they can feed, the remaining
  // body atoms join against the *old* closure, and every head found in the
  // closure joins the cone.  DRed condemns unconditionally (and re-proves
  // later); FBF first runs the backward check and propagates only genuine
  // deaths.
  util::Stopwatch overdelete_watch;
  rdf::TripleSet condemned;   // DRed: overdeleted; FBF: dead
  std::vector<rdf::Triple> cone;  // BFS queue, deterministic order
  const bool fbf = options_.strategy == MaintainStrategy::kFbf;
  bool equality_undermined = false;
  AliveChecker checker(store, compiled.rules, protected_set, condemned);
  {
    PAROWL_SPAN("maintain.overdelete", {{"deletions", effective.size()}});
    for (const rdf::Triple& t : effective) {
      if (!fbf) {
        condemned.insert(t);  // DRed condemns by fiat; rederive re-proves
      }
      cone.push_back(t);
    }
    std::size_t frontier_end = cone.size();
    std::size_t processed = 0;
    while (processed < cone.size() && !equality_undermined) {
      if (processed == frontier_end) {
        ++result.overdelete_iterations;
        frontier_end = cone.size();
      }
      const rdf::Triple t = cone[processed++];
      if (fbf) {
        if (condemned.contains(t)) {
          continue;  // already dead; its dependents are already enqueued
        }
        // Backward step: an alternate well-founded support keeps `t` (and
        // everything downstream of it) out of the cone.  This applies to
        // the deleted base facts themselves — a retracted assertion with an
        // independent derivation stays in the closure as a derived fact.
        if (checker.alive(t)) {
          ++result.kept_alive;
          continue;
        }
        condemned.insert(t);
      }
      dispatch.dispatch(t, [&](const PivotRef& ref) {
        const rules::Rule& rule = compiled.rules[ref.rule];
        rules::Binding binding{};
        if (!rules::bind_atom(rule.body[ref.pivot], t, binding)) {
          return;
        }
        join_rest(store, rule, 1u << ref.pivot, binding, [&] {
          const rdf::Triple head = ground_head(rule.head, binding);
          // A sameAs head means the deleted fact supported a merge (rdfp1/2
          // fired through it); the class map would have to shrink, which it
          // cannot.  Checked BEFORE the contains test — rewritten stores
          // hold no sameAs triples, so contains() would hide it.
          if (rewrite && head.p == vocab_.owl_same_as) {
            equality_undermined = true;
            return false;
          }
          // The closure is a fixpoint, so a head joined from closure facts
          // is already present — unless the literal guard dropped it.
          if (store.contains(head) && !protected_set.contains(head) &&
              !condemned.contains(head)) {
            if (fbf) {
              // Enqueue for its own backward check; re-enqueueing on every
              // dying supporter keeps verdicts current as the dead set
              // grows (an early "alive" may rest on a fact that dies
              // later).
              if (std::find(cone.begin() + static_cast<std::ptrdiff_t>(
                                               processed),
                            cone.end(), head) == cone.end()) {
                cone.push_back(head);
              }
            } else {
              condemned.insert(head);
              cone.push_back(head);
            }
          }
          return true;  // keep enumerating: all heads of this pivot
        });
      });
    }
    if (result.overdelete_iterations == 0 && !cone.empty()) {
      result.overdelete_iterations = 1;
    }
  }
  if (equality_undermined) {
    // The cone phase only reads the store, so rejecting here leaves the
    // closure, the base, and the class map exactly as they were.
    result.equality_rejected = true;
    return result;
  }
  result.overdeleted = condemned.size();
  result.overdelete_seconds = overdelete_watch.elapsed_seconds();
  PAROWL_COUNT("maintain.overdeleted", result.overdeleted);
  PAROWL_COUNT("maintain.kept_alive", result.kept_alive);

  // --- Rebuild + rederive pass --------------------------------------------
  // Survivors keep their log order; then additions, rederivation seeds, and
  // the semi-naive closure of both append at the tail.
  util::Stopwatch rederive_watch;
  {
    PAROWL_SPAN("maintain.rederive", {{"condemned", result.overdeleted}});
    rdf::TripleStore next;
    for (const rdf::Triple& t : store.triples()) {
      if (!condemned.contains(t)) {
        next.insert(t);
      }
    }
    result.first_new_index = next.size();

    for (const rdf::Triple& t : additions) {
      next.insert(t);
    }

    if (!fbf) {
      // DRed rederivation seeds: a condemned fact with a one-step
      // derivation from the surviving closure re-enters; the semi-naive
      // run below completes the transitive rederivations.  (FBF never
      // condemns a fact with surviving support, so it skips this.)
      for (const rdf::Triple& t : cone) {
        if (!next.contains(t) && one_step_derivable(next, compiled.rules, t)) {
          next.insert(t);
          ++result.rederived;
        }
      }
    }

    ForwardOptions fopts;
    fopts.dict = &dict_;
    fopts.threads = options_.threads;
    fopts.obs = options_.obs;
    if (rewrite) {
      fopts.equality_mode = EqualityMode::kRewrite;
      fopts.equality = options_.equality;
      fopts.same_as = vocab_.owl_same_as;
    }
    const ForwardStats stats = ForwardEngine(next, compiled.rules, fopts)
                                   .run(result.first_new_index);
    result.rederive_iterations = stats.iterations;
    if (rewrite && stats.eq_rebuilds > 0) {
      // New additions triggered a merge: the rebuilt log has no stable
      // survivor prefix, so the serve layer must treat everything as new.
      result.first_new_index = 0;
    }

    // Net removals: condemned facts that did not make it back.
    for (const rdf::Triple& t : cone) {
      if (condemned.contains(t) && !next.contains(t)) {
        result.removed_triples.push_back(t);
      }
    }
    result.removed = result.removed_triples.size();
    result.inferred =
        next.size() - result.first_new_index;  // additions + rederived + new

    store = std::move(next);
  }
  base = std::move(new_base);
  result.rederive_seconds = rederive_watch.elapsed_seconds();
  PAROWL_COUNT("maintain.rederived", result.rederived);
  PAROWL_COUNT("maintain.removed", result.removed);
  result.total_seconds = total.elapsed_seconds();
  return result;
}

obs::FieldList fields(const MaintainResult& r) {
  return {
      {"schema_changed", r.schema_changed},
      {"equality_rejected", r.equality_rejected},
      {"base_deleted", r.base_deleted},
      {"base_added", r.base_added},
      {"overdeleted", r.overdeleted},
      {"kept_alive", r.kept_alive},
      {"rederived", r.rederived},
      {"removed", r.removed},
      {"inferred", r.inferred},
      {"overdelete_iterations", r.overdelete_iterations},
      {"rederive_iterations", r.rederive_iterations},
      {"overdelete_seconds", r.overdelete_seconds},
      {"rederive_seconds", r.rederive_seconds},
      {"total_seconds", r.total_seconds},
  };
}

}  // namespace parowl::reason
