#include "parowl/reason/materialize.hpp"

#include "parowl/obs/obs.hpp"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "parowl/util/timer.hpp"

namespace parowl::reason {

rules::CompiledRules compile_ontology(const rdf::TripleStore& store,
                                      const ontology::Vocabulary& vocab,
                                      const rules::HorstOptions& horst) {
  const rules::RuleSet generic = rules::horst_rules(vocab, horst);

  // Build and saturate the schema store so the compiler sees inherited
  // axioms (e.g. a transitivity declaration reached via subPropertyOf).
  rdf::TripleStore schema;
  for (const rdf::Triple& t : store.triples()) {
    if (vocab.is_schema_triple(t)) {
      schema.insert(t);
    }
  }
  forward_closure(schema, generic);

  return rules::compile_rules(generic, schema, vocab);
}

namespace {

/// One query-driven sweep over the given resource set, asserting every
/// (r, ?p, ?o) answer.  Returns the number of new triples.
std::size_t query_driven_sweep_over(
    rdf::TripleStore& store, const rdf::Dictionary& dict,
    const rules::RuleSet& rules, bool share_tables,
    const std::unordered_set<rdf::TermId>& resources) {
  const BackwardOptions opts{.dict = &dict};
  std::unique_ptr<BackwardEngine> shared;
  if (share_tables) {
    shared = std::make_unique<BackwardEngine>(store, rules, opts);
  }

  std::size_t added = 0;
  std::vector<rdf::Triple> answers;
  for (const rdf::TermId r : resources) {
    answers.clear();
    if (share_tables) {
      shared->query(rdf::TriplePattern{r, rdf::kAnyTerm, rdf::kAnyTerm},
                    answers);
    } else {
      // Fresh tables per query — each query pays the full proof-space
      // exploration, as Jena's per-resource materialization queries do.
      BackwardEngine engine(store, rules, opts);
      engine.query(rdf::TriplePattern{r, rdf::kAnyTerm, rdf::kAnyTerm},
                   answers);
    }
    for (const rdf::Triple& t : answers) {
      added += store.insert(t) ? 1 : 0;
    }
  }
  return added;
}

/// One full sweep: (r, ?p, ?o) for every resource in the store.
std::size_t query_driven_sweep(rdf::TripleStore& store,
                               const rdf::Dictionary& dict,
                               const rules::RuleSet& rules,
                               bool share_tables) {
  // Snapshot the resources first: insertions during the sweep must not
  // perturb the iteration.
  std::unordered_set<rdf::TermId> resources;
  for (const rdf::Triple& t : store.triples()) {
    resources.insert(t.s);
    if (dict.is_resource(t.o)) {
      resources.insert(t.o);
    }
  }
  return query_driven_sweep_over(store, dict, rules, share_tables, resources);
}

}  // namespace

QueryDrivenStats query_driven_closure_delta(rdf::TripleStore& store,
                                            const rdf::Dictionary& dict,
                                            const rules::RuleSet& rules,
                                            std::size_t delta_begin,
                                            bool share_tables,
                                            std::size_t max_sweeps) {
  QueryDrivenStats stats;
  if (delta_begin >= store.size()) {
    return stats;  // no new information: the closure cannot change
  }
  // Fall back to full sweeps when the rule shape breaks the adjacency
  // argument (bodies longer than two atoms).
  const bool single_join_shape =
      std::ranges::all_of(rules.rules(), [](const rules::Rule& r) {
        return r.body.size() <= 2;
      });
  if (delta_begin == 0 || !single_join_shape) {
    return query_driven_closure(store, dict, rules, share_tables,
                                max_sweeps);
  }

  std::size_t mark = delta_begin;
  while (stats.sweeps < max_sweeps) {
    const std::size_t end = store.size();
    if (mark >= end) {
      break;
    }
    ++stats.sweeps;
    // Affected resources: endpoints of the delta triples plus everything
    // store-adjacent to those endpoints (see header for the completeness
    // argument).
    std::unordered_set<rdf::TermId> affected;
    auto note = [&](rdf::TermId id) {
      if (dict.is_resource(id)) {
        affected.insert(id);
      }
    };
    for (std::size_t i = mark; i < end; ++i) {
      const rdf::Triple& t = store.triples()[i];
      note(t.s);
      note(t.o);
    }
    std::vector<rdf::TermId> frontier(affected.begin(), affected.end());
    for (const rdf::TermId n : frontier) {
      store.for_subject(n, [&](const rdf::Triple& t) { note(t.o); });
      store.for_object(n, [&](const rdf::Triple& t) { note(t.s); });
    }
    mark = end;
    stats.added +=
        query_driven_sweep_over(store, dict, rules, share_tables, affected);
  }
  return stats;
}

QueryDrivenStats query_driven_closure(rdf::TripleStore& store,
                                      const rdf::Dictionary& dict,
                                      const rules::RuleSet& rules,
                                      bool share_tables,
                                      std::size_t max_sweeps) {
  QueryDrivenStats stats;
  while (stats.sweeps < max_sweeps) {
    ++stats.sweeps;
    const std::size_t added =
        query_driven_sweep(store, dict, rules, share_tables);
    stats.added += added;
    if (added == 0) {
      break;
    }
  }
  return stats;
}

MaterializeResult materialize(rdf::TripleStore& store,
                              const rdf::Dictionary& dict,
                              const ontology::Vocabulary& vocab,
                              const MaterializeOptions& options) {
  obs::configure(options.obs);
  PAROWL_SPAN("reason.materialize",
              {{"strategy", options.strategy == Strategy::kForward
                                ? "forward"
                                : "query_driven"}});
  MaterializeResult result;
  result.base_triples = store.size();
  for (const rdf::Triple& t : store.triples()) {
    result.schema_triples += vocab.is_schema_triple(t) ? 1 : 0;
  }

  // Equality rewriting only applies to the forward strategy; it drops the
  // sameAs propagation rules, whose work the EqualityManager takes over.
  const bool rewrite = options.strategy == Strategy::kForward &&
                       options.equality_mode == EqualityMode::kRewrite &&
                       options.equality != nullptr;
  rules::HorstOptions horst = options.horst;
  if (rewrite) {
    horst.include_same_as_propagation = false;
  }

  util::Stopwatch compile_watch;
  rules::RuleSet active;
  if (options.compile) {
    rules::CompiledRules compiled = compile_ontology(store, vocab, horst);
    for (const rdf::Triple& t : compiled.ground_facts) {
      store.insert(t);
    }
    result.compiled_rules = compiled.rules.size();
    active = std::move(compiled.rules);
  } else {
    active = rules::horst_rules(vocab, horst);
    result.compiled_rules = active.size();
  }
  result.compile_seconds = compile_watch.elapsed_seconds();

  util::Stopwatch reason_watch;
  if (options.strategy == Strategy::kForward) {
    ForwardOptions fopts;
    fopts.semi_naive = options.semi_naive;
    fopts.dict = &dict;
    fopts.dispatch_index = options.dispatch_index;
    fopts.devirtualize = options.devirtualize;
    fopts.threads = options.threads;
    fopts.obs = options.obs;
    if (rewrite) {
      fopts.equality_mode = EqualityMode::kRewrite;
      fopts.equality = options.equality;
      fopts.same_as = vocab.owl_same_as;
    }
    const ForwardStats stats = ForwardEngine(store, active, fopts).run(0);
    result.iterations = stats.iterations;
    result.eq_merges = stats.eq_merges;
    result.eq_conflicts = stats.eq_conflicts;
    result.endpoint_index_builds = stats.endpoint_index_builds;
  } else {
    const QueryDrivenStats stats = query_driven_closure(
        store, dict, active, options.share_tables, options.max_sweeps);
    result.iterations = stats.sweeps;
  }
  result.reason_seconds = reason_watch.elapsed_seconds();
  // The rewrite can leave the store SMALLER than the input (sameAs triples
  // fold into the class map); clamp rather than underflow.
  result.inferred = store.size() > result.base_triples
                        ? store.size() - result.base_triples
                        : 0;
  obs::publish(result, "reason.materialize");
  return result;
}

IncrementalResult materialize_incremental(
    rdf::TripleStore& store, const rdf::Dictionary& dict,
    const ontology::Vocabulary& vocab,
    std::span<const rdf::Triple> additions,
    const rules::HorstOptions& horst, unsigned threads,
    EqualityMode equality_mode, EqualityManager* equality) {
  IncrementalResult result;
  for (const rdf::Triple& t : additions) {
    if (vocab.is_schema_triple(t)) {
      result.schema_changed = true;
      return result;  // caller must re-materialize from scratch
    }
  }

  const bool rewrite =
      equality_mode == EqualityMode::kRewrite && equality != nullptr;
  rules::HorstOptions hopts = horst;
  if (rewrite) {
    hopts.include_same_as_propagation = false;
  }

  // The compiled rule-base depends only on the schema, which is unchanged.
  const rules::CompiledRules compiled = compile_ontology(store, vocab, hopts);

  const std::size_t delta_begin = store.size();
  result.added = store.insert_all(additions);
  if (result.added == 0) {
    return result;  // everything already present: fixpoint unchanged
  }

  util::Stopwatch watch;
  ForwardOptions fopts;
  fopts.dict = &dict;
  fopts.threads = threads;
  if (rewrite) {
    fopts.equality_mode = EqualityMode::kRewrite;
    fopts.equality = equality;
    fopts.same_as = vocab.owl_same_as;
  }
  const ForwardStats stats =
      ForwardEngine(store, compiled.rules, fopts).run(delta_begin);
  result.iterations = stats.iterations;
  result.eq_merges = stats.eq_merges;
  result.eq_rebuilds = stats.eq_rebuilds;
  // New sameAs assertions fold into the class map and a merge can shrink
  // the store, so the inferred count is clamped at zero.
  const std::size_t floor = delta_begin + result.added;
  result.inferred = store.size() > floor ? store.size() - floor : 0;
  result.reason_seconds = watch.elapsed_seconds();
  return result;
}

obs::FieldList fields(const MaterializeResult& r) {
  return {
      {"base_triples", r.base_triples},
      {"schema_triples", r.schema_triples},
      {"inferred", r.inferred},
      {"iterations", r.iterations},
      {"compiled_rules", r.compiled_rules},
      {"reason_seconds", r.reason_seconds},
      {"compile_seconds", r.compile_seconds},
      {"eq_merges", r.eq_merges},
      {"eq_conflicts", r.eq_conflicts},
      {"endpoint_index_builds", r.endpoint_index_builds},
  };
}

obs::FieldList fields(const QueryDrivenStats& s) {
  return {
      {"sweeps", s.sweeps},
      {"added", s.added},
  };
}

obs::FieldList fields(const IncrementalResult& r) {
  return {
      {"added", r.added},
      {"inferred", r.inferred},
      {"iterations", r.iterations},
      {"schema_changed", r.schema_changed},
      {"reason_seconds", r.reason_seconds},
      {"eq_merges", r.eq_merges},
      {"eq_rebuilds", r.eq_rebuilds},
  };
}

}  // namespace parowl::reason
