#include "parowl/reason/equality.hpp"

#include <algorithm>
#include <cassert>

namespace parowl::reason {

rdf::TermId& EqualityManager::track(rdf::TermId id) {
  const rdf::TermId* existing = parent_.find(id);
  rdf::TermId& slot = parent_[id];
  if (existing == nullptr) {
    slot = id;
    tracked_.push_back(id);
  }
  return slot;
}

rdf::TermId EqualityManager::root_compress(rdf::TermId id) {
  const rdf::TermId root = find(id);
  while (id != root) {
    rdf::TermId& slot = parent_[id];
    id = slot;
    slot = root;
  }
  return root;
}

bool EqualityManager::merge(rdf::TermId a, rdf::TermId b) {
  track(a);
  track(b);
  const rdf::TermId ra = root_compress(a);
  const rdf::TermId rb = root_compress(b);
  if (ra == rb) {
    return false;
  }
  // Union-by-min: the smaller id wins, so the final representative of any
  // class is its smallest member regardless of merge order.
  const rdf::TermId winner = std::min(ra, rb);
  const rdf::TermId loser = std::max(ra, rb);
  parent_[loser] = winner;
  ++merges_;
  frozen_ = false;
  return true;
}

bool EqualityManager::attach_literal(rdf::TermId resource, rdf::TermId lit) {
  // Dedup on the (class, literal) pair: re-deriving the same edge through
  // another member of an existing class must not signal a map change, or
  // the engine would rebuild the store every round forever.
  const rdf::TermId rep = find(resource);
  if (!attach_set_.insert(rdf::Triple{rep, lit, lit})) {
    return false;
  }
  track(resource);
  attach_edges_.emplace_back(resource, lit);
  partner_set_[lit] = 1;
  frozen_ = false;
  return true;
}

bool EqualityManager::note_self(rdf::TermId resource) {
  if (self_set_.find(resource) != nullptr) {
    return false;
  }
  self_set_[resource] = 1;
  track(resource);
  self_edges_.push_back(resource);
  frozen_ = false;
  return true;
}

void EqualityManager::freeze() {
  classes_.clear();
  object_lists_.clear();
  class_slot_.clear();

  // Bucket tracked resources by final root, smallest member first.  The
  // sorted order also fully compresses the forest: every member's parent
  // entry is rewritten to point straight at the representative, so find()
  // is a single probe afterwards (and safe for concurrent readers).
  std::vector<rdf::TermId> sorted = tracked_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (const rdf::TermId id : sorted) {
    const rdf::TermId rep = root_compress(id);
    std::uint32_t& slot = class_slot_[rep];
    if (slot == 0) {
      classes_.push_back(Class{rep, {}, {}, false});
      slot = static_cast<std::uint32_t>(classes_.size());
    }
    classes_[slot - 1].members.push_back(id);
  }
  // Ascending member iteration means the representative (the minimum) leads
  // each member list and classes_ is already in ascending-rep order.
  for (const auto& [resource, lit] : attach_edges_) {
    const std::uint32_t* slot = class_slot_.find(find(resource));
    assert(slot != nullptr);
    classes_[*slot - 1].literals.push_back(lit);
  }
  object_lists_.reserve(classes_.size());
  for (Class& c : classes_) {
    std::sort(c.literals.begin(), c.literals.end());
    c.literals.erase(std::unique(c.literals.begin(), c.literals.end()),
                     c.literals.end());
    // Reflexive pairs: any two distinct members a, b give (a~b)(b~a) and
    // rdfp7 closes them into (a~a); a singleton needs an explicit edge.
    c.self = c.members.size() > 1;
    std::vector<rdf::TermId> objects = c.members;
    objects.insert(objects.end(), c.literals.begin(), c.literals.end());
    object_lists_.push_back(std::move(objects));
  }
  for (const rdf::TermId id : self_edges_) {
    const std::uint32_t* slot = class_slot_.find(find(id));
    assert(slot != nullptr);
    classes_[*slot - 1].self = true;
  }
  frozen_ = true;
}

std::span<const rdf::TermId> EqualityManager::subject_members(
    rdf::TermId rep) const {
  assert(frozen_);
  const Class* c = class_of(rep);
  return c != nullptr ? std::span<const rdf::TermId>(c->members)
                      : std::span<const rdf::TermId>();
}

std::span<const rdf::TermId> EqualityManager::object_members(
    rdf::TermId rep) const {
  assert(frozen_);
  const std::uint32_t* slot = class_slot_.find(rep);
  return slot != nullptr
             ? std::span<const rdf::TermId>(object_lists_[*slot - 1])
             : std::span<const rdf::TermId>();
}

rdf::EqualityClassMap EqualityManager::export_map() const {
  assert(frozen_);
  rdf::EqualityClassMap map;
  for (const Class& c : classes_) {
    for (const rdf::TermId m : c.members) {
      map.members.emplace_back(m, c.rep);
    }
    for (const rdf::TermId lit : c.literals) {
      map.literals.emplace_back(c.rep, lit);
    }
    if (c.self) {
      map.self_terms.push_back(c.rep);
    }
  }
  std::sort(map.members.begin(), map.members.end());
  std::sort(map.literals.begin(), map.literals.end());
  std::sort(map.self_terms.begin(), map.self_terms.end());
  map.raw_edges = raw_edges_;
  std::sort(map.raw_edges.begin(), map.raw_edges.end());
  return map;
}

EqualityManager EqualityManager::import_map(const rdf::EqualityClassMap& map) {
  EqualityManager eq;
  for (const auto& [member, rep] : map.members) {
    eq.merge(member, rep);
  }
  for (const auto& [rep, lit] : map.literals) {
    eq.attach_literal(rep, lit);
  }
  // A persisted self term is a representative; the class-level flag
  // re-forms at freeze.  Singleton self classes need the per-term note.
  for (const rdf::TermId id : map.self_terms) {
    eq.note_self(id);
  }
  for (const rdf::Triple& t : map.raw_edges) {
    eq.keep_raw(t);
  }
  eq.freeze();
  return eq;
}

std::vector<rdf::Triple> expand_closure(const rdf::TripleStore& store,
                                        const EqualityManager& eq,
                                        rdf::TermId same_as) {
  assert(eq.frozen());
  std::vector<rdf::Triple> out;
  out.reserve(store.size());
  for (const rdf::Triple& t : store.triples()) {
    const std::span<const rdf::TermId> subjects = eq.subject_members(t.s);
    const std::span<const rdf::TermId> objects = eq.object_members(t.o);
    if (subjects.empty() && objects.empty()) {
      out.push_back(t);
      continue;
    }
    const rdf::TermId one_s = t.s;
    const rdf::TermId one_o = t.o;
    const std::span<const rdf::TermId> ss =
        subjects.empty() ? std::span<const rdf::TermId>(&one_s, 1) : subjects;
    const std::span<const rdf::TermId> os =
        objects.empty() ? std::span<const rdf::TermId>(&one_o, 1) : objects;
    for (const rdf::TermId s : ss) {
      for (const rdf::TermId o : os) {
        out.push_back(rdf::Triple{s, t.p, o});
      }
    }
  }
  // Regenerate the sameAs clique triples the rewrite intercepted: every
  // ordered resource pair of each class (reflexive pairs per Class::self),
  // each resource against each literal partner, and the raw asserted
  // literal-subject edges.
  for (const EqualityManager::Class& c : eq.classes()) {
    for (const rdf::TermId a : c.members) {
      for (const rdf::TermId b : c.members) {
        if (a != b || c.self) {
          out.push_back(rdf::Triple{a, same_as, b});
        }
      }
      for (const rdf::TermId lit : c.literals) {
        out.push_back(rdf::Triple{a, same_as, lit});
      }
    }
  }
  for (const rdf::Triple& t : eq.raw_edges()) {
    out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

obs::FieldList fields(const ExpandStats& s) {
  return {
      {"rows_in", s.rows_in},
      {"rows_out", s.rows_out},
      {"seconds", s.seconds},
  };
}

}  // namespace parowl::reason
