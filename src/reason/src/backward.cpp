#include "parowl/reason/backward.hpp"

#include "parowl/util/strings.hpp"

namespace parowl::reason {

std::size_t BackwardEngine::PatternHash::operator()(
    const rdf::TriplePattern& p) const noexcept {
  return rdf::TripleHash{}(rdf::Triple{p.s, p.p, p.o});
}

BackwardEngine::BackwardEngine(const rdf::TripleStore& store,
                               const rules::RuleSet& rules,
                               BackwardOptions options)
    : store_(store), rules_(rules), options_(options) {}

void BackwardEngine::query(const rdf::TriplePattern& goal,
                           std::vector<rdf::Triple>& out) {
  const TableEntry& entry = solve(goal);
  out.insert(out.end(), entry.answers.begin(), entry.answers.end());
}

BackwardEngine::TableEntry& BackwardEngine::solve(
    const rdf::TriplePattern& goal) {
  auto [it, fresh] = table_.try_emplace(goal);
  TableEntry& entry = it->second;
  if (!fresh) {
    // Either complete, or an in-progress ancestor goal: return the answers
    // tabled so far (sound; the materializer's outer fixpoint restores
    // completeness for recursive chains).
    return entry;
  }
  ++stats_.subgoals;
  entry.in_progress = true;

  // Base answers straight from the store.
  ++stats_.store_probes;
  store_.match(goal, [&entry](const rdf::Triple& t) {
    if (entry.seen.emplace(t, 0).second) {
      entry.answers.push_back(t);
    }
  });

  // Derived answers via each rule whose head can produce a matching triple.
  for (const rules::Rule& rule : rules_.rules()) {
    resolve_rule(rule, goal, entry);
  }

  entry.in_progress = false;
  return entry;
}

void BackwardEngine::resolve_rule(const rules::Rule& rule,
                                  const rdf::TriplePattern& goal,
                                  TableEntry& entry) {
  // Unify the head with the goal: goal constants flow into head variables;
  // head constants must agree with goal constants.
  rules::Binding binding{};
  auto unify = [&binding](const rules::AtomTerm& ht, rdf::TermId gv) {
    if (gv == rdf::kAnyTerm) {
      return true;  // goal position unbound: anything the body produces
    }
    if (ht.is_const()) {
      return ht.const_id() == gv;
    }
    auto& slot = binding[static_cast<std::size_t>(ht.var_index())];
    if (slot != rdf::kAnyTerm && slot != gv) {
      return false;
    }
    slot = gv;
    return true;
  };
  if (!unify(rule.head.s, goal.s) || !unify(rule.head.p, goal.p) ||
      !unify(rule.head.o, goal.o)) {
    return;
  }
  ++stats_.resolutions;
  prove_body(rule, 0, binding, entry);
}

void BackwardEngine::prove_body(const rules::Rule& rule,
                                std::size_t atom_index,
                                rules::Binding& binding, TableEntry& entry) {
  if (atom_index == rule.body.size()) {
    emit(rule, binding, entry);
    return;
  }
  const auto subgoal = rules::to_pattern(rule.body[atom_index], binding);
  // Snapshot the answer count: the subgoal may be an in-progress ancestor
  // whose answer vector grows underneath us.
  TableEntry& sub = solve(subgoal);
  const std::size_t limit = sub.answers.size();
  for (std::size_t i = 0; i < limit; ++i) {
    const rdf::Triple t = sub.answers[i];  // copy: vector may reallocate
    rules::Binding saved = binding;
    if (rules::bind_atom(rule.body[atom_index], t, binding)) {
      prove_body(rule, atom_index + 1, binding, entry);
    }
    binding = saved;
  }
}

void BackwardEngine::emit(const rules::Rule& rule,
                          const rules::Binding& binding, TableEntry& entry) {
  const auto head = rules::to_pattern(rule.head, binding);
  if (head.s == rdf::kAnyTerm || head.p == rdf::kAnyTerm ||
      head.o == rdf::kAnyTerm) {
    return;  // unsafe instantiation (cannot happen for well-formed rules)
  }
  if (options_.dict != nullptr &&
      options_.dict->kind(head.s) == rdf::TermKind::kLiteral) {
    return;  // literal guard
  }
  const rdf::Triple t{head.s, head.p, head.o};
  if (entry.seen.emplace(t, 0).second) {
    entry.answers.push_back(t);
  }
}

obs::FieldList fields(const BackwardStats& s) {
  return {
      {"subgoals", s.subgoals},
      {"resolutions", s.resolutions},
      {"store_probes", s.store_probes},
  };
}

}  // namespace parowl::reason
