#include "parowl/reason/explain.hpp"

#include <algorithm>
#include <sstream>

#include "parowl/rules/rule.hpp"

namespace parowl::reason {
namespace {

int bound_count(const rdf::TriplePattern& p) {
  return (p.s != rdf::kAnyTerm) + (p.p != rdf::kAnyTerm) +
         (p.o != rdf::kAnyTerm);
}

/// Enumerate instantiations of `body` against `store` under `binding`,
/// invoking `emit` with the premise triples of each complete match.
/// `emit` returns true to stop the enumeration (a proof was found).
bool enumerate_premises(const rdf::TripleStore& store,
                        const std::vector<rules::Atom>& body,
                        unsigned done_mask, rules::Binding& binding,
                        std::vector<rdf::Triple>& premises,
                        const std::function<bool()>& emit) {
  if (done_mask == (1u << body.size()) - 1) {
    return emit();
  }
  std::size_t best = body.size();
  int best_bound = -1;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (done_mask & (1u << i)) {
      continue;
    }
    const int b = bound_count(rules::to_pattern(body[i], binding));
    if (b > best_bound) {
      best_bound = b;
      best = i;
    }
  }
  bool stopped = false;
  store.match(rules::to_pattern(body[best], binding),
              [&](const rdf::Triple& t) {
                if (stopped) {
                  return;
                }
                rules::Binding saved = binding;
                if (rules::bind_atom(body[best], t, binding)) {
                  premises[best] = t;
                  stopped = enumerate_premises(store, body, done_mask |
                                               (1u << best),
                                               binding, premises, emit);
                }
                binding = saved;
              });
  return stopped;
}

}  // namespace

Explainer::Explainer(const rdf::TripleStore& materialized,
                     const rdf::TripleStore& base,
                     const rules::RuleSet& rules, ExplainOptions options)
    : materialized_(materialized),
      base_(base),
      rules_(rules),
      options_(options) {}

std::unique_ptr<Derivation> Explainer::explain(const rdf::Triple& t) const {
  if (!materialized_.contains(t)) {
    return nullptr;
  }
  std::vector<rdf::Triple> on_path;
  return prove(t, options_.max_depth, on_path);
}

std::unique_ptr<Derivation> Explainer::prove(
    const rdf::Triple& t, std::size_t depth,
    std::vector<rdf::Triple>& on_path) const {
  if (base_.contains(t)) {
    auto leaf = std::make_unique<Derivation>();
    leaf->triple = t;
    leaf->asserted = true;
    return leaf;
  }
  if (depth == 0 || std::ranges::find(on_path, t) != on_path.end()) {
    return nullptr;
  }
  on_path.push_back(t);

  std::unique_ptr<Derivation> result;
  for (const rules::Rule& rule : rules_.rules()) {
    // Unify the head with the goal triple.
    rules::Binding binding{};
    if (!rules::bind_atom(rule.head, t, binding)) {
      continue;
    }
    std::vector<rdf::Triple> premises(rule.body.size());
    const bool found = enumerate_premises(
        materialized_, rule.body, 0, binding, premises, [&]() {
          // Premises must not be the goal itself (trivial self-loops like
          // symmetric pairs are caught by the path guard when recursing).
          std::vector<std::unique_ptr<Derivation>> proofs;
          for (const rdf::Triple& premise : premises) {
            auto sub = prove(premise, depth - 1, on_path);
            if (!sub) {
              return false;  // try the next instantiation
            }
            proofs.push_back(std::move(sub));
          }
          result = std::make_unique<Derivation>();
          result->triple = t;
          result->rule_name = rule.name;
          result->premises = std::move(proofs);
          return true;
        });
    if (found) {
      break;
    }
  }

  on_path.pop_back();
  return result;
}

std::string Explainer::to_text(const Derivation& proof,
                               const rdf::Dictionary& dict) const {
  std::ostringstream os;
  const std::function<void(const Derivation&, int)> render =
      [&](const Derivation& node, int indent) {
        os << std::string(static_cast<std::size_t>(indent) * 2, ' ');
        os << "(" << rules::short_term(node.triple.s, dict) << " "
           << rules::short_term(node.triple.p, dict) << " "
           << rules::short_term(node.triple.o, dict) << ")";
        if (node.asserted) {
          os << "  [asserted]";
        } else {
          os << "  [" << node.rule_name << "]";
        }
        os << "\n";
        for (const auto& premise : node.premises) {
          render(*premise, indent + 1);
        }
      };
  render(proof, 0);
  return os.str();
}

}  // namespace parowl::reason
