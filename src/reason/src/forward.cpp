#include "parowl/reason/forward.hpp"

#include "parowl/obs/obs.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <cassert>
#include <thread>

namespace parowl::reason {
namespace {

using rules::bind_atom;
using rules::to_pattern;

/// Number of bound positions in the pattern — the join-order heuristic.
int bound_count(const rdf::TriplePattern& p) {
  return (p.s != rdf::kAnyTerm) + (p.p != rdf::kAnyTerm) +
         (p.o != rdf::kAnyTerm);
}

}  // namespace

ForwardEngine::ForwardEngine(rdf::TripleStore& store,
                             const rules::RuleSet& rules,
                             ForwardOptions options)
    : store_(store), rules_(rules), options_(options) {
  // Compile the rule set into the dispatch index: every (rule, pivot) pair,
  // bucketed by the pivot atom's predicate.  A pivot with a constant
  // predicate c can only bind triples with predicate c; a pivot whose
  // predicate position is a variable (the sameAs family) can bind anything
  // and lands in the wildcard bucket.  Within a predicate bucket, pivots
  // with a constant object are discriminated a second time on that
  // constant.  Every list is built in (rule, pivot) order and
  // dispatch_triple merges them in that order, so dispatching a triple
  // visits candidates in exactly the order a full scan would visit its
  // surviving pairs — dispatch on/off yields bit-identical closures.
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const rules::Rule& rule = rules_[r];
    for (std::size_t b = 0; b < rule.body.size(); ++b) {
      const PivotRef pr{static_cast<std::uint32_t>(r),
                        static_cast<std::uint32_t>(b)};
      all_pivots_.push_back(pr);
      const rules::Atom& atom = rule.body[b];
      if (atom.p.is_var()) {
        wildcard_pivots_.push_back(pr);
        continue;
      }
      std::uint32_t& slot = pivot_bucket_slot_[atom.p.const_id()];
      if (slot == 0) {
        pivot_buckets_.emplace_back();
        slot = static_cast<std::uint32_t>(pivot_buckets_.size());
      }
      Bucket& bucket = pivot_buckets_[slot - 1];
      if (atom.o.is_var()) {
        bucket.generic.push_back(pr);
      } else {
        std::uint32_t& oslot = bucket.object_slot[atom.o.const_id()];
        if (oslot == 0) {
          bucket.by_object.emplace_back();
          oslot = static_cast<std::uint32_t>(bucket.by_object.size());
        }
        bucket.by_object[oslot - 1].push_back(pr);
      }
    }
  }
  // Wildcard-predicate pivots can bind any triple: merge them into every
  // bucket's generic list, restoring (rule, pivot) order.
  if (!wildcard_pivots_.empty()) {
    for (Bucket& bucket : pivot_buckets_) {
      bucket.generic.insert(bucket.generic.end(), wildcard_pivots_.begin(),
                            wildcard_pivots_.end());
      std::sort(bucket.generic.begin(), bucket.generic.end(),
                [](const PivotRef a, const PivotRef b) {
                  return a.rule != b.rule ? a.rule < b.rule
                                          : a.pivot < b.pivot;
                });
    }
  }
  // Rewrite mode: collect every constant term the rule set mentions.  An
  // equality class touching one of these is a schema-level merge the
  // individual-oriented rewrite cannot express (see eq_conflicts).
  if (rewrite_active()) {
    const auto note_const = [this](const rules::AtomTerm& t) {
      if (t.is_const()) {
        rule_constants_[t.const_id()] = 1;
      }
    };
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      for (const rules::Atom& atom : rules_[r].body) {
        note_const(atom.s);
        note_const(atom.p);
        note_const(atom.o);
      }
      note_const(rules_[r].head.s);
      note_const(rules_[r].head.p);
      note_const(rules_[r].head.o);
    }
  }
}

bool ForwardEngine::rewrite_active() const {
  return options_.equality_mode == EqualityMode::kRewrite &&
         options_.equality != nullptr && options_.dict != nullptr &&
         options_.same_as != rdf::kAnyTerm;
}

bool ForwardEngine::intercept_same_as(const rdf::Triple& t,
                                      ForwardStats& stats) {
  EqualityManager& eq = *options_.equality;
  const auto is_literal = [this](rdf::TermId id) {
    return options_.dict->kind(id) == rdf::TermKind::kLiteral;
  };
  const auto conflict = [this, &stats](rdf::TermId id) {
    // Schema-level equality the rewrite cannot fold: the term is a rule
    // constant (folded schema term, vocabulary id) or already serves as a
    // predicate in the store.
    if (rule_constants_.find(id) != nullptr ||
        !store_.with_predicate(id).empty()) {
      ++stats.eq_conflicts;
    }
  };
  ++stats.eq_intercepted;
  bool changed = false;
  if (is_literal(t.s)) {
    // Asserted literal-subject edge (derivations never pass the literal
    // guard).  The naive closure keeps the assertion and derives its
    // mirror (rdfp6) plus the resource's reflexive pair (rdfp7).
    changed = eq.keep_raw(t);
    if (changed && !is_literal(t.o)) {
      eq.attach_literal(t.o, t.s);
      eq.note_self(t.o);
      conflict(t.o);
    }
  } else if (is_literal(t.o)) {
    changed = eq.attach_literal(t.s, t.o);
    if (changed) {
      conflict(t.s);
    }
  } else if (t.s == t.o) {
    changed = eq.note_self(t.s);
  } else {
    changed = eq.merge(t.s, t.o);
    if (changed) {
      ++stats.eq_merges;
      conflict(t.s);
      conflict(t.o);
    }
  }
  return changed;
}

std::size_t ForwardEngine::rewrite_store(std::size_t keep_end,
                                         ForwardStats& stats) {
  obs::Span span("reason.eq.rewrite", {{"keep_end", keep_end}});
  const EqualityManager& eq = *options_.equality;
  // The log is copied out because the store is cleared before reinsertion.
  const std::vector<rdf::Triple> log = store_.triples();
  std::vector<rdf::Triple> prefix;
  std::vector<rdf::Triple> tail;
  prefix.reserve(keep_end);
  for (std::size_t i = 0; i < log.size(); ++i) {
    const rdf::Triple& t = log[i];
    if (t.p == options_.same_as) {
      continue;  // interception already folded it into the class map
    }
    const rdf::Triple r = eq.rewrite(t);
    if (i < keep_end && r == t) {
      prefix.push_back(t);
    } else {
      if (r != t) {
        ++stats.eq_remapped;
      }
      tail.push_back(r);
    }
  }
  store_.clear();
  for (const rdf::Triple& t : prefix) {
    store_.insert(t);
  }
  const std::size_t frontier = store_.size();
  for (const rdf::Triple& t : tail) {
    store_.insert(t);
  }
  ++stats.eq_rebuilds;
  span.arg({"remapped", tail.size()});
  return frontier;
}

template <bool Devirt>
void ForwardEngine::dispatch_triple(const rdf::Triple& t, Shard& shard) {
  if (!options_.dispatch_index) {
    for (const PivotRef pr : all_pivots_) {
      fire_rule<Devirt>(pr.rule, pr.pivot, t, shard);
    }
    return;
  }
  const std::uint32_t* slot = pivot_bucket_slot_.find(t.p);
  if (slot == nullptr) {
    // Predicate unseen at construction: only wildcard pivots can bind.
    for (const PivotRef pr : wildcard_pivots_) {
      fire_rule<Devirt>(pr.rule, pr.pivot, t, shard);
    }
    return;
  }
  const Bucket& bucket = pivot_buckets_[*slot - 1];
  const std::uint32_t* oslot = bucket.object_slot.find(t.o);
  if (oslot == nullptr) {
    for (const PivotRef pr : bucket.generic) {
      fire_rule<Devirt>(pr.rule, pr.pivot, t, shard);
    }
    return;
  }
  // Ordered merge of the generic pivots and this object's pivots keeps the
  // global (rule, pivot) visit order of a full scan.
  const std::vector<PivotRef>& exact = bucket.by_object[*oslot - 1];
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < bucket.generic.size() || j < exact.size()) {
    const bool take_generic =
        j == exact.size() ||
        (i < bucket.generic.size() &&
         (bucket.generic[i].rule != exact[j].rule
              ? bucket.generic[i].rule < exact[j].rule
              : bucket.generic[i].pivot < exact[j].pivot));
    const PivotRef pr = take_generic ? bucket.generic[i++] : exact[j++];
    fire_rule<Devirt>(pr.rule, pr.pivot, t, shard);
  }
}

template <bool Devirt>
void ForwardEngine::join(std::size_t rule_index, unsigned done_mask,
                         rules::Binding& binding, Shard& shard) {
  const rules::Rule& rule = rules_[rule_index];
  const auto body_size = rule.body.size();

  if (done_mask == (1u << body_size) - 1) {
    // All atoms matched: instantiate the head.
    const auto pattern = to_pattern(rule.head, binding);
    assert(pattern.s != rdf::kAnyTerm && pattern.p != rdf::kAnyTerm &&
           pattern.o != rdf::kAnyTerm);
    ++shard.attempts;
    if (options_.dict != nullptr &&
        options_.dict->kind(pattern.s) == rdf::TermKind::kLiteral) {
      return;  // literal guard: no statements about literals
    }
    const rdf::Triple derived{pattern.s, pattern.p, pattern.o};
    if (!store_.contains(derived) && shard.seen.insert(derived)) {
      shard.pending.push_back(
          Pending{derived, static_cast<std::uint32_t>(rule_index)});
    }
    return;
  }

  // Pick the unprocessed atom with the most bound positions.  With exactly
  // one atom left (every two-atom rule lands here after its pivot bound)
  // the choice is forced — skip the selection scan.
  const unsigned remaining_mask = ((1u << body_size) - 1) & ~done_mask;
  std::size_t best;
  if ((remaining_mask & (remaining_mask - 1)) == 0) {
    best = static_cast<std::size_t>(std::countr_zero(remaining_mask));
  } else {
    best = body_size;
    int best_bound = -1;
    for (std::size_t j = 0; j < body_size; ++j) {
      if (done_mask & (1u << j)) {
        continue;
      }
      const int b = bound_count(to_pattern(rule.body[j], binding));
      if (b > best_bound) {
        best_bound = b;
        best = j;
      }
    }
  }
  assert(best < body_size);

  const auto pattern = to_pattern(rule.body[best], binding);
  const auto on_match = [&](const rdf::Triple& t) {
    rules::Binding saved = binding;
    if (bind_atom(rule.body[best], t, binding)) {
      join<Devirt>(rule_index, done_mask | (1u << best), binding, shard);
    }
    binding = saved;
  };
  if constexpr (Devirt) {
    store_.match_each(pattern, on_match);
  } else {
    store_.match(pattern, on_match);  // type-erased path, ablation only
  }
}

template <bool Devirt>
void ForwardEngine::fire_rule(std::size_t rule_index, std::size_t pivot,
                              const rdf::Triple& delta_triple, Shard& shard) {
  const rules::Rule& rule = rules_[rule_index];
  rules::Binding binding{};
  if (!bind_atom(rule.body[pivot], delta_triple, binding)) {
    return;
  }
  join<Devirt>(rule_index, 1u << pivot, binding, shard);
}

template <bool Devirt>
void ForwardEngine::process_range(std::size_t lo, std::size_t hi,
                                  Shard& shard) {
  // The store log is append-only and never resized during the matching
  // pass (derivations go to `shard.pending`; inserts happen at the round
  // barrier), so indexing it directly is safe — also from worker threads.
  const std::vector<rdf::Triple>& log = store_.triples();
  for (std::size_t i = lo; i < hi; ++i) {
    dispatch_triple<Devirt>(log[i], shard);
  }
}

std::vector<ForwardEngine::Derivation> ForwardEngine::match_delta(
    std::size_t lo, std::size_t hi) {
  // One matching pass, no insertion, no iteration to fixpoint: exactly the
  // body of a single round restricted to [lo, hi), with the results
  // returned instead of merged into the store.  `join` only reads the
  // store (contains + match), so the victim's log stays untouched.
  Shard shard;
  if (options_.devirtualize) {
    process_range<true>(lo, hi, shard);
  } else {
    process_range<false>(lo, hi, shard);
  }
  std::vector<Derivation> out;
  out.reserve(shard.pending.size());
  for (const Pending& pd : shard.pending) {
    out.push_back(Derivation{pd.triple, pd.rule});
  }
  return out;
}

ForwardStats ForwardEngine::run(std::size_t delta_begin) {
  obs::configure(options_.obs);
  ForwardStats stats;
  stats.firings_per_rule.assign(rules_.size(), 0);
  const std::size_t endpoint_builds_before = store_.endpoint_index_builds();

  std::size_t frontier_begin = options_.semi_naive ? delta_begin : 0;

  const bool rewrite = rewrite_active();
  if (rewrite) {
    // Pre-pass: fold asserted sameAs triples in the frontier into the
    // class map, then canonicalize the store if anything needs it.  The
    // prefix before `frontier_begin` is already representative space by
    // the incremental contract (it was produced by a rewrite run).
    EqualityManager& eq = *options_.equality;
    bool needs_rebuild = false;
    const std::vector<rdf::Triple>& log = store_.triples();
    for (std::size_t i = frontier_begin; i < log.size(); ++i) {
      const rdf::Triple& t = log[i];
      if (t.p == options_.same_as) {
        intercept_same_as(t, stats);
        needs_rebuild = true;
      } else if (eq.rewrite(t) != t) {
        needs_rebuild = true;
      }
      if (t.s == options_.same_as || t.o == options_.same_as) {
        ++stats.eq_conflicts;  // schema statements about sameAs itself
      }
    }
    if (needs_rebuild) {
      frontier_begin = rewrite_store(frontier_begin, stats);
    }
    if (!options_.semi_naive) {
      frontier_begin = 0;
    }
  }

  unsigned threads = options_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }

  std::vector<Shard> shards(threads);
  // Cross-shard dedup at the merge barrier; within a shard, Shard::seen
  // already deduplicated, so this set is only consulted with > 1 shard.
  rdf::TripleSet merged_seen;

  // Per-iteration work descriptor, published to the pool by the start
  // barrier and consumed before the finish barrier.
  std::size_t work_begin = 0;
  std::size_t work_end = 0;
  bool done = false;

  const auto shard_bounds = [&](unsigned shard_index) {
    // Contiguous blocks in frontier order: concatenating shard buffers in
    // index order reproduces the exact single-threaded emission sequence.
    const std::size_t n = work_end - work_begin;
    const std::size_t base = n / threads;
    const std::size_t rem = n % threads;
    const std::size_t lo = work_begin + base * shard_index +
                           std::min<std::size_t>(shard_index, rem);
    return std::pair<std::size_t, std::size_t>(
        lo, lo + base + (shard_index < rem ? 1 : 0));
  };
  const auto run_shard = [&](unsigned shard_index) {
    const auto [lo, hi] = shard_bounds(shard_index);
    if (options_.devirtualize) {
      process_range<true>(lo, hi, shards[shard_index]);
    } else {
      process_range<false>(lo, hi, shards[shard_index]);
    }
  };

  // Round-barrier pool: workers sleep on `start` while the main thread
  // merges and inserts; the main thread participates as shard 0.
  std::barrier<> start(threads);
  std::barrier<> finish(threads);
  std::vector<std::jthread> pool;
  for (unsigned t = 1; t < threads; ++t) {
    pool.emplace_back([&, t] {
      while (true) {
        start.arrive_and_wait();
        if (done) {
          return;
        }
        run_shard(t);
        finish.arrive_and_wait();
      }
    });
  }
  const auto release_pool = [&] {
    if (!pool.empty()) {
      done = true;
      start.arrive_and_wait();
    }
  };

  while (stats.iterations < options_.max_iterations) {
    const std::size_t frontier_end = store_.size();
    if (frontier_begin >= frontier_end) {
      break;
    }
    ++stats.iterations;
    obs::Span round_span("reason.round",
                         {{"round", stats.iterations},
                          {"frontier", frontier_end - frontier_begin}});

    for (Shard& shard : shards) {
      shard.reset();
    }
    work_begin = frontier_begin;
    work_end = frontier_end;
    if (!pool.empty()) {
      start.arrive_and_wait();
    }
    run_shard(0);
    if (!pool.empty()) {
      finish.arrive_and_wait();
    }

    // Merge at the barrier: concatenated shard buffers replay the
    // single-threaded emission order, so first-occurrence wins both the
    // cross-shard dedup and the per-rule firing credit — statistics and
    // log order are identical for every thread count.  Under rewrite,
    // every pending triple passes through the class map first: sameAs
    // heads fold into it, everything else is inserted canonically (the
    // rewrite can collapse distinct pendings, so credit follows the
    // actual insert to keep the per-rule sum equal to `derived`).
    std::size_t added = 0;
    bool eq_changed = false;
    const std::size_t attempts_before = stats.attempts;
    merged_seen.reset();
    for (Shard& shard : shards) {
      stats.attempts += shard.attempts;
      for (const Pending& pd : shard.pending) {
        if (shards.size() > 1 && !merged_seen.insert(pd.triple)) {
          continue;
        }
        if (rewrite) {
          const rdf::Triple t = options_.equality->rewrite(pd.triple);
          if (t.p == options_.same_as) {
            eq_changed = intercept_same_as(t, stats) || eq_changed;
            continue;
          }
          if (options_.equality->tracked(t.p) ||
              t.s == options_.same_as || t.o == options_.same_as) {
            ++stats.eq_conflicts;
          }
          if (store_.insert(t)) {
            ++added;
            ++stats.firings_per_rule[pd.rule];
          }
          continue;
        }
        added += store_.insert(pd.triple) ? 1 : 0;
        ++stats.firings_per_rule[pd.rule];
      }
    }
    stats.derived += added;
    round_span.arg({"derived", added});
    PAROWL_COUNT("reason.iterations", 1);
    PAROWL_COUNT("reason.derived", added);
    PAROWL_COUNT("reason.rule_attempts", stats.attempts - attempts_before);
    if (rewrite && eq_changed) {
      // A merge may remap triples inserted in earlier rounds: rebuild the
      // store in representative space and make every remapped triple (plus
      // this round's inserts) the next frontier, so they re-derive through
      // the dispatch index against the canonical store.
      frontier_begin = rewrite_store(frontier_end, stats);
      if (!options_.semi_naive) {
        frontier_begin = 0;
      }
      continue;
    }
    if (added == 0) {
      break;
    }
    // Next frontier: exactly the triples inserted this iteration (or the
    // whole store again under naive evaluation).
    frontier_begin = options_.semi_naive ? frontier_end : 0;
  }
  release_pool();
  if (rewrite) {
    options_.equality->freeze();
    PAROWL_COUNT("reason.eq.intercepted", stats.eq_intercepted);
    PAROWL_COUNT("reason.eq.merges", stats.eq_merges);
    PAROWL_COUNT("reason.eq.remapped", stats.eq_remapped);
    PAROWL_COUNT("reason.eq.rebuilds", stats.eq_rebuilds);
    PAROWL_COUNT("reason.eq.conflicts", stats.eq_conflicts);
  }
  stats.endpoint_index_builds =
      store_.endpoint_index_builds() - endpoint_builds_before;
  return stats;
}

ForwardStats forward_closure(rdf::TripleStore& store,
                             const rules::RuleSet& rules,
                             ForwardOptions options) {
  return ForwardEngine(store, rules, options).run(0);
}

obs::FieldList fields(const ForwardStats& s) {
  return {
      {"iterations", s.iterations},
      {"derived", s.derived},
      {"attempts", s.attempts},
      {"rules_fired", s.firings_per_rule.size()},
      {"eq_intercepted", s.eq_intercepted},
      {"eq_merges", s.eq_merges},
      {"eq_remapped", s.eq_remapped},
      {"eq_rebuilds", s.eq_rebuilds},
      {"eq_conflicts", s.eq_conflicts},
      {"endpoint_index_builds", s.endpoint_index_builds},
  };
}

}  // namespace parowl::reason
