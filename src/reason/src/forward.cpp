#include "parowl/reason/forward.hpp"

#include <bit>
#include <cassert>

namespace parowl::reason {
namespace {

using rules::bind_atom;
using rules::to_pattern;

/// Number of bound positions in the pattern — the join-order heuristic.
int bound_count(const rdf::TriplePattern& p) {
  return (p.s != rdf::kAnyTerm) + (p.p != rdf::kAnyTerm) +
         (p.o != rdf::kAnyTerm);
}

}  // namespace

ForwardEngine::ForwardEngine(rdf::TripleStore& store,
                             const rules::RuleSet& rules,
                             ForwardOptions options)
    : store_(store), rules_(rules), options_(options) {}

void ForwardEngine::join(std::size_t rule_index, unsigned done_mask,
                         rules::Binding& binding,
                         std::vector<rdf::Triple>& out, ForwardStats& stats) {
  const rules::Rule& rule = rules_[rule_index];
  const auto body_size = rule.body.size();

  if (done_mask == (1u << body_size) - 1) {
    // All atoms matched: instantiate the head.
    const auto pattern = to_pattern(rule.head, binding);
    assert(pattern.s != rdf::kAnyTerm && pattern.p != rdf::kAnyTerm &&
           pattern.o != rdf::kAnyTerm);
    ++stats.attempts;
    if (options_.dict != nullptr &&
        options_.dict->kind(pattern.s) == rdf::TermKind::kLiteral) {
      return;  // literal guard: no statements about literals
    }
    const rdf::Triple derived{pattern.s, pattern.p, pattern.o};
    if (!store_.contains(derived)) {
      out.push_back(derived);
      ++stats.firings_per_rule[rule_index];
    }
    return;
  }

  // Pick the unprocessed atom with the most bound positions.
  std::size_t best = body_size;
  int best_bound = -1;
  for (std::size_t j = 0; j < body_size; ++j) {
    if (done_mask & (1u << j)) {
      continue;
    }
    const int b = bound_count(to_pattern(rule.body[j], binding));
    if (b > best_bound) {
      best_bound = b;
      best = j;
    }
  }
  assert(best < body_size);

  const auto pattern = to_pattern(rule.body[best], binding);
  store_.match(pattern, [&](const rdf::Triple& t) {
    rules::Binding saved = binding;
    if (bind_atom(rule.body[best], t, binding)) {
      join(rule_index, done_mask | (1u << best), binding, out, stats);
    }
    binding = saved;
  });
}

void ForwardEngine::fire_rule(std::size_t rule_index, std::size_t pivot,
                              const rdf::Triple& delta_triple,
                              std::vector<rdf::Triple>& out,
                              ForwardStats& stats) {
  const rules::Rule& rule = rules_[rule_index];
  rules::Binding binding{};
  if (!bind_atom(rule.body[pivot], delta_triple, binding)) {
    return;
  }
  join(rule_index, 1u << pivot, binding, out, stats);
}

ForwardStats ForwardEngine::run(std::size_t delta_begin) {
  ForwardStats stats;
  stats.firings_per_rule.assign(rules_.size(), 0);

  std::size_t frontier_begin = options_.semi_naive ? delta_begin : 0;
  std::vector<rdf::Triple> pending;

  while (stats.iterations < options_.max_iterations) {
    const std::size_t frontier_end = store_.size();
    if (frontier_begin >= frontier_end) {
      break;
    }
    ++stats.iterations;
    pending.clear();

    for (std::size_t rule_index = 0; rule_index < rules_.size();
         ++rule_index) {
      const rules::Rule& rule = rules_[rule_index];
      for (std::size_t pivot = 0; pivot < rule.body.size(); ++pivot) {
        // The store log is append-only and not resized during this loop
        // (derivations go to `pending`), so indexing it directly is safe.
        for (std::size_t i = frontier_begin; i < frontier_end; ++i) {
          fire_rule(rule_index, pivot, store_.triples()[i], pending, stats);
        }
      }
    }

    std::size_t added = 0;
    for (const rdf::Triple& t : pending) {
      added += store_.insert(t) ? 1 : 0;
    }
    stats.derived += added;
    if (added == 0) {
      break;
    }
    // Next frontier: exactly the triples inserted this iteration (or the
    // whole store again under naive evaluation).
    frontier_begin = options_.semi_naive ? frontier_end : 0;
  }
  return stats;
}

ForwardStats forward_closure(rdf::TripleStore& store,
                             const rules::RuleSet& rules,
                             ForwardOptions options) {
  return ForwardEngine(store, rules, options).run(0);
}

}  // namespace parowl::reason
