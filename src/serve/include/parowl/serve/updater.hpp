#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "parowl/ontology/ontology.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/result_cache.hpp"
#include "parowl/serve/snapshot.hpp"

namespace parowl::serve {

/// What one update batch did.
struct UpdateOutcome {
  /// Version of the snapshot the batch produced (0 when nothing was
  /// published: rejected schema change or an all-duplicate batch).
  std::uint64_t version = 0;

  /// The incremental closure's own statistics (added/inferred/rejected).
  reason::IncrementalResult result;

  /// Distinct predicates of the delta (new base + inferred triples) — the
  /// footprint handed to the cache.
  std::vector<rdf::TermId> delta_predicates;

  /// Cache entries dropped by this batch.
  std::size_t invalidated = 0;

  double copy_seconds = 0.0;   // building the successor store
  double total_seconds = 0.0;  // copy + closure + invalidate + publish
};

/// The write side of the serving layer: applies an instance-triple batch to
/// the current snapshot and publishes the successor version.
///
/// Copy-on-update RCU: the updater clones the current store, runs
/// `reason::materialize_incremental` on the clone (semi-naive from the delta
/// only), invalidates overlapping cache entries, and atomically swaps the
/// new snapshot in.  Readers keep their version until they finish; nothing
/// ever blocks a query.  Invalidation runs *before* publication so no reader
/// can hit a stale cached answer under the new version, and the cache's
/// version floor stops in-flight queries from re-inserting answers computed
/// against the old snapshot.
///
/// One Updater serializes its own batches (internal mutex), but the KB
/// design assumes a single logical writer — concurrent Updaters on one
/// registry would race on version numbers.
class Updater {
 public:
  /// `dict` must already contain every term the batches will reference; the
  /// closure itself interns nothing.  `cache` may be null (no caching).
  /// `reason_threads` fans out the incremental closure's matching pass
  /// (0 = hardware concurrency); the published snapshot is bit-identical
  /// for every value.
  Updater(SnapshotRegistry& registry, ResultCache* cache,
          const rdf::Dictionary& dict, const ontology::Vocabulary& vocab,
          unsigned reason_threads = 1);

  /// Apply one batch of *instance* triples.  Schema triples are rejected
  /// (outcome.result.schema_changed) without publishing — a schema change
  /// invalidates the compiled rule-base and needs a full re-materialization.
  UpdateOutcome apply(std::span<const rdf::Triple> additions);

  /// Number of batches successfully published.
  [[nodiscard]] std::uint64_t batches_applied() const;

 private:
  SnapshotRegistry& registry_;
  ResultCache* cache_;
  const rdf::Dictionary& dict_;
  const ontology::Vocabulary& vocab_;
  unsigned reason_threads_;
  mutable std::mutex write_mutex_;
  std::uint64_t batches_ = 0;
};

}  // namespace parowl::serve
