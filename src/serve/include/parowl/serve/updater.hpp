#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "parowl/ontology/ontology.hpp"
#include "parowl/reason/maintain.hpp"
#include "parowl/reason/materialize.hpp"
#include "parowl/serve/result_cache.hpp"
#include "parowl/serve/snapshot.hpp"

namespace parowl::serve {

/// What one update batch did.
struct UpdateOutcome {
  /// Version of the snapshot the batch produced (0 when nothing was
  /// published: rejected schema change, a deletion touching the equality
  /// class map (maintain.equality_rejected), or an all-no-op batch).
  std::uint64_t version = 0;

  /// The incremental closure's own statistics (added/inferred/rejected).
  /// Always populated, for mixed batches too (added/inferred/schema_changed
  /// mirror the maintenance result).
  reason::IncrementalResult result;

  /// Full maintenance statistics when the batch carried deletions
  /// (overdeleted/rederived/removed and the per-pass timings); default-
  /// constructed for pure-addition batches.
  reason::MaintainResult maintain;

  /// Distinct predicates of the delta — the footprint handed to the cache.
  /// Covers the new triples (base + rederived + inferred) AND the removed
  /// ones: a cached answer that contained a deleted (or overdeleted-then-
  /// not-rederived) triple is stale exactly like one missing a new triple.
  std::vector<rdf::TermId> delta_predicates;

  /// Cache entries dropped by this batch.
  std::size_t invalidated = 0;

  double copy_seconds = 0.0;   // building the successor store
  double total_seconds = 0.0;  // copy + closure + invalidate + publish
};

/// The write side of the serving layer: applies an instance-triple batch to
/// the current snapshot and publishes the successor version.
///
/// Copy-on-update RCU: the updater clones the current store, runs the
/// incremental closure (`reason::materialize_incremental` for pure
/// additions, `reason::Maintainer` delete-and-rederive for mixed batches)
/// on the clone, invalidates overlapping cache entries, and atomically
/// swaps the new snapshot in.  Readers keep their version until they
/// finish; nothing ever blocks a query, and no query can observe a
/// half-maintained store.  Invalidation runs *before* publication so no
/// reader can hit a stale cached answer under the new version, and the
/// cache's version floor stops in-flight queries from re-inserting answers
/// computed against the old snapshot.
///
/// One Updater serializes its own batches (internal mutex), but the KB
/// design assumes a single logical writer — concurrent Updaters on one
/// registry would race on version numbers.
class Updater {
 public:
  /// `dict` must already contain every term the batches will reference; the
  /// closure itself interns nothing.  `cache` may be null (no caching).
  /// `reason_threads` fans out the incremental closure's matching pass
  /// (0 = hardware concurrency); the published snapshot is bit-identical
  /// for every value.  `strategy` picks the deletion-propagation algorithm
  /// (DRed vs FBF; both maintain the identical closure).
  Updater(SnapshotRegistry& registry, ResultCache* cache,
          const rdf::Dictionary& dict, const ontology::Vocabulary& vocab,
          unsigned reason_threads = 1,
          reason::MaintainStrategy strategy = reason::MaintainStrategy::kDRed);

  /// Apply one batch of *instance* triples.  Schema triples are rejected
  /// (outcome.result.schema_changed) without publishing — a schema change
  /// invalidates the compiled rule-base and needs a full re-materialization.
  UpdateOutcome apply(std::span<const rdf::Triple> additions);

  /// Apply one mixed batch: retract `deletions` from the asserted base and
  /// add `additions`, maintaining the closure incrementally (DRed/FBF).
  /// Batch-atomic: a triple in both lists stays.  Deleting a never-present
  /// triple is a no-op; an all-no-op batch publishes nothing (version 0).
  UpdateOutcome apply(std::span<const rdf::Triple> additions,
                      std::span<const rdf::Triple> deletions);

  /// Number of batches successfully published.
  [[nodiscard]] std::uint64_t batches_applied() const;

 private:
  SnapshotRegistry& registry_;
  ResultCache* cache_;
  const rdf::Dictionary& dict_;
  const ontology::Vocabulary& vocab_;
  unsigned reason_threads_;
  reason::MaintainStrategy strategy_;
  mutable std::mutex write_mutex_;
  std::uint64_t batches_ = 0;
};

}  // namespace parowl::serve
