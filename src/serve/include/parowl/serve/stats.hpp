#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace parowl::serve {

/// Log-bucketed latency histogram.
///
/// Bucket i covers [2^i, 2^(i+1)) microseconds (bucket 0 additionally
/// absorbs sub-microsecond samples), so 48 buckets span ns..days.  Recording
/// is a single relaxed atomic increment — safe from any number of threads —
/// and percentiles are read off the bucket boundaries, which bounds their
/// error to the 2x bucket width (plenty for p50/p95/p99 reporting).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 48;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram& other) { merge(other); }
  LatencyHistogram& operator=(const LatencyHistogram& other);

  /// Record one sample.  Thread-safe.
  void record_seconds(double seconds);

  /// Add every sample of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const;

  /// Sum of recorded durations (bucket-midpoint approximation), seconds.
  [[nodiscard]] double approximate_total_seconds() const;

  /// The p-quantile (p in [0, 1]) in seconds: upper edge of the bucket
  /// containing the p-th sample.  Returns 0 when empty.
  [[nodiscard]] double percentile_seconds(double p) const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Cache counters (see ResultCache).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      // LRU capacity evictions
  std::uint64_t invalidations = 0;  // dropped by update-delta footprints
  std::uint64_t rejected = 0;       // stale inserts refused after an update

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// One consistent view of everything the service observed, for reporting.
struct ServiceStats {
  std::uint64_t completed = 0;          // executed and answered
  std::uint64_t shed = 0;               // rejected at admission (queue full)
  std::uint64_t deadline_exceeded = 0;  // expired before a worker got to it
  std::uint64_t parse_errors = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t snapshot_version = 0;
  CacheCounters cache;
  LatencyHistogram latency;  // service-side, enqueue -> completion

  [[nodiscard]] std::uint64_t total_requests() const {
    return completed + shed + deadline_exceeded + parse_errors;
  }
  [[nodiscard]] double shed_rate() const {
    const std::uint64_t total = total_requests();
    return total == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(total);
  }

  /// Render as a two-column util::Table ("metric", "value").
  void print(std::ostream& os) const;
};

/// "123.4 us" / "5.67 ms" / "1.23 s" — for latency cells.
[[nodiscard]] std::string fmt_latency(double seconds);

}  // namespace parowl::serve
