#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "parowl/obs/metrics.hpp"
#include "parowl/obs/report.hpp"

namespace parowl::serve {

/// Log-bucketed latency histogram.
///
/// This was the serving layer's histogram first; it is now the shared
/// obs::Histogram (same buckets, same API) so every layer records latency
/// into one shape and the MetricsRegistry can export it.
using LatencyHistogram = obs::Histogram;

/// Cache counters (see ResultCache).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;      // LRU capacity evictions
  std::uint64_t invalidations = 0;  // dropped by update-delta footprints
  std::uint64_t rejected = 0;       // stale inserts refused after an update

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Stats protocol (obs/report.hpp): obs::to_json / obs::print / obs::publish.
[[nodiscard]] obs::FieldList fields(const CacheCounters& c);

/// One consistent view of everything the service observed, for reporting.
struct ServiceStats {
  std::uint64_t completed = 0;          // executed and answered
  std::uint64_t shed = 0;               // rejected at admission (queue full)
  std::uint64_t deadline_exceeded = 0;  // expired before a worker got to it
  std::uint64_t parse_errors = 0;
  std::uint64_t unsupported = 0;  // shape not answerable under rewriting
  std::uint64_t updates_applied = 0;
  std::uint64_t snapshot_version = 0;
  CacheCounters cache;
  LatencyHistogram latency;  // service-side, enqueue -> completion

  [[nodiscard]] std::uint64_t total_requests() const {
    return completed + shed + deadline_exceeded + parse_errors + unsupported;
  }
  [[nodiscard]] double shed_rate() const {
    const std::uint64_t total = total_requests();
    return total == 0 ? 0.0 : static_cast<double>(shed) / static_cast<double>(total);
  }

  /// Render as a two-column util::Table ("metric", "value"); the rows are
  /// the protocol fields plus human-formatted latency percentiles.
  void print(std::ostream& os) const;
};

[[nodiscard]] obs::FieldList fields(const ServiceStats& s);

/// "123.4 us" / "5.67 ms" / "1.23 s" — for latency cells.
[[nodiscard]] std::string fmt_latency(double seconds);

}  // namespace parowl::serve
