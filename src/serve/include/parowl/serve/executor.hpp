#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parowl::serve {

/// Outcome of one served request.
enum class RequestStatus {
  kOk,
  kOverloaded,        // shed at admission: the bounded queue was full
  kDeadlineExceeded,  // expired in the queue before a worker picked it up
  kParseError,
  kUnavailable,       // distributed path: a shard answered on no replica
  kUnsupported,       // query shape not answerable in equality-rewrite mode
};

[[nodiscard]] const char* to_string(RequestStatus status);

/// Fixed thread pool over a bounded MPMC queue with admission control.
///
/// Overload policy is *shed at admission*: try_submit never blocks — when
/// the queue is at capacity the job is refused and the caller answers the
/// client with kOverloaded immediately.  A bounded queue plus shedding keeps
/// tail latency flat under overload (queued work stays small) where an
/// unbounded queue would let latency grow without bound.
class Executor {
 public:
  using Clock = std::chrono::steady_clock;

  /// A unit of work plus the deadline the admission layer recorded for it.
  /// Workers invoke `run(expired)` exactly once; `expired` is true when the
  /// deadline passed while the job sat in the queue, so the job can answer
  /// kDeadlineExceeded without doing the work.
  struct Job {
    std::function<void(bool expired)> run;
    Clock::time_point deadline = Clock::time_point::max();
  };

  Executor(std::size_t threads, std::size_t queue_capacity);

  /// Drains nothing: pending jobs are completed, then workers join.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Admit a job, or refuse it (returns false) when the queue is full.
  [[nodiscard]] bool try_submit(Job job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return capacity_; }
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void worker_loop();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Job> queue_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace parowl::serve
