#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "parowl/obs/options.hpp"
#include "parowl/ontology/ontology.hpp"
#include "parowl/query/sparql_parser.hpp"
#include "parowl/rdf/snapshot.hpp"
#include "parowl/serve/executor.hpp"
#include "parowl/serve/result_cache.hpp"
#include "parowl/serve/snapshot.hpp"
#include "parowl/serve/stats.hpp"
#include "parowl/serve/updater.hpp"

namespace parowl::serve {

/// One answered request.
struct Response {
  RequestStatus status = RequestStatus::kOk;
  query::ResultSet results;
  bool cache_hit = false;
  std::uint64_t snapshot_version = 0;
  double latency_seconds = 0.0;  // admission -> completion
  std::string error;  // diagnostic when kParseError / kUnsupported
};

struct ServiceOptions {
  std::size_t threads = 2;
  std::size_t queue_capacity = 64;
  std::size_t cache_shards = 8;
  std::size_t cache_capacity_per_shard = 128;
  bool cache_enabled = true;

  /// Per-request deadline applied at admission; <= 0 means none.  Requests
  /// still queued when it expires are answered kDeadlineExceeded.
  double default_deadline_seconds = 0.0;

  /// Deletion-propagation algorithm for mixed add/delete batches (see
  /// reason::Maintainer; both strategies maintain the identical closure).
  reason::MaintainStrategy maintain_strategy =
      reason::MaintainStrategy::kDRed;

  /// Namespace prefixes pre-registered with the SPARQL parser.
  std::vector<std::pair<std::string, std::string>> prefixes;

  /// Observability sinks/sampling (docs/architecture.md "Observability").
  /// `sample_every` strides the per-request serve spans.
  obs::ObsOptions obs;
};

/// The serving layer: turns a materialized TripleStore into a concurrently
/// queryable service.
///
/// Read path:  submit/execute -> normalize -> result cache -> (miss) parse
/// under the dictionary lock -> BGP evaluation against the current immutable
/// snapshot, entirely lock-free -> cache fill.
/// Write path: apply_update -> Updater (copy + incremental closure +
/// footprint invalidation + RCU publish).
///
/// The dictionary is the one shared mutable structure: query parsing interns
/// terms (new IRIs/literals mentioned by queries) and so takes the exclusive
/// lock; everything that only *reads* lexical forms — result rendering, the
/// incremental closure's literal guard — takes the shared lock.  BGP
/// evaluation touches only TermIds and never locks.
class QueryService {
 public:
  /// `store` must already be materialized (the service answers from the
  /// closure; it runs no inference at query time).  `dict`/`vocab` outlive
  /// the service.  `base` is the asserted-triple provenance incremental
  /// deletion maintains against (empty = treat the whole store as
  /// asserted; see make_initial_snapshot).  Pass the frozen `equality`
  /// class map when `store` was materialized under sameAs rewriting: the
  /// service then expands answers through it at query time and threads it
  /// through updates (the updater clones + extends the map per batch).
  QueryService(rdf::Dictionary& dict, const ontology::Vocabulary& vocab,
               rdf::TripleStore store, ServiceOptions options = {},
               std::vector<rdf::Triple> base = {},
               std::shared_ptr<const reason::EqualityManager> equality =
                   nullptr);

  /// Completes pending requests, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Asynchronous path: admit `query_text` to the executor.  `done` is
  /// invoked exactly once, possibly inline when the request is shed
  /// (kOverloaded) at admission.  Returns false iff shed.
  bool submit(std::string query_text,
              std::function<void(const Response&)> done);

  /// Synchronous path: parse + evaluate on the caller's thread (no queue,
  /// no admission control).  Shares the cache and counters.
  Response execute(const std::string& query_text);

  /// Apply one instance-triple batch (see Updater).  The triples' terms
  /// must already be interned — use with_dict_exclusive to intern them.
  UpdateOutcome apply_update(std::span<const rdf::Triple> additions);

  /// Apply one mixed add/delete batch: retract `deletions` from the
  /// asserted base, add `additions`, and maintain the closure incrementally
  /// (delete-and-rederive; see Updater).  Batch-atomic; readers never
  /// observe a half-maintained snapshot.
  UpdateOutcome apply_update(std::span<const rdf::Triple> additions,
                             std::span<const rdf::Triple> deletions);

  /// Run `fn(dict)` holding the exclusive dictionary lock (interning).
  template <typename Fn>
  auto with_dict_exclusive(Fn&& fn) {
    const std::unique_lock lock(dict_mutex_);
    return fn(dict_);
  }

  /// Run `fn(const dict)` holding the shared dictionary lock (rendering).
  template <typename Fn>
  auto with_dict_shared(Fn&& fn) const {
    const std::shared_lock lock(dict_mutex_);
    return fn(static_cast<const rdf::Dictionary&>(dict_));
  }

  /// Render a result set to aligned text (takes the shared dict lock).
  [[nodiscard]] std::string render(const query::ResultSet& results) const;

  /// Block until the request queue is drained.
  void drain();

  /// Persist the currently served KB (dictionary + the latest snapshot's
  /// store) in the codec-based snapshot format (rdf/snapshot.hpp), so a
  /// warmed or incrementally updated service can be reloaded later without
  /// re-materializing.  Takes the shared dictionary lock; safe while
  /// queries run.  Returns the write stats (terms/triples/bytes).
  rdf::SnapshotStats save_snapshot(std::ostream& out) const;

  [[nodiscard]] SnapshotPtr snapshot() const { return registry_.current(); }
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const { return options_; }
  [[nodiscard]] Executor& executor() { return *executor_; }

 private:
  Response execute_locked(const std::string& query_text);
  void count(const Response& response);

  ServiceOptions options_;
  rdf::Dictionary& dict_;
  rdf::TermId same_as_;  // owl:sameAs id, for query-time expansion
  mutable std::shared_mutex dict_mutex_;
  SnapshotRegistry registry_;
  ResultCache cache_;
  query::SparqlParser parser_;  // guarded by dict_mutex_ (exclusive)
  Updater updater_;
  std::unique_ptr<Executor> executor_;

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> unsupported_{0};
  std::atomic<std::uint64_t> request_seq_{0};  // obs sampling stride counter
  LatencyHistogram latency_;
};

}  // namespace parowl::serve
