#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "parowl/serve/service.hpp"
#include "parowl/serve/stats.hpp"

namespace parowl::serve {

/// How load is offered to the service.
enum class WorkloadMode {
  /// Fixed arrival rate: requests are admitted on a clock regardless of how
  /// fast answers come back.  This is the regime where admission control
  /// matters — offered load can exceed capacity and the excess must shed.
  kOpenLoop,
  /// N clients, each waiting for its answer (plus think time) before the
  /// next request.  Self-clocking: offered load adapts to service speed.
  kClosedLoop,
};

struct WorkloadOptions {
  WorkloadMode mode = WorkloadMode::kClosedLoop;
  std::size_t total_requests = 1000;
  std::uint64_t seed = 42;  // drives query selection and think times

  // Open loop.
  double arrival_rate_qps = 1000.0;

  // Closed loop.
  std::size_t clients = 4;
  double think_seconds = 0.0;  // mean of an exponential think time; 0 = none
};

/// Client-side view of one run.
struct WorkloadReport {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t deadline_exceeded = 0;
  std::size_t parse_errors = 0;
  std::size_t unavailable = 0;  // distributed path: no replica answered
  std::size_t unsupported = 0;  // shape not answerable under rewriting
  std::size_t cache_hits = 0;
  double wall_seconds = 0.0;
  LatencyHistogram latency;  // client-observed (admission -> answer)

  [[nodiscard]] double throughput_qps() const {
    return wall_seconds > 0 ? static_cast<double>(completed) / wall_seconds
                            : 0.0;
  }

  /// One row per metric, via util::Table.
  void print(std::ostream& os) const;
};

/// The service surface the driver needs: admit `query` and invoke `done`
/// exactly once (inline when shed).  Both serve::QueryService::submit and
/// dist::DistService::submit fit, so one driver exercises the single-store
/// and distributed tiers identically.
using SubmitFn =
    std::function<bool(const std::string& query,
                       std::function<void(const Response&)> done)>;

/// Drive `submit` with requests drawn uniformly (seeded) from `queries`.
/// Blocks until every admitted request has been answered.  Deterministic in
/// which queries are issued (not in timing).
WorkloadReport run_workload(const SubmitFn& submit,
                            std::span<const std::string> queries,
                            const WorkloadOptions& options);

/// Convenience overload for the single-store service.
WorkloadReport run_workload(QueryService& service,
                            std::span<const std::string> queries,
                            const WorkloadOptions& options);

/// Read one query per line from `in` (blank lines and '#' comments are
/// skipped; a line ending in '\' continues on the next line so multi-line
/// SPARQL can be stored readably).  Shared by the workload driver and the
/// CLI's --queries-file flag.
[[nodiscard]] std::vector<std::string> load_query_lines(std::istream& in);

}  // namespace parowl::serve
