#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "parowl/rdf/triple_store.hpp"
#include "parowl/reason/equality.hpp"

namespace parowl::serve {

/// An immutable, versioned view of a materialized knowledge base.
///
/// The serving layer never lets a query observe a store mid-update: the
/// updater builds a *new* store (copy + incremental closure), wraps it in a
/// KbSnapshot, and publishes it atomically.  Readers that already hold a
/// snapshot keep using it — the shared_ptr keeps the old version alive until
/// the last in-flight query drops it (RCU-style reclamation).
struct KbSnapshot {
  /// Monotonically increasing publication counter; the initial snapshot is
  /// version 1.
  std::uint64_t version = 0;

  /// The materialized triple store.  Immutable after publication.
  rdf::TripleStore store;

  /// Survivor prefix length: the range [delta_begin, store.size()) is what
  /// this update added (base + rederived + inferred).  For pure-addition
  /// batches that is exactly the previous version's log length; a deletion
  /// batch compacts the log, so the prefix is shorter than the predecessor.
  std::size_t delta_begin = 0;

  /// The *asserted* triples (schema + instance) this closure was
  /// materialized from — what incremental deletion maintains against
  /// (reason::Maintainer).  Null means "everything in the store is
  /// asserted": the conservative default when a service is built from an
  /// already-materialized store with no base provenance.  Shared across
  /// versions whose base did not change.
  std::shared_ptr<const std::vector<rdf::Triple>> base;

  /// Frozen equality class map when the store was materialized under
  /// sameAs rewriting (null = naive closure).  Immutable like the store:
  /// the updater clones it before merging new sameAs facts, so readers
  /// expanding answers through this map never race a mutation.
  std::shared_ptr<const reason::EqualityManager> equality;
};

using SnapshotPtr = std::shared_ptr<const KbSnapshot>;

/// The single publication point readers and the updater share.
///
/// Readers call current() — a shared_ptr copy under a briefly-held mutex —
/// and then run entirely lock-free against the immutable snapshot.  Writers
/// (one at a time; see Updater) install the next version with publish().
class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(SnapshotPtr initial);

  /// The latest published snapshot.  Never null.
  [[nodiscard]] SnapshotPtr current() const;

  /// Version number of the latest snapshot.
  [[nodiscard]] std::uint64_t version() const;

  /// Install `next` as the current snapshot.  `next->version` must exceed
  /// the current version (single-writer discipline).
  void publish(SnapshotPtr next);

 private:
  mutable std::mutex mutex_;
  SnapshotPtr current_;
};

/// Build the initial snapshot (version 1) from a materialized store.
/// `base` is the asserted-triple provenance for incremental deletion; pass
/// empty to treat the whole store as asserted (deletions then retract any
/// closure triple directly, which is still maintained correctly — there is
/// just no asserted/derived distinction to exploit).  `equality` is the
/// frozen class map of a rewrite-mode closure (null for naive stores).
[[nodiscard]] SnapshotPtr make_initial_snapshot(
    rdf::TripleStore store, std::vector<rdf::Triple> base = {},
    std::shared_ptr<const reason::EqualityManager> equality = nullptr);

}  // namespace parowl::serve
