#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "parowl/query/bgp.hpp"
#include "parowl/serve/stats.hpp"

namespace parowl::serve {

/// Normalize SPARQL text for use as a cache key: trim, collapse whitespace
/// runs to single spaces, strip '#' comments.  Two spellings of the same
/// query that differ only in layout share one cache entry.
[[nodiscard]] std::string normalize_query(std::string_view text);

/// A cached query answer plus the metadata the invalidation protocol needs.
struct CachedResult {
  query::ResultSet results;

  /// Sorted, deduplicated predicate TermIds of the query's constant-predicate
  /// BGP atoms.  An update batch whose delta touches any of them drops the
  /// entry.
  std::vector<rdf::TermId> predicate_footprint;

  /// True when any BGP atom has a *variable* predicate: the footprint is
  /// then unbounded and every update invalidates the entry.
  bool wildcard_predicate = false;

  /// Snapshot version the results were computed against.
  std::uint64_t version = 0;
};

/// Sharded LRU cache of query results keyed on normalized SPARQL text.
///
/// Distributed caveat: a *merged* result (dist::DistService) has no single
/// snapshot version to floor against — its freshness depends on every
/// touched shard.  The distributed tier therefore keys entries on the
/// normalized text *plus the per-partition shard version vector* (see
/// DistService::cache_key), so a shard refresh retires affected entries by
/// moving them to a dead key instead of relying on the version floor.
///
/// Shard = hash(key) % shards; each shard holds its own mutex, LRU list, and
/// map, so concurrent lookups on different queries don't contend.  Deltas
/// invalidate by predicate footprint: `on_update` drops exactly the entries
/// whose footprint intersects the update's predicate set, and bumps the
/// cache's version floor so in-flight queries computed against the previous
/// snapshot cannot re-insert stale answers afterwards.
class ResultCache {
 public:
  /// `capacity_per_shard` == 0 disables caching entirely (every lookup
  /// misses, inserts are dropped) — the cache-off arm of the bench.
  ResultCache(std::size_t shards, std::size_t capacity_per_shard);

  /// Look up `key` (already normalized).  A hit refreshes LRU recency.
  [[nodiscard]] std::optional<query::ResultSet> lookup(const std::string& key);

  /// Insert (or refresh) an entry.  Rejected when `entry.version` is older
  /// than the latest update's version floor (the answer may predate an
  /// invalidation that should have covered it).
  void insert(const std::string& key, CachedResult entry);

  /// An update producing snapshot `new_version` touched `delta_predicates`
  /// (sorted not required).  Drops every overlapping or wildcard entry;
  /// returns the number dropped.
  std::size_t on_update(std::span<const rdf::TermId> delta_predicates,
                        std::uint64_t new_version);

  [[nodiscard]] CacheCounters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool enabled() const { return capacity_per_shard_ > 0; }

 private:
  struct Shard {
    std::mutex mutex;
    // Front = most recently used.  The map's string_view keys point into the
    // list nodes' stable strings.
    std::list<std::pair<std::string, CachedResult>> lru;
    std::unordered_map<std::string_view,
                       std::list<std::pair<std::string, CachedResult>>::iterator>
        index;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> version_floor_{0};

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace parowl::serve
