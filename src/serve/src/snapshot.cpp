#include "parowl/serve/snapshot.hpp"

#include <cassert>
#include <utility>

namespace parowl::serve {

SnapshotRegistry::SnapshotRegistry(SnapshotPtr initial)
    : current_(std::move(initial)) {
  assert(current_ != nullptr);
}

SnapshotPtr SnapshotRegistry::current() const {
  const std::scoped_lock lock(mutex_);
  return current_;
}

std::uint64_t SnapshotRegistry::version() const {
  const std::scoped_lock lock(mutex_);
  return current_->version;
}

void SnapshotRegistry::publish(SnapshotPtr next) {
  assert(next != nullptr);
  const std::scoped_lock lock(mutex_);
  assert(next->version > current_->version);
  current_ = std::move(next);
}

SnapshotPtr make_initial_snapshot(
    rdf::TripleStore store, std::vector<rdf::Triple> base,
    std::shared_ptr<const reason::EqualityManager> equality) {
  auto snap = std::make_shared<KbSnapshot>();
  snap->version = 1;
  snap->delta_begin = store.size();  // nothing is "new" in the first version
  snap->store = std::move(store);
  if (!base.empty()) {
    snap->base =
        std::make_shared<const std::vector<rdf::Triple>>(std::move(base));
  }
  assert(equality == nullptr || equality->frozen());
  snap->equality = std::move(equality);
  return snap;
}

}  // namespace parowl::serve
